// Seed-corpus generator — the reproducible source of fuzz/corpus/.
//
// Usage: ddc_make_corpus <corpus-root>
//
// Writes two seed sets:
//   <root>/framing/     valid envelopes mirroring the wire_tests
//                       vectors (every FrameKind, empty and non-empty
//                       payloads, boundary sender/seq values) plus the
//                       classic malformed shapes (truncations, bad
//                       magic, wrong version, probe-with-payload) so
//                       the fuzzer starts on both sides of every
//                       decoder branch;
//   <root>/classifier/  op-scripts for fuzz_classifier: hand-chosen
//                       headers (node count / dim / k / quanta
//                       resolution) followed by deterministic op
//                       streams, including all-splits pile-ups and
//                       coarse-quanta shapes that exercise the
//                       one-quantum re-homing rule.
//
// File names encode intent; regeneration is byte-stable (no clocks, no
// RNG seeds outside the file contents), so `git diff` after a rerun
// shows exactly how the seed set changed. See fuzz/README.md.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <ddc/wire/framing.hpp>

namespace {

void write_file(const std::filesystem::path& path,
                std::span<const std::byte> bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  if (!os) {
    std::fprintf(stderr, "make_corpus: cannot write %s\n",
                 path.string().c_str());
    std::exit(2);
  }
}

void write_file(const std::filesystem::path& path,
                const std::vector<std::uint8_t>& bytes) {
  write_file(path, std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(bytes.data()),
                       bytes.size()));
}

std::vector<std::byte> bytes_of(std::initializer_list<unsigned> values) {
  std::vector<std::byte> out;
  out.reserve(values.size());
  for (const unsigned v : values) {
    out.push_back(static_cast<std::byte>(v));
  }
  return out;
}

void make_framing(const std::filesystem::path& dir) {
  using ddc::wire::FrameKind;
  using ddc::wire::encode_frame;
  std::filesystem::create_directories(dir);

  const auto payload = bytes_of({0xde, 0xad, 0xbe, 0xef});
  write_file(dir / "gossip_payload.bin",
             encode_frame(FrameKind::gossip, 7, 42, payload));
  write_file(dir / "gossip_empty.bin",
             encode_frame(FrameKind::gossip, 0, 0));
  write_file(dir / "probe.bin", encode_frame(FrameKind::probe, 3, 1));
  write_file(dir / "probe_ack.bin",
             encode_frame(FrameKind::probe_ack, 4, 2));
  write_file(dir / "gossip_max_ids.bin",
             encode_frame(FrameKind::gossip, 0xffffffffU,
                          0xffffffffffffffffULL, payload));
  const std::vector<std::byte> big(512, std::byte{0x5a});
  write_file(dir / "gossip_big_payload.bin",
             encode_frame(FrameKind::gossip, 9, 1000, big));

  // Malformed shapes the decoder must reject — seeds for the
  // rejection branches.
  auto truncated = encode_frame(FrameKind::gossip, 7, 42, payload);
  truncated.resize(9);  // mid-seq
  write_file(dir / "truncated_mid_seq.bin", truncated);
  write_file(dir / "empty.bin", std::vector<std::byte>{});
  write_file(dir / "bad_magic.bin",
             bytes_of({0x00, 0x11, 0x22, 0x33, 0x01, 0x00, 0x00, 0x00,
                       0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                       0x00}));
  // Valid magic base "DDN" with an unsupported version byte (2).
  write_file(dir / "wrong_version.bin",
             bytes_of({0x44, 0x44, 0x4e, 0x02, 0x01, 0x00, 0x00, 0x00,
                       0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                       0x00}));
  auto probe_payload = encode_frame(FrameKind::probe, 3, 1);
  probe_payload.push_back(std::byte{0x01});
  write_file(dir / "probe_with_payload.bin", probe_payload);

  // Shard batch frames (PR 7): a populated batch, the empty barrier
  // token, an ack, and malformed shapes for the batch-grammar rejection
  // branches (truncation, huge record count, out-of-range shard id).
  using ddc::wire::BatchRecord;
  using ddc::wire::BatchTag;
  const auto rec_payload = bytes_of({0x10, 0x20, 0x30});
  const std::vector<BatchRecord> records = {
      {5, 200, BatchTag::forward, rec_payload},
      {200, 5, BatchTag::reply, payload},
      {7, 8, BatchTag::forward, {}},
  };
  const auto batch = ddc::wire::encode_batch(12, 1, 4, records);
  write_file(dir / "batch_records.bin",
             encode_frame(FrameKind::batch, 1, 13, batch));
  write_file(dir / "batch_barrier.bin",
             encode_frame(FrameKind::batch, 0, 1,
                          ddc::wire::encode_batch(3, 0, 2, {})));
  write_file(dir / "batch_ack.bin",
             encode_frame(FrameKind::batch_ack, 2, 4,
                          ddc::wire::encode_batch_ack(3)));
  auto batch_truncated = encode_frame(FrameKind::batch, 1, 13, batch);
  batch_truncated.resize(batch_truncated.size() - 5);  // mid-record
  write_file(dir / "batch_truncated_record.bin", batch_truncated);
  // Record count claims 2^63 records — check_count must refuse.
  auto huge_count = ddc::wire::encode_batch(12, 1, 4, {});
  huge_count.resize(huge_count.size() - 1);  // drop the count varint (0)
  for (int i = 0; i < 9; ++i) huge_count.push_back(std::byte{0xff});
  huge_count.push_back(std::byte{0x7f});
  write_file(dir / "batch_huge_count.bin",
             encode_frame(FrameKind::batch, 1, 13, huge_count));
  write_file(dir / "batch_shard_out_of_range.bin",
             encode_frame(FrameKind::batch, 1, 13,
                          ddc::wire::encode_batch(0, 9, 4, {})));

  // Edge-cut-era shapes (PR 9): an edgecut ownership map scatters a
  // shard's nodes across the global id space, so realistic batches mix
  // widely separated src/dst ids and payload lengths (including zero)
  // in one frame; barrier tokens ride high shard counts; and a dense
  // frame sits exactly on the 127-record varint-length boundary.
  const auto one_byte = bytes_of({0x01});
  const std::vector<BatchRecord> scattered = {
      {3, 1021, BatchTag::forward, {}},
      {517, 2, BatchTag::reply, payload},
      {999, 0, BatchTag::forward, rec_payload},
      {0, 65535, BatchTag::reply, {}},
      {4093, 511, BatchTag::forward, one_byte},
  };
  write_file(dir / "batch_edgecut_scattered.bin",
             encode_frame(FrameKind::batch, 4, 77,
                          ddc::wire::encode_batch(9, 4, 6, scattered)));
  write_file(dir / "batch_barrier_many_shards.bin",
             encode_frame(FrameKind::batch, 30, 900,
                          ddc::wire::encode_batch(40, 30, 32, {})));
  std::vector<BatchRecord> dense;
  std::vector<std::vector<std::byte>> dense_payloads;
  dense.reserve(127);
  dense_payloads.reserve(127);
  for (unsigned r = 0; r < 127; ++r) {
    dense_payloads.push_back(
        r % 3 == 0 ? std::vector<std::byte>{}
                   : bytes_of({r & 0xffU, (r * 37U) & 0xffU}));
    dense.push_back({(r * 97U) % 8191U, (r * 193U) % 8191U,
                     r % 2 == 0 ? BatchTag::forward : BatchTag::reply,
                     dense_payloads.back()});
  }
  write_file(dir / "batch_dense_127.bin",
             encode_frame(FrameKind::batch, 2, 500,
                          ddc::wire::encode_batch(25, 1, 2, dense)));
}

void make_classifier(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);

  // Script header (see fuzz_classifier.cpp): n-sel, dim-sel, k-sel,
  // quanta-sel, then per-node dim values, then op stream.
  // 4 nodes, 1-D, k=2, quanta 2^6; spread values; alternating ops.
  {
    std::vector<std::uint8_t> s = {2, 0, 1, 2};
    for (const std::uint8_t v : {96, 112, 144, 160}) s.push_back(v);
    for (int i = 0; i < 24; ++i) {
      s.push_back(static_cast<std::uint8_t>(i % 3));  // op
      s.push_back(static_cast<std::uint8_t>(i * 7));  // operand(s)
      s.push_back(static_cast<std::uint8_t>(i * 13));
    }
    write_file(dir / "alternating_ops.bin", s);
  }
  // 2 nodes, coarse quanta 2^4 — one-quantum collections everywhere.
  {
    std::vector<std::uint8_t> s = {0, 0, 0, 0, 120, 136};
    for (int i = 0; i < 40; ++i) {
      s.push_back(2);  // exchange
      s.push_back(static_cast<std::uint8_t>(i));
      s.push_back(static_cast<std::uint8_t>(i + 1));
    }
    write_file(dir / "coarse_quanta_exchanges.bin", s);
  }
  // 7 nodes, 3-D, k=3: splits only — maximal in-flight pool.
  {
    std::vector<std::uint8_t> s = {5, 2, 2, 4};
    for (int node = 0; node < 7; ++node) {
      s.push_back(static_cast<std::uint8_t>(100 + 10 * node));
      s.push_back(static_cast<std::uint8_t>(140 - 10 * node));
      s.push_back(static_cast<std::uint8_t>(128 + 5 * node));
    }
    for (int i = 0; i < 30; ++i) {
      s.push_back(0);  // split
      s.push_back(static_cast<std::uint8_t>(i * 3));
    }
    write_file(dir / "split_pileup.bin", s);
  }
  // Identical inputs: distance ties on every partition call.
  {
    std::vector<std::uint8_t> s = {3, 0, 1, 3, 128, 128, 128, 128, 128};
    for (int i = 0; i < 36; ++i) {
      s.push_back(static_cast<std::uint8_t>((i * 5) % 251));
    }
    write_file(dir / "all_ties.bin", s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  make_framing(root / "framing");
  make_classifier(root / "classifier");
  std::printf("make_corpus: wrote seed corpus under %s\n",
              root.string().c_str());
  return 0;
}
