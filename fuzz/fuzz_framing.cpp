// Fuzz harness for the wire::framing envelope decoder.
//
// Every datagram a node receives passes through decode_frame before
// anything else looks at it, so this is the first line of the
// "survive any byte string the network hands you" contract (the
// attacker-controlled-lengths setting called out in scripts/check.sh).
//
// Checked properties, on every input:
//   * decode_frame either returns a Frame or throws wire::DecodeError —
//     any other exception, sanitizer report, or crash fails the run;
//   * accepted frames round-trip: re-encoding the decoded fields must
//     reproduce the input byte-for-byte (the envelope grammar is a
//     bijection between valid byte strings and Frame values);
//   * probe/probe_ack frames carry no payload (decoder contract);
//   * accepted batch payloads round-trip through decode_batch /
//     encode_batch (canonical varints make the batch grammar a
//     bijection too), and batch_ack payloads through decode_batch_ack.
//
// The harness ships a structure-aware custom mutator: instead of only
// flipping bytes (which mostly yields bad-magic rejections), it decodes
// the input — or falls back to a canonical envelope — mutates one field
// of the *structured* form (kind, sender, seq, payload, batch-payload
// synthesis, edgecut-shaped batch synthesis, truncation, magic
// corruption, bit flip), and re-encodes. libFuzzer picks it up as
// LLVMFuzzerCustomMutator; the standalone driver finds it by weak
// symbol and applies it to half of its iterations.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include <ddc/wire/codec.hpp>
#include <ddc/wire/framing.hpp>

#include "fuzz_input.hpp"

namespace {

std::span<const std::byte> as_bytes(const std::uint8_t* data,
                                    std::size_t size) {
  return {reinterpret_cast<const std::byte*>(data), size};
}

[[noreturn]] void fail(const char* property, const char* detail) {
  std::fprintf(stderr, "fuzz_framing: property violated: %s (%s)\n",
               property, detail);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ddc::wire::Frame frame{};
  try {
    frame = ddc::wire::decode_frame(as_bytes(data, size));
  } catch (const ddc::wire::DecodeError&) {
    return 0;  // malformed input rejected cleanly — the expected path
  }
  // Accepted: the envelope grammar must round-trip exactly.
  const std::vector<std::byte> re = ddc::wire::encode_frame(
      frame.kind, frame.sender, frame.seq, frame.payload);
  if (re.size() != size ||
      (size != 0 && std::memcmp(re.data(), data, size) != 0)) {
    fail("decode/encode round-trip",
         "re-encoded frame differs from accepted input");
  }
  if ((frame.kind == ddc::wire::FrameKind::probe ||
       frame.kind == ddc::wire::FrameKind::probe_ack) &&
      !frame.payload.empty()) {
    fail("probe payload contract", "probe frame decoded with payload");
  }
  if (frame.kind == ddc::wire::FrameKind::batch) {
    ddc::wire::Batch batch;
    try {
      batch = ddc::wire::decode_batch(frame.payload);
    } catch (const ddc::wire::DecodeError&) {
      return 0;  // envelope fine, batch grammar rejected — expected path
    }
    const std::vector<std::byte> rebatch = ddc::wire::encode_batch(
        batch.round, batch.shard, batch.num_shards, batch.records);
    if (rebatch.size() != frame.payload.size() ||
        (!rebatch.empty() && std::memcmp(rebatch.data(), frame.payload.data(),
                                         rebatch.size()) != 0)) {
      fail("batch round-trip",
           "re-encoded batch differs from accepted payload");
    }
  }
  if (frame.kind == ddc::wire::FrameKind::batch_ack) {
    std::uint64_t acked = 0;
    try {
      acked = ddc::wire::decode_batch_ack(frame.payload);
    } catch (const ddc::wire::DecodeError&) {
      return 0;
    }
    const std::vector<std::byte> reack = ddc::wire::encode_batch_ack(acked);
    if (reack.size() != frame.payload.size() ||
        std::memcmp(reack.data(), frame.payload.data(), reack.size()) != 0) {
      fail("batch_ack round-trip",
           "re-encoded ack differs from accepted payload");
    }
  }
  return 0;
}

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed) {
  using ddc::wire::FrameKind;
  std::uint64_t state = seed;

  // Start from the structured form of the input, or a canonical
  // envelope when the input does not parse.
  FrameKind kind = FrameKind::gossip;
  std::uint32_t sender = 7;
  std::uint64_t seq = 42;
  std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe, 0xef};
  try {
    const ddc::wire::Frame frame = ddc::wire::decode_frame(as_bytes(data, size));
    kind = frame.kind;
    sender = frame.sender;
    seq = frame.seq;
    payload.assign(
        reinterpret_cast<const std::uint8_t*>(frame.payload.data()),
        reinterpret_cast<const std::uint8_t*>(frame.payload.data()) +
            frame.payload.size());
  } catch (const ddc::wire::DecodeError&) {
  }

  switch (ddc_fuzz::splitmix(state) % 9) {
    case 0:  // kind, valid and invalid alike
      kind = static_cast<FrameKind>(ddc_fuzz::splitmix(state) % 7);
      break;
    case 1:
      sender = static_cast<std::uint32_t>(ddc_fuzz::splitmix(state));
      break;
    case 2:
      seq = ddc_fuzz::splitmix(state);
      break;
    case 3: {  // resize / rewrite payload
      payload.resize(ddc_fuzz::splitmix(state) % 48);
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(ddc_fuzz::splitmix(state));
      }
      break;
    }
    case 4: {  // synthesize a structurally valid batch payload
      kind = FrameKind::batch;
      const std::uint32_t num_shards =
          1 + static_cast<std::uint32_t>(ddc_fuzz::splitmix(state) % 8);
      const std::uint32_t shard =
          static_cast<std::uint32_t>(ddc_fuzz::splitmix(state)) % num_shards;
      const std::size_t num_records = ddc_fuzz::splitmix(state) % 5;
      std::vector<std::vector<std::byte>> payloads(num_records);
      std::vector<ddc::wire::BatchRecord> records;
      records.reserve(num_records);
      for (std::size_t r = 0; r < num_records; ++r) {
        payloads[r].resize(ddc_fuzz::splitmix(state) % 12);
        for (auto& b : payloads[r]) {
          b = static_cast<std::byte>(ddc_fuzz::splitmix(state));
        }
        records.push_back(
            {static_cast<std::uint32_t>(ddc_fuzz::splitmix(state) % 4096),
             static_cast<std::uint32_t>(ddc_fuzz::splitmix(state) % 4096),
             static_cast<ddc::wire::BatchTag>(ddc_fuzz::splitmix(state) % 2),
             payloads[r]});
      }
      const std::vector<std::byte> batch = ddc::wire::encode_batch(
          ddc_fuzz::splitmix(state) % 1024, shard, num_shards, records);
      payload.assign(
          reinterpret_cast<const std::uint8_t*>(batch.data()),
          reinterpret_cast<const std::uint8_t*>(batch.data()) + batch.size());
      break;
    }
    case 5: {  // edgecut-shaped batch: scattered ids, dense frames,
               // mixed payload lengths (including empty), high shard
               // counts — the shapes an edge-cut ownership map sends
      kind = FrameKind::batch;
      const std::uint32_t num_shards =
          1 + static_cast<std::uint32_t>(ddc_fuzz::splitmix(state) % 64);
      const std::uint32_t shard =
          static_cast<std::uint32_t>(ddc_fuzz::splitmix(state)) % num_shards;
      // Occasionally sit on the 127-record one-byte-varint boundary.
      const std::size_t num_records =
          ddc_fuzz::splitmix(state) % 4 == 0 ? 127
                                             : ddc_fuzz::splitmix(state) % 32;
      const std::uint32_t stride =
          1 + static_cast<std::uint32_t>(ddc_fuzz::splitmix(state) % 8191);
      std::vector<std::vector<std::byte>> payloads(num_records);
      std::vector<ddc::wire::BatchRecord> records;
      records.reserve(num_records);
      for (std::size_t r = 0; r < num_records; ++r) {
        if (ddc_fuzz::splitmix(state) % 3 != 0) {
          payloads[r].resize(ddc_fuzz::splitmix(state) % 20);
          for (auto& b : payloads[r]) {
            b = static_cast<std::byte>(ddc_fuzz::splitmix(state));
          }
        }
        const auto id = static_cast<std::uint32_t>(r);
        records.push_back(
            {(id * stride) % 65536U,
             (id * stride + stride / 2) % 65536U,
             static_cast<ddc::wire::BatchTag>(ddc_fuzz::splitmix(state) % 2),
             payloads[r]});
      }
      const std::vector<std::byte> batch = ddc::wire::encode_batch(
          ddc_fuzz::splitmix(state) % 4096, shard, num_shards, records);
      payload.assign(
          reinterpret_cast<const std::uint8_t*>(batch.data()),
          reinterpret_cast<const std::uint8_t*>(batch.data()) + batch.size());
      break;
    }
    default:
      break;  // field-preserving mutations below
  }

  std::vector<std::byte> encoded;
  try {
    encoded = ddc::wire::encode_frame(
        kind, sender, seq,
        {reinterpret_cast<const std::byte*>(payload.data()), payload.size()});
  } catch (...) {
    return size;  // encoding rejected the mutated fields; keep input
  }

  switch (ddc_fuzz::splitmix(state) % 4) {
    case 0:  // corrupt one byte of the fixed header (magic/version/kind)
      if (!encoded.empty()) {
        const std::size_t at = ddc_fuzz::splitmix(state) %
                               std::min<std::size_t>(encoded.size(), 9);
        encoded[at] ^= std::byte{static_cast<std::uint8_t>(
            1U << (ddc_fuzz::splitmix(state) % 8))};
      }
      break;
    case 1:  // truncate anywhere, including mid-header
      encoded.resize(ddc_fuzz::splitmix(state) % (encoded.size() + 1));
      break;
    case 2:  // single bit flip anywhere
      if (!encoded.empty()) {
        const std::size_t at = ddc_fuzz::splitmix(state) % encoded.size();
        encoded[at] ^= std::byte{static_cast<std::uint8_t>(
            1U << (ddc_fuzz::splitmix(state) % 8))};
      }
      break;
    default:
      break;  // leave the valid envelope intact
  }

  const std::size_t out = std::min(encoded.size(), max_size);
  std::memcpy(data, encoded.data(), out);
  return out;
}
