// Standalone replay-and-mutate driver for fuzz harnesses.
//
// The harnesses expose the standard libFuzzer entry points
// (LLVMFuzzerTestOneInput, optionally LLVMFuzzerCustomMutator). When
// the toolchain has libFuzzer (clang's -fsanitize=fuzzer) CMake links
// the real engine and this file stays out of the build. On toolchains
// without it (gcc — the container default) this driver supplies main():
//
//   fuzz_framing [-runs=N] [-seed=S] [-max_len=L] <corpus file|dir>...
//
// It replays every corpus input, then runs N mutational iterations:
// each starts from a random corpus element (or empty), applies the
// harness's structure-aware custom mutator when one is linked (found
// via weak symbol, exactly how libFuzzer dispatches it) on half the
// iterations, stacked generic byte mutations on the rest, and feeds the
// result to LLVMFuzzerTestOneInput. Built with ASan+UBSan this gives
// coverage-blind but sanitizer-armed fuzzing that is fully
// deterministic in (corpus, seed, runs) — good enough for a CI smoke
// gate, and flag-compatible with the real engine so scripts need not
// care which one they invoke.
//
// Unknown -flags are warned about and ignored (libFuzzer has many).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz_input.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);
extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed)
    __attribute__((weak));

namespace {

using Input = std::vector<std::uint8_t>;

std::vector<Input> load_corpus(const std::vector<std::string>& paths) {
  std::vector<std::filesystem::path> files;
  for (const auto& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(p, ec)) {
      files.emplace_back(p);
    } else {
      std::fprintf(stderr, "fuzz driver: no such corpus path: %s\n",
                   p.c_str());
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());  // deterministic replay order
  std::vector<Input> corpus;
  corpus.reserve(files.size());
  for (const auto& file : files) {
    std::ifstream is(file, std::ios::binary);
    Input bytes((std::istreambuf_iterator<char>(is)),
                std::istreambuf_iterator<char>());
    corpus.push_back(std::move(bytes));
  }
  return corpus;
}

/// One stacked generic mutation: flip, overwrite, insert, erase,
/// duplicate, or truncate. Mirrors libFuzzer's basic mutators.
void mutate_generic(Input& buf, std::uint64_t& state, std::size_t max_len) {
  switch (ddc_fuzz::splitmix(state) % 6) {
    case 0:  // bit flip
      if (!buf.empty()) {
        buf[ddc_fuzz::splitmix(state) % buf.size()] ^=
            static_cast<std::uint8_t>(1U << (ddc_fuzz::splitmix(state) % 8));
      }
      break;
    case 1:  // overwrite byte
      if (!buf.empty()) {
        buf[ddc_fuzz::splitmix(state) % buf.size()] =
            static_cast<std::uint8_t>(ddc_fuzz::splitmix(state));
      }
      break;
    case 2:  // insert byte
      if (buf.size() < max_len) {
        buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(
                                     ddc_fuzz::splitmix(state) %
                                     (buf.size() + 1)),
                   static_cast<std::uint8_t>(ddc_fuzz::splitmix(state)));
      }
      break;
    case 3:  // erase byte
      if (!buf.empty()) {
        buf.erase(buf.begin() + static_cast<std::ptrdiff_t>(
                                    ddc_fuzz::splitmix(state) % buf.size()));
      }
      break;
    case 4: {  // duplicate a tail chunk
      if (buf.empty() || buf.size() >= max_len) break;
      const std::size_t from = ddc_fuzz::splitmix(state) % buf.size();
      const std::size_t len =
          std::min(buf.size() - from, max_len - buf.size());
      buf.insert(buf.end(), buf.begin() + static_cast<std::ptrdiff_t>(from),
                 buf.begin() + static_cast<std::ptrdiff_t>(from + len));
      break;
    }
    default:  // truncate
      if (!buf.empty()) {
        buf.resize(ddc_fuzz::splitmix(state) % buf.size());
      }
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t runs = 0;
  std::uint64_t seed = 1;
  std::size_t max_len = 4096;
  std::vector<std::string> corpus_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto num = [&](std::string_view prefix) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    };
    if (arg.rfind("-runs=", 0) == 0) {
      runs = num("-runs=");
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = num("-seed=");
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = static_cast<std::size_t>(num("-max_len="));
    } else if (arg == "-help=1" || arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [-runs=N] [-seed=S] [-max_len=L] <corpus file|dir>...\n"
          "standalone driver (no libFuzzer in toolchain): replays the\n"
          "corpus, then N deterministic mutational iterations.\n",
          argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "fuzz driver: ignoring unknown flag %s\n",
                   argv[i]);
    } else {
      corpus_paths.emplace_back(arg);
    }
  }

  const std::vector<Input> corpus = load_corpus(corpus_paths);
  for (const Input& input : corpus) {
    (void)LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("fuzz driver: replayed %zu corpus input(s)\n", corpus.size());

  std::uint64_t state = seed;
  Input buf;
  for (std::uint64_t i = 0; i < runs; ++i) {
    if (!corpus.empty() && ddc_fuzz::splitmix(state) % 8 != 0) {
      buf = corpus[ddc_fuzz::splitmix(state) % corpus.size()];
    } else {
      buf.clear();
    }
    if (LLVMFuzzerCustomMutator != nullptr &&
        ddc_fuzz::splitmix(state) % 2 == 0) {
      const std::size_t current = buf.size();
      buf.resize(max_len);  // capacity for the mutator to grow into
      const std::size_t n = LLVMFuzzerCustomMutator(
          buf.data(), current, max_len,
          static_cast<unsigned int>(ddc_fuzz::splitmix(state)));
      buf.resize(std::min(n, max_len));
    } else {
      const std::uint64_t stack = 1 + ddc_fuzz::splitmix(state) % 4;
      for (std::uint64_t m = 0; m < stack; ++m) {
        mutate_generic(buf, state, max_len);
      }
    }
    (void)LLVMFuzzerTestOneInput(buf.data(), buf.size());
    if (runs >= 10 && (i + 1) % (runs / 10) == 0) {
      std::printf("fuzz driver: %llu/%llu iterations\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(runs));
      std::fflush(stdout);
    }
  }
  std::printf("fuzz driver: done — %llu mutational iteration(s), no "
              "crashes, seed=%llu\n",
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(seed));
  return 0;
}
