// Deterministic byte consumer for fuzz harnesses.
//
// A minimal FuzzedDataProvider: the harness reads structured decisions
// (op codes, indices, small values) off the front of the fuzzer's byte
// buffer. Every decision is a pure function of the consumed bytes, so a
// crashing input replays exactly and minimizes well. When the buffer
// runs dry every accessor returns zeros — harnesses use `exhausted()`
// to stop cleanly instead.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ddc_fuzz {

class FuzzInput {
 public:
  FuzzInput(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= size_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return size_ - pos_;
  }

  [[nodiscard]] std::uint8_t u8() noexcept {
    if (pos_ >= size_) return 0;
    return data_[pos_++];
  }

  [[nodiscard]] std::uint32_t u32() noexcept {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t u64() noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return v;
  }

  /// Uniform-ish index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept {
    return std::size_t{u8()} % n;
  }

  /// Small bounded double in [-16, 16) with 1/8 resolution — tame
  /// values keep the numerics (Cholesky, angles) well-conditioned so
  /// the fuzzer explores protocol state space, not float overflow.
  [[nodiscard]] double small_value() noexcept {
    return (static_cast<double>(u8()) - 128.0) / 8.0;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// SplitMix64 — the harnesses' own deterministic stream for mutators
/// (kept independent of ddc::stats so harness randomness never couples
/// to library randomness).
inline std::uint64_t splitmix(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace ddc_fuzz
