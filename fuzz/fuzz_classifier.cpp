// Invariant-driven fuzz harness for the classification engine.
//
// The input bytes are interpreted as a little program: a network shape
// (node count, dimension, k, weight resolution) followed by a stream of
// ops (split to a mailbox / deliver a mailbox message / exchange) over
// a set of centroid classifiers with auxiliary tracking enabled. After
// EVERY op the harness collects the Section 6 pool — all collections at
// nodes plus all in-flight messages — and runs the executable proof
// machinery from ddc::audit:
//
//   * exact conservation of weight quanta (the substrate of the proof),
//   * Lemma 1: summary = f(aux) and ‖aux‖₁ = weight per collection,
//   * Lemma 2: maximal reference angles never increase.
//
// Any input that breaks an invariant — or trips a sanitizer, or throws
// ContractViolation out of the engine — aborts with the auditor's
// message. The quanta resolution is deliberately drawn down to 2⁴ so
// the fuzzer hammers the one-quantum re-homing rule (constraint (2) of
// Section 4.1), the engine's trickiest repair path.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <vector>

#include <ddc/audit/auditors.hpp>
#include <ddc/core/classifier.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/partition/greedy.hpp>
#include <ddc/summaries/centroid.hpp>

#include "fuzz_input.hpp"

namespace {

using Policy = ddc::summaries::CentroidPolicy;
using Partition = ddc::partition::GreedyDistancePartition<Policy>;
using Classifier = ddc::core::GenericClassifier<Policy, Partition>;
using Message = Classifier::Message;
using Summary = Policy::Summary;

// Tolerances: Lemma 1 re-derives every summary from scratch, so the
// comparison absorbs the engine's incremental float drift; Lemma 2's
// slack covers acos() jitter in the angle computation.
constexpr double kLemma1Tol = 1e-6;
constexpr double kAngleSlack = 1e-7;
constexpr std::size_t kMaxOps = 48;

struct System {
  std::vector<ddc::linalg::Vector> inputs;
  std::vector<Classifier> nodes;
  std::vector<Message> in_flight;
  std::int64_t expected_quanta = 0;
};

[[nodiscard]] ddc::audit::Pool<Summary> pool_of(const System& sys) {
  return ddc::audit::collect_pool<Summary>(sys.nodes, sys.in_flight);
}

void audit_or_die(const System& sys,
                  ddc::audit::ReferenceAngleMonitor& monitor) {
  const auto pool = pool_of(sys);
  ddc::audit::check_conservation(pool, sys.expected_quanta);
  ddc::audit::check_lemma1<Policy>(pool, sys.inputs,
                                   sys.nodes.front().options().quanta_per_unit,
                                   kLemma1Tol);
  monitor.observe(pool);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ddc_fuzz::FuzzInput in(data, size);

  const std::size_t n = 2 + in.index(6);       // 2..7 nodes
  const std::size_t dim = 1 + in.index(3);     // 1..3 dimensions
  ddc::core::ClassifierOptions options;
  options.k = 1 + in.index(3);                 // 1..3 collections per node
  // Coarse quanta (2⁴..2¹⁰ per unit) make one-quantum collections — and
  // therefore the singleton re-homing rule — common instead of rare.
  options.quanta_per_unit = std::int64_t{1} << (4 + in.index(7));
  options.track_aux = true;
  options.num_nodes = n;

  System sys;
  sys.expected_quanta =
      static_cast<std::int64_t>(n) * options.quanta_per_unit;
  sys.nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ddc::linalg::Vector value(dim);
    for (std::size_t d = 0; d < dim; ++d) value[d] = in.small_value();
    sys.inputs.push_back(value);
    options.node_index = i;
    sys.nodes.emplace_back(value, Partition{}, options);
  }

  ddc::audit::ReferenceAngleMonitor monitor(n, kAngleSlack);
  try {
    audit_or_die(sys, monitor);
    for (std::size_t op = 0; op < kMaxOps && !in.exhausted(); ++op) {
      switch (in.index(3)) {
        case 0: {  // split: a node mails out half of every collection
          Message msg = sys.nodes[in.index(n)].split();
          if (!msg.empty()) sys.in_flight.push_back(std::move(msg));
          break;
        }
        case 1: {  // deliver: any in-flight message, to any node
          if (sys.in_flight.empty()) break;
          const std::size_t at = in.index(sys.in_flight.size());
          Message msg = std::move(sys.in_flight[at]);
          sys.in_flight.erase(sys.in_flight.begin() +
                              static_cast<std::ptrdiff_t>(at));
          sys.nodes[in.index(n)].receive(std::move(msg));
          break;
        }
        default: {  // exchange: split a, deliver straight to b
          const std::size_t a = in.index(n);
          const std::size_t b = in.index(n);
          Message msg = sys.nodes[a].split();
          sys.nodes[b].receive(std::move(msg));
          break;
        }
      }
      audit_or_die(sys, monitor);
    }
  } catch (const ddc::audit::AuditFailure& failure) {
    std::fprintf(stderr, "fuzz_classifier: invariant broken: %s\n",
                 failure.what());
    std::abort();
  } catch (const std::exception& error) {
    // ContractViolation and anything else escaping the engine is a bug:
    // the harness only ever performs legal protocol operations.
    std::fprintf(stderr, "fuzz_classifier: engine threw: %s\n", error.what());
    std::abort();
  }
  return 0;
}
