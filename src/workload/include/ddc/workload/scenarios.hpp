// Workload generators for every evaluation scenario in the paper.
#pragma once

#include <cstddef>
#include <vector>

#include <ddc/linalg/vector.hpp>
#include <ddc/stats/mixture.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::workload {

/// Figure 2 ground truth: three Gaussians in R², shaped like the paper's
/// "sensors on a fence by the woods, right side close to a fire" scenario
/// — x is position along the fence, y is temperature; the rightmost
/// component is hotter with larger temperature variance.
[[nodiscard]] stats::GaussianMixture fig2_mixture();

/// Samples `n` input values (one per node) from a ground-truth mixture.
[[nodiscard]] std::vector<linalg::Vector> sample_inputs(
    const stats::GaussianMixture& truth, std::size_t n, stats::Rng& rng);

/// A Figure 3 / Figure 4 workload instance.
struct OutlierScenario {
  /// One input value per node; good values first, then outliers.
  std::vector<linalg::Vector> inputs;
  /// Ground-truth outlier flags by the paper's f_min rule (density under
  /// the standard normal below 5·10⁻⁵) — note these flags derive from the
  /// *value*, so a tail sample of the good distribution counts as an
  /// outlier and an outlier-distribution sample near the origin does not,
  /// exactly as the paper discusses.
  std::vector<bool> outlier_flags;
  /// The good distribution N((0,0), I).
  stats::Gaussian good;
  /// True mean of the good distribution: (0, 0).
  linalg::Vector true_mean;
};

/// Figure 3 workload: `n_good` samples from N((0,0), I) plus `n_outlier`
/// samples from N((0,Δ), 0.1·I). The paper uses 950 + 50.
[[nodiscard]] OutlierScenario outlier_scenario(double delta, stats::Rng& rng,
                                               std::size_t n_good = 950,
                                               std::size_t n_outlier = 50);

/// The ddcsim/ddcnode "clusters" smoke workload: `n` 1-D values, even
/// node indices ~ N(0, 1), odd ones ~ N(25, 2) — two far-apart clusters
/// any correct classifier must separate. Lives here (not in the tools)
/// so the in-process simulator and the networked daemon generate
/// byte-identical inputs from the same seed and stay comparable.
[[nodiscard]] std::vector<linalg::Vector> two_clusters_inputs(
    std::size_t n, stats::Rng& rng);

/// The introduction's load-balancing scenario: `n` machines whose loads
/// (in [0, 1]) cluster around `low` and `high` (half each, ±`spread`
/// normal jitter, clamped to [0, 1]). Returns 1-D vectors.
[[nodiscard]] std::vector<linalg::Vector> load_balancing_inputs(
    std::size_t n, stats::Rng& rng, double low = 0.10, double high = 0.90,
    double spread = 0.05);

}  // namespace ddc::workload
