#include <ddc/workload/scenarios.hpp>

#include <algorithm>

#include <ddc/common/assert.hpp>
#include <ddc/metrics/outlier_metrics.hpp>

namespace ddc::workload {

using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;
using stats::GaussianMixture;

GaussianMixture fig2_mixture() {
  // Positions x ∈ [0, 10] along the fence; temperatures y in °C.
  // Left and middle sections read ambient temperature; the right section
  // is near the fire — hotter, with larger and correlated variance.
  // The paper's Fig. 2a shows three visibly distinct ellipses; these
  // parameters reproduce that regime (components separated by several
  // standard deviations in at least one coordinate).
  GaussianMixture truth;
  truth.add({0.40, Gaussian(Vector{1.5, 15.0},
                            Matrix{{0.5, 0.1}, {0.1, 1.0}})});
  truth.add({0.35, Gaussian(Vector{5.5, 21.0},
                            Matrix{{0.5, -0.1}, {-0.1, 1.2}})});
  truth.add({0.25, Gaussian(Vector{8.5, 32.0},
                            Matrix{{0.4, 0.6}, {0.6, 9.0}})});
  return truth;
}

std::vector<Vector> sample_inputs(const GaussianMixture& truth, std::size_t n,
                                  stats::Rng& rng) {
  DDC_EXPECTS(n >= 1);
  return truth.sample(rng, n);
}

OutlierScenario outlier_scenario(double delta, stats::Rng& rng,
                                 std::size_t n_good, std::size_t n_outlier) {
  DDC_EXPECTS(n_good >= 1);
  OutlierScenario scenario{
      {}, {}, Gaussian(Vector{0.0, 0.0}, Matrix::identity(2)), Vector{0.0, 0.0}};
  scenario.inputs.reserve(n_good + n_outlier);
  for (std::size_t i = 0; i < n_good; ++i) {
    scenario.inputs.push_back(scenario.good.sample(rng));
  }
  const Gaussian outlier_dist(Vector{0.0, delta},
                              Matrix::identity(2) * 0.1);
  for (std::size_t i = 0; i < n_outlier; ++i) {
    scenario.inputs.push_back(outlier_dist.sample(rng));
  }
  scenario.outlier_flags =
      metrics::flag_outliers(scenario.inputs, scenario.good);
  return scenario;
}

std::vector<Vector> two_clusters_inputs(std::size_t n, stats::Rng& rng) {
  DDC_EXPECTS(n >= 2);
  std::vector<Vector> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{i % 2 == 0 ? rng.normal(0.0, 1.0)
                                       : rng.normal(25.0, 2.0)});
  }
  return inputs;
}

std::vector<Vector> load_balancing_inputs(std::size_t n, stats::Rng& rng,
                                          double low, double high,
                                          double spread) {
  DDC_EXPECTS(n >= 2);
  std::vector<Vector> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double center = i < n / 2 ? low : high;
    const double load = std::clamp(rng.normal(center, spread), 0.0, 1.0);
    inputs.push_back(Vector{load});
  }
  return inputs;
}

}  // namespace ddc::workload
