// Runtime verification of the paper's correctness machinery.
//
// The convergence proof (Section 6) reasons about the *pool* of all
// collections in the system — at nodes AND in transit. These auditors make
// that reasoning executable: a deployment (or a test, or a fuzzer) feeds
// them the pool after every event and they check
//
//   * exact conservation of weight quanta (the substrate of the proof),
//   * Lemma 1: f(aux) = summary and ‖aux‖₁ = weight for every collection,
//   * Lemma 2: the maximal reference angles ϕ_{i,max} never increase.
//
// All auditors throw ddc::audit::AuditFailure with a description of the
// first violated invariant.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <ddc/common/error.hpp>
#include <ddc/core/collection.hpp>
#include <ddc/linalg/vector.hpp>

namespace ddc::audit {

/// An invariant of the protocol was observed broken.
class AuditFailure : public Error {
 public:
  using Error::Error;
};

/// A borrowed view of the system pool: every collection currently held by
/// a node or sitting in a channel.
template <typename Summary>
using Pool = std::vector<const core::Collection<Summary>*>;

/// Collects a pool from node classifications plus in-flight messages.
/// `nodes` is any range of objects exposing `classification()`;
/// `in_flight` is a range of Classification<Summary>.
template <typename Summary, typename Nodes, typename Messages>
[[nodiscard]] Pool<Summary> collect_pool(const Nodes& nodes,
                                         const Messages& in_flight) {
  Pool<Summary> pool;
  for (const auto& node : nodes) {
    for (const auto& c : node.classification()) pool.push_back(&c);
  }
  for (const auto& msg : in_flight) {
    for (const auto& c : msg) pool.push_back(&c);
  }
  return pool;
}

/// Checks exact conservation: the pool's total quanta must equal
/// `expected_quanta` (n × quanta_per_unit in a loss-free system).
template <typename Summary>
void check_conservation(const Pool<Summary>& pool,
                        std::int64_t expected_quanta) {
  std::int64_t total = 0;
  for (const auto* c : pool) total += c->weight.quanta();
  if (total != expected_quanta) {
    throw AuditFailure("conservation violated: pool holds " +
                       std::to_string(total) + " quanta, expected " +
                       std::to_string(expected_quanta));
  }
}

/// Checks Lemma 1 on every collection of the pool: the summary equals f
/// applied to the auxiliary mixture vector (Equation 1) and the weight
/// equals its L1 norm (Equation 2). Requires aux tracking to be enabled.
/// `Policy` must provide summarize_mixture and approx_equal (all shipped
/// policies do).
template <typename Policy>
void check_lemma1(const Pool<typename Policy::Summary>& pool,
                  const std::vector<typename Policy::Value>& inputs,
                  std::int64_t quanta_per_unit, double tol) {
  for (std::size_t idx = 0; idx < pool.size(); ++idx) {
    const auto* c = pool[idx];
    if (!c->aux.has_value()) {
      throw AuditFailure("lemma 1: collection " + std::to_string(idx) +
                         " carries no auxiliary vector");
    }
    const double weight_value = c->weight.value(quanta_per_unit);
    const double aux_norm = linalg::norm1(*c->aux);
    if (std::abs(aux_norm - weight_value) > tol) {
      throw AuditFailure("lemma 1 (eq. 2): ‖aux‖₁ = " +
                         std::to_string(aux_norm) + " but weight = " +
                         std::to_string(weight_value));
    }
    const auto expected = Policy::summarize_mixture(inputs, *c->aux);
    if (!Policy::approx_equal(expected, c->summary, tol)) {
      throw AuditFailure("lemma 1 (eq. 1): summary of collection " +
                         std::to_string(idx) +
                         " does not equal f(aux) within tolerance");
    }
  }
}

/// Tracks the maximal reference angles ϕ_{i,max}(t) across observations
/// and checks Lemma 2's monotone decrease. Feed it the pool after each
/// event (or each round); it throws on the first increase beyond `slack`.
class ReferenceAngleMonitor {
 public:
  /// `num_inputs` is n, the mixture-space dimension; `slack` absorbs
  /// floating-point jitter in the angle computation.
  explicit ReferenceAngleMonitor(std::size_t num_inputs, double slack = 1e-9)
      : previous_(num_inputs, -1.0), slack_(slack) {}

  template <typename Summary>
  void observe(const Pool<Summary>& pool) {
    std::vector<double> current(previous_.size(), 0.0);
    for (const auto* c : pool) {
      if (!c->aux.has_value()) {
        throw AuditFailure("lemma 2: collection carries no auxiliary vector");
      }
      for (std::size_t i = 0; i < previous_.size(); ++i) {
        current[i] = std::max(
            current[i],
            linalg::angle_between(*c->aux,
                                  linalg::unit_vector(previous_.size(), i)));
      }
    }
    for (std::size_t i = 0; i < previous_.size(); ++i) {
      if (previous_[i] >= 0.0 && current[i] > previous_[i] + slack_) {
        throw AuditFailure(
            "lemma 2 violated: ϕ_max for input " + std::to_string(i) +
            " increased from " + std::to_string(previous_[i]) + " to " +
            std::to_string(current[i]));
      }
    }
    previous_ = std::move(current);
  }

  /// Latest observed maxima (−1 before the first observation).
  [[nodiscard]] const std::vector<double>& maxima() const noexcept {
    return previous_;
  }

 private:
  std::vector<double> previous_;
  double slack_;
};

}  // namespace ddc::audit
