#include <ddc/shard/shard_map.hpp>

#include <string>

#include <ddc/common/assert.hpp>
#include <ddc/common/error.hpp>

namespace ddc::shard {

ShardMap::ShardMap(std::size_t num_nodes, ShardId num_shards)
    : num_nodes_(num_nodes),
      num_shards_(num_shards),
      base_(num_shards == 0 ? 0 : num_nodes / num_shards),
      remainder_(num_shards == 0 ? 0 : num_nodes % num_shards) {
  if (num_shards == 0) {
    throw ConfigError("shard: num_shards must be >= 1");
  }
  if (num_nodes < num_shards) {
    throw ConfigError("shard: " + std::to_string(num_shards) +
                      " shards need at least that many nodes, got " +
                      std::to_string(num_nodes));
  }
}

sim::NodeId ShardMap::begin(ShardId s) const {
  DDC_EXPECTS(s < num_shards_);
  const std::size_t extra = s < remainder_ ? s : remainder_;
  return static_cast<sim::NodeId>(s * base_ + extra);
}

sim::NodeId ShardMap::end(ShardId s) const {
  DDC_EXPECTS(s < num_shards_);
  return begin(s) + size(s);
}

std::size_t ShardMap::size(ShardId s) const {
  DDC_EXPECTS(s < num_shards_);
  return base_ + (s < remainder_ ? 1 : 0);
}

ShardId ShardMap::shard_of(sim::NodeId node) const {
  DDC_EXPECTS(node < num_nodes_);
  // The first `remainder_` shards own (base_ + 1) nodes each.
  const std::size_t fat_span = remainder_ * (base_ + 1);
  if (node < fat_span) {
    return static_cast<ShardId>(node / (base_ + 1));
  }
  return static_cast<ShardId>(remainder_ + (node - fat_span) / base_);
}

std::size_t ShardMap::cut_edges(const sim::Topology& topology) const {
  DDC_EXPECTS(topology.num_nodes() == num_nodes_);
  std::size_t cut = 0;
  for (sim::NodeId i = 0; i < num_nodes_; ++i) {
    const ShardId home = shard_of(i);
    for (const sim::NodeId j : topology.neighbors(i)) {
      if (shard_of(j) != home) ++cut;
    }
  }
  return cut;
}

}  // namespace ddc::shard
