#include <ddc/shard/shard_map.hpp>

#include <algorithm>
#include <string>

#include <ddc/common/assert.hpp>
#include <ddc/common/error.hpp>

namespace ddc::shard {

namespace {

void validate_spec(std::size_t num_nodes, ShardId num_shards) {
  if (num_shards == 0) {
    throw ConfigError("shard: num_shards must be >= 1");
  }
  if (num_nodes < num_shards) {
    throw ConfigError("shard: " + std::to_string(num_shards) +
                      " shards need at least that many nodes, got " +
                      std::to_string(num_nodes));
  }
}

std::vector<ShardId> contiguous_owner(std::size_t num_nodes,
                                      ShardId num_shards) {
  validate_spec(num_nodes, num_shards);
  const std::size_t base = num_nodes / num_shards;
  const std::size_t remainder = num_nodes % num_shards;
  std::vector<ShardId> owner(num_nodes);
  std::size_t next = 0;
  for (ShardId s = 0; s < num_shards; ++s) {
    const std::size_t count = base + (s < remainder ? 1 : 0);
    for (std::size_t k = 0; k < count; ++k) owner[next++] = s;
  }
  return owner;
}

std::size_t cut_of(const sim::Topology& topology,
                   const std::vector<ShardId>& owner) {
  std::size_t cut = 0;
  for (sim::NodeId i = 0; i < owner.size(); ++i) {
    for (const sim::NodeId j : topology.neighbors(i)) {
      if (owner[j] != owner[i]) ++cut;
    }
  }
  return cut;
}

}  // namespace

std::string_view partitioner_name(Partitioner p) noexcept {
  switch (p) {
    case Partitioner::contiguous:
      return "contiguous";
    case Partitioner::edgecut:
      return "edgecut";
  }
  return "contiguous";
}

Partitioner parse_partitioner(std::string_view name) {
  if (name == "contiguous") return Partitioner::contiguous;
  if (name == "edgecut") return Partitioner::edgecut;
  throw ConfigError("shard: unknown partitioner '" + std::string(name) +
                    "' (expected contiguous|edgecut)");
}

ShardMap::ShardMap(std::size_t num_nodes, ShardId num_shards)
    : ShardMap(num_nodes, num_shards, Partitioner::contiguous,
               contiguous_owner(num_nodes, num_shards)) {}

ShardMap::ShardMap(std::size_t num_nodes, ShardId num_shards,
                   Partitioner partitioner, std::vector<ShardId> owner)
    : num_nodes_(num_nodes),
      num_shards_(num_shards),
      partitioner_(partitioner),
      owner_(std::move(owner)),
      local_(num_nodes),
      owned_begin_(static_cast<std::size_t>(num_shards) + 1, 0) {
  DDC_EXPECTS(owner_.size() == num_nodes_);
  for (const ShardId s : owner_) {
    DDC_EXPECTS(s < num_shards_);
    ++owned_begin_[static_cast<std::size_t>(s) + 1];
  }
  for (ShardId s = 0; s < num_shards_; ++s) {
    owned_begin_[static_cast<std::size_t>(s) + 1] += owned_begin_[s];
  }
  owned_flat_.resize(num_nodes_);
  std::vector<std::size_t> cursor(owned_begin_.begin(), owned_begin_.end() - 1);
  for (sim::NodeId i = 0; i < num_nodes_; ++i) {
    const ShardId s = owner_[i];
    const std::size_t pos = cursor[s]++;
    owned_flat_[pos] = i;  // ids land ascending within each shard
    local_[i] = pos - owned_begin_[s];
  }
}

ShardMap ShardMap::make(Partitioner partitioner, const sim::Topology& topology,
                        ShardId num_shards) {
  const std::size_t n = topology.num_nodes();
  if (partitioner == Partitioner::contiguous) {
    return ShardMap(n, num_shards);
  }
  validate_spec(n, num_shards);
  // BFS balls lose to contiguous bands on a few shapes (short-and-wide
  // grids, rings where contiguous arcs are already optimal). Keep the
  // grown assignment only when it strictly wins, so
  // cut_edges(edgecut) <= cut_edges(contiguous) holds unconditionally —
  // both candidates are deterministic, so the choice is too.
  std::vector<ShardId> grown = grow_edgecut(topology, num_shards);
  std::vector<ShardId> contig = contiguous_owner(n, num_shards);
  if (cut_of(topology, grown) >= cut_of(topology, contig)) {
    grown = std::move(contig);
  }
  return ShardMap(n, num_shards, Partitioner::edgecut, std::move(grown));
}

std::vector<ShardId> ShardMap::grow_edgecut(const sim::Topology& topology,
                                            ShardId num_shards) {
  const std::size_t n = topology.num_nodes();
  const ShardId kFree = num_shards;  // sentinel: not yet assigned
  std::vector<ShardId> owner(n, kFree);
  const std::size_t base = n / num_shards;
  const std::size_t remainder = n % num_shards;

  // Phase 1 — seeded FIFO BFS growth: shard s absorbs a breadth-first
  // ball of its target size, seeded at the smallest unassigned id and
  // re-seeded there whenever the frontier runs dry (disconnected
  // remainders). FIFO order keeps the ball round; greedy max-gain
  // growth would degenerate back into row bands on grids.
  std::vector<sim::NodeId> queue;
  sim::NodeId next_seed = 0;
  for (ShardId s = 0; s < num_shards; ++s) {
    const std::size_t target = base + (s < remainder ? 1 : 0);
    queue.clear();
    std::size_t head = 0;
    std::size_t taken = 0;
    while (taken < target) {
      if (head == queue.size()) {
        while (owner[next_seed] != kFree) ++next_seed;
        owner[next_seed] = s;
        queue.push_back(next_seed);
        ++taken;
        continue;
      }
      const sim::NodeId u = queue[head++];
      for (const sim::NodeId v : topology.neighbors(u)) {
        if (owner[v] != kFree) continue;
        owner[v] = s;
        queue.push_back(v);
        if (++taken == target) break;
      }
    }
  }

  // Phase 2 — bounded greedy refinement: sweep nodes in ascending id
  // order; move a node to a neighboring shard when that strictly
  // reduces the cut, or keeps it equal while lowering the owning shard
  // id (zero-gain drift — it lets boundaries slide off locally-optimal
  // ridges). Every accepted move strictly decreases the pair
  // (cut, Σ owner ids) lexicographically, so sweeps cannot cycle; the
  // pass bound just caps the cost. Shard sizes stay within ±slack of
  // the BFS targets and never reach zero.
  std::vector<std::size_t> sizes(num_shards, 0);
  for (const ShardId s : owner) ++sizes[s];
  const std::size_t slack = std::max<std::size_t>(1, base / 8);
  std::vector<std::size_t> links(num_shards, 0);
  std::vector<ShardId> touched;
  constexpr int kRefinePasses = 8;
  for (int pass = 0; pass < kRefinePasses; ++pass) {
    bool moved = false;
    // i starts at 1: global node 0 is pinned to shard 0 (BFS seeds it
    // there), so shard 0's first owned node is always node 0 — the
    // RESULT-line reporting anchor ddcnode/run_cluster.sh compare
    // against ddcsim.
    for (sim::NodeId i = 1; i < n; ++i) {
      const ShardId s = owner[i];
      const std::size_t target_s = base + (s < remainder ? 1 : 0);
      const std::size_t floor_s =
          target_s > slack ? std::max<std::size_t>(target_s - slack, 1) : 1;
      if (sizes[s] <= floor_s) continue;
      touched.clear();
      std::size_t here = 0;
      for (const sim::NodeId j : topology.neighbors(i)) {
        const ShardId t = owner[j];
        if (t == s) {
          ++here;
          continue;
        }
        if (links[t]++ == 0) touched.push_back(t);
      }
      bool found = false;
      ShardId best = 0;
      std::size_t best_links = 0;
      for (const ShardId t : touched) {
        const std::size_t cap = base + (t < remainder ? 1 : 0) + slack;
        if (sizes[t] >= cap) continue;
        if (links[t] < here || (links[t] == here && t > s)) continue;
        if (!found || links[t] > best_links ||
            (links[t] == best_links && t < best)) {
          found = true;
          best = t;
          best_links = links[t];
        }
      }
      for (const ShardId t : touched) links[t] = 0;
      if (!found) continue;
      owner[i] = best;
      --sizes[s];
      ++sizes[best];
      moved = true;
    }
    if (!moved) break;
  }
  return owner;
}

std::span<const sim::NodeId> ShardMap::owned(ShardId s) const {
  DDC_EXPECTS(s < num_shards_);
  return {owned_flat_.data() + owned_begin_[s],
          owned_begin_[static_cast<std::size_t>(s) + 1] - owned_begin_[s]};
}

std::size_t ShardMap::size(ShardId s) const {
  DDC_EXPECTS(s < num_shards_);
  return owned_begin_[static_cast<std::size_t>(s) + 1] - owned_begin_[s];
}

ShardId ShardMap::shard_of(sim::NodeId node) const {
  DDC_EXPECTS(node < num_nodes_);
  return owner_[node];
}

std::size_t ShardMap::local_index(sim::NodeId node) const {
  DDC_EXPECTS(node < num_nodes_);
  return local_[node];
}

sim::NodeId ShardMap::begin(ShardId s) const {
  DDC_EXPECTS(s < num_shards_);
  DDC_EXPECTS(partitioner_ == Partitioner::contiguous);
  return owned_flat_[owned_begin_[s]];
}

sim::NodeId ShardMap::end(ShardId s) const { return begin(s) + size(s); }

std::size_t ShardMap::cut_edges(const sim::Topology& topology) const {
  std::size_t cut = 0;
  for (ShardId s = 0; s < num_shards_; ++s) cut += cut_edges(topology, s);
  return cut;
}

std::size_t ShardMap::cut_edges(const sim::Topology& topology,
                                ShardId s) const {
  DDC_EXPECTS(topology.num_nodes() == num_nodes_);
  DDC_EXPECTS(s < num_shards_);
  std::size_t cut = 0;
  for (const sim::NodeId i : owned(s)) {
    for (const sim::NodeId j : topology.neighbors(i)) {
      if (owner_[j] != s) ++cut;
    }
  }
  return cut;
}

}  // namespace ddc::shard
