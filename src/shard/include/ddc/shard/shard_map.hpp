// Deterministic node→shard ownership map for the sharded cluster engine.
//
// The cluster decomposes a Topology owner-computes style (the MPI
// decomposition of the d2-kmeans lineage). Every shard derives the SAME
// map from the same spec — (partitioner, topology, num_shards) — so no
// lookup tables ever cross the wire, and because all protocol draws are
// keyed off GLOBAL node ids plus the global env-stream replay, any
// ownership map yields bit-identical classification to the monolithic
// engine at any shard count. Two partitioners:
//
//  - contiguous (default): balanced contiguous ranges of global ids, the
//    first `num_nodes % num_shards` shards one node fatter. O(1) memory
//    in principle; shard_of() is a division. Pessimal cut for
//    geometric/ER node orderings (ids carry no locality there).
//  - edgecut: seeded FIFO BFS growth over the CSR topology (shard s
//    absorbs a breadth-first ball of its target size starting from the
//    smallest unassigned id) followed by bounded greedy refinement
//    sweeps. Same balance (±kBalanceSlack per shard), far fewer cut
//    edges on grid/geometric/ER where BFS balls are compact.
//
// Either way the map materializes owner/local-index tables plus a CSR of
// owned ids per shard, so engines address per-node state through
// owned(s)/local_index(i) and never assume contiguity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include <ddc/sim/topology.hpp>

namespace ddc::shard {

using ShardId = std::uint32_t;

/// Node→shard assignment strategy. Every shard of a cluster must use the
/// same partitioner (the map is recomputed locally, never transmitted).
enum class Partitioner : std::uint8_t {
  contiguous,  ///< balanced contiguous global-id ranges
  edgecut,     ///< BFS growth + refinement minimizing cross-shard edges
};

/// Canonical flag spelling ("contiguous" / "edgecut").
[[nodiscard]] std::string_view partitioner_name(Partitioner p) noexcept;

/// Parses the canonical spelling; throws ddc::ConfigError otherwise.
[[nodiscard]] Partitioner parse_partitioner(std::string_view name);

/// Deterministic ownership map of [0, num_nodes) across num_shards
/// shards: every node owned by exactly one shard, shard sizes balanced,
/// identical on every shard constructed from the same spec.
class ShardMap {
 public:
  /// Balanced contiguous partition (Partitioner::contiguous). Throws
  /// ddc::ConfigError unless 1 <= num_shards <= num_nodes.
  ShardMap(std::size_t num_nodes, ShardId num_shards);

  /// Builds the map for the requested partitioner. `contiguous` ignores
  /// the topology's edges; `edgecut` grows BFS balls over them.
  [[nodiscard]] static ShardMap make(Partitioner partitioner,
                                     const sim::Topology& topology,
                                     ShardId num_shards);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] ShardId num_shards() const noexcept { return num_shards_; }
  [[nodiscard]] Partitioner partitioner() const noexcept {
    return partitioner_;
  }

  /// Global node ids owned by shard s, ascending. Valid while the map
  /// lives.
  [[nodiscard]] std::span<const sim::NodeId> owned(ShardId s) const;
  /// Number of nodes shard s owns.
  [[nodiscard]] std::size_t size(ShardId s) const;
  /// The shard owning global node id `node`.
  [[nodiscard]] ShardId shard_of(sim::NodeId node) const;
  /// Position of `node` within owned(shard_of(node)) — the index engines
  /// use for per-node local state.
  [[nodiscard]] std::size_t local_index(sim::NodeId node) const;

  /// First global node id owned by shard s. Contiguous maps only.
  [[nodiscard]] sim::NodeId begin(ShardId s) const;
  /// One past the last global node id owned by shard s. Contiguous only.
  [[nodiscard]] sim::NodeId end(ShardId s) const;

  /// Cross-shard directed edge count of `topology` under this map — the
  /// traffic the cluster pushes through Transport (each undirected edge
  /// counts twice, matching the two records it can carry per round).
  [[nodiscard]] std::size_t cut_edges(const sim::Topology& topology) const;
  /// Directed owned→remote edges of shard s alone.
  [[nodiscard]] std::size_t cut_edges(const sim::Topology& topology,
                                      ShardId s) const;

 private:
  ShardMap(std::size_t num_nodes, ShardId num_shards, Partitioner partitioner,
           std::vector<ShardId> owner);

  static std::vector<ShardId> grow_edgecut(const sim::Topology& topology,
                                           ShardId num_shards);

  std::size_t num_nodes_;
  ShardId num_shards_;
  Partitioner partitioner_;
  std::vector<ShardId> owner_;            // node -> owning shard
  std::vector<std::size_t> local_;        // node -> index in owner's list
  std::vector<sim::NodeId> owned_flat_;   // CSR values: owned ids per shard
  std::vector<std::size_t> owned_begin_;  // CSR offsets, num_shards + 1
};

}  // namespace ddc::shard
