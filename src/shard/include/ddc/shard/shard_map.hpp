// Deterministic node→shard partition for the sharded cluster engine.
//
// The cluster decomposes a Topology owner-computes style (the MPI
// decomposition of the d2-kmeans lineage): shard s owns one contiguous
// range of global node ids, every shard derives the SAME map from
// (num_nodes, num_shards) alone, and ranges differ in size by at most
// one node. Contiguity keeps the map O(1) in memory and makes
// shard_of() a division — no lookup tables to distribute.
#pragma once

#include <cstddef>
#include <cstdint>

#include <ddc/sim/topology.hpp>

namespace ddc::shard {

using ShardId = std::uint32_t;

/// Balanced contiguous partition of [0, num_nodes) into num_shards
/// ranges. The first `num_nodes % num_shards` shards get one extra node.
class ShardMap {
 public:
  /// Throws ddc::ConfigError unless 1 <= num_shards <= num_nodes.
  ShardMap(std::size_t num_nodes, ShardId num_shards);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] ShardId num_shards() const noexcept { return num_shards_; }

  /// First global node id owned by shard s.
  [[nodiscard]] sim::NodeId begin(ShardId s) const;
  /// One past the last global node id owned by shard s.
  [[nodiscard]] sim::NodeId end(ShardId s) const;
  /// Number of nodes shard s owns.
  [[nodiscard]] std::size_t size(ShardId s) const;
  /// The shard owning global node id `node`.
  [[nodiscard]] ShardId shard_of(sim::NodeId node) const;

  /// Cross-shard edge count of `topology` under this map — the traffic
  /// the cluster pushes through Transport (diagnostics/benchmarks).
  [[nodiscard]] std::size_t cut_edges(const sim::Topology& topology) const;

 private:
  std::size_t num_nodes_;
  ShardId num_shards_;
  std::size_t base_;       // num_nodes / num_shards
  std::size_t remainder_;  // num_nodes % num_shards
};

}  // namespace ddc::shard
