// Factory helpers for sharded runs, mirroring gossip/runners.hpp.
//
// The node-construction discipline is the load-bearing part: a shard
// builds ONLY its owned range, but every per-node stream derives from
// the protocol seed by GLOBAL node id — exactly what
// gossip::make_*_nodes does for the monolithic engines — so a node's
// randomness does not depend on which shard hosts it, and the
// equivalence matrix (1 vs S shards) can demand bit-identical states.
#pragma once

#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/gossip/classifier_node.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/gossip/runners.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/net/codec.hpp>
#include <ddc/net/transport.hpp>
#include <ddc/shard/cluster.hpp>
#include <ddc/shard/shard_engine.hpp>
#include <ddc/shard/shard_map.hpp>
#include <ddc/sim/engine_config.hpp>

namespace ddc::shard {

using GmCodec = net::ClassificationCodec<stats::Gaussian>;
using CentroidCodec = net::ClassificationCodec<linalg::Vector>;
using GmShardEngine = ShardEngine<gossip::GmNode, GmCodec>;
using CentroidShardEngine = ShardEngine<gossip::CentroidNode, CentroidCodec>;
using GmShardCluster = ShardCluster<gossip::GmNode, GmCodec>;
using CentroidShardCluster = ShardCluster<gossip::CentroidNode, CentroidCodec>;

/// The simulation slice of an EngineConfig as ShardEngineOptions (the
/// exchange-pacing knobs keep their defaults; set them afterwards).
[[nodiscard]] inline ShardEngineOptions shard_options(
    const sim::EngineConfig& config) {
  ShardEngineOptions options;
  options.selection = config.selection;
  options.pattern = config.pattern;
  options.seed = config.seed;
  options.crash_probability = config.faults.crash_probability;
  options.crash_send_policy = config.faults.crash_send_policy;
  options.message_loss_probability = config.faults.message_loss_probability;
  options.parallelism = config.parallelism;
  return options;
}

/// GM nodes for the owned set map.owned(s) of a global input set, with
/// per-node streams derived by global id.
[[nodiscard]] inline std::vector<gossip::GmNode> make_gm_shard_nodes(
    const std::vector<linalg::Vector>& inputs,
    const gossip::NetworkConfig& net, const ShardMap& map, ShardId s,
    em::ReductionOptions reduction = {}) {
  DDC_EXPECTS(inputs.size() == map.num_nodes());
  std::vector<gossip::GmNode> nodes;
  nodes.reserve(map.size(s));
  for (const sim::NodeId i : map.owned(s)) {
    nodes.emplace_back(
        inputs[i],
        partition::EmPartition(stats::Rng::derive(net.seed, i), reduction),
        gossip::node_options(net, i, inputs.size()));
  }
  return nodes;
}

/// Centroid nodes for the owned set (see make_gm_shard_nodes).
[[nodiscard]] inline std::vector<gossip::CentroidNode>
make_centroid_shard_nodes(const std::vector<linalg::Vector>& inputs,
                          const gossip::NetworkConfig& net, const ShardMap& map,
                          ShardId s) {
  DDC_EXPECTS(inputs.size() == map.num_nodes());
  std::vector<gossip::CentroidNode> nodes;
  nodes.reserve(map.size(s));
  for (const sim::NodeId i : map.owned(s)) {
    nodes.emplace_back(
        inputs[i],
        partition::GreedyDistancePartition<summaries::CentroidPolicy>{},
        gossip::node_options(net, i, inputs.size()));
  }
  return nodes;
}

/// Exchange-pacing and partitioning knobs an engine factory copies out
/// of the caller's options_override (the simulation slice always comes
/// from the EngineConfig).
[[nodiscard]] inline ShardEngineOptions merge_exchange_options(
    const sim::EngineConfig& config,
    const ShardEngineOptions& options_override) {
  ShardEngineOptions options = shard_options(config);
  options.resend_interval_polls = options_override.resend_interval_polls;
  options.max_exchange_polls = options_override.max_exchange_polls;
  options.idle = options_override.idle;
  options.partitioner = options_override.partitioner;
  options.overlap_chunk = options_override.overlap_chunk;
  options.testing_suppress_empty_barrier_retransmit =
      options_override.testing_suppress_empty_barrier_retransmit;
  return options;
}

/// One shard of a GM cluster over `transport` (peer ids = shard ids;
/// null only when num_shards == 1).
[[nodiscard]] inline GmShardEngine make_gm_shard_engine(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const sim::EngineConfig& config, ShardId shard_id, ShardId num_shards,
    net::Transport* transport, ShardEngineOptions options_override = {},
    const em::ReductionOptions& reduction = {}) {
  const ShardMap map =
      ShardMap::make(options_override.partitioner, topology, num_shards);
  ShardEngineOptions options = merge_exchange_options(config, options_override);
  return GmShardEngine(
      std::move(topology), map, shard_id,
      make_gm_shard_nodes(inputs, gossip::network_config(config), map,
                          shard_id, reduction),
      transport, std::move(options));
}

/// One shard of a centroid cluster (see make_gm_shard_engine).
[[nodiscard]] inline CentroidShardEngine make_centroid_shard_engine(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const sim::EngineConfig& config, ShardId shard_id, ShardId num_shards,
    net::Transport* transport, ShardEngineOptions options_override = {}) {
  const ShardMap map =
      ShardMap::make(options_override.partitioner, topology, num_shards);
  ShardEngineOptions options = merge_exchange_options(config, options_override);
  return CentroidShardEngine(
      std::move(topology), map, shard_id,
      make_centroid_shard_nodes(inputs, gossip::network_config(config), map,
                                shard_id),
      transport, std::move(options));
}

/// A whole in-process GM cluster over a loopback fabric.
[[nodiscard]] inline GmShardCluster make_gm_shard_cluster(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const sim::EngineConfig& config, ShardId num_shards,
    net::LoopbackOptions net_options = {},
    const em::ReductionOptions& reduction = {},
    Partitioner partitioner = Partitioner::contiguous) {
  ShardEngineOptions options = shard_options(config);
  options.partitioner = partitioner;
  return GmShardCluster(
      std::move(topology),
      gossip::make_gm_nodes(inputs, gossip::network_config(config), reduction),
      num_shards, std::move(options), net_options);
}

/// A whole in-process centroid cluster over a loopback fabric.
[[nodiscard]] inline CentroidShardCluster make_centroid_shard_cluster(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const sim::EngineConfig& config, ShardId num_shards,
    net::LoopbackOptions net_options = {},
    Partitioner partitioner = Partitioner::contiguous) {
  ShardEngineOptions options = shard_options(config);
  options.partitioner = partitioner;
  return CentroidShardCluster(
      std::move(topology),
      gossip::make_centroid_nodes(inputs, gossip::network_config(config)),
      num_shards, std::move(options), net_options);
}

}  // namespace ddc::shard
