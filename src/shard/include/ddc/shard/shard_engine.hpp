// Sharded cluster engine: thousands of nodes per process, batched
// cross-shard gossip over Transport.
//
// A ShardEngine is one process's slice of a round-based simulation. The
// global Topology is split by a ShardMap (contiguous ranges or the
// edge-cut-aware BFS partitioner — see shard_map.hpp); this engine owns
// the node objects of ONE shard, replays the round phases of
// sim::RoundRunner for them, and exchanges the messages that cross a
// shard boundary through a net::Transport — all of one round's
// cross-shard messages to a given peer packed into a single
// wire::FrameKind::batch frame (encode_batch), acknowledged and
// retransmitted until delivered, with one batch per peer per round
// acting as the round barrier (an empty batch is the barrier token).
//
// Compute/communication overlap: begin_round() splits the owned nodes
// into BOUNDARY (this round's plan moves one of their messages across a
// shard edge) and INTERIOR sets, prepares the boundary first, flushes
// the batch frames immediately, then prepares the interior in chunks
// with transport polls in between — peers' frames are on the wire (and
// being serviced) while the bulk of prepare still runs, instead of the
// exchange starting only after all compute. Per-node prepare draws are
// node-local (the same reason prepare may run under parallel_for), so
// the boundary-first order cannot perturb any stream.
//
// Determinism: a 1-shard run, an S-shard loopback run and an S-process
// UDP run of the same EngineConfig produce bit-identical node states.
// The argument (DESIGN.md "Sharded cluster engine"):
//
//  * Every environment draw (neighbor selection, crash bernoullis) is
//    replayed IDENTICALLY on every shard: each engine carries the full
//    global alive vector and selector state and walks all n nodes in
//    the plan/crash phases, consuming exactly RoundRunner's draws. The
//    alive vector evolves as a pure function of the seed, so replicas
//    never diverge.
//  * Node-local randomness derives from the protocol seed by GLOBAL
//    node id (gossip::make_*_nodes discipline), so a node's stream does
//    not depend on which shard hosts it.
//  * Channel loss cannot use RoundRunner's sequential loss stream (its
//    draw count depends on message emptiness, which is unknowable for
//    remote senders), so the engine derives a STATELESS per-message
//    verdict from (loss seed, round, initiator, direction). Lossy runs
//    are therefore bit-identical across shard counts, but sample a
//    different (equally distributed) loss pattern than RoundRunner;
//    lossless runs match RoundRunner exactly.
//
// The engine is stepped — begin_round() sends, try_complete_round()
// polls — so a single thread can drive S in-process engines (see
// ShardCluster); run_round() wraps the two for one-engine-per-process
// drivers like ddcnode. All exchange pacing is poll-counted, never
// wall-clock, to keep the deterministic core clock-free.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/exec/parallel_for.hpp>
#include <ddc/exec/thread_pool.hpp>
#include <ddc/net/transport.hpp>
#include <ddc/shard/shard_map.hpp>
#include <ddc/sim/gossip_node.hpp>
#include <ddc/sim/neighbor_selection.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/stats/rng.hpp>
#include <ddc/wire/framing.hpp>

namespace ddc::shard {

/// Configuration of a shard engine. The simulation fields mirror
/// RoundRunnerOptions; the exchange fields pace the batch protocol in
/// transport polls (poll = one try_complete_round() that did not finish
/// the round).
struct ShardEngineOptions : sim::CommonRunnerOptions {
  double crash_probability = 0.0;
  sim::CrashSendPolicy crash_send_policy = sim::CrashSendPolicy::avoid_crashed;
  /// Per-message loss verdicts are hashed from (seed, round, initiator,
  /// direction) — see the determinism note in the header comment.
  double message_loss_probability = 0.0;
  /// Worker threads for the owned range's prepare/absorb phases
  /// (1 sequential, 0 hardware concurrency; bit-identical either way).
  std::size_t parallelism = 1;
  /// Unacked batches are retransmitted every this many polls.
  std::size_t resend_interval_polls = 64;
  /// After this many polls without a peer's batch or ack, the whole peer
  /// shard is declared dead and the round proceeds without it. 0 waits
  /// forever (in-process clusters, where a missing frame is a bug).
  std::size_t max_exchange_polls = 0;
  /// Node→shard assignment strategy; consumed by the factories and
  /// ShardCluster when they build the ShardMap (the engine itself takes
  /// whatever map it is handed).
  Partitioner partitioner = Partitioner::contiguous;
  /// Interior nodes prepared between two transport polls during the
  /// overlap schedule. 0 disables mid-compute polling (one block).
  std::size_t overlap_chunk = 512;
  /// Called by run_round() between unsuccessful polls — the driver's
  /// pump (LoopbackNetwork::advance, UdpTransport::maintain + sleep).
  std::function<void()> idle;
  /// TESTING ONLY — re-enables a historic bug class for the schedule
  /// explorer's planted-bug self-test: when set, empty batches (bare
  /// barrier tokens) are never retransmitted, so a dropped barrier
  /// deadlocks the round. Production code must leave this false.
  bool testing_suppress_empty_barrier_retransmit = false;
};

/// Counters of the batch exchange, for soak assertions and benchmarks.
struct ShardEngineStats {
  std::uint64_t batch_frames_sent = 0;
  std::uint64_t batch_records_sent = 0;
  std::uint64_t batch_frames_received = 0;
  std::uint64_t batch_records_received = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t peer_timeouts = 0;
  /// Records that did not match the local replay of the global plan
  /// (only possible after a peer restarted from scratch).
  std::uint64_t unplanned_records = 0;
  /// Directed owned→remote edges of this shard's map slice (constant
  /// per run; the traffic ceiling the partitioner bought).
  std::uint64_t cut_edges = 0;
  /// Owned nodes classified boundary, summed over rounds.
  std::uint64_t boundary_nodes = 0;
  /// Transport polls serviced inside the prepare phase (overlap wins).
  std::uint64_t polls_during_compute = 0;
};

/// One process's shard of a round-based gossip simulation. `Codec`
/// encodes Node::Message payloads for the wire (net/codec.hpp shapes).
template <sim::GossipNode Node, typename Codec>
class ShardEngine {
 public:
  using Message = typename Node::Message;

  /// Takes ownership of shard `shard_id`'s node objects (`owned_nodes`
  /// must hold map.size(shard_id) nodes in map.owned(shard_id) order —
  /// ascending global id). `transport` is borrowed, must outlive the
  /// engine, and may be null only for a 1-shard map; its peer ids are
  /// shard ids.
  ShardEngine(sim::Topology topology, ShardMap map, ShardId shard_id,
              std::vector<Node> owned_nodes, net::Transport* transport,
              ShardEngineOptions options = {})
      : topology_(std::move(topology)),
        map_(map),
        shard_(shard_id),
        nodes_(std::move(owned_nodes)),
        options_(std::move(options)),
        env_rng_(stats::Rng::derive(options_.seed, 0x524e445255ULL)),
        loss_seed_(stats::derive_seed(options_.seed, 0x4c4f5353ULL)),
        transport_(transport),
        alive_(map_.num_nodes(), true),
        selector_(options_.selection, map_.num_nodes()),
        targets_(map_.num_nodes()),
        reply_requests_(map_.num_nodes()),
        replies_(map_.num_nodes()),
        outbox_(nodes_.size()),
        inbox_(nodes_.size()),
        peers_(map_.num_shards()) {
    DDC_EXPECTS(shard_ < map_.num_shards());
    DDC_EXPECTS(topology_.num_nodes() == map_.num_nodes());
    DDC_EXPECTS(nodes_.size() == map_.size(shard_));
    DDC_EXPECTS(map_.num_shards() == 1 ||
                (transport_ != nullptr &&
                 transport_->num_peers() == map_.num_shards() &&
                 transport_->self() == shard_));
    DDC_EXPECTS(options_.crash_probability >= 0.0 &&
                options_.crash_probability <= 1.0);
    DDC_EXPECTS(options_.message_loss_probability >= 0.0 &&
                options_.message_loss_probability <= 1.0);
    const std::size_t threads = options_.parallelism == 0
                                    ? exec::ThreadPool::hardware_threads()
                                    : options_.parallelism;
    if (threads > 1) {
      pool_ = std::make_unique<exec::ThreadPool>(threads - 1);
    }
    stats_.cut_edges = map_.cut_edges(topology_, shard_);
  }

  /// Plans the round (global replay), prepares the owned boundary nodes,
  /// ships this round's batch to every peer, then prepares the interior
  /// with transport polls interleaved. Follow with try_complete_round().
  // ddcverify: hotpath
  void begin_round() {
    DDC_EXPECTS(!round_open_);
    plan_targets();
    classify_boundary();
    const std::size_t n = map_.num_nodes();
    for (sim::NodeId i = 0; i < n; ++i) replies_[i].reset();
    for (std::size_t j = 0; j < nodes_.size(); ++j) outbox_[j].reset();
    prepare_nodes(boundary_js_);
    send_batches();  // only reads boundary nodes' outbox_/replies_ slots
    const bool overlap = map_.num_shards() > 1 && options_.overlap_chunk > 0;
    const std::size_t chunk =
        overlap ? options_.overlap_chunk : interior_js_.size();
    const std::span<const std::size_t> interior(interior_js_);
    for (std::size_t off = 0; off < interior.size(); off += chunk) {
      const std::size_t len = std::min(chunk, interior.size() - off);
      prepare_nodes(interior.subspan(off, len));
      if (overlap && off + len < interior.size()) {
        pump_transport();
        ++stats_.polls_during_compute;
      }
    }
    polls_this_round_ = 0;
    round_open_ = true;
  }

  /// Polls the transport once; when every peer's round batch has arrived
  /// (or the peer timed out / moved ahead) and every own batch is acked,
  /// finishes the round (deliver, absorb, crash draws) and returns true.
  // ddcverify: hotpath
  [[nodiscard]] bool try_complete_round() {
    DDC_EXPECTS(round_open_);
    if (map_.num_shards() > 1) {
      pump_transport();
      if (!barrier_reached()) {
        ++polls_this_round_;
        maybe_retransmit();
        maybe_expire_peers();
        if (!barrier_reached()) return false;
      }
    }
    deliver_messages();
    absorb_inboxes();
    apply_crashes();
    // Retire this round's exchange state BEFORE advancing the round
    // counter, so batches for the next round arriving early (via
    // service() between rounds, or the next round's polls) land in a
    // clean slot instead of being mistaken for stale state.
    for (PeerState& peer : peers_) {
      peer.records.clear();
      peer.got_batch = false;
      peer.acked = false;
    }
    ++round_;
    round_open_ = false;
    return true;
  }

  /// Services the exchange without advancing the round: drains the
  /// transport, re-acks retransmitted batches and buffers early ones.
  /// Call between rounds (and after the last round, so slower peers
  /// blocked on this shard's acks can finish — see ShardCluster).
  void service() {
    if (map_.num_shards() > 1) pump_transport();
  }

  /// Blocking round: begin + poll (calling options.idle between polls)
  /// until the barrier resolves. With max_exchange_polls > 0 this always
  /// terminates — silent peers get declared dead.
  void run_round() {
    begin_round();
    while (!try_complete_round()) {
      if (options_.idle) options_.idle();
    }
  }

  void run_rounds(std::size_t count) {
    for (std::size_t r = 0; r < count; ++r) run_round();
  }

  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] ShardId shard_id() const noexcept { return shard_; }
  [[nodiscard]] const ShardMap& map() const noexcept { return map_; }
  [[nodiscard]] const sim::Topology& topology() const noexcept {
    return topology_;
  }
  /// The owned node objects, local index = map().local_index(global id).
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::vector<Node>& nodes() noexcept { return nodes_; }
  [[nodiscard]] const ShardEngineStats& stats() const noexcept {
    return stats_;
  }

  [[nodiscard]] bool alive(sim::NodeId i) const {
    DDC_EXPECTS(i < alive_.size());
    return alive_[i];
  }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    std::size_t count = 0;
    for (const bool a : alive_) count += a ? 1 : 0;
    return count;
  }
  /// False once `s` timed out of the barrier (cleared if it resurfaces).
  [[nodiscard]] bool peer_shard_alive(ShardId s) const {
    DDC_EXPECTS(s < peers_.size());
    return !peers_[s].dead;
  }

 private:
  /// One logical message captured off the wire, owning its payload.
  struct StoredRecord {
    sim::NodeId src = 0;
    sim::NodeId dst = 0;
    wire::BatchTag tag = wire::BatchTag::forward;
    std::vector<std::byte> payload;
    bool consumed = false;
  };

  /// Exchange state for one peer shard.
  struct PeerState {
    std::vector<std::byte> sent_frame;  // this round's batch, for resend
    bool sent_records = false;  // false = bare barrier token
    bool acked = false;
    bool got_batch = false;
    std::vector<StoredRecord> records;
    /// One-round-ahead buffer: a lockstep peer can be at most one round
    /// ahead of us, and its next batch may arrive while we still wait
    /// for a slower peer.
    std::optional<std::uint64_t> future_round;
    std::vector<StoredRecord> future_records;
    std::size_t silent_polls = 0;
    bool dead = false;
  };

  [[nodiscard]] bool sends_data() const noexcept {
    return options_.pattern != sim::GossipPattern::pull;
  }
  [[nodiscard]] bool wants_reply() const noexcept {
    return options_.pattern != sim::GossipPattern::push;
  }
  [[nodiscard]] bool owns(sim::NodeId i) const {
    return map_.shard_of(i) == shard_;
  }
  [[nodiscard]] std::size_t local(sim::NodeId i) const {
    return map_.local_index(i);
  }

  /// Stateless per-message loss verdict — identical on every shard by
  /// construction, because it depends only on global quantities. The
  /// initiator/direction pair names the message uniquely within a round
  /// (one forward and at most one reply per initiator).
  [[nodiscard]] bool channel_drops(sim::NodeId initiator,
                                   wire::BatchTag tag) const {
    if (options_.message_loss_probability <= 0.0) return false;
    const std::uint64_t salt = stats::derive_seed(
        round_ * 2 + static_cast<std::uint64_t>(tag), initiator);
    stats::Rng draw = stats::Rng::derive(loss_seed_, salt);
    return draw.bernoulli(options_.message_loss_probability);
  }

  /// Phase 1 — RoundRunner::plan_targets, replayed over ALL n nodes so
  /// every shard consumes the identical environment draws.
  void plan_targets() {
    const bool replies = wants_reply();
    const std::size_t n = map_.num_nodes();
    for (sim::NodeId i = 0; i < n; ++i) {
      targets_[i].reset();
      if (replies) reply_requests_[i].clear();
    }
    for (sim::NodeId i = 0; i < n; ++i) {
      if (!alive_[i]) continue;
      const bool avoid =
          options_.crash_send_policy == sim::CrashSendPolicy::avoid_crashed;
      targets_[i] = selector_.pick(topology_, i, alive_, avoid, env_rng_);
      if (replies && targets_[i] && alive_[*targets_[i]]) {
        reply_requests_[*targets_[i]].push_back(i);
      }
    }
  }

  /// Splits the owned nodes into boundary (this round's plan moves one
  /// of their messages across a shard edge: an outbound forward, or a
  /// reply owed to a remote initiator) and interior. Boundary nodes are
  /// prepared first so the batch frames can leave before interior
  /// compute starts.
  void classify_boundary() {
    boundary_js_.clear();
    interior_js_.clear();
    const bool multi = map_.num_shards() > 1;
    const bool sends = sends_data();
    const bool replies = wants_reply();
    const std::span<const sim::NodeId> owned = map_.owned(shard_);
    for (std::size_t j = 0; j < owned.size(); ++j) {
      const sim::NodeId g = owned[j];
      bool boundary = false;
      if (multi) {
        if (sends && targets_[g] && !owns(*targets_[g])) boundary = true;
        if (!boundary && replies) {
          for (const sim::NodeId r : reply_requests_[g]) {
            if (!owns(r)) {
              boundary = true;
              break;
            }
          }
        }
      }
      (boundary ? boundary_js_ : interior_js_).push_back(j);
    }
    stats_.boundary_nodes += boundary_js_.size();
  }

  /// Phase 2 — RoundRunner::prepare_messages restricted to the given
  /// owned local indices. reply_requests_ is global, so an owned
  /// responder interleaves its own send between lower- and
  /// higher-indexed initiators exactly as the monolithic engine would,
  /// remote initiators included. Per-node draws are node-local, so any
  /// split of the owned set into prepare_nodes calls is bit-identical.
  void prepare_nodes(std::span<const std::size_t> js) {
    const bool sends = sends_data();
    const bool replies = wants_reply();
    const std::span<const sim::NodeId> owned = map_.owned(shard_);
    exec::parallel_for(pool_.get(), js.size(), [&](std::size_t idx) {
      const std::size_t j = js[idx];
      const sim::NodeId g = owned[j];
      if (replies) {
        const std::vector<sim::NodeId>& requests = reply_requests_[g];
        std::size_t r = 0;
        for (; r < requests.size() && requests[r] < g; ++r) {
          replies_[requests[r]] = nodes_[j].prepare_message();
        }
        if (sends && targets_[g]) outbox_[j] = nodes_[j].prepare_message();
        for (; r < requests.size(); ++r) {
          replies_[requests[r]] = nodes_[j].prepare_message();
        }
      } else if (targets_[g]) {
        outbox_[j] = nodes_[j].prepare_message();
      }
    });
  }

  /// Packs this round's outbound cross-shard messages into one batch per
  /// peer and ships every batch (empty ones included — the barrier
  /// token). Loss and dead-target verdicts are applied HERE, sender-side
  /// — they are global functions, so the receiver would agree.
  void send_batches() {
    if (map_.num_shards() == 1) return;
    const bool sends = sends_data();
    const bool replies = wants_reply();
    // Reused member scratch (hot-path-alloc): the outer vectors keep
    // their capacity across rounds; `encoded` keeps payloads alive
    // until the per-peer frames are built below.
    std::vector<std::vector<std::byte>>& encoded = encode_scratch_;
    encoded.clear();
    outgoing_scratch_.resize(map_.num_shards());
    std::vector<std::vector<wire::BatchRecord>>& outgoing = outgoing_scratch_;
    for (std::vector<wire::BatchRecord>& records : outgoing) records.clear();
    const std::size_t n = map_.num_nodes();
    for (sim::NodeId i = 0; i < n; ++i) {
      if (!alive_[i] || !targets_[i]) continue;
      const sim::NodeId t = *targets_[i];
      if (sends && owns(i) && !owns(t)) {
        const std::optional<Message>& msg = outbox_[local(i)];
        if (msg && !msg->empty() && alive_[t] &&
            !channel_drops(i, wire::BatchTag::forward)) {
          encoded.push_back(Codec::encode(*msg));
          outgoing[map_.shard_of(t)].push_back(
              {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(t),
               wire::BatchTag::forward, encoded.back()});
        }
      }
      if (replies && owns(t) && !owns(i)) {
        const std::optional<Message>& msg = replies_[i];
        // The initiator is alive by plan; only the loss verdict applies.
        if (msg && !msg->empty() && !channel_drops(i, wire::BatchTag::reply)) {
          encoded.push_back(Codec::encode(*msg));
          outgoing[map_.shard_of(i)].push_back(
              {static_cast<std::uint32_t>(t), static_cast<std::uint32_t>(i),
               wire::BatchTag::reply, encoded.back()});
        }
      }
    }
    for (ShardId s = 0; s < map_.num_shards(); ++s) {
      if (s == shard_) continue;
      PeerState& peer = peers_[s];
      // Audited: one bounded frame per peer per round; encode_batch
      // sizes its buffer once from the record set and the result is
      // immediately moved into the peer's resend slot.
      // ddcverify: allow(hot-path-alloc)
      const std::vector<std::byte> payload = wire::encode_batch(
          round_, shard_, map_.num_shards(), outgoing[s]);
      peer.sent_frame = wire::encode_frame(wire::FrameKind::batch, shard_,
                                           round_ + 1, payload);
      peer.sent_records = !outgoing[s].empty();
      peer.acked = false;
      peer.silent_polls = 0;
      // A batch buffered one round ahead becomes current now. (A batch
      // for THIS round that arrived between rounds is already slotted —
      // try_complete_round cleared the state before advancing.)
      if (!peer.got_batch && peer.future_round &&
          *peer.future_round == round_) {
        peer.records = std::move(peer.future_records);
        peer.future_records.clear();
        peer.future_round.reset();
        peer.got_batch = true;
      }
      transport_->send(s, peer.sent_frame);
      ++stats_.batch_frames_sent;
      stats_.batch_records_sent += outgoing[s].size();
    }
  }

  /// Drains the transport, slotting batches and acks into peer state.
  void pump_transport() {
    for (net::Packet& packet : transport_->receive()) {
      wire::Frame frame;
      try {
        frame = wire::decode_frame(packet.bytes);
      } catch (const wire::DecodeError&) {
        ++stats_.decode_errors;
        continue;
      }
      if (frame.kind == wire::FrameKind::batch) {
        handle_batch(packet.from, frame.payload);
      } else if (frame.kind == wire::FrameKind::batch_ack) {
        handle_ack(packet.from, frame.payload);
      }
      // Gossip/probe frames on a shard transport are not ours to handle.
    }
  }

  void handle_batch(net::PeerId from, std::span<const std::byte> payload) {
    wire::Batch batch;
    try {
      batch = wire::decode_batch(payload);
    } catch (const wire::DecodeError&) {
      ++stats_.decode_errors;
      return;
    }
    if (from >= peers_.size() || batch.shard != from ||
        batch.num_shards != map_.num_shards()) {
      ++stats_.decode_errors;
      return;
    }
    PeerState& peer = peers_[static_cast<ShardId>(from)];
    peer.dead = false;
    peer.silent_polls = 0;
    // Always ack — receipt, not application, is what stops retransmits.
    transport_->send(static_cast<ShardId>(from),
                     wire::encode_frame(wire::FrameKind::batch_ack, shard_,
                                        batch.round + 1,
                                        wire::encode_batch_ack(batch.round)));
    if (batch.round == round_) {
      if (!peer.got_batch) {
        peer.records = store_records(batch);
        peer.got_batch = true;
        ++stats_.batch_frames_received;
        stats_.batch_records_received += batch.records.size();
      }
    } else if (batch.round > round_) {
      // The peer moved on; a lockstep peer is at most one round ahead,
      // anything further means WE restarted behind the cluster. Either
      // way its current-round batch is implicitly settled.
      if (!peer.future_round || batch.round > *peer.future_round) {
        peer.future_round = batch.round;
        peer.future_records = store_records(batch);
        ++stats_.batch_frames_received;
        stats_.batch_records_received += batch.records.size();
      }
    }
    // batch.round < round_: a retransmit we already applied; the re-ack
    // above is the whole effect.
  }

  void handle_ack(net::PeerId from, std::span<const std::byte> payload) {
    std::uint64_t acked_round = 0;
    try {
      acked_round = wire::decode_batch_ack(payload);
    } catch (const wire::DecodeError&) {
      ++stats_.decode_errors;
      return;
    }
    if (from >= peers_.size()) return;
    PeerState& peer = peers_[static_cast<ShardId>(from)];
    peer.dead = false;
    peer.silent_polls = 0;
    if (acked_round == round_ && !peer.acked) {
      peer.acked = true;
      ++stats_.acks_received;
    }
  }

  [[nodiscard]] std::vector<StoredRecord> store_records(
      const wire::Batch& batch) const {
    // Audited: the received payload spans borrow the transport's frame
    // buffer, which dies at the next receive() — copying them out is
    // the point. Bounded by the peer's record count for the round.
    // ddcverify: allow(hot-path-alloc)
    std::vector<StoredRecord> stored;
    stored.reserve(batch.records.size());
    for (const wire::BatchRecord& rec : batch.records) {
      StoredRecord s;
      s.src = rec.src;
      s.dst = rec.dst;
      s.tag = rec.tag;
      s.payload.assign(rec.payload.begin(), rec.payload.end());
      stored.push_back(std::move(s));
    }
    return stored;
  }

  /// A peer no longer blocks the barrier once its batch arrived, it
  /// provably moved past this round, or it timed out.
  [[nodiscard]] bool peer_settled(const PeerState& peer) const {
    const bool batch_ok =
        peer.got_batch || peer.dead ||
        (peer.future_round && *peer.future_round > round_);
    const bool ack_ok = peer.acked || peer.dead ||
                        (peer.future_round && *peer.future_round > round_);
    return batch_ok && ack_ok;
  }

  [[nodiscard]] bool barrier_reached() const {
    for (ShardId s = 0; s < map_.num_shards(); ++s) {
      if (s == shard_) continue;
      if (!peer_settled(peers_[s])) return false;
    }
    return true;
  }

  void maybe_retransmit() {
    if (options_.resend_interval_polls == 0 ||
        polls_this_round_ % options_.resend_interval_polls != 0) {
      return;
    }
    for (ShardId s = 0; s < map_.num_shards(); ++s) {
      if (s == shard_) continue;
      PeerState& peer = peers_[s];
      if (peer.acked || peer.dead) continue;
      // A peer provably past this round has received our batch (it could
      // not have settled its own barrier otherwise) — only its ack is
      // missing or in flight. Re-sending the frame, usually a bare
      // barrier token, would just provoke another re-ack;
      // peer_settled() already treats the advanced peer as settled.
      if (peer.future_round && *peer.future_round > round_) continue;
      // The planted bug the schedule explorer's self-test re-enables:
      // an early draft reasoned "an empty batch moves no data, so it
      // need not be retransmitted" — but the empty batch IS the
      // barrier token, and dropping its only copy deadlocks the round.
      if (options_.testing_suppress_empty_barrier_retransmit &&
          !peer.sent_records) {
        continue;
      }
      transport_->send(s, peer.sent_frame);
      ++stats_.retransmits;
    }
  }

  void maybe_expire_peers() {
    if (options_.max_exchange_polls == 0) return;
    for (ShardId s = 0; s < map_.num_shards(); ++s) {
      if (s == shard_) continue;
      PeerState& peer = peers_[s];
      if (peer_settled(peer)) continue;
      if (++peer.silent_polls > options_.max_exchange_polls) {
        peer.dead = true;
        ++stats_.peer_timeouts;
      }
    }
  }

  /// Phase 3 — RoundRunner::deliver_messages, replayed in global node
  /// order. Local messages come from outbox_/replies_; remote ones from
  /// the peers' batches, slotted into their planned positions (forward
  /// keyed by initiator, reply keyed by the initiator it answers).
  void deliver_messages() {
    const bool sends = sends_data();
    const bool replies = wants_reply();
    for (std::size_t j = 0; j < nodes_.size(); ++j) inbox_[j].clear();
    // Planned-position index over the stored records of every peer.
    const std::size_t n = map_.num_nodes();
    fwd_index_.assign(n, nullptr);
    reply_index_.assign(n, nullptr);
    for (ShardId s = 0; s < map_.num_shards(); ++s) {
      if (s == shard_) continue;
      for (StoredRecord& rec : peers_[s].records) {
        rec.consumed = false;
        if (rec.src >= n || rec.dst >= n || !owns(rec.dst)) continue;
        if (rec.tag == wire::BatchTag::forward) {
          fwd_index_[rec.src] = &rec;
        } else {
          reply_index_[rec.dst] = &rec;
        }
      }
    }
    for (sim::NodeId i = 0; i < n; ++i) {
      if (!alive_[i] || !targets_[i]) continue;
      const sim::NodeId t = *targets_[i];
      if (sends && owns(t)) {
        if (owns(i)) {
          std::optional<Message>& msg = outbox_[local(i)];
          if (msg && !msg->empty() && alive_[t] &&
              !channel_drops(i, wire::BatchTag::forward)) {
            inbox_[local(t)].push_back(std::move(*msg));
          }
        } else if (StoredRecord* rec = fwd_index_[i];
                   rec != nullptr && rec->dst == t) {
          deliver_record(*rec);
        }
      }
      if (replies && owns(i) && targets_[i]) {
        if (owns(t)) {
          std::optional<Message>& msg = replies_[i];
          if (msg && !msg->empty() &&
              !channel_drops(i, wire::BatchTag::reply)) {
            inbox_[local(i)].push_back(std::move(*msg));
          }
        } else if (StoredRecord* rec = reply_index_[i];
                   rec != nullptr && rec->src == t) {
          deliver_record(*rec);
        }
      }
    }
    // Records that matched no planned slot — only possible after a peer
    // restarted with a diverged plan. Deliver them in a deterministic
    // order so the healthy shards at least agree with each other.
    leftovers_.clear();
    for (ShardId s = 0; s < map_.num_shards(); ++s) {
      if (s == shard_) continue;
      for (StoredRecord& rec : peers_[s].records) {
        if (!rec.consumed && rec.dst < n && owns(rec.dst) &&
            alive_[rec.dst]) {
          leftovers_.push_back(&rec);
        }
      }
    }
    std::sort(leftovers_.begin(), leftovers_.end(),
              [](const StoredRecord* a, const StoredRecord* b) {
                return std::tie(a->dst, a->tag, a->src) <
                       std::tie(b->dst, b->tag, b->src);
              });
    for (StoredRecord* rec : leftovers_) {
      ++stats_.unplanned_records;
      deliver_record(*rec);
    }
  }

  void deliver_record(StoredRecord& rec) {
    rec.consumed = true;
    try {
      inbox_[local(rec.dst)].push_back(Codec::decode(rec.payload));
    } catch (const wire::DecodeError&) {
      ++stats_.decode_errors;
    }
  }

  /// Phase 4 — batch absorption over the owned nodes.
  void absorb_inboxes() {
    const std::span<const sim::NodeId> owned = map_.owned(shard_);
    exec::parallel_for(pool_.get(), nodes_.size(), [&](std::size_t j) {
      if (alive_[owned[j]] && !inbox_[j].empty()) {
        nodes_[j].absorb(std::move(inbox_[j]));
      }
    });
  }

  /// Phase 5 — RoundRunner::apply_crashes replayed over ALL n nodes;
  /// the global alive vector stays a pure function of the seed.
  void apply_crashes() {
    if (options_.crash_probability <= 0.0) return;
    const std::size_t n = map_.num_nodes();
    for (sim::NodeId i = 0; i < n; ++i) {
      if (alive_[i] && env_rng_.bernoulli(options_.crash_probability)) {
        alive_[i] = false;
      }
    }
  }

  sim::Topology topology_;
  ShardMap map_;
  ShardId shard_;
  std::vector<Node> nodes_;
  ShardEngineOptions options_;
  stats::Rng env_rng_;
  std::uint64_t loss_seed_;
  net::Transport* transport_;
  std::vector<bool> alive_;
  sim::NeighborSelector selector_;
  // Global per-round plan (replayed on every shard).
  std::vector<std::optional<sim::NodeId>> targets_;
  std::vector<std::vector<sim::NodeId>> reply_requests_;
  std::vector<std::optional<Message>> replies_;
  // Owned-range scratch.
  std::vector<std::optional<Message>> outbox_;
  std::vector<std::vector<Message>> inbox_;
  std::vector<std::size_t> boundary_js_;
  std::vector<std::size_t> interior_js_;
  std::vector<StoredRecord*> fwd_index_;
  std::vector<StoredRecord*> reply_index_;
  std::vector<StoredRecord*> leftovers_;
  // send_batches() scratch, reused across rounds (hot-path-alloc).
  std::vector<std::vector<std::byte>> encode_scratch_;
  std::vector<std::vector<wire::BatchRecord>> outgoing_scratch_;
  std::vector<PeerState> peers_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::size_t round_ = 0;
  std::size_t polls_this_round_ = 0;
  bool round_open_ = false;
  ShardEngineStats stats_;
};

}  // namespace ddc::shard
