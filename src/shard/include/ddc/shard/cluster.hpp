// In-process sharded cluster: S ShardEngines over one LoopbackNetwork.
//
// The deterministic harness behind the equivalence matrix tests and
// bench_cluster: every engine begins the round, then the driver
// alternates fabric advances with engine polls until all S barriers
// resolve. Because the engines are stepped (never blocking), one thread
// drives the whole cluster without deadlock, and because the loopback
// fabric is deterministic, a run is bit-identical for a fixed
// configuration — including under injected link loss, which the batch
// retransmit protocol must (and does) absorb.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/net/loopback.hpp>
#include <ddc/shard/shard_engine.hpp>
#include <ddc/shard/shard_map.hpp>

namespace ddc::shard {

template <sim::GossipNode Node, typename Codec>
class ShardCluster {
 public:
  using Engine = ShardEngine<Node, Codec>;

  /// Splits `all_nodes` (one per topology vertex, global order) into
  /// `num_shards` shards — assigned by options.partitioner — over a
  /// private loopback fabric. With link loss configured in
  /// `net_options`, set a nonzero options.resend_interval_polls (the
  /// default suffices) so dropped batches are retransmitted.
  ShardCluster(sim::Topology topology, std::vector<Node> all_nodes,
               ShardId num_shards, ShardEngineOptions options = {},
               net::LoopbackOptions net_options = {})
      : map_(ShardMap::make(options.partitioner, topology, num_shards)),
        network_(num_shards, net_options) {
    DDC_EXPECTS(topology.num_nodes() == all_nodes.size());
    engines_.reserve(num_shards);
    for (ShardId s = 0; s < num_shards; ++s) {
      std::vector<Node> owned;
      owned.reserve(map_.size(s));
      for (const sim::NodeId i : map_.owned(s)) {
        owned.push_back(std::move(all_nodes[i]));
      }
      engines_.emplace_back(topology, map_, s, std::move(owned),
                            num_shards > 1 ? &network_.endpoint(s) : nullptr,
                            options);
    }
  }

  /// Runs one lockstep round across every shard.
  void run_round() {
    for (Engine& engine : engines_) engine.begin_round();
    std::vector<bool> done(engines_.size(), false);
    std::size_t remaining = engines_.size();
    while (remaining > 0) {
      network_.advance();
      for (std::size_t s = 0; s < engines_.size(); ++s) {
        if (done[s]) {
          // A finished shard must keep servicing the exchange: a peer
          // whose ack was lost retransmits, and only this shard can
          // re-ack (the deadlock otherwise is real — loss on the last
          // ack of a round would wedge the cluster).
          engines_[s].service();
        } else if (engines_[s].try_complete_round()) {
          done[s] = true;
          --remaining;
        }
      }
    }
  }

  void run_rounds(std::size_t count) {
    for (std::size_t r = 0; r < count; ++r) run_round();
  }

  [[nodiscard]] const ShardMap& map() const noexcept { return map_; }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return engines_.size();
  }
  [[nodiscard]] Engine& engine(ShardId s) { return engines_.at(s); }
  [[nodiscard]] const Engine& engine(ShardId s) const {
    return engines_.at(s);
  }
  [[nodiscard]] net::LoopbackNetwork& network() noexcept { return network_; }

  /// The node object behind global id `i`, wherever it lives.
  [[nodiscard]] const Node& node(sim::NodeId i) const {
    return engines_[map_.shard_of(i)].nodes()[map_.local_index(i)];
  }

 private:
  ShardMap map_;
  net::LoopbackNetwork network_;
  std::vector<Engine> engines_;
};

}  // namespace ddc::shard
