#include <ddc/metrics/outlier_metrics.hpp>

#include <ddc/common/assert.hpp>
#include <ddc/metrics/gaussian_metrics.hpp>

namespace ddc::metrics {

using linalg::Vector;

std::vector<bool> flag_outliers(const std::vector<Vector>& inputs,
                                const stats::Gaussian& good, double fmin) {
  DDC_EXPECTS(fmin > 0.0);
  std::vector<bool> flags;
  flags.reserve(inputs.size());
  for (const auto& x : inputs) flags.push_back(good.pdf(x) < fmin);
  return flags;
}

double missed_outlier_ratio(
    const core::Classification<stats::Gaussian>& classification,
    const std::vector<bool>& outlier_flags) {
  DDC_EXPECTS(!classification.empty());
  const std::size_t good = heaviest_collection_index(classification);
  DDC_EXPECTS(classification[good].aux.has_value());

  // Total outlier weight held by this node (across all collections) and
  // the part of it sitting in the good collection.
  double outlier_total = 0.0;
  double outlier_in_good = 0.0;
  for (std::size_t c = 0; c < classification.size(); ++c) {
    const auto& aux = classification[c].aux;
    DDC_EXPECTS(aux.has_value());
    DDC_EXPECTS(aux->dim() == outlier_flags.size());
    for (std::size_t i = 0; i < outlier_flags.size(); ++i) {
      if (!outlier_flags[i]) continue;
      outlier_total += (*aux)[i];
      if (c == good) outlier_in_good += (*aux)[i];
    }
  }
  if (outlier_total <= 0.0) return 0.0;
  return outlier_in_good / outlier_total;
}

double robust_mean_error(
    const core::Classification<stats::Gaussian>& classification,
    const Vector& true_mean) {
  return linalg::distance2(heaviest_collection_mean(classification), true_mean);
}

double regular_mean_error(
    const core::Classification<stats::Gaussian>& classification,
    const Vector& true_mean) {
  return linalg::distance2(overall_mean(classification), true_mean);
}

}  // namespace ddc::metrics
