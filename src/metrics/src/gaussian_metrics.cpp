#include <ddc/metrics/gaussian_metrics.hpp>

#include <cmath>
#include <limits>

#include <ddc/common/assert.hpp>

namespace ddc::metrics {

using linalg::Vector;

Vector overall_mean(const core::Classification<stats::Gaussian>& classification) {
  DDC_EXPECTS(!classification.empty());
  Vector acc(classification[0].summary.dim());
  for (std::size_t i = 0; i < classification.size(); ++i) {
    acc += classification.relative_weight(i) * classification[i].summary.mean();
  }
  return acc;
}

std::size_t heaviest_collection_index(
    const core::Classification<stats::Gaussian>& classification) {
  DDC_EXPECTS(!classification.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < classification.size(); ++i) {
    if (classification[i].weight > classification[best].weight) best = i;
  }
  return best;
}

Vector heaviest_collection_mean(
    const core::Classification<stats::Gaussian>& classification) {
  return classification[heaviest_collection_index(classification)].summary.mean();
}

double mixture_recovery_error(const stats::GaussianMixture& truth,
                              const stats::GaussianMixture& estimate) {
  DDC_EXPECTS(!truth.empty() && !estimate.empty());
  const double truth_total = truth.total_weight();
  const double est_total = estimate.total_weight();
  double error = 0.0;
  for (std::size_t t = 0; t < truth.size(); ++t) {
    // Nearest estimated component by mean distance.
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t e = 0; e < estimate.size(); ++e) {
      const double d = linalg::distance2(truth[t].gaussian.mean(),
                                         estimate[e].gaussian.mean());
      if (d < best_d) {
        best_d = d;
        best = e;
      }
    }
    const double cov_err = linalg::max_abs(truth[t].gaussian.cov() -
                                           estimate[best].gaussian.cov());
    const double w_err = std::abs(truth[t].weight / truth_total -
                                  estimate[best].weight / est_total);
    error += (truth[t].weight / truth_total) * (best_d + cov_err + w_err);
  }
  return error;
}

}  // namespace ddc::metrics
