// Generic metrics over classifications — convergence/agreement measures
// corresponding to the paper's Definition 3 (summary convergence via a
// per-time mapping ψ plus relative-weight convergence).
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/core/collection.hpp>
#include <ddc/core/policy.hpp>

namespace ddc::metrics {

/// Distance between two classifications under summary policy SP: a greedy
/// weighted matching in the spirit of Definition 3. Collections of A and B
/// are matched closest-first under SP::distance; the result is the
/// relative-weight-weighted average of matched summary distances plus the
/// total relative weight left unmatched (each unmatched unit of weight
/// costs `unmatched_penalty`).
///
/// Zero iff the two classifications have identical summaries (up to dS=0)
/// with identical relative weights; small when both nodes have converged
/// to the same destination classification.
template <core::SummaryPolicy SP>
[[nodiscard]] double classification_distance(
    const core::Classification<typename SP::Summary>& a,
    const core::Classification<typename SP::Summary>& b,
    double unmatched_penalty = 1.0) {
  DDC_EXPECTS(!a.empty() && !b.empty());

  // Remaining relative weights on each side.
  std::vector<double> wa(a.size());
  std::vector<double> wb(b.size());
  for (std::size_t i = 0; i < a.size(); ++i) wa[i] = a.relative_weight(i);
  for (std::size_t j = 0; j < b.size(); ++j) wb[j] = b.relative_weight(j);

  // All cross pairs, closest first.
  struct Pair {
    double distance;
    std::size_t i, j;
  };
  std::vector<Pair> pairs;
  pairs.reserve(a.size() * b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      pairs.push_back({SP::distance(a[i].summary, b[j].summary), i, j});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& x, const Pair& y) { return x.distance < y.distance; });

  double cost = 0.0;
  double matched = 0.0;
  for (const auto& p : pairs) {
    const double m = std::min(wa[p.i], wb[p.j]);
    if (m <= 0.0) continue;
    cost += m * p.distance;
    wa[p.i] -= m;
    wb[p.j] -= m;
    matched += m;
  }
  // Each side has total relative weight 1; anything unmatched indicates a
  // structural mismatch.
  const double unmatched = std::max(0.0, 1.0 - matched);
  return cost + unmatched * unmatched_penalty;
}

/// Maximum pairwise disagreement against a reference node (node 0) — an
/// O(n) proxy for full pairwise agreement used as a convergence probe.
template <core::SummaryPolicy SP, typename Node>
[[nodiscard]] double max_disagreement_vs_first(const std::vector<Node>& nodes) {
  DDC_EXPECTS(!nodes.empty());
  double worst = 0.0;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    worst = std::max(worst,
                     classification_distance<SP>(nodes.front().classification(),
                                                 nodes[i].classification()));
  }
  return worst;
}

/// Sum of weight quanta currently held by all nodes — the conservation
/// audit (must equal n × quanta_per_unit in any crash-free execution with
/// no in-flight messages).
template <typename Node>
[[nodiscard]] std::int64_t total_quanta(const std::vector<Node>& nodes) {
  std::int64_t acc = 0;
  for (const auto& node : nodes) {
    acc += node.classification().total_weight().quanta();
  }
  return acc;
}

}  // namespace ddc::metrics
