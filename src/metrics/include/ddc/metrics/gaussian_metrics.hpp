// Metrics specific to Gaussian classifications (Figures 2–4).
#pragma once

#include <vector>

#include <ddc/core/collection.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/stats/gaussian.hpp>
#include <ddc/stats/mixture.hpp>

namespace ddc::metrics {

/// Overall weighted mean of a Gaussian classification — the estimate
/// "regular average aggregation" would produce (no outlier removal).
[[nodiscard]] linalg::Vector overall_mean(
    const core::Classification<stats::Gaussian>& classification);

/// Mean of the heaviest collection — the robust estimate the paper's
/// outlier-removal application reports (with k = 2 the heavier collection
/// is the "good" one; the lighter holds the suspected outliers).
[[nodiscard]] linalg::Vector heaviest_collection_mean(
    const core::Classification<stats::Gaussian>& classification);

/// Index of the heaviest collection.
[[nodiscard]] std::size_t heaviest_collection_index(
    const core::Classification<stats::Gaussian>& classification);

/// Component-recovery error between an estimated mixture and the ground
/// truth that generated the data (Fig. 2): each truth component is matched
/// to the estimated component with the nearest mean; the result is the
/// truth-weight-weighted average of (mean distance + covariance max-norm
/// difference + |weight difference|). Lower is better; 0 is exact
/// recovery.
[[nodiscard]] double mixture_recovery_error(const stats::GaussianMixture& truth,
                                            const stats::GaussianMixture& estimate);

}  // namespace ddc::metrics
