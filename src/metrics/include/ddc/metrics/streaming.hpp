// Streaming metrics — convergence probes that hold O(k) state, never a
// per-node history.
//
// The object-engine metrics (classification_metrics.hpp) take the
// runner's node vector; at scale-engine sizes (10⁵–10⁶ nodes) even
// copying every classification into a vector for a probe would dwarf the
// round itself. These variants consume an engine's
// for_each_classification stream: one pass, one reference
// classification, one running maximum.
#pragma once

#include <algorithm>
#include <cstdint>

#include <ddc/common/assert.hpp>
#include <ddc/core/collection.hpp>
#include <ddc/core/policy.hpp>
#include <ddc/metrics/classification_metrics.hpp>

namespace ddc::metrics {

/// Maximum disagreement against node 0 over a streaming engine — the
/// scale-engine counterpart of max_disagreement_vs_first. `Engine` needs
/// `for_each_classification(fn(i, classification))` in node order (the
/// SoaRoundEngine contract). Holds one copied reference classification
/// (O(k)) and a running maximum; no per-node history.
template <core::SummaryPolicy SP, typename Engine>
[[nodiscard]] double streaming_max_disagreement(const Engine& engine) {
  core::Classification<typename SP::Summary> reference;
  double worst = 0.0;
  engine.for_each_classification(
      [&](std::size_t i,
          const core::Classification<typename SP::Summary>& classification) {
        if (i == 0) {
          reference = classification;  // the stream reuses its buffer
          return;
        }
        worst = std::max(
            worst, classification_distance<SP>(reference, classification));
      });
  return worst;
}

/// Streaming mean number of collections per node — a cheap structural
/// probe (how far nodes are from the k-bound) that reads only counts.
template <typename Engine>
[[nodiscard]] double streaming_mean_collections(const Engine& engine) {
  std::uint64_t total = 0;
  std::size_t nodes = 0;
  engine.for_each_classification(
      [&](std::size_t /*i*/, const auto& classification) {
        total += classification.size();
        ++nodes;
      });
  DDC_EXPECTS(nodes > 0);
  return static_cast<double>(total) / static_cast<double>(nodes);
}

}  // namespace ddc::metrics
