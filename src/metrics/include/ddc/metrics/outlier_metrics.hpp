// Outlier-removal metrics for the Figure 3 / Figure 4 experiments.
//
// The paper defines outliers as values whose probability density under the
// good (standard normal) distribution is below f_min = 5·10⁻⁵, and reports
// (a) the share of outlier weight incorrectly assigned to the good
// collection and (b) the error of the robust mean estimate. With auxiliary
// mixture-vector tracking enabled, (a) is computed *exactly*: a
// collection's aux vector says precisely how much of each input value's
// weight it contains.
#pragma once

#include <vector>

#include <ddc/core/collection.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/stats/gaussian.hpp>

namespace ddc::metrics {

/// The paper's outlier-density threshold for the standard normal.
inline constexpr double kPaperFmin = 5e-5;

/// Flags each input as an outlier iff its density under `good` is below
/// `fmin` (the paper's ground-truth rule).
[[nodiscard]] std::vector<bool> flag_outliers(
    const std::vector<linalg::Vector>& inputs, const stats::Gaussian& good,
    double fmin = kPaperFmin);

/// Fraction of total outlier weight that a node assigned to its *good*
/// (heaviest) collection — the paper's "missed outliers" ratio, in [0, 1].
/// Requires the classification to carry auxiliary vectors. Returns 0 when
/// there are no outliers.
[[nodiscard]] double missed_outlier_ratio(
    const core::Classification<stats::Gaussian>& classification,
    const std::vector<bool>& outlier_flags);

/// Robust mean-estimation error of one node: distance between the mean of
/// its heaviest collection and `true_mean`.
[[nodiscard]] double robust_mean_error(
    const core::Classification<stats::Gaussian>& classification,
    const linalg::Vector& true_mean);

/// Regular (no-outlier-removal) mean-estimation error of one node:
/// distance between the overall weighted mean and `true_mean`.
[[nodiscard]] double regular_mean_error(
    const core::Classification<stats::Gaussian>& classification,
    const linalg::Vector& true_mean);

}  // namespace ddc::metrics
