#include <ddc/cli/flags.hpp>

#include <algorithm>
#include <sstream>

#include <ddc/common/assert.hpp>

namespace ddc::cli {

namespace {

/// Plain Levenshtein distance — small strings, O(|a|·|b|) is fine.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

}  // namespace

Flags::Flags(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Flags::declare(const std::string& name, const std::string& description,
                    const std::string& default_value) {
  DDC_EXPECTS(!name.empty());
  DDC_EXPECTS(!entries_.contains(name));
  entries_[name] = Entry{description, default_value, false, std::nullopt};
  declaration_order_.push_back(name);
}

void Flags::declare_bool(const std::string& name,
                         const std::string& description) {
  DDC_EXPECTS(!name.empty());
  DDC_EXPECTS(!entries_.contains(name));
  entries_[name] = Entry{description, "false", true, std::nullopt};
  declaration_order_.push_back(name);
}

bool Flags::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

bool Flags::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") return false;
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      throw FlagError("unexpected argument '" + arg + "' (flags are --name)");
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::string message = "unknown flag --" + name;
      if (const auto near = suggest(name)) {
        message += " (did you mean --" + *near + "?)";
      } else {
        message += " (see --help)";
      }
      throw FlagError(message);
    }
    Entry& e = it->second;
    if (!value) {
      if (e.boolean) {
        value = "true";
      } else if (i + 1 < args.size()) {
        value = args[++i];
      } else {
        throw FlagError("flag --" + name + " needs a value");
      }
    }
    if (e.boolean && *value != "true" && *value != "false") {
      throw FlagError("flag --" + name + " expects true/false, got '" +
                      *value + "'");
    }
    e.value = std::move(*value);
  }
  return true;
}

std::optional<std::string> Flags::suggest(const std::string& name) const {
  if (name.empty()) return std::nullopt;
  std::optional<std::string> best;
  std::size_t best_distance = 3;  // suggest only within edit distance 2
  for (const auto& candidate : declaration_order_) {
    // A declared name the typo is a prefix of ("--node" for "--nodes")
    // is a suggestion regardless of length difference.
    const std::size_t d = candidate.starts_with(name)
                              ? 1
                              : edit_distance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

const Flags::Entry& Flags::entry(const std::string& name) const {
  const auto it = entries_.find(name);
  DDC_EXPECTS(it != entries_.end());
  return it->second;
}

const std::string& Flags::get(const std::string& name) const {
  const Entry& e = entry(name);
  return e.value ? *e.value : e.default_value;
}

long long Flags::get_int(const std::string& name) const {
  const std::string& raw = get(name);
  try {
    std::size_t consumed = 0;
    const long long v = std::stoll(raw, &consumed);
    if (consumed != raw.size()) throw std::invalid_argument(raw);
    return v;
  } catch (const std::exception&) {
    throw FlagError("flag --" + name + ": '" + raw + "' is not an integer");
  }
}

double Flags::get_double(const std::string& name) const {
  const std::string& raw = get(name);
  try {
    std::size_t consumed = 0;
    const double v = std::stod(raw, &consumed);
    if (consumed != raw.size()) throw std::invalid_argument(raw);
    return v;
  } catch (const std::exception&) {
    throw FlagError("flag --" + name + ": '" + raw + "' is not a number");
  }
}

bool Flags::get_bool(const std::string& name) const {
  return get(name) == "true";
}

bool Flags::is_set(const std::string& name) const {
  return entry(name).value.has_value();
}

bool Flags::declared(const std::string& name) const {
  return entries_.contains(name);
}

std::string Flags::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nflags:\n";
  std::size_t width = 4;  // "help"
  for (const auto& name : declaration_order_) {
    width = std::max(width, name.size());
  }
  for (const auto& name : declaration_order_) {
    const Entry& e = entries_.at(name);
    os << "  --" << name << std::string(width - name.size() + 2, ' ')
       << e.description << " (default: " << e.default_value << ")\n";
  }
  os << "  --help" << std::string(width - 4 + 2, ' ')
     << "show this message\n";
  return os.str();
}

}  // namespace ddc::cli
