#include <ddc/cli/engine_flags.hpp>

#include <string>

#include <ddc/linalg/simd.hpp>

namespace ddc::cli {
namespace {

const char* pattern_name(sim::GossipPattern pattern) {
  switch (pattern) {
    case sim::GossipPattern::push: return "push";
    case sim::GossipPattern::pull: return "pull";
    case sim::GossipPattern::push_pull: return "push-pull";
  }
  return "?";
}

sim::GossipPattern parse_pattern(const std::string& name) {
  if (name == "push") return sim::GossipPattern::push;
  if (name == "pull") return sim::GossipPattern::pull;
  if (name == "push-pull") return sim::GossipPattern::push_pull;
  throw ConfigError("unknown pattern '" + name + "' (push | pull | push-pull)");
}

const char* backend_name(sim::EngineBackend backend) {
  switch (backend) {
    case sim::EngineBackend::object: return "object";
    case sim::EngineBackend::soa: return "soa";
    case sim::EngineBackend::auto_select: return "auto";
  }
  return "?";
}

sim::EngineBackend parse_backend(const std::string& name) {
  if (name == "object") return sim::EngineBackend::object;
  if (name == "soa") return sim::EngineBackend::soa;
  if (name == "auto") return sim::EngineBackend::auto_select;
  throw ConfigError("unknown engine '" + name + "' (object | soa | auto)");
}

/// The exponent e with 2^e == quanta, for rendering the --quanta-exp
/// default; falls back to 20 for non-power-of-two programmatic defaults.
int quanta_exponent(std::int64_t quanta) {
  for (int e = 0; e <= 62; ++e) {
    if ((std::int64_t{1} << e) == quanta) return e;
  }
  return 20;
}

}  // namespace

void declare_engine_flags(Flags& flags, const sim::EngineConfig& defaults,
                          const EngineFlagSet& set) {
  if (set.topology) {
    flags.declare("topology",
                  "complete | ring | dring | line | star | grid | torus | "
                  "geometric | er",
                  topology_family_name(defaults.topology.family));
    flags.declare("nodes", "number of nodes",
                  std::to_string(defaults.topology.nodes));
    flags.declare("radius",
                  "connection radius for --topology geometric "
                  "(0 = max(0.15, 2/sqrt(n)))",
                  "0");
    flags.declare("er-prob",
                  "edge probability for --topology er (0 = max(0.05, 8/n))",
                  "0");
  }
  if (set.gossip) {
    flags.declare("pattern", "push | pull | push-pull",
                  pattern_name(defaults.pattern));
    flags.declare_bool("push-pull", "shorthand for --pattern push-pull");
    flags.declare_bool("round-robin", "round-robin neighbor selection");
  }
  if (set.faults) {
    flags.declare("crash-prob", "per-round crash probability", "0");
    flags.declare("loss-prob", "per-message loss probability", "0");
  }
  if (set.parallelism) {
    flags.declare("threads",
                  "worker threads for the prepare/absorb phases (0 = one per "
                  "hardware thread); results are identical at any setting",
                  std::to_string(defaults.parallelism));
  }
  if (set.protocol) {
    flags.declare("k", "max collections per node", std::to_string(defaults.k));
    flags.declare("quanta-exp", "weight quanta per unit = 2^this",
                  std::to_string(quanta_exponent(defaults.quanta_per_unit)));
  }
  if (set.backend) {
    flags.declare("engine",
                  "node-state backend: object (one protocol object per "
                  "node) | soa (struct-of-arrays scale engine, round mode "
                  "only) | auto (soa at scale, object otherwise)",
                  backend_name(defaults.backend));
  }
  if (set.simd) {
    flags.declare("simd",
                  "math-kernel dispatch: auto (bit-exact SIMD when the CPU "
                  "supports it) | scalar (reference kernels) | avx2 (require "
                  "AVX2 and enable the fast-math scoring tier — results may "
                  "differ in the last ulps)",
                  linalg::simd::mode_name(defaults.simd));
  }
  if (set.timing) {
    flags.declare_bool("timing",
                       "print accumulated per-phase wall-clock (prepare / "
                       "absorb / partition / em) after the run (gm/centroid)");
  }
  flags.declare("seed", "RNG seed", std::to_string(defaults.protocol_seed));
}

sim::EngineConfig parse_engine_config(const Flags& flags,
                                      const sim::EngineConfig& defaults,
                                      const EngineFlagSet& set) {
  sim::EngineConfig config = defaults;

  if (set.topology) {
    config.topology.family = sim::parse_topology_family(flags.get("topology"));
    if (flags.get_int("nodes") < 2) {
      throw ConfigError("--nodes must be ≥ 2");
    }
    config.topology.nodes = static_cast<std::size_t>(flags.get_int("nodes"));
    config.topology.radius = flags.get_double("radius");
    config.topology.edge_probability = flags.get_double("er-prob");
  }
  if (set.gossip) {
    config.pattern = flags.get_bool("push-pull")
                         ? sim::GossipPattern::push_pull
                         : parse_pattern(flags.get("pattern"));
    config.selection = flags.get_bool("round-robin")
                           ? sim::NeighborSelection::round_robin
                           : sim::NeighborSelection::uniform_random;
  }
  if (set.faults) {
    config.faults.crash_probability = flags.get_double("crash-prob");
    config.faults.message_loss_probability = flags.get_double("loss-prob");
  }
  if (set.parallelism) {
    if (flags.get_int("threads") < 0) {
      throw ConfigError(
          "--threads must be ≥ 0 (0 = one per hardware thread)");
    }
    config.parallelism = static_cast<std::size_t>(flags.get_int("threads"));
  }
  if (set.protocol) {
    config.k = static_cast<std::size_t>(flags.get_int("k"));
    const long long quanta_exp = flags.get_int("quanta-exp");
    if (quanta_exp < 0 || quanta_exp > 62) {
      throw ConfigError("--quanta-exp must be in [0, 62]");
    }
    config.quanta_per_unit = std::int64_t{1} << quanta_exp;
  }
  if (set.backend) {
    config.backend = parse_backend(flags.get("engine"));
  }
  if (set.simd) {
    const std::string name = flags.get("simd");
    const auto mode = linalg::simd::parse_mode(name);
    if (!mode) {
      throw ConfigError("unknown simd mode '" + name +
                        "' (auto | scalar | avx2)");
    }
    config.simd = *mode;
  }

  // The historical ddcsim seed split: protocol (node-local EM restarts)
  // gets --seed verbatim, the environment stream gets --seed + 1.
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.protocol_seed = seed;
  config.seed = seed + 1;

  config.validate();
  return config;
}

bool timing_requested(const Flags& flags) {
  return flags.declared("timing") && flags.get_bool("timing");
}

}  // namespace ddc::cli
