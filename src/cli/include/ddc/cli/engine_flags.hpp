// Shared engine flags — one declaration and one parse for every binary.
//
// ddcsim, ddcnode and the bench drivers used to each hand-roll the same
// dozen flag declarations and the same Config-struct plumbing; a new knob
// meant touching every main(). declare_engine_flags()/parse_engine_config()
// collapse that into one seam that produces a sim::EngineConfig, keeping
// --threads/--pattern/--timing and the did-you-mean hints identical across
// tools. Binaries opt out of flag groups that make no sense for them
// (ddcnode has no crash model — crashes are real processes dying there).
#pragma once

#include <ddc/cli/flags.hpp>
#include <ddc/sim/engine_config.hpp>

namespace ddc::cli {

/// Which flag groups a binary wants. Everything defaults to on; a binary
/// switches off the groups it implements differently (or not at all).
struct EngineFlagSet {
  bool topology = true;     ///< --topology --nodes
  bool gossip = true;       ///< --pattern --push-pull --round-robin
  bool faults = true;       ///< --crash-prob --loss-prob
  bool parallelism = true;  ///< --threads
  bool protocol = true;     ///< --k --quanta-exp
  bool backend = true;      ///< --engine (object | soa | auto)
  bool simd = true;         ///< --simd (auto | scalar | avx2)
  bool timing = true;       ///< --timing
};

/// Declares the shared engine flags on `flags` with the historical ddcsim
/// defaults (overridable through `defaults` so e.g. ddcnode can default
/// --nodes to its cluster size).
void declare_engine_flags(Flags& flags, const sim::EngineConfig& defaults = {},
                          const EngineFlagSet& set = {});

/// Reads the flags declared by declare_engine_flags back out of a parsed
/// `flags` into an EngineConfig (validated; throws ddc::ConfigError /
/// FlagError on bad values). Groups disabled at declaration time keep
/// `defaults`' values. The --seed flag feeds both streams the way ddcsim
/// always has: protocol_seed = seed, environment seed = seed + 1.
[[nodiscard]] sim::EngineConfig parse_engine_config(
    const Flags& flags, const sim::EngineConfig& defaults = {},
    const EngineFlagSet& set = {});

/// True iff --timing was declared (set.timing) and requested.
[[nodiscard]] bool timing_requested(const Flags& flags);

}  // namespace ddc::cli
