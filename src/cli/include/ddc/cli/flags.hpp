// Minimal dependency-free command-line flag parsing for the ddcsim tool.
//
// Supports `--name value`, `--name=value`, bare boolean `--name`, and
// `--help`. Flags are declared up front with a description and default, so
// `--help` output is generated rather than hand-maintained.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include <ddc/common/error.hpp>

namespace ddc::cli {

/// Raised on unknown flags, missing values, or malformed numbers.
class FlagError : public Error {
 public:
  using Error::Error;
};

/// A declared-flags parser with typed accessors.
class Flags {
 public:
  Flags(std::string program, std::string description);

  /// Declares a string-valued flag (every flag is stored as text; typed
  /// getters convert on access).
  void declare(const std::string& name, const std::string& description,
               const std::string& default_value);

  /// Declares a boolean flag (default false; `--name` or `--name=true`).
  void declare_bool(const std::string& name, const std::string& description);

  /// Parses argv. Returns false if `--help` was requested (render it with
  /// `help_text()`); throws FlagError on malformed input. Later calls see
  /// values set by earlier ones (last setting wins).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// Parses a pre-split token list (testing convenience).
  [[nodiscard]] bool parse(const std::vector<std::string>& args);

  // Typed accessors; flag must have been declared.
  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// True iff the flag was explicitly set on the command line.
  [[nodiscard]] bool is_set(const std::string& name) const;

  /// True iff the flag has been declared (accessors require this).
  [[nodiscard]] bool declared(const std::string& name) const;

  /// The generated --help text.
  [[nodiscard]] std::string help_text() const;

  /// The declared flag closest to `name` (edit distance ≤ 2, or a
  /// declared name `name` is a prefix of), for "did you mean" hints on
  /// unknown flags. nullopt when nothing is close.
  [[nodiscard]] std::optional<std::string> suggest(
      const std::string& name) const;

 private:
  struct Entry {
    std::string description;
    std::string default_value;
    bool boolean = false;
    std::optional<std::string> value;
  };

  [[nodiscard]] const Entry& entry(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> declaration_order_;
};

}  // namespace ddc::cli
