// Struct-of-arrays round engine — the 10⁵–10⁶ node simulation backend.
//
// RoundRunner keeps one protocol object per node: a Classification with
// heap-allocated summaries, per-node inbox vectors, per-node option
// structs. At a million nodes that representation is dominated by pointer
// chasing and allocator metadata. SoaRoundEngine stores the SAME state in
// flat pools —
//
//   * node state: a weight-quanta array (n × k int64), a packed-summary
//     array (n × k × sd doubles, sd = doubles per summary) and a
//     collection-count array;
//   * in-flight messages: a fixed-slot arena of 2n message slots (slot i
//     holds node i's outgoing gossip, slot n+i holds the reply addressed
//     to node i), so the parallel prepare phase writes disjoint slots
//     with no allocation and no synchronization;
//   * inboxes: a CSR index over delivered slots, built by a stable
//     counting sort that preserves delivery order.
//
// Bit-identity with RoundRunner — the contract the golden equivalence
// suite pins — holds BY CONSTRUCTION, not by re-implementation: each
// worker chunk owns a scratch classifier (the very GenericClassifier the
// object engine runs); per node the engine rehydrates the scratch from
// the pools, runs the unmodified split/receive kernels, and writes the
// state back. Round structure, draw order (selection, loss, crash) and
// per-node call order replicate RoundRunner phase for phase:
//
//   1. plan     (sequential)  selection draws, reply bookkeeping
//   2. prepare  (parallel)    splits into the slot arena
//   3. deliver  (sequential)  loss draws, inbox CSR build, in node order
//   4. absorb   (parallel)    per receiver: union inbox slots, one receive
//   5. crash    (sequential)  end-of-round crash draws
//
// Deliberate non-features: no TraceRecorder (a per-event log defeats the
// point at 10⁶ nodes — use RoundRunner to trace) and no aux-vector
// tracking (O(n) per collection). Round mode only; the async engine's
// event heap is inherently per-node and stays on AsyncRunner.
//
// The Protocol parameter describes how one protocol's node state embeds
// into the pools (see ddc/gossip/scale.hpp for the centroid and GM
// bindings):
//
//   using Classifier = ...;            // the scratch node type
//   using Summary    = ...;            // its summary type
//   static constexpr bool has_node_rng;// per-node persistent RNG stream?
//   std::size_t k();                   // max collections per node
//   std::int64_t quanta_per_unit();
//   std::size_t summary_doubles();     // sd: packed doubles per summary
//   Classifier make_scratch();         // state is overwritten before use
//   void pack(const Summary&, double* out);
//   Summary unpack(const double* in);  // exact round-trip with pack
//   stats::Rng initial_rng(NodeId);            // iff has_node_rng
//   static stats::Rng& node_rng(Classifier&);  // iff has_node_rng
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/core/classifier.hpp>
#include <ddc/exec/parallel_for.hpp>
#include <ddc/exec/thread_pool.hpp>
#include <ddc/sim/gossip_node.hpp>
#include <ddc/sim/neighbor_selection.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::sim {

template <typename Protocol>
class SoaRoundEngine {
 public:
  using Classifier = typename Protocol::Classifier;
  using Summary = typename Protocol::Summary;
  using Message = core::Classification<Summary>;

  /// Builds the engine over `topology` with node i's initial state being
  /// one full-weight collection of summary `initial_summary(i)`.
  /// `initial_summary` is consumed during construction only.
  template <typename InitSummary>
  SoaRoundEngine(Topology topology, Protocol protocol,
                 RoundRunnerOptions options, InitSummary&& initial_summary)
      : topology_(std::move(topology)),
        protocol_(std::move(protocol)),
        options_(options),
        env_rng_(stats::Rng::derive(options.seed, 0x524e445255ULL)),
        loss_rng_(stats::Rng::derive(options.seed, 0x4c4f5353ULL)),
        n_(topology_.num_nodes()),
        k_(protocol_.k()),
        sd_(protocol_.summary_doubles()),
        alive_(n_, true),
        selector_(options.selection, n_),
        counts_(n_, 1),
        weights_(n_ * k_, 0),
        summaries_(n_ * k_ * sd_, 0.0),
        targets_(n_, kNoTarget),
        req_counts_(n_, 0),
        req_offsets_(n_ + 1, 0),
        req_initiators_(n_, 0),
        slot_counts_(2 * n_, 0),
        slot_weights_(2 * n_ * k_, 0),
        slot_summaries_(2 * n_ * k_ * sd_, 0.0),
        inbox_counts_(n_, 0),
        inbox_offsets_(n_ + 1, 0) {
    DDC_EXPECTS(n_ >= 2);
    DDC_EXPECTS(k_ >= 1);
    DDC_EXPECTS(sd_ >= 1);
    DDC_EXPECTS(options_.crash_probability >= 0.0 &&
                options_.crash_probability <= 1.0);
    DDC_EXPECTS(options_.message_loss_probability >= 0.0 &&
                options_.message_loss_probability <= 1.0);
    for (NodeId i = 0; i < n_; ++i) {
      weights_[i * k_] = protocol_.quanta_per_unit();
      protocol_.pack(initial_summary(i), &summaries_[i * k_ * sd_]);
    }
    if constexpr (Protocol::has_node_rng) {
      rngs_.reserve(n_);
      for (NodeId i = 0; i < n_; ++i) rngs_.push_back(protocol_.initial_rng(i));
    }
    const std::size_t threads = options_.parallelism == 0
                                    ? exec::ThreadPool::hardware_threads()
                                    : options_.parallelism;
    if (threads > 1) {
      pool_ = std::make_unique<exec::ThreadPool>(threads - 1);
    }
    const std::size_t chunks = exec::parallel_chunk_count(pool_.get(), n_);
    scratch_.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      scratch_.push_back(protocol_.make_scratch());
    }
    deliveries_.reserve(2 * n_);
  }

  /// Executes one round — same five phases, same environment draw order
  /// as RoundRunner<Node>::run_round.
  // ddcverify: hotpath
  void run_round() {
    plan_targets();
    // Audited timing probes (as in RoundRunner): the clock reads feed the
    // `--timing` counters only, never control flow.
    const auto t_prepare = std::chrono::steady_clock::now();  // ddclint: allow(wall-clock)
    prepare_messages();
    const auto t_deliver = std::chrono::steady_clock::now();  // ddclint: allow(wall-clock)
    timings_.prepare_seconds +=
        std::chrono::duration<double>(t_deliver - t_prepare).count();
    deliver_messages();
    const auto t_absorb = std::chrono::steady_clock::now();  // ddclint: allow(wall-clock)
    absorb_inboxes();
    timings_.absorb_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -  // ddclint: allow(wall-clock)
                                      t_absorb)
            .count();
    apply_crashes();
    ++round_;
  }

  void run_rounds(std::size_t count) {
    for (std::size_t r = 0; r < count; ++r) run_round();
  }

  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const RoundPhaseTimings& timings() const noexcept {
    return timings_;
  }

  [[nodiscard]] bool alive(NodeId i) const {
    DDC_EXPECTS(i < n_);
    return alive_[i];
  }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    std::size_t count = 0;
    for (const bool a : alive_) count += a ? 1 : 0;
    return count;
  }

  /// Node i's classification, rehydrated from the pools. O(k) — intended
  /// for probes, not per-round-per-node loops (use
  /// for_each_classification for sweeps).
  [[nodiscard]] Message classification_of(NodeId i) const {
    DDC_EXPECTS(i < n_);
    Message result;
    unpack_node(i, result);
    return result;
  }

  /// Streams every node's classification through `fn(i, classification)`
  /// in node order, reusing ONE scratch classification — no per-node
  /// history is ever materialized. The reference passed to `fn` is
  /// invalidated by the next iteration.
  template <typename Fn>
  void for_each_classification(Fn&& fn) const {
    Message scratch;
    for (NodeId i = 0; i < n_; ++i) {
      unpack_node(i, scratch);
      fn(i, static_cast<const Message&>(scratch));
    }
  }

  /// Sum of weight quanta held by all nodes, straight from the weight
  /// pool (the conservation audit at scale — no unpacking involved).
  [[nodiscard]] std::int64_t total_quanta() const noexcept {
    std::int64_t acc = 0;
    for (NodeId i = 0; i < n_; ++i) {
      for (std::size_t c = 0; c < counts_[i]; ++c) acc += weights_[i * k_ + c];
    }
    return acc;
  }

  /// Wall-clock the scratch classifiers spent inside the partition
  /// policy, summed over chunks (equals the per-node sum the object
  /// engine reports, since every receive runs on exactly one scratch).
  [[nodiscard]] double partition_seconds() const noexcept {
    double acc = 0.0;
    for (const Classifier& s : scratch_) acc += s.stats().partition_seconds;
    return acc;
  }

  /// Wall-clock inside EM, when the protocol's policy exposes it; 0.0 for
  /// policies without an EM stage.
  [[nodiscard]] double em_seconds() const noexcept {
    double acc = 0.0;
    for (const Classifier& s : scratch_) {
      if constexpr (requires { s.partition_policy().em_seconds(); }) {
        acc += s.partition_policy().em_seconds();
      }
    }
    return acc;
  }

 private:
  static constexpr NodeId kNoTarget = static_cast<NodeId>(-1);

  [[nodiscard]] bool sends_data() const noexcept {
    return options_.pattern != GossipPattern::pull;
  }
  [[nodiscard]] bool wants_reply() const noexcept {
    return options_.pattern != GossipPattern::push;
  }

  /// Phase 1 — mirrors RoundRunner::plan_targets draw for draw, then
  /// lowers the per-target request lists into a CSR (the counting sort
  /// fills ascending by initiator, reproducing push_back order).
  void plan_targets() {
    const bool replies = wants_reply();
    const bool avoid =
        options_.crash_send_policy == CrashSendPolicy::avoid_crashed;
    std::fill(targets_.begin(), targets_.end(), kNoTarget);
    if (replies) {
      std::fill(req_counts_.begin(), req_counts_.end(), std::size_t{0});
    }
    for (NodeId i = 0; i < n_; ++i) {
      if (!alive_[i]) continue;
      const std::optional<NodeId> target =
          selector_.pick(topology_, i, alive_, avoid, env_rng_);
      if (!target) continue;
      targets_[i] = *target;
      // A crashed contact cannot answer (reachable only under
      // drop_at_crashed); the request simply vanishes.
      if (replies && alive_[*target]) ++req_counts_[*target];
    }
    if (replies) {
      req_offsets_[0] = 0;
      for (NodeId j = 0; j < n_; ++j) {
        req_offsets_[j + 1] = req_offsets_[j] + req_counts_[j];
      }
      for (NodeId j = 0; j < n_; ++j) req_counts_[j] = req_offsets_[j];
      for (NodeId i = 0; i < n_; ++i) {
        const NodeId target = targets_[i];
        if (target == kNoTarget || !alive_[target]) continue;
        req_initiators_[req_counts_[target]++] = i;
      }
    }
  }

  /// Phase 2 — parallel splits into the slot arena. Each chunk's scratch
  /// classifier serves its nodes one after another; per node the split
  /// order (replies to lower-indexed initiators, own send, replies to
  /// higher-indexed ones) matches RoundRunner::prepare_messages exactly.
  void prepare_messages() {
    const bool sends = sends_data();
    const bool replies = wants_reply();
    std::fill(slot_counts_.begin(), slot_counts_.end(), std::uint32_t{0});
    exec::parallel_for_chunks(
        pool_.get(), n_,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Classifier& scratch = scratch_[chunk];
          for (NodeId j = begin; j < end; ++j) {
            if (replies) {
              const std::size_t rb = req_offsets_[j];
              const std::size_t re = req_offsets_[j + 1];
              const bool own_send = sends && targets_[j] != kNoTarget;
              if (rb == re && !own_send) continue;
              load_state(j, scratch);
              std::size_t r = rb;
              for (; r < re && req_initiators_[r] < j; ++r) {
                emit(scratch.split(), n_ + req_initiators_[r]);
              }
              if (own_send) emit(scratch.split(), j);
              for (; r < re; ++r) {
                emit(scratch.split(), n_ + req_initiators_[r]);
              }
              store_state(j, scratch);
            } else if (targets_[j] != kNoTarget) {
              load_state(j, scratch);
              emit(scratch.split(), j);
              store_state(j, scratch);
            }
          }
        });
  }

  /// Phase 3 — the wire, sequential in node order (loss draws included),
  /// then the inbox CSR via stable counting sort: per receiver, slots
  /// appear in delivery order, exactly like RoundRunner's inbox
  /// push_backs.
  void deliver_messages() {
    const bool sends = sends_data();
    const bool replies = wants_reply();
    deliveries_.clear();
    for (NodeId i = 0; i < n_; ++i) {
      if (!alive_[i]) continue;
      const NodeId target = targets_[i];
      if (target == kNoTarget) continue;
      if (sends && slot_counts_[i] > 0) transmit(target, i);
      if (replies && alive_[target] && slot_counts_[n_ + i] > 0) {
        // The contacted neighbor answers with half of its own state.
        transmit(i, n_ + i);
      }
    }
    std::fill(inbox_counts_.begin(), inbox_counts_.end(), std::size_t{0});
    for (const auto& [to, slot] : deliveries_) ++inbox_counts_[to];
    inbox_offsets_[0] = 0;
    for (NodeId j = 0; j < n_; ++j) {
      inbox_offsets_[j + 1] = inbox_offsets_[j] + inbox_counts_[j];
    }
    inbox_slots_.resize(deliveries_.size());
    for (NodeId j = 0; j < n_; ++j) inbox_counts_[j] = inbox_offsets_[j];
    for (const auto& [to, slot] : deliveries_) {
      inbox_slots_[inbox_counts_[to]++] = slot;
    }
  }

  /// Phase 4 — parallel batch absorption: per receiver, union the inbox
  /// slots in delivery order into one message, run one receive.
  void absorb_inboxes() {
    exec::parallel_for_chunks(
        pool_.get(), n_,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Classifier& scratch = scratch_[chunk];
          for (NodeId i = begin; i < end; ++i) {
            const std::size_t ib = inbox_offsets_[i];
            const std::size_t ie = inbox_offsets_[i + 1];
            if (!alive_[i] || ib == ie) continue;
            load_state(i, scratch);
            if constexpr (Protocol::has_node_rng) {
              Protocol::node_rng(scratch) = rngs_[i];
            }
            Message combined;
            for (std::size_t s = ib; s < ie; ++s) {
              unpack_slot(inbox_slots_[s], combined);
            }
            scratch.receive(std::move(combined));
            store_state(i, scratch);
            if constexpr (Protocol::has_node_rng) {
              rngs_[i] = Protocol::node_rng(scratch);
            }
          }
        });
  }

  /// Phase 5 — end-of-round crash draws, sequential.
  void apply_crashes() {
    if (options_.crash_probability <= 0.0) return;
    for (NodeId i = 0; i < n_; ++i) {
      if (alive_[i] && env_rng_.bernoulli(options_.crash_probability)) {
        alive_[i] = false;
      }
    }
  }

  /// Queues one non-empty message slot for delivery — the same
  /// dead-target / loss-draw sequence as RoundRunner::transmit.
  void transmit(NodeId to, std::size_t slot) {
    if (!alive_[to]) return;  // packet to a dead mote (drop_at_crashed)
    if (options_.message_loss_probability > 0.0 &&
        loss_rng_.bernoulli(options_.message_loss_probability)) {
      return;
    }
    deliveries_.emplace_back(to, slot);
  }

  /// Rehydrates node i's classification into the scratch classifier.
  void load_state(NodeId i, Classifier& scratch) const {
    auto& collections = scratch.mutable_classification().collections();
    collections.clear();
    for (std::size_t c = 0; c < counts_[i]; ++c) {
      collections.push_back(core::Collection<Summary>{
          protocol_.unpack(&summaries_[(i * k_ + c) * sd_]),
          core::Weight::from_quanta(weights_[i * k_ + c]),
          {}});
    }
  }

  /// Writes the scratch classifier's classification back into the pools.
  void store_state(NodeId i, const Classifier& scratch) {
    const auto& classification = scratch.classification();
    const std::size_t count = classification.size();
    DDC_ASSERT(count >= 1 && count <= k_);
    counts_[i] = static_cast<std::uint32_t>(count);
    for (std::size_t c = 0; c < count; ++c) {
      weights_[i * k_ + c] = classification[c].weight.quanta();
      protocol_.pack(classification[c].summary,
                     &summaries_[(i * k_ + c) * sd_]);
    }
  }

  /// Packs an outgoing message into its arena slot. Only the owning
  /// prepare task writes a given slot, so parallel emits are disjoint.
  void emit(Message message, std::size_t slot) {
    const std::size_t count = message.size();
    DDC_ASSERT(count <= k_);
    slot_counts_[slot] = static_cast<std::uint32_t>(count);
    for (std::size_t c = 0; c < count; ++c) {
      slot_weights_[slot * k_ + c] = message[c].weight.quanta();
      protocol_.pack(message[c].summary,
                     &slot_summaries_[(slot * k_ + c) * sd_]);
    }
  }

  /// Appends a slot's collections onto `message` in slot order.
  void unpack_slot(std::size_t slot, Message& message) const {
    for (std::size_t c = 0; c < slot_counts_[slot]; ++c) {
      message.add(core::Collection<Summary>{
          protocol_.unpack(&slot_summaries_[(slot * k_ + c) * sd_]),
          core::Weight::from_quanta(slot_weights_[slot * k_ + c]),
          {}});
    }
  }

  /// Rebuilds node i's classification into `out` (clearing it first).
  void unpack_node(NodeId i, Message& out) const {
    out.collections().clear();
    for (std::size_t c = 0; c < counts_[i]; ++c) {
      out.add(core::Collection<Summary>{
          protocol_.unpack(&summaries_[(i * k_ + c) * sd_]),
          core::Weight::from_quanta(weights_[i * k_ + c]),
          {}});
    }
  }

  Topology topology_;
  Protocol protocol_;
  RoundRunnerOptions options_;
  stats::Rng env_rng_;
  stats::Rng loss_rng_;
  std::size_t n_;
  std::size_t k_;
  std::size_t sd_;
  std::vector<bool> alive_;
  NeighborSelector selector_;

  // Node-state pools. counts_[i] collections live at rows i·k … i·k+c.
  std::vector<std::uint32_t> counts_;
  std::vector<std::int64_t> weights_;
  std::vector<double> summaries_;
  std::vector<stats::Rng> rngs_;  // engaged iff Protocol::has_node_rng

  // Per-round plan (sequential writes, parallel reads).
  std::vector<NodeId> targets_;
  std::vector<std::size_t> req_counts_;
  std::vector<std::size_t> req_offsets_;
  std::vector<NodeId> req_initiators_;

  // Message slot arena: slot i = node i's outgoing gossip, slot n+i =
  // the reply addressed to node i. Parallel writes hit disjoint slots.
  std::vector<std::uint32_t> slot_counts_;
  std::vector<std::int64_t> slot_weights_;
  std::vector<double> slot_summaries_;

  // Deliveries of a round and the CSR inbox built from them.
  std::vector<std::pair<NodeId, std::size_t>> deliveries_;
  std::vector<std::size_t> inbox_counts_;
  std::vector<std::size_t> inbox_offsets_;
  std::vector<std::size_t> inbox_slots_;

  // One scratch classifier per parallel chunk; their stats accumulate
  // the work of every node they served (see partition_seconds()).
  std::vector<Classifier> scratch_;

  std::unique_ptr<exec::ThreadPool> pool_;
  std::size_t round_ = 0;
  RoundPhaseTimings timings_;
};

}  // namespace ddc::sim
