// Synchronous round-based simulation driver.
//
// Reproduces the paper's measurement methodology (Section 5.3): "we
// measure progress in rounds, where in each round each node sends a
// classification to one neighbor. Nodes that receive classifications from
// multiple neighbors accumulate all the received collections and run EM
// once for the entire set." Crash failures follow Figure 4's model: after
// each round every live node crashes independently with fixed probability.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/sim/gossip_node.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/sim/trace.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::sim {

/// What a live node does about crashed neighbors.
enum class CrashSendPolicy {
  /// Nodes detect dead neighbors and gossip only with live ones (a radio
  /// mote notices silence). Weight is lost only when a node crashes while
  /// holding it — the Fig. 4 regime.
  avoid_crashed,
  /// Nodes keep addressing crashed neighbors; those messages (and their
  /// weight) vanish. On dense graphs with heavy mortality this drains the
  /// whole system's weight — a harsher failure model, kept for study.
  drop_at_crashed,
};

/// Configuration of a round-based run.
struct RoundRunnerOptions {
  NeighborSelection selection = NeighborSelection::uniform_random;
  GossipPattern pattern = GossipPattern::push;
  /// Per-node probability of crashing at the end of each round (Fig. 4
  /// uses 0.05; 0 disables crashes).
  double crash_probability = 0.0;
  CrashSendPolicy crash_send_policy = CrashSendPolicy::avoid_crashed;
  /// Probability that any individual message is silently lost in the
  /// channel. The paper's model assumes RELIABLE links (Section 3.1) — a
  /// nonzero value deliberately violates that assumption so its role can
  /// be studied (bench/abl_channel_reliability): lost messages destroy
  /// weight, which the protocol never recovers.
  double message_loss_probability = 0.0;
  /// Seed for neighbor selection, crash and loss draws.
  std::uint64_t seed = 1;
};

/// Drives one node object per topology vertex through synchronous gossip
/// rounds. The runner owns the nodes; experiments inspect them between
/// rounds through `nodes()`.
template <GossipNode Node>
class RoundRunner {
 public:
  using Message = typename Node::Message;

  /// Takes ownership of `nodes` (one per topology vertex).
  RoundRunner(Topology topology, std::vector<Node> nodes,
              RoundRunnerOptions options = {})
      : topology_(std::move(topology)),
        nodes_(std::move(nodes)),
        options_(options),
        env_rng_(stats::Rng::derive(options.seed, 0x524e445255ULL)),
        alive_(nodes_.size(), true),
        rr_position_(nodes_.size(), 0) {
    DDC_EXPECTS(nodes_.size() == topology_.num_nodes());
    DDC_EXPECTS(options_.crash_probability >= 0.0 &&
                options_.crash_probability <= 1.0);
    DDC_EXPECTS(options_.message_loss_probability >= 0.0 &&
                options_.message_loss_probability <= 1.0);
  }

  /// Executes one round: every live node sends to one neighbor; every live
  /// node then absorbs everything it received in a single batch; finally
  /// crash draws are applied.
  void run_round() {
    std::vector<std::vector<Message>> inbox(nodes_.size());
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      if (!alive_[i]) continue;
      const std::optional<NodeId> maybe_target = select_neighbor(i);
      if (!maybe_target) {
        trace(TraceEventType::no_live_neighbor, i, i, 0);
        continue;  // no eligible neighbor left
      }
      const NodeId target = *maybe_target;
      Message msg = nodes_[i].prepare_message();
      if (!msg.empty()) {
        transmit(i, target, std::move(msg), inbox);
      }
      if (options_.pattern == GossipPattern::push_pull && alive_[target]) {
        // The contacted neighbor answers with half of its own state.
        Message reply = nodes_[target].prepare_message();
        if (!reply.empty()) {
          transmit(target, i, std::move(reply), inbox);
        }
      }
    }
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      if (alive_[i] && !inbox[i].empty()) {
        nodes_[i].absorb(std::move(inbox[i]));
      }
    }
    if (options_.crash_probability > 0.0) {
      for (NodeId i = 0; i < nodes_.size(); ++i) {
        if (alive_[i] && env_rng_.bernoulli(options_.crash_probability)) {
          alive_[i] = false;
          trace(TraceEventType::crash, i, i, 0);
        }
      }
    }
    ++round_;
  }

  /// Executes `count` rounds.
  void run_rounds(std::size_t count) {
    for (std::size_t r = 0; r < count; ++r) run_round();
  }

  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::vector<Node>& nodes() noexcept { return nodes_; }

  /// Attaches (or detaches, with nullptr) an execution trace recorder.
  /// The recorder is borrowed and must outlive the runs it observes.
  void set_trace(TraceRecorder* recorder) noexcept { trace_ = recorder; }

  [[nodiscard]] bool alive(NodeId i) const {
    DDC_EXPECTS(i < alive_.size());
    return alive_[i];
  }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    std::size_t count = 0;
    for (const bool a : alive_) count += a ? 1 : 0;
    return count;
  }

 private:
  /// One loss draw per message (only when losses are configured, to keep
  /// loss-free executions' randomness untouched).
  [[nodiscard]] bool channel_drops() {
    return options_.message_loss_probability > 0.0 &&
           env_rng_.bernoulli(options_.message_loss_probability);
  }

  /// Payload size proxy: collections for classification messages, 1 for
  /// scalar protocols like push-sum.
  [[nodiscard]] static std::size_t payload_units(const Message& msg) {
    if constexpr (requires { msg.size(); }) {
      return msg.size();
    } else {
      return 1;
    }
  }

  void trace(TraceEventType type, NodeId from, NodeId to, std::size_t payload) {
    if (trace_ != nullptr) trace_->record({round_, type, from, to, payload});
  }

  /// Puts one message on the wire: records the send, then either loses it,
  /// drops it at a dead target, or queues it for delivery.
  void transmit(NodeId from, NodeId to, Message msg,
                std::vector<std::vector<Message>>& inbox) {
    const std::size_t payload = payload_units(msg);
    trace(TraceEventType::send, from, to, payload);
    if (!alive_[to]) {
      // Reachable only under drop_at_crashed: a packet to a dead mote.
      trace(TraceEventType::dead_target, from, to, payload);
      return;
    }
    if (channel_drops()) {
      trace(TraceEventType::loss, from, to, payload);
      return;
    }
    trace(TraceEventType::deliver, from, to, payload);
    inbox[to].push_back(std::move(msg));
  }

  /// Picks i's gossip target, honouring the crash-send policy. Returns
  /// nullopt when every eligible neighbor is dead.
  [[nodiscard]] std::optional<NodeId> select_neighbor(NodeId i) {
    const std::span<const NodeId> nbrs = topology_.neighbors(i);
    DDC_ASSERT(!nbrs.empty());
    const bool avoid =
        options_.crash_send_policy == CrashSendPolicy::avoid_crashed;
    switch (options_.selection) {
      case NeighborSelection::round_robin: {
        // Advance past dead neighbors (at most one lap).
        for (std::size_t step = 0; step < nbrs.size(); ++step) {
          const NodeId target = nbrs[rr_position_[i] % nbrs.size()];
          rr_position_[i] = (rr_position_[i] + 1) % nbrs.size();
          if (!avoid || alive_[target]) return target;
        }
        return std::nullopt;
      }
      case NeighborSelection::uniform_random: {
        if (!avoid) return nbrs[env_rng_.uniform_index(nbrs.size())];
        std::vector<NodeId> live;
        live.reserve(nbrs.size());
        for (const NodeId t : nbrs) {
          if (alive_[t]) live.push_back(t);
        }
        if (live.empty()) return std::nullopt;
        return live[env_rng_.uniform_index(live.size())];
      }
    }
    DDC_ASSERT(false);
    return std::nullopt;
  }

  Topology topology_;
  std::vector<Node> nodes_;
  RoundRunnerOptions options_;
  stats::Rng env_rng_;
  std::vector<bool> alive_;
  std::vector<std::size_t> rr_position_;
  std::size_t round_ = 0;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace ddc::sim
