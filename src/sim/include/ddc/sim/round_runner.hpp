// Synchronous round-based simulation driver.
//
// Reproduces the paper's measurement methodology (Section 5.3): "we
// measure progress in rounds, where in each round each node sends a
// classification to one neighbor. Nodes that receive classifications from
// multiple neighbors accumulate all the received collections and run EM
// once for the entire set." Crash failures follow Figure 4's model: after
// each round every live node crashes independently with fixed probability.
//
// Execution model — a round is five phases:
//   1. plan     (sequential)  environment draws: neighbor selection
//   2. prepare  (parallel)    every sender/responder splits its state
//   3. deliver  (sequential)  traces, loss draws, inbox fill, in node order
//   4. absorb   (parallel)    every receiver unions its inbox, runs EM once
//   5. crash    (sequential)  end-of-round crash draws
//
// Phases 2 and 4 touch only node-local state (each node's classifier and
// its own RNG stream), so they fan out across a thread pool when
// `RoundRunnerOptions::parallelism > 1` — with results BIT-IDENTICAL to
// `parallelism = 1`, because which thread runs a node never changes what
// that node computes, and every environment draw stays on the sequential
// phases. See DESIGN.md ("Parallel simulation engine") for the argument.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/exec/parallel_for.hpp>
#include <ddc/exec/thread_pool.hpp>
#include <ddc/sim/gossip_node.hpp>
#include <ddc/sim/neighbor_selection.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/sim/trace.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::sim {

// CrashSendPolicy moved to gossip_node.hpp (the shared options
// vocabulary) so EngineConfig's fault model can name it without pulling
// in a whole engine header; it remains ddc::sim::CrashSendPolicy.

/// Configuration of a round-based run. Selection, pattern and seed come
/// from the shared options layer (CommonRunnerOptions).
struct RoundRunnerOptions : CommonRunnerOptions {
  /// Per-node probability of crashing at the end of each round (Fig. 4
  /// uses 0.05; 0 disables crashes).
  double crash_probability = 0.0;
  CrashSendPolicy crash_send_policy = CrashSendPolicy::avoid_crashed;
  /// Probability that any individual message is silently lost in the
  /// channel. The paper's model assumes RELIABLE links (Section 3.1) — a
  /// nonzero value deliberately violates that assumption so its role can
  /// be studied (bench/abl_channel_reliability): lost messages destroy
  /// weight, which the protocol never recovers. Loss draws come from a
  /// stream derived independently of the selection/crash stream, so
  /// turning losses on does not reshuffle anyone's neighbor choices.
  double message_loss_probability = 0.0;
  /// Worker threads for the prepare/absorb phases: 1 runs fully
  /// sequentially (no pool is even created), 0 means one per hardware
  /// thread. Any value produces bit-identical results.
  std::size_t parallelism = 1;
};

/// Accumulated wall-clock of the two parallel phases, measured once per
/// round around the whole phase (two clock reads each — negligible next
/// to the phase bodies). Feeds `ddcsim --timing`.
struct RoundPhaseTimings {
  double prepare_seconds = 0.0;
  double absorb_seconds = 0.0;
};

/// Drives one node object per topology vertex through synchronous gossip
/// rounds. The runner owns the nodes; experiments inspect them between
/// rounds through `nodes()`.
template <GossipNode Node>
class RoundRunner {
 public:
  using Message = typename Node::Message;

  /// Takes ownership of `nodes` (one per topology vertex).
  RoundRunner(Topology topology, std::vector<Node> nodes,
              RoundRunnerOptions options = {})
      : topology_(std::move(topology)),
        nodes_(std::move(nodes)),
        options_(options),
        env_rng_(stats::Rng::derive(options.seed, 0x524e445255ULL)),
        loss_rng_(stats::Rng::derive(options.seed, 0x4c4f5353ULL)),
        alive_(nodes_.size(), true),
        selector_(options.selection, nodes_.size()),
        targets_(nodes_.size()),
        outbox_(nodes_.size()),
        replies_(nodes_.size()),
        reply_requests_(nodes_.size()),
        inbox_(nodes_.size()) {
    DDC_EXPECTS(nodes_.size() == topology_.num_nodes());
    DDC_EXPECTS(options_.crash_probability >= 0.0 &&
                options_.crash_probability <= 1.0);
    DDC_EXPECTS(options_.message_loss_probability >= 0.0 &&
                options_.message_loss_probability <= 1.0);
    const std::size_t threads = options_.parallelism == 0
                                    ? exec::ThreadPool::hardware_threads()
                                    : options_.parallelism;
    if (threads > 1) {
      // The calling thread participates in parallel_for, so a pool of
      // threads-1 workers yields `threads` concurrent lanes.
      pool_ = std::make_unique<exec::ThreadPool>(threads - 1);
    }
  }

  /// Executes one round: every live node contacts one neighbor (push,
  /// pull, or push-pull); every live node then absorbs everything it
  /// received in a single batch; finally crash draws are applied.
  void run_round() {
    plan_targets();
    // Audited timing probes: the clock reads feed only the phase
    // counters reported by `ddcsim --timing`, never control flow, so
    // the round's outcome stays a pure function of (options, seed).
    const auto t_prepare = std::chrono::steady_clock::now();  // ddclint: allow(wall-clock)
    prepare_messages();
    const auto t_deliver = std::chrono::steady_clock::now();  // ddclint: allow(wall-clock)
    timings_.prepare_seconds +=
        std::chrono::duration<double>(t_deliver - t_prepare).count();
    deliver_messages();
    const auto t_absorb = std::chrono::steady_clock::now();  // ddclint: allow(wall-clock)
    absorb_inboxes();
    timings_.absorb_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -  // ddclint: allow(wall-clock)
                                      t_absorb)
            .count();
    apply_crashes();
    ++round_;
  }

  /// Executes `count` rounds.
  void run_rounds(std::size_t count) {
    for (std::size_t r = 0; r < count; ++r) run_round();
  }

  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] const RoundPhaseTimings& timings() const noexcept {
    return timings_;
  }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::vector<Node>& nodes() noexcept { return nodes_; }

  /// Attaches (or detaches, with nullptr) an execution trace recorder.
  /// The recorder is borrowed and must outlive the runs it observes.
  void set_trace(TraceRecorder* recorder) noexcept { trace_ = recorder; }

  [[nodiscard]] bool alive(NodeId i) const {
    DDC_EXPECTS(i < alive_.size());
    return alive_[i];
  }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    std::size_t count = 0;
    for (const bool a : alive_) count += a ? 1 : 0;
    return count;
  }

 private:
  [[nodiscard]] bool sends_data() const noexcept {
    return options_.pattern != GossipPattern::pull;
  }
  [[nodiscard]] bool wants_reply() const noexcept {
    return options_.pattern != GossipPattern::push;
  }

  /// Phase 1 — environment draws only. Picks every live node's gossip
  /// target and, for patterns with a pull component, records who owes
  /// whom a reply. Consumes exactly the selection draws, in node order,
  /// regardless of message contents or thread count.
  void plan_targets() {
    const bool replies = wants_reply();
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      targets_[i].reset();
      if (replies) reply_requests_[i].clear();
    }
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      if (!alive_[i]) continue;
      targets_[i] = select_neighbor(i);
      if (replies && targets_[i] && alive_[*targets_[i]]) {
        // A crashed contact cannot answer (reachable only under
        // drop_at_crashed); the request simply vanishes.
        reply_requests_[*targets_[i]].push_back(i);
      }
    }
  }

  /// Phase 2 — node-local splits, parallel over nodes. Each node performs
  /// ITS OWN prepare_message calls in the order the sequential engine
  /// would have reached them (ascending initiator index, its own send
  /// between the requests from lower- and higher-indexed initiators), so
  /// the node's state evolution — and hence every produced message — is
  /// independent of scheduling.
  void prepare_messages() {
    const bool sends = sends_data();
    const bool replies = wants_reply();
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      outbox_[i].reset();
      replies_[i].reset();
    }
    exec::parallel_for(pool_.get(), nodes_.size(), [&](std::size_t j) {
      if (replies) {
        const std::vector<NodeId>& requests = reply_requests_[j];
        std::size_t r = 0;
        for (; r < requests.size() && requests[r] < j; ++r) {
          replies_[requests[r]] = nodes_[j].prepare_message();
        }
        if (sends && targets_[j]) outbox_[j] = nodes_[j].prepare_message();
        for (; r < requests.size(); ++r) {
          replies_[requests[r]] = nodes_[j].prepare_message();
        }
      } else if (targets_[j]) {
        outbox_[j] = nodes_[j].prepare_message();
      }
    });
  }

  /// Phase 3 — the wire, sequential in node order: trace events, loss
  /// draws and inbox fills happen exactly as the sequential engine
  /// interleaves them.
  void deliver_messages() {
    const bool sends = sends_data();
    const bool replies = wants_reply();
    for (NodeId i = 0; i < nodes_.size(); ++i) inbox_[i].clear();
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      if (!alive_[i]) continue;
      if (!targets_[i]) {
        trace(TraceEventType::no_live_neighbor, i, i, 0);
        continue;  // no eligible neighbor left
      }
      const NodeId target = *targets_[i];
      if (sends && outbox_[i] && !outbox_[i]->empty()) {
        transmit(i, target, std::move(*outbox_[i]));
      }
      if (replies && replies_[i] && !replies_[i]->empty()) {
        // The contacted neighbor answers with half of its own state.
        transmit(target, i, std::move(*replies_[i]));
      }
    }
  }

  /// Phase 4 — node-local batch absorption, parallel over nodes (the
  /// per-receiver EM run is the round's dominant cost).
  void absorb_inboxes() {
    exec::parallel_for(pool_.get(), nodes_.size(), [&](std::size_t i) {
      if (alive_[i] && !inbox_[i].empty()) {
        nodes_[i].absorb(std::move(inbox_[i]));
      }
    });
  }

  /// Phase 5 — end-of-round crash draws, sequential.
  void apply_crashes() {
    if (options_.crash_probability <= 0.0) return;
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      if (alive_[i] && env_rng_.bernoulli(options_.crash_probability)) {
        alive_[i] = false;
        trace(TraceEventType::crash, i, i, 0);
      }
    }
  }

  /// One loss draw per message (only when losses are configured, to keep
  /// loss-free executions' randomness untouched).
  [[nodiscard]] bool channel_drops() {
    return options_.message_loss_probability > 0.0 &&
           loss_rng_.bernoulli(options_.message_loss_probability);
  }

  /// Payload size proxy: collections for classification messages, 1 for
  /// scalar protocols like push-sum.
  [[nodiscard]] static std::size_t payload_units(const Message& msg) {
    if constexpr (requires { msg.size(); }) {
      return msg.size();
    } else {
      return 1;
    }
  }

  void trace(TraceEventType type, NodeId from, NodeId to, std::size_t payload) {
    if (trace_ != nullptr) trace_->record({round_, type, from, to, payload});
  }

  /// Puts one message on the wire: records the send, then either loses it,
  /// drops it at a dead target, or queues it for delivery.
  void transmit(NodeId from, NodeId to, Message msg) {
    const std::size_t payload = payload_units(msg);
    trace(TraceEventType::send, from, to, payload);
    if (!alive_[to]) {
      // Reachable only under drop_at_crashed: a packet to a dead mote.
      trace(TraceEventType::dead_target, from, to, payload);
      return;
    }
    if (channel_drops()) {
      trace(TraceEventType::loss, from, to, payload);
      return;
    }
    trace(TraceEventType::deliver, from, to, payload);
    inbox_[to].push_back(std::move(msg));
  }

  /// Picks i's gossip target, honouring the crash-send policy. Returns
  /// nullopt when every eligible neighbor is dead.
  [[nodiscard]] std::optional<NodeId> select_neighbor(NodeId i) {
    const bool avoid =
        options_.crash_send_policy == CrashSendPolicy::avoid_crashed;
    return selector_.pick(topology_, i, alive_, avoid, env_rng_);
  }

  Topology topology_;
  std::vector<Node> nodes_;
  RoundRunnerOptions options_;
  stats::Rng env_rng_;
  stats::Rng loss_rng_;
  std::vector<bool> alive_;
  NeighborSelector selector_;
  // Per-round scratch, kept across rounds to avoid reallocating. All of it
  // is written either sequentially or at disjoint indices (phase 2 writes
  // outbox_[j] / replies_[i] from the single task that owns the involved
  // node; phase 4 consumes inbox_[i] from the task that owns i).
  std::vector<std::optional<NodeId>> targets_;
  std::vector<std::optional<Message>> outbox_;
  std::vector<std::optional<Message>> replies_;
  std::vector<std::vector<NodeId>> reply_requests_;
  std::vector<std::vector<Message>> inbox_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::size_t round_ = 0;
  RoundPhaseTimings timings_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace ddc::sim
