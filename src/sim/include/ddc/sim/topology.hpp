// Network topologies.
//
// The paper's model (Section 3.1) is a static directed connected network
// of n nodes with reliable asynchronous channels, and its convergence
// theorem holds for *any* such topology. This module provides the standard
// families used by the evaluation and the ablations: the fully-connected
// graph of Section 5.3, rings/lines/grids, random geometric graphs (the
// natural model of a radio sensor field), and Erdős–Rényi graphs.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include <ddc/stats/rng.hpp>

namespace ddc::sim {

using NodeId = std::size_t;

/// A static directed graph with adjacency lists. Immutable once built.
class Topology {
 public:
  /// Graph from explicit directed edges. Self-loops and duplicate edges
  /// are rejected.
  [[nodiscard]] static Topology from_edges(
      std::size_t num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Complete graph K_n (the evaluation topology of Section 5.3).
  /// Requires n ≥ 2.
  [[nodiscard]] static Topology complete(std::size_t n);

  /// Bidirectional ring 0–1–…–(n−1)–0. Requires n ≥ 2.
  [[nodiscard]] static Topology ring(std::size_t n);

  /// Unidirectional (directed) ring — the minimal strongly-connected
  /// digraph; a stress case for convergence. Requires n ≥ 2.
  [[nodiscard]] static Topology directed_ring(std::size_t n);

  /// Bidirectional path 0–1–…–(n−1). Requires n ≥ 2.
  [[nodiscard]] static Topology line(std::size_t n);

  /// Star with node 0 at the center. Requires n ≥ 2.
  [[nodiscard]] static Topology star(std::size_t n);

  /// rows×cols 4-neighbor grid, optionally wrapped into a torus.
  /// Requires rows·cols ≥ 2.
  [[nodiscard]] static Topology grid(std::size_t rows, std::size_t cols,
                                     bool torus = false);

  /// Random geometric graph: n nodes placed uniformly in the unit square,
  /// connected when within `radius`. Models radio range in a sensor field.
  /// Redraws positions (up to `max_attempts`) until the graph is
  /// connected; throws ddc::ConfigError if that never happens.
  [[nodiscard]] static Topology random_geometric(std::size_t n, double radius,
                                                 stats::Rng& rng,
                                                 std::size_t max_attempts = 100);

  /// Erdős–Rényi G(n, p), redrawn until connected (up to `max_attempts`).
  [[nodiscard]] static Topology erdos_renyi(std::size_t n, double p,
                                            stats::Rng& rng,
                                            std::size_t max_attempts = 100);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return out_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Out-neighbors of `i` — the nodes `i` may send to.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId i) const;

  /// True iff there is an edge i → j.
  [[nodiscard]] bool has_edge(NodeId i, NodeId j) const;

  /// Strong connectivity (the paper's standing assumption).
  [[nodiscard]] bool is_connected() const;

  /// Diameter of the underlying graph (longest shortest path, following
  /// directed edges). Requires a connected graph.
  [[nodiscard]] std::size_t diameter() const;

  /// Node positions in the unit square — engaged for random_geometric
  /// topologies (useful for examples that want spatial semantics).
  [[nodiscard]] const std::optional<std::vector<std::pair<double, double>>>&
  positions() const noexcept {
    return positions_;
  }

 private:
  explicit Topology(std::size_t n) : out_(n) {}
  void add_edge(NodeId from, NodeId to);
  void add_undirected(NodeId a, NodeId b);

  std::vector<std::vector<NodeId>> out_;
  std::size_t num_edges_ = 0;
  std::optional<std::vector<std::pair<double, double>>> positions_;
};

}  // namespace ddc::sim
