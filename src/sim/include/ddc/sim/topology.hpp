// Network topologies.
//
// The paper's model (Section 3.1) is a static directed connected network
// of n nodes with reliable asynchronous channels, and its convergence
// theorem holds for *any* such topology. This module provides the standard
// families used by the evaluation and the ablations: the fully-connected
// graph of Section 5.3, rings/lines/grids, random geometric graphs (the
// natural model of a radio sensor field), and Erdős–Rényi graphs.
//
// Storage is compressed sparse row (CSR): one flat offsets array and one
// flat targets array, so a million-node sparse graph costs two cache-dense
// allocations instead of a million little adjacency vectors, and
// `neighbors(i)` is an O(1) span lookup. Neighbor ORDER is part of the
// contract — the engines' round-robin cursors and uniform draws index into
// it — and matches the historical per-node insertion order exactly.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include <ddc/stats/rng.hpp>

namespace ddc::sim {

using NodeId = std::size_t;

/// A static directed graph in CSR form. Immutable once built.
class Topology {
 public:
  /// Graph from explicit directed edges. Self-loops and duplicate edges
  /// are rejected.
  [[nodiscard]] static Topology from_edges(
      std::size_t num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Complete graph K_n (the evaluation topology of Section 5.3).
  /// Requires n ≥ 2.
  [[nodiscard]] static Topology complete(std::size_t n);

  /// Bidirectional ring 0–1–…–(n−1)–0. Requires n ≥ 2.
  [[nodiscard]] static Topology ring(std::size_t n);

  /// Unidirectional (directed) ring — the minimal strongly-connected
  /// digraph; a stress case for convergence. Requires n ≥ 2.
  [[nodiscard]] static Topology directed_ring(std::size_t n);

  /// Bidirectional path 0–1–…–(n−1). Requires n ≥ 2.
  [[nodiscard]] static Topology line(std::size_t n);

  /// Star with node 0 at the center. Requires n ≥ 2.
  [[nodiscard]] static Topology star(std::size_t n);

  /// rows×cols 4-neighbor grid, optionally wrapped into a torus.
  /// Requires rows·cols ≥ 2.
  [[nodiscard]] static Topology grid(std::size_t rows, std::size_t cols,
                                     bool torus = false);

  /// Random geometric graph: n nodes placed uniformly in the unit square,
  /// connected when within `radius`. Models radio range in a sensor field.
  /// Redraws positions (up to `max_attempts`) until the graph is
  /// connected; throws ddc::ConfigError if that never happens.
  ///
  /// Candidate pairs come from a grid-bucketed neighbor search (cells of
  /// side `radius`, 3×3 stencil), so construction is O(n + edges) expected
  /// instead of the all-pairs O(n²) — feasible at 10⁵–10⁶ nodes. The
  /// positions drawn, the edge set and the neighbor order are identical to
  /// the historical all-pairs scan (seed-era draw order preserved;
  /// topology_test pins this against a reference implementation).
  [[nodiscard]] static Topology random_geometric(std::size_t n, double radius,
                                                 stats::Rng& rng,
                                                 std::size_t max_attempts = 100);

  /// Erdős–Rényi G(n, p), redrawn until connected (up to `max_attempts`).
  [[nodiscard]] static Topology erdos_renyi(std::size_t n, double p,
                                            stats::Rng& rng,
                                            std::size_t max_attempts = 100);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return targets_.size();
  }

  /// Out-neighbors of `i` — the nodes `i` may send to. O(1), a view into
  /// the CSR targets array; valid as long as the topology lives.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId i) const;

  /// Out-degree of `i`.
  [[nodiscard]] std::size_t degree(NodeId i) const {
    return neighbors(i).size();
  }

  /// True iff there is an edge i → j.
  [[nodiscard]] bool has_edge(NodeId i, NodeId j) const;

  /// Strong connectivity (the paper's standing assumption).
  [[nodiscard]] bool is_connected() const;

  /// Diameter of the underlying graph (longest shortest path, following
  /// directed edges). Requires a connected graph.
  [[nodiscard]] std::size_t diameter() const;

  /// Node positions in the unit square — engaged for random_geometric
  /// topologies (useful for examples that want spatial semantics).
  [[nodiscard]] const std::optional<std::vector<std::pair<double, double>>>&
  positions() const noexcept {
    return positions_;
  }

 private:
  /// Accumulates directed edges in insertion order, then compresses into
  /// CSR with a stable counting sort by source — so each node's neighbor
  /// list keeps the exact order in which its edges were added, matching
  /// the pre-CSR adjacency-vector behaviour draw for draw.
  class Builder {
   public:
    explicit Builder(std::size_t n) : degree_(n, 0) {}
    void add_edge(NodeId from, NodeId to);
    void add_undirected(NodeId a, NodeId b);
    [[nodiscard]] std::size_t num_nodes() const noexcept {
      return degree_.size();
    }
    /// Compresses into a Topology. Rejects duplicate edges (DDC_EXPECTS).
    [[nodiscard]] Topology finish() &&;

   private:
    std::vector<std::pair<NodeId, NodeId>> edges_;
    std::vector<std::size_t> degree_;
  };

  Topology() = default;

  std::size_t num_nodes_ = 0;
  /// offsets_[i]..offsets_[i+1] delimit node i's slice of targets_.
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> targets_;
  std::optional<std::vector<std::pair<double, double>>> positions_;
};

}  // namespace ddc::sim
