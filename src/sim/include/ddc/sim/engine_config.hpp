// EngineConfig — the one configuration object behind every simulation.
//
// Before this existed each tool, bench and test assembled a run from four
// loose pieces: a hand-built Topology, a RoundRunnerOptions or
// AsyncRunnerOptions struct, a gossip::NetworkConfig, and ad-hoc flag
// parsing to fill them. EngineConfig subsumes all of it — the shared
// gossip options (it extends CommonRunnerOptions), a declarative topology
// spec, the fault model, parallelism, and the engine/backend choice — so
// every consumer migrates through one seam:
//
//   sim::EngineConfig config;
//   config.topology = {sim::TopologyFamily::geometric, 100'000};
//   config.backend = sim::EngineBackend::soa;
//   auto engine = gossip::make_centroid_scale_engine(config, inputs);
//
// The runner factories in gossip/runners.hpp are re-expressed on top of
// this type; cli::parse_engine_config builds one from command-line flags.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include <ddc/linalg/simd.hpp>
#include <ddc/sim/async_runner.hpp>
#include <ddc/sim/gossip_node.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::sim {

/// The topology families the evaluation and ablations use. `torus` is
/// grid with wrap-around, kept distinct because the CLI names it.
enum class TopologyFamily {
  complete,
  ring,
  directed_ring,
  line,
  star,
  grid,
  torus,
  geometric,
  erdos_renyi,
};

/// Parses the CLI spelling (complete | ring | dring | line | star | grid |
/// torus | geometric | er). Throws ddc::ConfigError on anything else.
[[nodiscard]] TopologyFamily parse_topology_family(const std::string& name);

/// The CLI spelling of a family (inverse of parse_topology_family).
[[nodiscard]] const char* topology_family_name(TopologyFamily family);

/// Declarative topology description — family plus size plus the family's
/// shape parameters, buildable on demand (and on every shard of a
/// distributed run, since construction is deterministic given the RNG).
struct TopologySpec {
  TopologyFamily family = TopologyFamily::complete;
  std::size_t nodes = 200;
  /// Connection radius for `geometric`; 0 selects the ddcsim-era default
  /// max(0.15, 2/√n).
  double radius = 0.0;
  /// Edge probability for `erdos_renyi`; 0 selects the ddcsim-era default
  /// max(0.05, 8/n).
  double edge_probability = 0.0;

  /// Builds the graph. Only `geometric` and `erdos_renyi` consume RNG
  /// draws; deterministic families ignore `rng` entirely, so the draw
  /// stream is identical to the historical per-tool construction code.
  [[nodiscard]] Topology build(stats::Rng& rng) const;

  /// The radius/probability actually used (resolving the 0 defaults).
  [[nodiscard]] double resolved_radius() const;
  [[nodiscard]] double resolved_edge_probability() const;
};

/// Fault injection, shared by the round and scale engines. The async
/// engine models the paper's reliable crash-free channels and ignores it.
struct FaultModel {
  /// Per-node probability of crashing at the end of each round (Fig. 4
  /// uses 0.05; 0 disables crashes).
  double crash_probability = 0.0;
  CrashSendPolicy crash_send_policy = CrashSendPolicy::avoid_crashed;
  /// Per-message silent loss probability (0 preserves the paper's
  /// reliable-link assumption; see RoundRunnerOptions for the caveats).
  double message_loss_probability = 0.0;
};

/// Which driver executes the run.
enum class EngineMode {
  round,  ///< synchronous rounds (the paper's measurement methodology)
  async,  ///< event-driven, arbitrary delays (the convergence model)
};

/// Which node-state representation backs the run.
enum class EngineBackend {
  /// One heap-allocated protocol object per node (RoundRunner /
  /// AsyncRunner). Right for ≤ ~10k nodes and for protocols without
  /// scale-engine traits.
  object,
  /// Struct-of-arrays pools + message arenas (SoaRoundEngine). Bit-
  /// identical to `object` for supported protocols; built for 10⁵–10⁶
  /// nodes. Round mode only.
  soa,
  /// `soa` when the run qualifies (round mode, ≥ soa_threshold nodes),
  /// else `object`.
  auto_select,
};

/// Timing parameters of the async engine (EngineMode::async only).
struct AsyncTiming {
  /// Mean interval between a node's gossip emissions; actual intervals
  /// are uniform in [0.5, 1.5]× this, independently per node per tick.
  double mean_tick_interval = 1.0;
  /// Message delays are uniform in [min_delay, max_delay].
  double min_delay = 0.05;
  double max_delay = 2.0;
};

/// One configuration object for a whole simulation. Extends
/// CommonRunnerOptions, so the shared gossip knobs (selection, pattern,
/// environment seed) are this object's own fields.
struct EngineConfig : CommonRunnerOptions {
  TopologySpec topology;
  FaultModel faults;
  /// Math-kernel dispatch policy (linalg/simd.hpp): auto keeps the
  /// bit-exact tiers, avx2 additionally opts into the fast-math tier.
  /// Applied process-wide by the tools via linalg::simd::configure.
  linalg::simd::Mode simd = linalg::simd::Mode::auto_detect;
  /// Worker threads for the parallel phases: 1 = fully sequential, 0 =
  /// one per hardware thread. Results are identical at any setting.
  std::size_t parallelism = 1;
  EngineMode mode = EngineMode::round;
  EngineBackend backend = EngineBackend::auto_select;
  /// Node count at which auto_select switches to the SoA backend.
  std::size_t soa_threshold = 16384;
  AsyncTiming async;

  // Protocol-layer parameters (the classifier nodes' NetworkConfig).
  /// Max collections per node (the paper's k).
  std::size_t k = 2;
  /// Weight quanta per unit weight (the paper's 1/q).
  std::int64_t quanta_per_unit = std::int64_t{1} << 20;
  /// Seed for node-local randomness (EM restarts). Kept separate from the
  /// inherited environment `seed` so protocol and environment streams
  /// never interfere — ddcsim historically sets protocol_seed = --seed
  /// and seed = --seed + 1.
  std::uint64_t protocol_seed = 1;

  /// Engine options sliced out for the classic runners.
  [[nodiscard]] RoundRunnerOptions round_options() const;
  [[nodiscard]] AsyncRunnerOptions async_options() const;

  /// Builds the configured topology (see TopologySpec::build).
  [[nodiscard]] Topology build_topology(stats::Rng& rng) const;

  /// Resolves `backend` for this configuration.
  [[nodiscard]] bool use_soa() const noexcept;

  /// Throws ddc::ConfigError on out-of-range values (probabilities,
  /// nodes < 2, k = 0, unsupported mode/backend combinations).
  void validate() const;
};

}  // namespace ddc::sim
