// Discrete-event scheduler.
//
// The asynchronous runner models the paper's Section 3.1 channels —
// asynchronous but reliable, no duplication, no spurious messages — by
// scheduling each send as a delivery event with an arbitrary finite delay.
// Events at equal timestamps run in insertion order, so executions are
// fully deterministic given the RNG seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include <ddc/common/assert.hpp>

namespace ddc::sim {

/// Simulated time (arbitrary units).
using Time = double;

/// A time-ordered queue of closures. Not thread-safe (simulations are
/// single-threaded and deterministic by design).
class EventQueue {
 public:
  /// Schedules `action` at absolute time `when`. Requires when ≥ now().
  void schedule(Time when, std::function<void()> action);

  /// Schedules `action` `delay` after now(). Requires delay ≥ 0.
  void schedule_after(Time delay, std::function<void()> action);

  /// Current simulated time (the timestamp of the last executed event).
  [[nodiscard]] Time now() const noexcept { return now_; }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Executes the next event. Requires a nonempty queue.
  void step();

  /// Executes events until the queue is empty or the next event is later
  /// than `until`; advances now() to min(until, last event time). Returns
  /// the number of events executed.
  std::uint64_t run_until(Time until);

  /// Executes at most `max_events` events (or until empty). Returns the
  /// number executed. A bound, not a goal — use for quiescence runs.
  std::uint64_t run(std::uint64_t max_events);

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ddc::sim
