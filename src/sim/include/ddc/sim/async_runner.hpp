// Asynchronous event-driven simulation driver.
//
// The convergence theorem (Section 6) is proved for fully asynchronous
// executions: arbitrary finite message delays, no rounds, no common clock.
// This runner realizes that model on top of the discrete-event scheduler —
// every node gossips on its own jittered local timer and every message is
// delivered after an independent random delay. Integration tests use it to
// check that all-node agreement does not secretly depend on round
// synchrony.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/sim/event_queue.hpp>
#include <ddc/sim/gossip_node.hpp>
#include <ddc/sim/neighbor_selection.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::sim {

/// Deprecated alias from before the pattern enum was unified across
/// engines (it now lives in gossip_node.hpp); prefer GossipPattern.
using AsyncGossipPattern = GossipPattern;

/// Configuration of an asynchronous run. Selection, pattern and seed come
/// from the shared options layer (CommonRunnerOptions).
struct AsyncRunnerOptions : CommonRunnerOptions {
  /// Mean interval between a node's gossip emissions; actual intervals are
  /// uniform in [0.5, 1.5]× this, independently per node per tick.
  Time mean_tick_interval = 1.0;
  /// Message delays are uniform in [min_delay, max_delay].
  Time min_delay = 0.05;
  Time max_delay = 2.0;
};

/// Drives one node object per topology vertex asynchronously. Channels are
/// reliable (every message scheduled is eventually delivered), unordered
/// (delays may reorder messages), and loss-free — the paper's Section 3.1
/// channel model.
template <GossipNode Node>
class AsyncRunner {
 public:
  using Message = typename Node::Message;

  AsyncRunner(Topology topology, std::vector<Node> nodes,
              AsyncRunnerOptions options = {})
      : topology_(std::move(topology)),
        nodes_(std::move(nodes)),
        options_(options),
        env_rng_(stats::Rng::derive(options.seed, 0x4153594e43ULL)),
        selector_(options.selection, nodes_.size()),
        all_alive_(nodes_.size(), true) {
    DDC_EXPECTS(nodes_.size() == topology_.num_nodes());
    DDC_EXPECTS(options_.mean_tick_interval > 0.0);
    DDC_EXPECTS(options_.min_delay >= 0.0 &&
                options_.min_delay <= options_.max_delay);
    for (NodeId i = 0; i < nodes_.size(); ++i) schedule_tick(i);
  }

  // The scheduler holds closures that capture `this`.
  AsyncRunner(const AsyncRunner&) = delete;
  AsyncRunner& operator=(const AsyncRunner&) = delete;

  /// Runs the simulation until simulated time `until`.
  void run_until(Time until) { queue_.run_until(until); }

  [[nodiscard]] Time now() const noexcept { return queue_.now(); }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return messages_delivered_;
  }
  [[nodiscard]] std::uint64_t pull_requests_delivered() const noexcept {
    return pull_requests_delivered_;
  }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::vector<Node>& nodes() noexcept { return nodes_; }

 private:
  void schedule_tick(NodeId i) {
    const Time interval =
        options_.mean_tick_interval * env_rng_.uniform(0.5, 1.5);
    queue_.schedule_after(interval, [this, i] {
      emit(i);
      schedule_tick(i);
    });
  }

  void emit(NodeId i) {
    const NodeId target = select_neighbor(i);
    switch (options_.pattern) {
      case GossipPattern::push:
        send_data(i, target);
        break;
      case GossipPattern::pull:
        send_pull_request(i, target);
        break;
      case GossipPattern::push_pull:
        send_data(i, target);
        send_pull_request(i, target);
        break;
    }
  }

  [[nodiscard]] Time random_delay() {
    return options_.min_delay == options_.max_delay
               ? options_.min_delay
               : env_rng_.uniform(options_.min_delay, options_.max_delay);
  }

  /// Ships half of `from`'s state to `to` after a channel delay.
  void send_data(NodeId from, NodeId to) {
    Message msg = nodes_[from].prepare_message();
    if (msg.empty()) return;
    queue_.schedule_after(random_delay(),
                          [this, to, m = std::move(msg)]() mutable {
                            ++messages_delivered_;
                            std::vector<Message> batch;
                            batch.push_back(std::move(m));
                            nodes_[to].absorb(std::move(batch));
                          });
  }

  /// Delivers a pull request to `to`, which then ships half of its state
  /// back to `from` (two channel delays end to end).
  void send_pull_request(NodeId from, NodeId to) {
    queue_.schedule_after(random_delay(), [this, from, to] {
      ++pull_requests_delivered_;
      send_data(to, from);
    });
  }

  [[nodiscard]] NodeId select_neighbor(NodeId i) {
    // This engine has no crashes, so every neighbor is eligible and the
    // selector always yields a target.
    return *selector_.pick(topology_, i, all_alive_, /*avoid=*/false,
                           env_rng_);
  }

  Topology topology_;
  std::vector<Node> nodes_;
  AsyncRunnerOptions options_;
  stats::Rng env_rng_;
  NeighborSelector selector_;
  std::vector<bool> all_alive_;
  EventQueue queue_;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t pull_requests_delivered_ = 0;
};

}  // namespace ddc::sim
