// Execution tracing for round-based simulations.
//
// A TraceRecorder attached to a RoundRunner logs every protocol-relevant
// event — sends, deliveries, channel losses, packets to dead nodes,
// crashes — with round numbers and endpoints. Experiments use it to
// account for message complexity; the CSV export feeds external analysis.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include <ddc/sim/topology.hpp>

namespace ddc::sim {

/// What happened.
enum class TraceEventType : std::uint8_t {
  send,             ///< a node emitted a message
  deliver,          ///< a message entered a node's inbox
  loss,             ///< the channel dropped the message
  dead_target,      ///< the target had crashed (drop_at_crashed policy)
  crash,            ///< a node crashed (to = from)
  no_live_neighbor, ///< a sender found no live neighbor to gossip with
};

/// Human-readable tag for CSV output.
[[nodiscard]] std::string_view to_string(TraceEventType type) noexcept;

/// One recorded event.
struct TraceEvent {
  std::size_t round;
  TraceEventType type;
  NodeId from;
  NodeId to;
  /// Message payload in collections (1 for scalar messages like push-sum).
  std::size_t payload_units;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Accumulates trace events; attach via RoundRunner::set_trace.
class TraceRecorder {
 public:
  void record(TraceEvent event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

  /// Number of events of the given type.
  [[nodiscard]] std::size_t count(TraceEventType type) const noexcept;

  /// Sum of payload_units over `send` events — total collections shipped.
  [[nodiscard]] std::uint64_t total_payload_sent() const noexcept;

  /// Writes `round,event,from,to,payload` CSV (with header).
  void write_csv(std::ostream& os) const;

  void clear() noexcept { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace ddc::sim
