// Fair gossip-target selection, shared by the simulation runners and the
// networked node driver (src/net).
//
// Both selection policies satisfy the paper's fairness requirement (each
// neighbor chosen infinitely often): round-robin deterministically,
// uniform-random with probability 1. The selector owns the per-node
// round-robin cursors; random draws come from the caller's environment
// RNG so the engine keeps control of its draw ordering.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/sim/gossip_node.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::sim {

/// Picks gossip targets for the nodes of one topology. Stateful only for
/// round-robin (one cursor per node).
class NeighborSelector {
 public:
  NeighborSelector(NeighborSelection selection, std::size_t num_nodes)
      : selection_(selection), rr_position_(num_nodes, 0) {}

  /// Picks node i's gossip target among its out-neighbors. When `avoid`
  /// is set, dead neighbors (per `alive`) are skipped; returns nullopt
  /// when every eligible neighbor is dead. Draws from `rng` only for
  /// uniform_random selection — round-robin consumes no randomness.
  [[nodiscard]] std::optional<NodeId> pick(const Topology& topology, NodeId i,
                                           const std::vector<bool>& alive,
                                           bool avoid, stats::Rng& rng) {
    const std::span<const NodeId> nbrs = topology.neighbors(i);
    DDC_ASSERT(!nbrs.empty());
    switch (selection_) {
      case NeighborSelection::round_robin: {
        // Advance past dead neighbors (at most one lap).
        for (std::size_t step = 0; step < nbrs.size(); ++step) {
          const NodeId target = nbrs[rr_position_[i] % nbrs.size()];
          rr_position_[i] = (rr_position_[i] + 1) % nbrs.size();
          if (!avoid || alive[target]) return target;
        }
        return std::nullopt;
      }
      case NeighborSelection::uniform_random: {
        if (!avoid) return nbrs[rng.uniform_index(nbrs.size())];
        std::vector<NodeId> live;
        live.reserve(nbrs.size());
        for (const NodeId t : nbrs) {
          if (alive[t]) live.push_back(t);
        }
        if (live.empty()) return std::nullopt;
        return live[rng.uniform_index(live.size())];
      }
    }
    DDC_ASSERT(false);
    return std::nullopt;
  }

 private:
  NeighborSelection selection_;
  std::vector<std::size_t> rr_position_;
};

}  // namespace ddc::sim
