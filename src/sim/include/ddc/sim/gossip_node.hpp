// The node interface the simulation runners drive, plus the options
// vocabulary shared by both engines (round-based and asynchronous).
#pragma once

#include <concepts>
#include <cstdint>
#include <utility>
#include <vector>

namespace ddc::sim {

/// A protocol endpoint as seen by the runners. One gossip exchange is:
/// the runner asks the sender to `prepare_message()` (for the classifier
/// this performs Algorithm 1's split) and later hands the receiver a batch
/// of messages via `absorb()` (the classifier unions them and runs one
/// partition — exactly how the paper's simulations process multi-message
/// rounds, Section 5.3).
///
/// An empty message (`msg.empty()`) means "nothing to send this time" and
/// is not delivered.
template <typename N>
concept GossipNode = requires(N node, typename N::Message message,
                              std::vector<typename N::Message> batch) {
  typename N::Message;
  { node.prepare_message() } -> std::convertible_to<typename N::Message>;
  { std::as_const(message).empty() } -> std::convertible_to<bool>;
  { node.absorb(std::move(batch)) };
};

/// How a node picks which neighbor to gossip with. Both satisfy the
/// paper's fairness requirement (each neighbor chosen infinitely often):
/// round-robin deterministically, uniform-random with probability 1.
enum class NeighborSelection {
  round_robin,
  uniform_random,
};

/// Gossip communication pattern (Section 4.1 mentions push, pull and
/// push-pull as admissible), shared by both engines:
///   * push: the initiator ships half its state to the chosen neighbor;
///   * pull: the initiator asks the chosen neighbor, which ships half of
///     ITS state back (in the asynchronous engine this costs one extra
///     round-trip of latency; the round engine folds it into the round);
///   * push_pull: both directions — twice the messages per initiator,
///     roughly twice the mixing speed.
enum class GossipPattern {
  push,
  pull,
  push_pull,
};

/// What a live node does about crashed neighbors (round engine and scale
/// engine; the async engine models reliable crash-free channels).
enum class CrashSendPolicy {
  /// Nodes detect dead neighbors and gossip only with live ones (a radio
  /// mote notices silence). Weight is lost only when a node crashes while
  /// holding it — the Fig. 4 regime.
  avoid_crashed,
  /// Nodes keep addressing crashed neighbors; those messages (and their
  /// weight) vanish. On dense graphs with heavy mortality this drains the
  /// whole system's weight — a harsher failure model, kept for study.
  drop_at_crashed,
};

/// Options shared by the round-based and asynchronous engines. The
/// engine-specific option structs extend this, so the common fields are
/// spelled (and defaulted) once.
struct CommonRunnerOptions {
  NeighborSelection selection = NeighborSelection::uniform_random;
  GossipPattern pattern = GossipPattern::push;
  /// Seed for the engine's environment draws (neighbor selection, and —
  /// per engine — delays, crashes, losses). Node-local randomness (EM
  /// restarts) derives from the network config instead, so environment
  /// and protocol streams never interfere.
  std::uint64_t seed = 1;
};

}  // namespace ddc::sim
