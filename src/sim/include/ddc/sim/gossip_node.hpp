// The node interface the simulation runners drive.
#pragma once

#include <concepts>
#include <utility>
#include <vector>

namespace ddc::sim {

/// A protocol endpoint as seen by the runners. One gossip exchange is:
/// the runner asks the sender to `prepare_message()` (for the classifier
/// this performs Algorithm 1's split) and later hands the receiver a batch
/// of messages via `absorb()` (the classifier unions them and runs one
/// partition — exactly how the paper's simulations process multi-message
/// rounds, Section 5.3).
///
/// An empty message (`msg.empty()`) means "nothing to send this time" and
/// is not delivered.
template <typename N>
concept GossipNode = requires(N node, typename N::Message message,
                              std::vector<typename N::Message> batch) {
  typename N::Message;
  { node.prepare_message() } -> std::convertible_to<typename N::Message>;
  { std::as_const(message).empty() } -> std::convertible_to<bool>;
  { node.absorb(std::move(batch)) };
};

/// How a node picks which neighbor to gossip with. Both satisfy the
/// paper's fairness requirement (each neighbor chosen infinitely often):
/// round-robin deterministically, uniform-random with probability 1.
enum class NeighborSelection {
  round_robin,
  uniform_random,
};

/// Gossip communication pattern (Section 4.1 mentions push, pull and
/// push-pull as admissible): with push, the initiator ships half its
/// classification to the chosen neighbor; with push-pull, the chosen
/// neighbor simultaneously ships half of its own state back, doubling the
/// per-round message count but roughly doubling mixing speed.
enum class GossipPattern {
  push,
  push_pull,
};

}  // namespace ddc::sim
