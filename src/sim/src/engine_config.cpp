#include <ddc/sim/engine_config.hpp>

#include <algorithm>
#include <cmath>

#include <ddc/common/error.hpp>

namespace ddc::sim {

TopologyFamily parse_topology_family(const std::string& name) {
  if (name == "complete") return TopologyFamily::complete;
  if (name == "ring") return TopologyFamily::ring;
  if (name == "dring") return TopologyFamily::directed_ring;
  if (name == "line") return TopologyFamily::line;
  if (name == "star") return TopologyFamily::star;
  if (name == "grid") return TopologyFamily::grid;
  if (name == "torus") return TopologyFamily::torus;
  if (name == "geometric") return TopologyFamily::geometric;
  if (name == "er") return TopologyFamily::erdos_renyi;
  throw ConfigError("unknown topology '" + name +
                    "' (complete | ring | dring | line | star | grid | "
                    "torus | geometric | er)");
}

const char* topology_family_name(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::complete: return "complete";
    case TopologyFamily::ring: return "ring";
    case TopologyFamily::directed_ring: return "dring";
    case TopologyFamily::line: return "line";
    case TopologyFamily::star: return "star";
    case TopologyFamily::grid: return "grid";
    case TopologyFamily::torus: return "torus";
    case TopologyFamily::geometric: return "geometric";
    case TopologyFamily::erdos_renyi: return "er";
  }
  return "?";
}

double TopologySpec::resolved_radius() const {
  if (radius > 0.0) return radius;
  return std::max(0.15, 2.0 / std::sqrt(static_cast<double>(nodes)));
}

double TopologySpec::resolved_edge_probability() const {
  if (edge_probability > 0.0) return edge_probability;
  return std::max(0.05, 8.0 / static_cast<double>(nodes));
}

Topology TopologySpec::build(stats::Rng& rng) const {
  const std::size_t n = nodes;
  switch (family) {
    case TopologyFamily::complete:
      return Topology::complete(n);
    case TopologyFamily::ring:
      return Topology::ring(n);
    case TopologyFamily::directed_ring:
      return Topology::directed_ring(n);
    case TopologyFamily::line:
      return Topology::line(n);
    case TopologyFamily::star:
      return Topology::star(n);
    case TopologyFamily::grid:
    case TopologyFamily::torus: {
      // Most-square exact factorization: rows is the largest divisor of
      // n with rows ≤ √n, so rows·cols == n precisely. The historical
      // ⌊√n⌋ packing rounded the vertex count UP for non-square n
      // (100000 → 316×317 = 100172), which breaks the engines' hard
      // one-node-per-vertex invariant. Prime n degenerates to a 1×n
      // line-with-torus-wrap; pass a composite node count for a real
      // 2-D lattice.
      std::size_t rows = 1;
      while ((rows + 1) * (rows + 1) <= n) ++rows;
      while (rows > 1 && n % rows != 0) --rows;
      return Topology::grid(rows, n / rows,
                            family == TopologyFamily::torus);
    }
    case TopologyFamily::geometric:
      return Topology::random_geometric(n, resolved_radius(), rng);
    case TopologyFamily::erdos_renyi:
      return Topology::erdos_renyi(n, resolved_edge_probability(), rng);
  }
  throw ConfigError("unhandled topology family");
}

RoundRunnerOptions EngineConfig::round_options() const {
  RoundRunnerOptions options;
  static_cast<CommonRunnerOptions&>(options) =
      static_cast<const CommonRunnerOptions&>(*this);
  options.crash_probability = faults.crash_probability;
  options.crash_send_policy = faults.crash_send_policy;
  options.message_loss_probability = faults.message_loss_probability;
  options.parallelism = parallelism;
  return options;
}

AsyncRunnerOptions EngineConfig::async_options() const {
  AsyncRunnerOptions options;
  static_cast<CommonRunnerOptions&>(options) =
      static_cast<const CommonRunnerOptions&>(*this);
  options.mean_tick_interval = async.mean_tick_interval;
  options.min_delay = async.min_delay;
  options.max_delay = async.max_delay;
  return options;
}

Topology EngineConfig::build_topology(stats::Rng& rng) const {
  return topology.build(rng);
}

bool EngineConfig::use_soa() const noexcept {
  switch (backend) {
    case EngineBackend::object:
      return false;
    case EngineBackend::soa:
      return true;
    case EngineBackend::auto_select:
      return mode == EngineMode::round && topology.nodes >= soa_threshold;
  }
  return false;
}

void EngineConfig::validate() const {
  if (topology.nodes < 2) throw ConfigError("topology.nodes must be ≥ 2");
  if (topology.radius < 0.0) throw ConfigError("topology.radius must be ≥ 0");
  if (topology.edge_probability < 0.0 || topology.edge_probability > 1.0) {
    throw ConfigError("topology.edge_probability must be in [0, 1]");
  }
  if (faults.crash_probability < 0.0 || faults.crash_probability > 1.0) {
    throw ConfigError("faults.crash_probability must be in [0, 1]");
  }
  if (faults.message_loss_probability < 0.0 ||
      faults.message_loss_probability > 1.0) {
    throw ConfigError("faults.message_loss_probability must be in [0, 1]");
  }
  if (simd == linalg::simd::Mode::avx2 &&
      !(linalg::simd::compiled_with_avx2() &&
        linalg::simd::cpu_supports_avx2())) {
    throw ConfigError(
        "simd = avx2 requires an AVX2-capable CPU and an AVX2-enabled "
        "build (use auto or scalar)");
  }
  if (k == 0) throw ConfigError("k must be ≥ 1");
  if (quanta_per_unit < 1) throw ConfigError("quanta_per_unit must be ≥ 1");
  if (async.mean_tick_interval <= 0.0) {
    throw ConfigError("async.mean_tick_interval must be > 0");
  }
  if (async.min_delay < 0.0 || async.min_delay > async.max_delay) {
    throw ConfigError("async delays must satisfy 0 ≤ min_delay ≤ max_delay");
  }
  if (mode == EngineMode::async && backend == EngineBackend::soa) {
    throw ConfigError("the SoA backend is round-mode only");
  }
}

}  // namespace ddc::sim
