#include <ddc/sim/trace.hpp>

#include <ostream>

namespace ddc::sim {

std::string_view to_string(TraceEventType type) noexcept {
  switch (type) {
    case TraceEventType::send:
      return "send";
    case TraceEventType::deliver:
      return "deliver";
    case TraceEventType::loss:
      return "loss";
    case TraceEventType::dead_target:
      return "dead_target";
    case TraceEventType::crash:
      return "crash";
    case TraceEventType::no_live_neighbor:
      return "no_live_neighbor";
  }
  return "unknown";
}

std::size_t TraceRecorder::count(TraceEventType type) const noexcept {
  std::size_t acc = 0;
  for (const auto& e : events_) acc += e.type == type ? 1 : 0;
  return acc;
}

std::uint64_t TraceRecorder::total_payload_sent() const noexcept {
  std::uint64_t acc = 0;
  for (const auto& e : events_) {
    if (e.type == TraceEventType::send) acc += e.payload_units;
  }
  return acc;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "round,event,from,to,payload\n";
  for (const auto& e : events_) {
    os << e.round << ',' << to_string(e.type) << ',' << e.from << ',' << e.to
       << ',' << e.payload_units << '\n';
  }
}

}  // namespace ddc::sim
