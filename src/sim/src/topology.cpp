#include <ddc/sim/topology.hpp>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>

#include <ddc/common/assert.hpp>
#include <ddc/common/error.hpp>

namespace ddc::sim {

void Topology::Builder::add_edge(NodeId from, NodeId to) {
  DDC_EXPECTS(from < degree_.size() && to < degree_.size());
  DDC_EXPECTS(from != to);
  edges_.emplace_back(from, to);
  ++degree_[from];
}

void Topology::Builder::add_undirected(NodeId a, NodeId b) {
  add_edge(a, b);
  add_edge(b, a);
}

Topology Topology::Builder::finish() && {
  const std::size_t n = degree_.size();
  Topology t;
  t.num_nodes_ = n;
  t.offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    t.offsets_[i + 1] = t.offsets_[i] + degree_[i];
  }
  t.targets_.resize(edges_.size());
  // Stable counting sort by source: each node's slice receives its edges
  // in global insertion order, reproducing the old per-vector push_back
  // order exactly.
  std::vector<std::size_t> cursor(t.offsets_.begin(), t.offsets_.end() - 1);
  for (const auto& [from, to] : edges_) t.targets_[cursor[from]++] = to;
  // Duplicate-edge rejection, deferred to here so construction stays
  // O(E log deg) instead of O(E·deg) has_edge probes.
  std::vector<NodeId> scratch;
  for (std::size_t i = 0; i < n; ++i) {
    const auto nbrs = t.neighbors(i);
    scratch.assign(nbrs.begin(), nbrs.end());
    std::sort(scratch.begin(), scratch.end());
    DDC_EXPECTS(std::adjacent_find(scratch.begin(), scratch.end()) ==
                scratch.end());
  }
  return t;
}

Topology Topology::from_edges(
    std::size_t num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  DDC_EXPECTS(num_nodes >= 1);
  Builder b(num_nodes);
  for (const auto& [from, to] : edges) b.add_edge(from, to);
  return std::move(b).finish();
}

Topology Topology::complete(std::size_t n) {
  DDC_EXPECTS(n >= 2);
  Builder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i != j) b.add_edge(i, j);
    }
  }
  return std::move(b).finish();
}

Topology Topology::ring(std::size_t n) {
  DDC_EXPECTS(n >= 2);
  Builder b(n);
  if (n == 2) {
    // One undirected pair; the wrap-around edge would be a duplicate.
    b.add_undirected(0, 1);
  } else {
    for (NodeId i = 0; i < n; ++i) b.add_undirected(i, (i + 1) % n);
  }
  return std::move(b).finish();
}

Topology Topology::directed_ring(std::size_t n) {
  DDC_EXPECTS(n >= 2);
  Builder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return std::move(b).finish();
}

Topology Topology::line(std::size_t n) {
  DDC_EXPECTS(n >= 2);
  Builder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_undirected(i, i + 1);
  return std::move(b).finish();
}

Topology Topology::star(std::size_t n) {
  DDC_EXPECTS(n >= 2);
  Builder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_undirected(0, i);
  return std::move(b).finish();
}

Topology Topology::grid(std::size_t rows, std::size_t cols, bool torus) {
  DDC_EXPECTS(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Builder b(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        b.add_undirected(id(r, c), id(r, c + 1));
      } else if (torus && cols > 2) {
        b.add_undirected(id(r, c), id(r, 0));
      }
      if (r + 1 < rows) {
        b.add_undirected(id(r, c), id(r + 1, c));
      } else if (torus && rows > 2) {
        b.add_undirected(id(r, c), id(0, c));
      }
    }
  }
  return std::move(b).finish();
}

namespace {

/// Uniform-grid spatial index over the unit square with cells of side
/// `radius`: candidate neighbors of a point all live in its 3×3 cell
/// stencil, turning the all-pairs O(n²) distance scan into O(n) expected
/// for the radii the sensor-field workloads use.
class CellIndex {
 public:
  CellIndex(const std::vector<std::pair<double, double>>& pos, double radius)
      : side_(grid_side(pos.size(), radius)),
        offsets_(side_ * side_ + 1, 0),
        members_(pos.size()) {
    // Counting sort of point indices by cell, preserving index order
    // within each cell (points are visited in ascending index twice).
    std::vector<std::size_t> count(side_ * side_, 0);
    for (const auto& p : pos) ++count[cell_of(p)];
    for (std::size_t c = 0; c < count.size(); ++c) {
      offsets_[c + 1] = offsets_[c] + count[c];
    }
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::size_t i = 0; i < pos.size(); ++i) {
      members_[cursor[cell_of(pos[i])]++] = i;
    }
  }

  /// Appends to `out` every point index in the 3×3 stencil around `p`.
  void stencil(const std::pair<double, double>& p,
               std::vector<std::size_t>& out) const {
    const std::size_t cr = clamp_axis(p.first);
    const std::size_t cc = clamp_axis(p.second);
    const std::size_t r_lo = cr == 0 ? 0 : cr - 1;
    const std::size_t r_hi = std::min(cr + 1, side_ - 1);
    const std::size_t c_lo = cc == 0 ? 0 : cc - 1;
    const std::size_t c_hi = std::min(cc + 1, side_ - 1);
    for (std::size_t r = r_lo; r <= r_hi; ++r) {
      for (std::size_t c = c_lo; c <= c_hi; ++c) {
        const std::size_t cell = r * side_ + c;
        for (std::size_t m = offsets_[cell]; m < offsets_[cell + 1]; ++m) {
          out.push_back(members_[m]);
        }
      }
    }
  }

 private:
  /// Cells of side ≥ radius (so the 3×3 stencil covers the disc), capped
  /// near √n per axis so a tiny radius cannot allocate more cells than
  /// points.
  [[nodiscard]] static std::size_t grid_side(std::size_t n, double radius) {
    const auto from_radius = static_cast<std::size_t>(1.0 / std::min(radius, 1.0));
    const auto from_points =
        static_cast<std::size_t>(std::sqrt(static_cast<double>(n))) + 1;
    return std::max<std::size_t>(1, std::min(from_radius, from_points));
  }

  [[nodiscard]] std::size_t clamp_axis(double x) const {
    const auto c = static_cast<std::size_t>(
        std::max(0.0, x) * static_cast<double>(side_));
    return std::min(c, side_ - 1);
  }
  [[nodiscard]] std::size_t cell_of(const std::pair<double, double>& p) const {
    return clamp_axis(p.first) * side_ + clamp_axis(p.second);
  }

  std::size_t side_;
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> members_;
};

}  // namespace

Topology Topology::random_geometric(std::size_t n, double radius,
                                    stats::Rng& rng, std::size_t max_attempts) {
  DDC_EXPECTS(n >= 2);
  DDC_EXPECTS(radius > 0.0);
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<std::pair<double, double>> pos(n);
    for (auto& p : pos) p = {rng.uniform(), rng.uniform()};
    const double r2 = radius * radius;
    const CellIndex index(pos, radius);
    Builder b(n);
    std::vector<std::size_t> candidates;
    std::vector<std::size_t> hits;
    for (NodeId i = 0; i < n; ++i) {
      candidates.clear();
      index.stencil(pos[i], candidates);
      hits.clear();
      for (const std::size_t j : candidates) {
        if (j <= i) continue;  // each pair once, owned by its lower index
        const double dx = pos[i].first - pos[j].first;
        const double dy = pos[i].second - pos[j].second;
        if (dx * dx + dy * dy <= r2) hits.push_back(j);
      }
      // Ascending j reproduces the historical all-pairs scan's edge
      // insertion order, keeping neighbor lists (and thus every engine
      // draw downstream) bit-identical to the seed era.
      std::sort(hits.begin(), hits.end());
      for (const std::size_t j : hits) b.add_undirected(i, j);
    }
    Topology t = std::move(b).finish();
    if (t.is_connected()) {
      t.positions_ = std::move(pos);
      return t;
    }
  }
  throw ConfigError(
      "random_geometric: no connected placement found; increase the radius");
}

Topology Topology::erdos_renyi(std::size_t n, double p, stats::Rng& rng,
                               std::size_t max_attempts) {
  DDC_EXPECTS(n >= 2);
  DDC_EXPECTS(p > 0.0 && p <= 1.0);
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    Builder b(n);
    if (p >= 1.0) {
      for (NodeId i = 0; i < n; ++i) {
        for (NodeId j = i + 1; j < n; ++j) b.add_undirected(i, j);
      }
    } else {
      // Batagelj–Brandes skip sampling: instead of a Bernoulli draw per
      // pair (quadratic — hopeless at 10⁵–10⁶ nodes), draw the geometric
      // gap to the next present edge in the ordered pair sequence
      // (1,0), (2,0), (2,1), (3,0), ... — O(n + m) draws total.
      const double log1mp = std::log1p(-p);
      std::size_t v = 1;
      // w walks the pairs (v, w), w < v; start one before the first.
      auto w = static_cast<std::ptrdiff_t>(-1);
      while (v < n) {
        const double r = rng.uniform();
        w += 1 + static_cast<std::ptrdiff_t>(
                     std::floor(std::log1p(-r) / log1mp));
        while (v < n && w >= static_cast<std::ptrdiff_t>(v)) {
          w -= static_cast<std::ptrdiff_t>(v);
          ++v;
        }
        if (v < n) {
          b.add_undirected(static_cast<NodeId>(v), static_cast<NodeId>(w));
        }
      }
    }
    Topology t = std::move(b).finish();
    if (t.is_connected()) return t;
  }
  throw ConfigError("erdos_renyi: no connected draw found; increase p");
}

std::span<const NodeId> Topology::neighbors(NodeId i) const {
  DDC_EXPECTS(i < num_nodes_);
  return {targets_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
}

bool Topology::has_edge(NodeId i, NodeId j) const {
  DDC_EXPECTS(i < num_nodes_ && j < num_nodes_);
  const auto nbrs = neighbors(i);
  return std::find(nbrs.begin(), nbrs.end(), j) != nbrs.end();
}

namespace {

/// Nodes reachable from `start` following a CSR edge set.
std::size_t reachable_count(std::size_t n,
                            const std::vector<std::size_t>& offsets,
                            const std::vector<NodeId>& targets, NodeId start) {
  std::vector<bool> seen(n, false);
  std::vector<NodeId> frontier;
  frontier.push_back(start);
  seen[start] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (std::size_t e = offsets[u]; e < offsets[u + 1]; ++e) {
      const NodeId v = targets[e];
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push_back(v);
      }
    }
  }
  return count;
}

}  // namespace

bool Topology::is_connected() const {
  if (num_nodes_ <= 1) return true;
  // Strong connectivity: everyone reachable from 0 following edges, and 0
  // reachable from everyone (equivalently: everyone reachable from 0 in
  // the reverse graph).
  if (reachable_count(num_nodes_, offsets_, targets_, 0) != num_nodes_) {
    return false;
  }
  // Reverse CSR via one more counting pass.
  std::vector<std::size_t> rev_offsets(num_nodes_ + 1, 0);
  for (const NodeId v : targets_) ++rev_offsets[v + 1];
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    rev_offsets[i + 1] += rev_offsets[i];
  }
  std::vector<NodeId> rev_targets(targets_.size());
  std::vector<std::size_t> cursor(rev_offsets.begin(), rev_offsets.end() - 1);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (std::size_t e = offsets_[u]; e < offsets_[u + 1]; ++e) {
      rev_targets[cursor[targets_[e]]++] = u;
    }
  }
  return reachable_count(num_nodes_, rev_offsets, rev_targets, 0) ==
         num_nodes_;
}

std::size_t Topology::diameter() const {
  DDC_EXPECTS(is_connected());
  std::size_t best = 0;
  std::vector<std::size_t> dist(num_nodes_);
  for (NodeId s = 0; s < num_nodes_; ++s) {
    std::fill(dist.begin(), dist.end(), SIZE_MAX);
    std::queue<NodeId> frontier;
    dist[s] = 0;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (std::size_t e = offsets_[u]; e < offsets_[u + 1]; ++e) {
        const NodeId v = targets_[e];
        if (dist[v] == SIZE_MAX) {
          dist[v] = dist[u] + 1;
          frontier.push(v);
        }
      }
    }
    for (const std::size_t d : dist) best = std::max(best, d);
  }
  return best;
}

}  // namespace ddc::sim
