#include <ddc/sim/topology.hpp>

#include <algorithm>
#include <cmath>
#include <queue>

#include <ddc/common/assert.hpp>
#include <ddc/common/error.hpp>

namespace ddc::sim {

void Topology::add_edge(NodeId from, NodeId to) {
  DDC_EXPECTS(from < out_.size() && to < out_.size());
  DDC_EXPECTS(from != to);
  DDC_EXPECTS(!has_edge(from, to));
  out_[from].push_back(to);
  ++num_edges_;
}

void Topology::add_undirected(NodeId a, NodeId b) {
  add_edge(a, b);
  add_edge(b, a);
}

Topology Topology::from_edges(
    std::size_t num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  DDC_EXPECTS(num_nodes >= 1);
  Topology t(num_nodes);
  for (const auto& [from, to] : edges) t.add_edge(from, to);
  return t;
}

Topology Topology::complete(std::size_t n) {
  DDC_EXPECTS(n >= 2);
  Topology t(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i != j) t.add_edge(i, j);
    }
  }
  return t;
}

Topology Topology::ring(std::size_t n) {
  DDC_EXPECTS(n >= 2);
  Topology t(n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId next = (i + 1) % n;
    if (!t.has_edge(i, next)) t.add_undirected(i, next);
  }
  return t;
}

Topology Topology::directed_ring(std::size_t n) {
  DDC_EXPECTS(n >= 2);
  Topology t(n);
  for (NodeId i = 0; i < n; ++i) t.add_edge(i, (i + 1) % n);
  return t;
}

Topology Topology::line(std::size_t n) {
  DDC_EXPECTS(n >= 2);
  Topology t(n);
  for (NodeId i = 0; i + 1 < n; ++i) t.add_undirected(i, i + 1);
  return t;
}

Topology Topology::star(std::size_t n) {
  DDC_EXPECTS(n >= 2);
  Topology t(n);
  for (NodeId i = 1; i < n; ++i) t.add_undirected(0, i);
  return t;
}

Topology Topology::grid(std::size_t rows, std::size_t cols, bool torus) {
  DDC_EXPECTS(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Topology t(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        t.add_undirected(id(r, c), id(r, c + 1));
      } else if (torus && cols > 2) {
        t.add_undirected(id(r, c), id(r, 0));
      }
      if (r + 1 < rows) {
        t.add_undirected(id(r, c), id(r + 1, c));
      } else if (torus && rows > 2) {
        t.add_undirected(id(r, c), id(0, c));
      }
    }
  }
  return t;
}

Topology Topology::random_geometric(std::size_t n, double radius,
                                    stats::Rng& rng, std::size_t max_attempts) {
  DDC_EXPECTS(n >= 2);
  DDC_EXPECTS(radius > 0.0);
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    Topology t(n);
    std::vector<std::pair<double, double>> pos(n);
    for (auto& p : pos) p = {rng.uniform(), rng.uniform()};
    const double r2 = radius * radius;
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        const double dx = pos[i].first - pos[j].first;
        const double dy = pos[i].second - pos[j].second;
        if (dx * dx + dy * dy <= r2) t.add_undirected(i, j);
      }
    }
    if (t.is_connected()) {
      t.positions_ = std::move(pos);
      return t;
    }
  }
  throw ConfigError(
      "random_geometric: no connected placement found; increase the radius");
}

Topology Topology::erdos_renyi(std::size_t n, double p, stats::Rng& rng,
                               std::size_t max_attempts) {
  DDC_EXPECTS(n >= 2);
  DDC_EXPECTS(p > 0.0 && p <= 1.0);
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    Topology t(n);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (rng.bernoulli(p)) t.add_undirected(i, j);
      }
    }
    if (t.is_connected()) return t;
  }
  throw ConfigError("erdos_renyi: no connected draw found; increase p");
}

std::span<const NodeId> Topology::neighbors(NodeId i) const {
  DDC_EXPECTS(i < out_.size());
  return out_[i];
}

bool Topology::has_edge(NodeId i, NodeId j) const {
  DDC_EXPECTS(i < out_.size() && j < out_.size());
  return std::find(out_[i].begin(), out_[i].end(), j) != out_[i].end();
}

namespace {

/// Nodes reachable from `start` following `adjacency`.
std::size_t reachable_count(const std::vector<std::vector<NodeId>>& adjacency,
                            NodeId start) {
  std::vector<bool> seen(adjacency.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(start);
  seen[start] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : adjacency[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count;
}

}  // namespace

bool Topology::is_connected() const {
  if (out_.size() <= 1) return true;
  // Strong connectivity: everyone reachable from 0 following edges, and 0
  // reachable from everyone (equivalently: everyone reachable from 0 in
  // the reverse graph).
  if (reachable_count(out_, 0) != out_.size()) return false;
  std::vector<std::vector<NodeId>> reverse(out_.size());
  for (NodeId u = 0; u < out_.size(); ++u) {
    for (const NodeId v : out_[u]) reverse[v].push_back(u);
  }
  return reachable_count(reverse, 0) == out_.size();
}

std::size_t Topology::diameter() const {
  DDC_EXPECTS(is_connected());
  std::size_t best = 0;
  for (NodeId s = 0; s < out_.size(); ++s) {
    std::vector<std::size_t> dist(out_.size(), SIZE_MAX);
    std::queue<NodeId> frontier;
    dist[s] = 0;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const NodeId v : out_[u]) {
        if (dist[v] == SIZE_MAX) {
          dist[v] = dist[u] + 1;
          frontier.push(v);
        }
      }
    }
    for (const std::size_t d : dist) best = std::max(best, d);
  }
  return best;
}

}  // namespace ddc::sim
