#include <ddc/sim/event_queue.hpp>

#include <utility>

namespace ddc::sim {

void EventQueue::schedule(Time when, std::function<void()> action) {
  DDC_EXPECTS(when >= now_);
  heap_.push(Entry{when, next_seq_++, std::move(action)});
}

void EventQueue::schedule_after(Time delay, std::function<void()> action) {
  DDC_EXPECTS(delay >= 0.0);
  schedule(now_ + delay, std::move(action));
}

void EventQueue::step() {
  DDC_EXPECTS(!heap_.empty());
  // priority_queue::top() is const; move is safe because we pop right away.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.when;
  ++executed_;
  entry.action();
}

std::uint64_t EventQueue::run_until(Time until) {
  std::uint64_t count = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    step();
    ++count;
  }
  now_ = std::max(now_, until);
  return count;
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (!heap_.empty() && count < max_events) {
    step();
    ++count;
  }
  return count;
}

}  // namespace ddc::sim
