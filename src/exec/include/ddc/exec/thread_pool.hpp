// A small fixed-size worker pool for the simulation engines.
//
// The simulator's parallelism is deliberately simple: per-round node work
// (prepare/absorb) and across-replicate bench runs are embarrassingly
// parallel, so all we need is a queue of tasks drained by a fixed set of
// workers. No work stealing, no futures, no external dependencies — the
// determinism story lives one level up, in parallel_for's stable chunking
// and in the runners' phase split (see DESIGN.md).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ddc::exec {

/// Fixed set of worker threads draining a FIFO task queue. A pool with
/// zero workers is valid and simply never runs anything — callers that
/// also execute tasks themselves (parallel_for does) degrade to serial
/// execution.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed; see class comment).
  explicit ThreadPool(std::size_t num_threads);

  /// Blocks until queued tasks drain is NOT guaranteed — pending tasks
  /// that never started are discarded; tasks already running are joined.
  /// Callers that need completion must track it themselves (parallel_for
  /// does).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task. Tasks must not throw — wrap bodies that can (the
  /// pool has no channel to surface an exception; parallel_for captures
  /// them per-chunk instead).
  void submit(std::function<void()> task);

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ddc::exec
