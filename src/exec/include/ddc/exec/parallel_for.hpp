// Deterministic data-parallel loop on top of ThreadPool.
//
// parallel_for(pool, count, body) runs body(i) for every i in [0, count)
// and returns when all calls finished. Guarantees:
//
//   * Chunking is STABLE: the split of the index range into contiguous
//     chunks depends only on (count, number of chunks), never on timing.
//     Which thread runs which chunk is scheduler-dependent — so bodies
//     must make results independent of execution order (the simulation
//     engines achieve this by having body(i) touch only state owned by
//     index i).
//   * The calling thread participates, so a null pool (or a pool with no
//     workers) degrades to a plain sequential loop with sequential
//     semantics — including the exact i = 0 … count-1 order.
//   * The first exception thrown by a body is captured and rethrown on
//     the calling thread; remaining chunks are abandoned (indices in
//     already-running chunks may still execute).
//
// Do not call parallel_for on a pool from inside a task running on that
// same pool: the inner call may wait on helper tasks queued behind
// blocked outer tasks. Give nested parallel work its own pool (the round
// runner owns one per runner for exactly this reason).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <utility>

#include <ddc/exec/thread_pool.hpp>

namespace ddc::exec {

/// The number of contiguous chunks parallel_for / parallel_for_chunks
/// splits [0, count) into. Depends only on (pool worker count, count) —
/// never on timing — so callers can pre-allocate per-chunk scratch state
/// once and reuse it across calls.
[[nodiscard]] inline std::size_t parallel_chunk_count(const ThreadPool* pool,
                                                      std::size_t count) {
  const std::size_t workers = pool == nullptr ? 0 : pool->num_threads();
  if (workers == 0 || count < 2) return count == 0 ? 0 : 1;
  // More chunks than threads so a slow chunk (e.g. one node's EM run)
  // doesn't leave the rest of the pool idle; boundaries depend only on
  // (count, num_chunks).
  return std::min(count, (workers + 1) * 4);
}

/// Chunk-granular variant of parallel_for: body(chunk, begin, end) is
/// called once per contiguous chunk, with chunk < parallel_chunk_count(
/// pool, count) and [begin, end) the chunk's index range. Same guarantees
/// as parallel_for (stable chunking, caller participates, first exception
/// rethrown); additionally each chunk index is used by exactly one call,
/// so per-chunk scratch state (indexed by `chunk`) needs no
/// synchronization. The scale engine uses this to give each chunk its own
/// scratch classifier.
template <typename ChunkBody>
void parallel_for_chunks(ThreadPool* pool, std::size_t count,
                         ChunkBody&& body) {
  const std::size_t num_chunks = parallel_chunk_count(pool, count);
  if (num_chunks <= 1) {
    if (num_chunks == 1) body(std::size_t{0}, std::size_t{0}, count);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next_chunk{0};
    std::mutex mutex;
    std::condition_variable done;
    std::size_t tasks_finished = 0;
    std::exception_ptr error;
  } shared;

  auto drain = [&shared, &body, count, num_chunks] {
    for (;;) {
      const std::size_t c =
          shared.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t begin = c * count / num_chunks;
      const std::size_t end = (c + 1) * count / num_chunks;
      try {
        body(c, begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(shared.mutex);
        if (!shared.error) shared.error = std::current_exception();
        // Poison the counter so other threads stop picking up chunks.
        shared.next_chunk.store(num_chunks, std::memory_order_relaxed);
        return;
      }
    }
  };

  // One helper task per worker (never more than there are chunks); the
  // caller drains alongside them and then waits for every helper to
  // retire, so `shared`/`body` stay alive until all tasks are done.
  const std::size_t helpers = std::min(pool->num_threads(), num_chunks - 1);
  for (std::size_t t = 0; t < helpers; ++t) {
    pool->submit([&shared, drain] {
      drain();
      const std::lock_guard<std::mutex> lock(shared.mutex);
      ++shared.tasks_finished;
      shared.done.notify_one();
    });
  }
  drain();
  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.done.wait(lock,
                   [&shared, helpers] { return shared.tasks_finished == helpers; });
  if (shared.error) std::rethrow_exception(shared.error);
}

template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t count, Body&& body) {
  parallel_for_chunks(pool, count,
                      [&body](std::size_t /*chunk*/, std::size_t begin,
                              std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

}  // namespace ddc::exec
