#include <ddc/exec/thread_pool.hpp>

#include <algorithm>
#include <utility>

namespace ddc::exec {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

std::size_t ThreadPool::hardware_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace ddc::exec
