// Gaussian summaries — the paper's GM instantiation (Section 5.1).
//
// A collection is summarized by ⟨µ, Σ⟩ (its weighted mean and population
// covariance); together with the weight this is a weighted Gaussian, and a
// classification is a Gaussian Mixture. mergeSet is moment matching, which
// equals summarizing the merged value multiset exactly (R4), and dS is the
// L2 distance between means "as in the centroids algorithm" (Section 5.1).
#pragma once

#include <vector>

#include <ddc/core/collection.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/stats/gaussian.hpp>
#include <ddc/stats/mixture.hpp>

namespace ddc::summaries {

/// SummaryPolicy for Gaussian-Mixture classification.
struct GaussianPolicy {
  using Value = linalg::Vector;
  using Summary = stats::Gaussian;

  /// Section 5.1 valToSummary: mean = val, zero covariance matrix.
  [[nodiscard]] static Summary val_to_summary(const Value& value) {
    return stats::Gaussian::point_mass(value);
  }

  /// Section 5.1 mergeSet: moment-matched merge (law of total
  /// mean/covariance). Scale-invariant in weights (R3) and exact (R4).
  [[nodiscard]] static Summary merge_set(
      const std::vector<core::WeightedSummary<Summary>>& parts);

  /// dS: Euclidean distance between the means (the paper defines dS for
  /// the GM instantiation exactly as in the centroids algorithm).
  [[nodiscard]] static double distance(const Summary& a, const Summary& b) {
    return linalg::distance2(a.mean(), b.mean());
  }

  /// f applied to a mixture-space vector: weighted mean + population
  /// covariance of the input values. Used to verify Lemma 1.
  [[nodiscard]] static Summary summarize_mixture(
      const std::vector<Value>& inputs, const linalg::Vector& aux);

  /// Approximate equality of mean and covariance, for auditing.
  [[nodiscard]] static bool approx_equal(const Summary& a, const Summary& b,
                                         double tol);
};

/// View of a Gaussian classification as a stats::GaussianMixture (with
/// real-valued weights normalized from quanta). The bridge between the
/// protocol's wire types and the probabilistic toolkit.
[[nodiscard]] stats::GaussianMixture to_mixture(
    const core::Classification<stats::Gaussian>& classification);

}  // namespace ddc::summaries
