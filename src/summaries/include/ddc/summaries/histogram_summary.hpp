// Histogram summaries — a related-work-style instantiation for ablations.
//
// The distribution-estimation baselines the paper discusses (Haridasan &
// van Renesse 2008; Sacha et al. 2009) summarize 1-D data with histograms.
// Plugging a normalized histogram in as the summary domain S turns the
// generic algorithm into exactly such an estimator, which lets the
// ablation benches demonstrate the paper's critique concretely: histograms
// conserve mass but smear small distant clusters into fixed bins and do
// not generalize beyond one dimension.
//
// Binning must be identical across the whole system for mergeSet to be
// well defined, so it is supplied as a compile-time traits parameter.
#pragma once

#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/core/collection.hpp>
#include <ddc/stats/histogram.hpp>

namespace ddc::summaries {

/// Default binning traits: 64 bins on [-32, 32).
struct DefaultBinning {
  static constexpr double lo = -32.0;
  static constexpr double hi = 32.0;
  static constexpr std::size_t bins = 64;
};

/// SummaryPolicy summarizing a collection as the *normalized* histogram of
/// its weighted values (normalization makes the summary invariant under
/// weight scaling, R3).
template <typename Binning = DefaultBinning>
struct HistogramPolicy {
  using Value = double;
  using Summary = stats::Histogram;

  [[nodiscard]] static Summary val_to_summary(const Value& value) {
    Summary h(Binning::lo, Binning::hi, Binning::bins);
    h.add(value, 1.0);
    return h;
  }

  /// mergeSet: convex combination of the normalized part histograms with
  /// coefficients proportional to the part weights; equals the normalized
  /// histogram of the merged value multiset (R4) because binning is shared.
  [[nodiscard]] static Summary merge_set(
      const std::vector<core::WeightedSummary<Summary>>& parts) {
    DDC_EXPECTS(!parts.empty());
    double total = 0.0;
    for (const auto& p : parts) {
      DDC_EXPECTS(p.weight > 0.0);
      total += p.weight;
    }
    Summary out(Binning::lo, Binning::hi, Binning::bins);
    for (const auto& p : parts) {
      const double part_total = p.summary.total();
      DDC_EXPECTS(part_total > 0.0);
      out.merge(p.summary, (p.weight / total) / part_total);
    }
    return out;
  }

  /// dS: L1 distance between normalized histograms (a genuine metric on
  /// the normalized representatives; a pseudo-metric on raw summaries).
  [[nodiscard]] static double distance(const Summary& a, const Summary& b) {
    return a.l1_distance(b);
  }

  /// f applied to a mixture-space vector (for Lemma 1 audits).
  [[nodiscard]] static Summary summarize_mixture(
      const std::vector<Value>& inputs, const linalg::Vector& aux) {
    DDC_EXPECTS(aux.dim() == inputs.size());
    Summary out(Binning::lo, Binning::hi, Binning::bins);
    double total = 0.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      DDC_EXPECTS(aux[i] >= 0.0);
      total += aux[i];
      if (aux[i] > 0.0) out.add(inputs[i], aux[i]);
    }
    DDC_EXPECTS(total > 0.0);
    out.scale(1.0 / total);
    return out;
  }

  [[nodiscard]] static bool approx_equal(const Summary& a, const Summary& b,
                                         double tol) {
    if (a.bins() != b.bins()) return false;
    return a.l1_distance(b) <= tol;
  }
};

}  // namespace ddc::summaries
