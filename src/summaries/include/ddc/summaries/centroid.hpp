// Centroid summaries — the paper's in-line example (Algorithm 2).
//
// A collection is summarized by its centroid (the weighted average of its
// values); the summary domain S equals the value domain R^d and dS is the
// L2 distance between centroids, which satisfies requirement R1 (the paper
// cites its technical report for the proof; our property tests validate it
// statistically).
#pragma once

#include <vector>

#include <ddc/core/collection.hpp>
#include <ddc/linalg/vector.hpp>

namespace ddc::summaries {

/// SummaryPolicy for centroid classification (k-means-style).
struct CentroidPolicy {
  using Value = linalg::Vector;
  using Summary = linalg::Vector;

  /// Summaries are plain Euclidean points and `distance` is the L2
  /// metric, so GreedyDistancePartition may pack them into a flat
  /// row-major buffer and fill its distance matrix through the batched
  /// (lanewise-SIMD, bit-exact) linalg::simd distance kernel.
  static constexpr bool kPackedEuclideanSummary = true;

  /// Algorithm 2, valToSummary: the centroid of {⟨val, 1⟩} is val itself.
  [[nodiscard]] static Summary val_to_summary(const Value& value) {
    return value;
  }

  /// Algorithm 2, mergeSet: the weighted average of the part centroids.
  /// Scale-invariant in the weights (R3) and equal to the centroid of the
  /// merged value multiset (R4).
  [[nodiscard]] static Summary merge_set(
      const std::vector<core::WeightedSummary<Summary>>& parts);

  /// dS: Euclidean distance between centroids.
  [[nodiscard]] static double distance(const Summary& a, const Summary& b) {
    return linalg::distance2(a, b);
  }

  /// The paper's f applied to a mixture-space vector: the centroid of the
  /// weighted input values. Used by tests/metrics to verify Lemma 1.
  [[nodiscard]] static Summary summarize_mixture(
      const std::vector<Value>& inputs, const linalg::Vector& aux);

  /// Approximate equality of summaries, for auditing.
  [[nodiscard]] static bool approx_equal(const Summary& a, const Summary& b,
                                         double tol);
};

}  // namespace ddc::summaries
