#include <ddc/summaries/gaussian_summary.hpp>

#include <ddc/common/assert.hpp>
#include <ddc/linalg/moments.hpp>

namespace ddc::summaries {

using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;

GaussianPolicy::Summary GaussianPolicy::merge_set(
    const std::vector<core::WeightedSummary<Summary>>& parts) {
  DDC_EXPECTS(!parts.empty());
  // Same accumulation as stats::moment_match (same values, same order —
  // the determinism goldens require it), but straight off the parts: the
  // old path copied every mean and covariance into a WeightedGaussian
  // vector first, an allocation per part on the merge hot path.
  const std::size_t d = parts.front().summary.dim();
  double total = 0.0;
  for (const auto& p : parts) {
    DDC_EXPECTS(p.weight > 0.0);
    DDC_EXPECTS(p.summary.dim() == d);
    total += p.weight;
  }
  DDC_EXPECTS(total > 0.0);
  linalg::WeightedMomentAccumulator acc(d);
  for (const auto& p : parts) {
    acc.accumulate_mean(p.weight / total, p.summary.mean());
  }
  for (const auto& p : parts) {
    acc.accumulate_spread(p.weight / total, p.summary.cov(), p.summary.mean());
  }
  return Gaussian(acc.take_mean(), linalg::symmetrize(acc.take_cov()));
}

GaussianPolicy::Summary GaussianPolicy::summarize_mixture(
    const std::vector<Value>& inputs, const Vector& aux) {
  DDC_EXPECTS(!inputs.empty());
  DDC_EXPECTS(aux.dim() == inputs.size());
  double total = 0.0;
  Vector mean(inputs.front().dim());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    DDC_EXPECTS(aux[i] >= 0.0);
    total += aux[i];
    linalg::add_scaled(mean, aux[i], inputs[i]);
  }
  DDC_EXPECTS(total > 0.0);
  mean /= total;
  linalg::WeightedMomentAccumulator acc(mean.dim());
  acc.accumulate_mean(1.0, mean);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (aux[i] == 0.0) continue;
    acc.accumulate_spread(aux[i] / total, inputs[i]);
  }
  return Gaussian(std::move(mean), linalg::symmetrize(acc.take_cov()));
}

bool GaussianPolicy::approx_equal(const Summary& a, const Summary& b,
                                  double tol) {
  if (a.dim() != b.dim()) return false;
  return linalg::distance2(a.mean(), b.mean()) <= tol &&
         linalg::max_abs(a.cov() - b.cov()) <= tol;
}

stats::GaussianMixture to_mixture(
    const core::Classification<stats::Gaussian>& classification) {
  DDC_EXPECTS(!classification.empty());
  std::vector<stats::WeightedGaussian> components;
  components.reserve(classification.size());
  for (std::size_t i = 0; i < classification.size(); ++i) {
    components.push_back(
        {classification.relative_weight(i), classification[i].summary});
  }
  return stats::GaussianMixture(std::move(components));
}

}  // namespace ddc::summaries
