#include <ddc/summaries/gaussian_summary.hpp>

#include <ddc/common/assert.hpp>

namespace ddc::summaries {

using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;

GaussianPolicy::Summary GaussianPolicy::merge_set(
    const std::vector<core::WeightedSummary<Summary>>& parts) {
  DDC_EXPECTS(!parts.empty());
  std::vector<stats::WeightedGaussian> weighted;
  weighted.reserve(parts.size());
  for (const auto& p : parts) {
    DDC_EXPECTS(p.weight > 0.0);
    weighted.push_back({p.weight, p.summary});
  }
  return stats::moment_match(weighted);
}

GaussianPolicy::Summary GaussianPolicy::summarize_mixture(
    const std::vector<Value>& inputs, const Vector& aux) {
  DDC_EXPECTS(!inputs.empty());
  DDC_EXPECTS(aux.dim() == inputs.size());
  double total = 0.0;
  Vector mean(inputs.front().dim());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    DDC_EXPECTS(aux[i] >= 0.0);
    total += aux[i];
    mean += aux[i] * inputs[i];
  }
  DDC_EXPECTS(total > 0.0);
  mean /= total;
  Matrix cov(mean.dim(), mean.dim());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (aux[i] == 0.0) continue;
    const Vector d = inputs[i] - mean;
    cov += (aux[i] / total) * linalg::outer(d, d);
  }
  return Gaussian(std::move(mean), linalg::symmetrize(cov));
}

bool GaussianPolicy::approx_equal(const Summary& a, const Summary& b,
                                  double tol) {
  if (a.dim() != b.dim()) return false;
  return linalg::distance2(a.mean(), b.mean()) <= tol &&
         linalg::max_abs(a.cov() - b.cov()) <= tol;
}

stats::GaussianMixture to_mixture(
    const core::Classification<stats::Gaussian>& classification) {
  DDC_EXPECTS(!classification.empty());
  std::vector<stats::WeightedGaussian> components;
  components.reserve(classification.size());
  for (std::size_t i = 0; i < classification.size(); ++i) {
    components.push_back(
        {classification.relative_weight(i), classification[i].summary});
  }
  return stats::GaussianMixture(std::move(components));
}

}  // namespace ddc::summaries
