#include <ddc/summaries/centroid.hpp>

#include <ddc/common/assert.hpp>
#include <ddc/linalg/moments.hpp>

namespace ddc::summaries {

using linalg::Vector;

CentroidPolicy::Summary CentroidPolicy::merge_set(
    const std::vector<core::WeightedSummary<Summary>>& parts) {
  DDC_EXPECTS(!parts.empty());
  double total = 0.0;
  for (const auto& p : parts) {
    DDC_EXPECTS(p.weight > 0.0);
    total += p.weight;
  }
  Vector acc(parts.front().summary.dim());
  // In-place `acc += scale * summary` — no scaled temporary per part.
  for (const auto& p : parts) {
    linalg::add_scaled(acc, p.weight / total, p.summary);
  }
  return acc;
}

CentroidPolicy::Summary CentroidPolicy::summarize_mixture(
    const std::vector<Value>& inputs, const Vector& aux) {
  DDC_EXPECTS(!inputs.empty());
  DDC_EXPECTS(aux.dim() == inputs.size());
  double total = 0.0;
  Vector acc(inputs.front().dim());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    DDC_EXPECTS(aux[i] >= 0.0);
    total += aux[i];
    linalg::add_scaled(acc, aux[i], inputs[i]);
  }
  DDC_EXPECTS(total > 0.0);
  return acc / total;
}

bool CentroidPolicy::approx_equal(const Summary& a, const Summary& b,
                                  double tol) {
  if (a.dim() != b.dim()) return false;
  return linalg::distance2(a, b) <= tol;
}

}  // namespace ddc::summaries
