// Binary encoding primitives for the gossip wire format.
//
// On a real mote network the protocol's classifications travel as radio
// packets; this module defines the byte-level format. It is also how the
// paper's bandwidth claim — message size depends on k and d only, never on
// n — becomes measurable (bench/abl_message_bytes).
//
// Format conventions: little-endian fixed-width integers, IEEE-754 doubles
// (bit-copied), unsigned LEB128 ("varint") for counts. Decoding is fully
// bounds-checked and throws ddc::wire::DecodeError on malformed input —
// a sensor node must survive a corrupt packet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include <ddc/common/error.hpp>

namespace ddc::wire {

/// Raised when decoding runs off the end of the buffer or meets an
/// invalid encoding. Deliberately distinct from ContractViolation: a bad
/// *packet* is an environmental fault, not a programming error.
class DecodeError : public Error {
 public:
  using Error::Error;
};

/// Append-only byte-buffer writer.
class Encoder {
 public:
  /// Fixed-width little-endian primitives.
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  /// IEEE-754 double, bit-copied.
  void put_f64(double v);
  /// Unsigned LEB128 — compact for the small counts (k, d) that dominate
  /// this protocol's messages.
  void put_varint(std::uint64_t v);
  /// Raw bytes, verbatim.
  void put_bytes(std::span<const std::byte> bytes);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

/// Bounds-checked byte-buffer reader over a borrowed span.
class Decoder {
 public:
  explicit Decoder(std::span<const std::byte> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64();
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::uint64_t get_varint();
  /// Borrows the next `n` bytes verbatim; the span aliases the decoder's
  /// underlying buffer and is valid only as long as that buffer lives.
  [[nodiscard]] std::span<const std::byte> get_bytes(std::size_t n);

  /// Remaining unread bytes.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  /// True when the buffer has been fully consumed.
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

  /// Requires the buffer to be fully consumed; throws DecodeError
  /// otherwise (trailing garbage means a framing bug or corruption).
  void expect_done() const;

  /// Validates a decoded element count BEFORE anything is allocated for
  /// it: the remaining buffer must plausibly hold `count` elements of at
  /// least `min_elem_size` bytes each. Guards against a corrupt frame
  /// claiming a huge count and driving the decoder into a giant
  /// allocation.
  void check_count(std::uint64_t count, std::size_t min_elem_size) const;

 private:
  void need(std::size_t n) const;

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace ddc::wire
