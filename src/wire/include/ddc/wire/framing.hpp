// Transport-level frame envelope.
//
// The message codecs in serialize.hpp describe protocol *payloads*
// (classifications, push-sum state). Once payloads travel between
// processes they need an outer envelope that identifies the sender,
// orders frames, and distinguishes data from transport housekeeping
// (liveness probes). This module defines that envelope; src/net wraps
// every datagram in it.
//
// Envelope layout:
//   magic    u32   'D','D','N',version (=1)
//   kind     u8    FrameKind
//   sender   u32   peer id of the originating endpoint
//   seq      u64   per-sender monotonic sequence number
//   payload  ...   rest of the buffer (empty for probe/probe_ack)
//
// Decoding is bounds-checked and throws DecodeError on bad magic,
// unsupported version, or unknown kind — a node must survive any
// datagram the network hands it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <ddc/wire/codec.hpp>

namespace ddc::wire {

/// What a transport frame carries.
enum class FrameKind : std::uint8_t {
  /// The payload is a protocol message (classification, push-sum, ...).
  gossip = 1,
  /// Liveness probe; the receiver answers with probe_ack. Empty payload.
  probe = 2,
  /// Answer to a probe. Empty payload.
  probe_ack = 3,
};

/// A decoded envelope. `payload` borrows from the buffer handed to
/// decode_frame and is valid only as long as that buffer lives.
struct Frame {
  FrameKind kind;
  std::uint32_t sender;
  std::uint64_t seq;
  std::span<const std::byte> payload;
};

/// Wraps `payload` in an envelope from `sender` with sequence `seq`.
[[nodiscard]] std::vector<std::byte> encode_frame(
    FrameKind kind, std::uint32_t sender, std::uint64_t seq,
    std::span<const std::byte> payload = {});

/// Parses an envelope; throws DecodeError on malformed input. The
/// payload is NOT validated here — gossip payloads are decoded by the
/// message codecs, which do their own checking.
[[nodiscard]] Frame decode_frame(std::span<const std::byte> bytes);

}  // namespace ddc::wire
