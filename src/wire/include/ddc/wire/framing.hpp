// Transport-level frame envelope.
//
// The message codecs in serialize.hpp describe protocol *payloads*
// (classifications, push-sum state). Once payloads travel between
// processes they need an outer envelope that identifies the sender,
// orders frames, and distinguishes data from transport housekeeping
// (liveness probes). This module defines that envelope; src/net wraps
// every datagram in it.
//
// Envelope layout:
//   magic    u32   'D','D','N',version (=1)
//   kind     u8    FrameKind
//   sender   u32   peer id of the originating endpoint
//   seq      u64   per-sender monotonic sequence number
//   payload  ...   rest of the buffer (empty for probe/probe_ack)
//
// Decoding is bounds-checked and throws DecodeError on bad magic,
// unsupported version, or unknown kind — a node must survive any
// datagram the network hands it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <ddc/wire/codec.hpp>

namespace ddc::wire {

/// What a transport frame carries.
enum class FrameKind : std::uint8_t {
  /// The payload is a protocol message (classification, push-sum, ...).
  gossip = 1,
  /// Liveness probe; the receiver answers with probe_ack. Empty payload.
  probe = 2,
  /// Answer to a probe. Empty payload.
  probe_ack = 3,
  /// A shard-to-shard batch: one round's cross-shard messages between a
  /// peer pair, packed into a single frame (see encode_batch).
  batch = 4,
  /// Acknowledges a batch frame. Payload is the acked round (u64).
  batch_ack = 5,
};

/// A decoded envelope. `payload` borrows from the buffer handed to
/// decode_frame and is valid only as long as that buffer lives.
struct Frame {
  FrameKind kind;
  std::uint32_t sender;
  std::uint64_t seq;
  std::span<const std::byte> payload;
};

/// Wraps `payload` in an envelope from `sender` with sequence `seq`.
[[nodiscard]] std::vector<std::byte> encode_frame(
    FrameKind kind, std::uint32_t sender, std::uint64_t seq,
    std::span<const std::byte> payload = {});

/// Parses an envelope; throws DecodeError on malformed input. The
/// payload is NOT validated here — gossip payloads are decoded by the
/// message codecs, which do their own checking.
[[nodiscard]] Frame decode_frame(std::span<const std::byte> bytes);

/// Whether one logical message inside a batch travels initiator→target
/// (forward) or target→initiator (the pull/push_pull answer).
enum class BatchTag : std::uint8_t {
  forward = 0,
  reply = 1,
};

/// One logical cross-shard message inside a batch payload. `payload`
/// borrows from whatever buffer the record was decoded from (or, when
/// encoding, from the caller's message bytes).
struct BatchRecord {
  std::uint32_t src;  ///< global node id of the sending node
  std::uint32_t dst;  ///< global node id of the receiving node
  BatchTag tag;
  std::span<const std::byte> payload;
};

/// A decoded batch payload. Record payloads borrow from the buffer
/// handed to decode_batch and are valid only as long as it lives.
struct Batch {
  std::uint64_t round;       ///< gossip round the records belong to
  std::uint32_t shard;       ///< originating shard id
  std::uint32_t num_shards;  ///< cluster size, for cross-checking
  std::vector<BatchRecord> records;
};

/// Batch payload layout (goes inside a FrameKind::batch envelope):
///   round       u64
///   shard       varint   originating shard id
///   num_shards  varint   cluster size (receiver sanity-checks)
///   count       varint   number of records
///   records     count × { src varint, dst varint, tag u8,
///                          len varint, payload len bytes }
[[nodiscard]] std::vector<std::byte> encode_batch(
    std::uint64_t round, std::uint32_t shard, std::uint32_t num_shards,
    std::span<const BatchRecord> records);

/// Parses a batch payload; throws DecodeError on malformed input
/// (including trailing bytes). Record payloads are NOT validated here.
[[nodiscard]] Batch decode_batch(std::span<const std::byte> payload);

/// Payload for a FrameKind::batch_ack envelope: the acked round.
[[nodiscard]] std::vector<std::byte> encode_batch_ack(std::uint64_t round);

/// Parses a batch_ack payload; throws DecodeError on malformed input.
[[nodiscard]] std::uint64_t decode_batch_ack(
    std::span<const std::byte> payload);

}  // namespace ddc::wire
