// Wire format for every message type the protocols exchange.
//
// Frame layout (all messages):
//   magic  u32   'D','D','C',version (=1)
//   type   u8    MessageType
//   body   ...   type-specific
//
// Classification bodies:
//   count  varint                       number of collections
//   per collection:
//     weight   i64                      quanta
//     summary  (per summary codec)
//     aux      u8 flag [+ varint dim + dim × f64]   (diagnostics only;
//                                       production senders omit it)
//
// Summary codecs:
//   Vector (centroid):  varint dim, dim × f64
//   Gaussian:           varint d, d × f64 mean, d(d+1)/2 × f64 lower
//                       triangle of Σ (symmetry is a format invariant,
//                       so only the lower triangle travels)
//   Histogram:          f64 lo, f64 hi, varint bins, bins × f64 mass
//
// PushSum body: varint dim, dim × f64 sum, f64 weight.
#pragma once

#include <ddc/core/collection.hpp>
#include <ddc/gossip/push_sum.hpp>
#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/stats/gaussian.hpp>
#include <ddc/stats/histogram.hpp>
#include <ddc/wire/codec.hpp>

namespace ddc::wire {

/// Message type tags (the u8 after the magic).
enum class MessageType : std::uint8_t {
  centroid_classification = 1,
  gaussian_classification = 2,
  histogram_classification = 3,
  push_sum = 4,
};

/// Per-summary-type encode/decode. Specialized for every shipped summary
/// domain; a new instantiation of the generic algorithm plugs in its own
/// specialization.
template <typename Summary>
struct SummaryCodec;  // primary template intentionally undefined

template <>
struct SummaryCodec<linalg::Vector> {
  static constexpr MessageType type = MessageType::centroid_classification;
  static void encode(Encoder& enc, const linalg::Vector& summary);
  static linalg::Vector decode(Decoder& dec);
};

template <>
struct SummaryCodec<stats::Gaussian> {
  static constexpr MessageType type = MessageType::gaussian_classification;
  static void encode(Encoder& enc, const stats::Gaussian& summary);
  static stats::Gaussian decode(Decoder& dec);
};

template <>
struct SummaryCodec<stats::Histogram> {
  static constexpr MessageType type = MessageType::histogram_classification;
  static void encode(Encoder& enc, const stats::Histogram& summary);
  static stats::Histogram decode(Decoder& dec);
};

/// Frame header helpers.
void encode_header(Encoder& enc, MessageType type);
/// Reads and validates the header; returns the message type.
[[nodiscard]] MessageType decode_header(Decoder& dec);

/// Encodes a classification message. `include_aux` ships the auxiliary
/// mixture vectors too (diagnostic runs only — aux is O(n) per collection
/// and defeats the bounded-message-size property).
template <typename Summary>
[[nodiscard]] std::vector<std::byte> encode_classification(
    const core::Classification<Summary>& classification,
    bool include_aux = false) {
  Encoder enc;
  encode_header(enc, SummaryCodec<Summary>::type);
  enc.put_varint(classification.size());
  for (const auto& c : classification) {
    enc.put_i64(c.weight.quanta());
    SummaryCodec<Summary>::encode(enc, c.summary);
    if (include_aux && c.aux.has_value()) {
      enc.put_u8(1);
      enc.put_varint(c.aux->dim());
      for (const double x : *c.aux) enc.put_f64(x);
    } else {
      enc.put_u8(0);
    }
  }
  return enc.bytes();
}

/// Decodes a classification message; throws DecodeError on any malformed
/// content (bad magic, wrong type, negative weights, truncation, trailing
/// bytes).
template <typename Summary>
[[nodiscard]] core::Classification<Summary> decode_classification(
    std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  const MessageType type = decode_header(dec);
  if (type != SummaryCodec<Summary>::type) {
    throw DecodeError("wire: unexpected message type " +
                      std::to_string(static_cast<int>(type)));
  }
  const std::uint64_t count = dec.get_varint();
  dec.check_count(count, sizeof(std::int64_t));  // ≥ one weight each
  core::Classification<Summary> out;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::int64_t quanta = dec.get_i64();
    if (quanta <= 0) {
      throw DecodeError("wire: non-positive collection weight");
    }
    core::Collection<Summary> c{SummaryCodec<Summary>::decode(dec),
                                core::Weight::from_quanta(quanta),
                                {}};
    if (dec.get_u8() != 0) {
      const std::uint64_t dim = dec.get_varint();
      dec.check_count(dim, sizeof(double));
      linalg::Vector aux(dim);
      for (std::uint64_t j = 0; j < dim; ++j) aux[j] = dec.get_f64();
      c.aux = std::move(aux);
    }
    out.add(std::move(c));
  }
  dec.expect_done();
  return out;
}

/// Push-sum message encode/decode.
[[nodiscard]] std::vector<std::byte> encode_push_sum(
    const gossip::PushSumMessage& message);
[[nodiscard]] gossip::PushSumMessage decode_push_sum(
    std::span<const std::byte> bytes);

/// Peeks at a frame's message type without decoding the body.
[[nodiscard]] MessageType peek_type(std::span<const std::byte> bytes);

}  // namespace ddc::wire
