#include <ddc/wire/serialize.hpp>

#include <cmath>

namespace ddc::wire {

namespace {

constexpr std::uint32_t kMagicBase = 0x00434444;  // "DDC\0" little-endian
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kMagic = kMagicBase | (kVersion << 24);

/// Shared helper: a finite double or DecodeError (NaN/Inf in a packet is
/// corruption, and letting it into the protocol poisons every merge).
double finite(double v) {
  if (!std::isfinite(v)) throw DecodeError("wire: non-finite floating value");
  return v;
}

}  // namespace

void encode_header(Encoder& enc, MessageType type) {
  enc.put_u32(kMagic);
  enc.put_u8(static_cast<std::uint8_t>(type));
}

MessageType decode_header(Decoder& dec) {
  const std::uint32_t magic = dec.get_u32();
  if ((magic & 0x00ffffff) != kMagicBase) {
    throw DecodeError("wire: bad magic");
  }
  if ((magic >> 24) != kVersion) {
    throw DecodeError("wire: unsupported version " +
                      std::to_string(magic >> 24));
  }
  const std::uint8_t type = dec.get_u8();
  if (type < 1 || type > 4) {
    throw DecodeError("wire: unknown message type " + std::to_string(type));
  }
  return static_cast<MessageType>(type);
}

void SummaryCodec<linalg::Vector>::encode(Encoder& enc,
                                          const linalg::Vector& summary) {
  enc.put_varint(summary.dim());
  for (const double x : summary) enc.put_f64(x);
}

linalg::Vector SummaryCodec<linalg::Vector>::decode(Decoder& dec) {
  const std::uint64_t dim = dec.get_varint();
  dec.check_count(dim, sizeof(double));
  linalg::Vector out(dim);
  for (std::uint64_t i = 0; i < dim; ++i) out[i] = finite(dec.get_f64());
  return out;
}

void SummaryCodec<stats::Gaussian>::encode(Encoder& enc,
                                           const stats::Gaussian& summary) {
  const std::size_t d = summary.dim();
  enc.put_varint(d);
  for (const double x : summary.mean()) enc.put_f64(x);
  // Lower triangle of the (symmetric) covariance, row by row.
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c <= r; ++c) enc.put_f64(summary.cov()(r, c));
  }
}

stats::Gaussian SummaryCodec<stats::Gaussian>::decode(Decoder& dec) {
  const std::uint64_t d = dec.get_varint();
  dec.check_count(d, sizeof(double));  // mean alone needs d doubles
  linalg::Vector mean(d);
  for (std::uint64_t i = 0; i < d; ++i) mean[i] = finite(dec.get_f64());
  linalg::Matrix cov(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      const double v = finite(dec.get_f64());
      cov(r, c) = v;
      cov(c, r) = v;
    }
  }
  try {
    return stats::Gaussian(std::move(mean), std::move(cov));
  } catch (const ContractViolation& e) {
    // e.g. a negative diagonal smuggled in: surface as a packet fault.
    throw DecodeError(std::string("wire: invalid Gaussian: ") + e.what());
  }
}

void SummaryCodec<stats::Histogram>::encode(Encoder& enc,
                                            const stats::Histogram& summary) {
  enc.put_f64(summary.lo());
  enc.put_f64(summary.hi());
  enc.put_varint(summary.bins());
  for (const double m : summary.mass()) enc.put_f64(m);
}

stats::Histogram SummaryCodec<stats::Histogram>::decode(Decoder& dec) {
  const double lo = finite(dec.get_f64());
  const double hi = finite(dec.get_f64());
  const std::uint64_t bins = dec.get_varint();
  dec.check_count(bins, sizeof(double));
  if (!(lo < hi) || bins == 0) {
    throw DecodeError("wire: invalid histogram binning");
  }
  stats::Histogram out(lo, hi, bins);
  for (std::uint64_t b = 0; b < bins; ++b) {
    const double m = finite(dec.get_f64());
    if (m < 0.0) throw DecodeError("wire: negative histogram mass");
    out.add(out.bin_center(b), m);
  }
  return out;
}

std::vector<std::byte> encode_push_sum(const gossip::PushSumMessage& message) {
  Encoder enc;
  encode_header(enc, MessageType::push_sum);
  enc.put_varint(message.sum.dim());
  for (const double x : message.sum) enc.put_f64(x);
  enc.put_f64(message.weight);
  return enc.bytes();
}

gossip::PushSumMessage decode_push_sum(std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  if (decode_header(dec) != MessageType::push_sum) {
    throw DecodeError("wire: not a push-sum message");
  }
  const std::uint64_t dim = dec.get_varint();
  dec.check_count(dim, sizeof(double));
  gossip::PushSumMessage out;
  out.sum = linalg::Vector(dim);
  for (std::uint64_t i = 0; i < dim; ++i) out.sum[i] = finite(dec.get_f64());
  out.weight = finite(dec.get_f64());
  if (out.weight < 0.0) throw DecodeError("wire: negative push-sum weight");
  dec.expect_done();
  return out;
}

MessageType peek_type(std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  return decode_header(dec);
}

}  // namespace ddc::wire
