#include <ddc/wire/codec.hpp>

#include <cstring>

namespace ddc::wire {

namespace {

template <typename T>
void put_le(std::vector<std::byte>& buffer, T value) {
  // Serialize little-endian regardless of host order.
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buffer.push_back(static_cast<std::byte>((value >> (8 * i)) & 0xff));
  }
}

template <typename T>
T get_le(std::span<const std::byte> bytes, std::size_t pos) {
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    // This IS the sanctioned bounds-checked reader: every Decoder
    // caller guards pos + sizeof(T) via need() before dispatching
    // here. ddcverify: allow(wire-taint)
    value |= static_cast<T>(static_cast<std::uint8_t>(bytes[pos + i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

void Encoder::put_u8(std::uint8_t v) { buffer_.push_back(std::byte{v}); }
void Encoder::put_u32(std::uint32_t v) { put_le(buffer_, v); }
void Encoder::put_u64(std::uint64_t v) { put_le(buffer_, v); }
void Encoder::put_i64(std::int64_t v) {
  put_le(buffer_, static_cast<std::uint64_t>(v));
}

void Encoder::put_f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_le(buffer_, bits);
}

void Encoder::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::byte>(v));
}

void Encoder::put_bytes(std::span<const std::byte> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void Decoder::need(std::size_t n) const {
  if (remaining() < n) {
    throw DecodeError("wire: truncated buffer (need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()) + ")");
  }
}

std::uint8_t Decoder::get_u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t Decoder::get_u32() {
  need(4);
  const auto v = get_le<std::uint32_t>(bytes_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::get_u64() {
  need(8);
  const auto v = get_le<std::uint64_t>(bytes_, pos_);
  pos_ += 8;
  return v;
}

std::int64_t Decoder::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

double Decoder::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t Decoder::get_varint() {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    need(1);
    const auto b = static_cast<std::uint8_t>(bytes_[pos_++]);
    value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      // Reject non-canonical zero-padding of the final group (e.g. 0x80
      // 0x00) so each integer has exactly one encoding.
      if (b == 0 && shift != 0) {
        throw DecodeError("wire: non-canonical varint");
      }
      return value;
    }
  }
  throw DecodeError("wire: varint longer than 64 bits");
}

std::span<const std::byte> Decoder::get_bytes(std::size_t n) {
  need(n);
  const auto view = bytes_.subspan(pos_, n);
  pos_ += n;
  return view;
}

void Decoder::check_count(std::uint64_t count,
                          std::size_t min_elem_size) const {
  if (min_elem_size != 0 && count > remaining() / min_elem_size) {
    throw DecodeError("wire: element count " + std::to_string(count) +
                      " exceeds remaining buffer capacity");
  }
}

void Decoder::expect_done() const {
  if (!done()) {
    throw DecodeError("wire: " + std::to_string(remaining()) +
                      " trailing bytes after message");
  }
}

}  // namespace ddc::wire
