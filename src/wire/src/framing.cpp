#include <ddc/wire/framing.hpp>

namespace ddc::wire {

namespace {

constexpr std::uint32_t kFrameMagicBase = 0x004e4444;  // "DDN\0" little-endian
constexpr std::uint32_t kFrameVersion = 1;
constexpr std::uint32_t kFrameMagic = kFrameMagicBase | (kFrameVersion << 24);

std::uint32_t narrow_u32(std::uint64_t v, const char* what) {
  if (v > 0xffffffffULL) {
    throw DecodeError(std::string(what) + " exceeds 32 bits");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

std::vector<std::byte> encode_frame(FrameKind kind, std::uint32_t sender,
                                    std::uint64_t seq,
                                    std::span<const std::byte> payload) {
  Encoder enc;
  enc.put_u32(kFrameMagic);
  enc.put_u8(static_cast<std::uint8_t>(kind));
  enc.put_u32(sender);
  enc.put_u64(seq);
  enc.put_bytes(payload);
  return enc.bytes();
}

Frame decode_frame(std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  const std::uint32_t magic = dec.get_u32();
  if ((magic & 0x00ffffff) != kFrameMagicBase) {
    throw DecodeError("wire: bad frame magic");
  }
  if ((magic >> 24) != kFrameVersion) {
    throw DecodeError("wire: unsupported frame version " +
                      std::to_string(magic >> 24));
  }
  const std::uint8_t kind = dec.get_u8();
  if (kind < 1 || kind > 5) {
    throw DecodeError("wire: unknown frame kind " + std::to_string(kind));
  }
  Frame frame;
  frame.kind = static_cast<FrameKind>(kind);
  frame.sender = dec.get_u32();
  frame.seq = dec.get_u64();
  frame.payload = bytes.subspan(bytes.size() - dec.remaining());
  if ((frame.kind == FrameKind::probe || frame.kind == FrameKind::probe_ack) &&
      !frame.payload.empty()) {
    throw DecodeError("wire: probe frame with payload");
  }
  return frame;
}

std::vector<std::byte> encode_batch(std::uint64_t round, std::uint32_t shard,
                                    std::uint32_t num_shards,
                                    std::span<const BatchRecord> records) {
  Encoder enc;
  enc.put_u64(round);
  enc.put_varint(shard);
  enc.put_varint(num_shards);
  enc.put_varint(records.size());
  for (const BatchRecord& rec : records) {
    enc.put_varint(rec.src);
    enc.put_varint(rec.dst);
    enc.put_u8(static_cast<std::uint8_t>(rec.tag));
    enc.put_varint(rec.payload.size());
    enc.put_bytes(rec.payload);
  }
  return enc.bytes();
}

Batch decode_batch(std::span<const std::byte> payload) {
  Decoder dec(payload);
  Batch batch;
  batch.round = dec.get_u64();
  batch.shard = narrow_u32(dec.get_varint(), "wire: batch shard id");
  batch.num_shards = narrow_u32(dec.get_varint(), "wire: batch num_shards");
  if (batch.num_shards == 0 || batch.shard >= batch.num_shards) {
    throw DecodeError("wire: batch shard id out of range");
  }
  const std::uint64_t count = dec.get_varint();
  // Smallest possible record: three 1-byte varints + tag = 4 bytes.
  dec.check_count(count, 4);
  batch.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    BatchRecord rec;
    rec.src = narrow_u32(dec.get_varint(), "wire: batch record src");
    rec.dst = narrow_u32(dec.get_varint(), "wire: batch record dst");
    const std::uint8_t tag = dec.get_u8();
    if (tag > 1) {
      throw DecodeError("wire: unknown batch record tag " +
                        std::to_string(tag));
    }
    rec.tag = static_cast<BatchTag>(tag);
    const std::uint64_t len = dec.get_varint();
    if (len > dec.remaining()) {
      throw DecodeError("wire: batch record payload overruns frame");
    }
    rec.payload = dec.get_bytes(static_cast<std::size_t>(len));
    batch.records.push_back(rec);
  }
  dec.expect_done();
  return batch;
}

std::vector<std::byte> encode_batch_ack(std::uint64_t round) {
  Encoder enc;
  enc.put_u64(round);
  return enc.bytes();
}

std::uint64_t decode_batch_ack(std::span<const std::byte> payload) {
  Decoder dec(payload);
  const std::uint64_t round = dec.get_u64();
  dec.expect_done();
  return round;
}

}  // namespace ddc::wire
