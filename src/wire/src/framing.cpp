#include <ddc/wire/framing.hpp>

namespace ddc::wire {

namespace {

constexpr std::uint32_t kFrameMagicBase = 0x004e4444;  // "DDN\0" little-endian
constexpr std::uint32_t kFrameVersion = 1;
constexpr std::uint32_t kFrameMagic = kFrameMagicBase | (kFrameVersion << 24);

}  // namespace

std::vector<std::byte> encode_frame(FrameKind kind, std::uint32_t sender,
                                    std::uint64_t seq,
                                    std::span<const std::byte> payload) {
  Encoder enc;
  enc.put_u32(kFrameMagic);
  enc.put_u8(static_cast<std::uint8_t>(kind));
  enc.put_u32(sender);
  enc.put_u64(seq);
  enc.put_bytes(payload);
  return enc.bytes();
}

Frame decode_frame(std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  const std::uint32_t magic = dec.get_u32();
  if ((magic & 0x00ffffff) != kFrameMagicBase) {
    throw DecodeError("wire: bad frame magic");
  }
  if ((magic >> 24) != kFrameVersion) {
    throw DecodeError("wire: unsupported frame version " +
                      std::to_string(magic >> 24));
  }
  const std::uint8_t kind = dec.get_u8();
  if (kind < 1 || kind > 3) {
    throw DecodeError("wire: unknown frame kind " + std::to_string(kind));
  }
  Frame frame;
  frame.kind = static_cast<FrameKind>(kind);
  frame.sender = dec.get_u32();
  frame.seq = dec.get_u64();
  frame.payload = bytes.subspan(bytes.size() - dec.remaining());
  if (frame.kind != FrameKind::gossip && !frame.payload.empty()) {
    throw DecodeError("wire: probe frame with payload");
  }
  return frame;
}

}  // namespace ddc::wire
