#include <ddc/net/loopback.hpp>

#include <utility>

#include <ddc/common/assert.hpp>

namespace ddc::net {

LoopbackNetwork::LoopbackNetwork(std::size_t num_peers,
                                 LoopbackOptions options)
    : options_(options),
      channel_rng_(stats::Rng::derive(options.seed, 0x4c4f4f50ULL)) {
  DDC_EXPECTS(num_peers >= 1);
  DDC_EXPECTS(options_.loss_probability >= 0.0 &&
              options_.loss_probability <= 1.0);
  DDC_EXPECTS(options_.min_delay_ticks <= options_.max_delay_ticks);
  up_.assign(num_peers, true);
  endpoints_.reserve(num_peers);
  for (std::size_t i = 0; i < num_peers; ++i) {
    endpoints_.emplace_back(new LoopbackTransport(
        *this, static_cast<PeerId>(i), num_peers));
  }
}

LoopbackNetwork::~LoopbackNetwork() = default;

std::size_t LoopbackNetwork::num_peers() const noexcept {
  return endpoints_.size();
}

LoopbackTransport& LoopbackNetwork::endpoint(PeerId id) {
  DDC_EXPECTS(id < endpoints_.size());
  return *endpoints_[id];
}

void LoopbackNetwork::submit(PeerId from, PeerId to,
                             const std::vector<std::byte>& frame) {
  DDC_EXPECTS(to < endpoints_.size());
  if (options_.loss_probability > 0.0 &&
      channel_rng_.bernoulli(options_.loss_probability)) {
    ++dropped_;
    return;
  }
  std::size_t delay = options_.min_delay_ticks;
  if (options_.max_delay_ticks > options_.min_delay_ticks) {
    delay += channel_rng_.uniform_index(options_.max_delay_ticks -
                                        options_.min_delay_ticks + 1);
  }
  // Due on the NEXT advance at the earliest: tick_ + 1 + delay.
  in_flight_.push_back({tick_ + 1 + delay, from, to, frame});
}

void LoopbackNetwork::advance() {
  ++tick_;
  // Stable single pass: due frames deliver in submission order, the rest
  // keep their relative order for later ticks.
  std::deque<InFlight> still_in_flight;
  for (auto& f : in_flight_) {
    if (f.due_tick <= tick_) {
      endpoints_[f.to]->deliver(f.from, std::move(f.bytes));
    } else {
      still_in_flight.push_back(std::move(f));
    }
  }
  in_flight_ = std::move(still_in_flight);
}

void LoopbackNetwork::set_peer_up(PeerId id, bool up) {
  DDC_EXPECTS(id < up_.size());
  up_[id] = up;
}

bool LoopbackNetwork::peer_up(PeerId id) const {
  DDC_EXPECTS(id < up_.size());
  return up_[id];
}

std::size_t LoopbackTransport::num_peers() const {
  return network_.num_peers();
}

bool LoopbackTransport::peer_reachable(PeerId to) const {
  return network_.peer_up(to);
}

void LoopbackTransport::send(PeerId to, const std::vector<std::byte>& frame) {
  DDC_EXPECTS(to < network_.num_peers());
  LinkStats& s = stats_[to];
  ++s.frames_sent;
  s.bytes_sent += frame.size();
  network_.submit(self_, to, frame);
}

std::vector<Packet> LoopbackTransport::receive() {
  std::vector<Packet> out;
  out.swap(rx_queue_);
  return out;
}

const LinkStats& LoopbackTransport::stats(PeerId peer) const {
  DDC_EXPECTS(peer < stats_.size());
  return stats_[peer];
}

void LoopbackTransport::deliver(PeerId from, std::vector<std::byte> bytes) {
  LinkStats& s = stats_[from];
  ++s.frames_received;
  s.bytes_received += bytes.size();
  rx_queue_.push_back({from, std::move(bytes)});
}

}  // namespace ddc::net
