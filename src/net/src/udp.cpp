#include <ddc/net/udp.hpp>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <ddc/common/assert.hpp>
#include <ddc/common/error.hpp>
#include <ddc/wire/framing.hpp>

namespace ddc::net {

namespace {

/// Largest datagram we ever emit or accept. Classification payloads are
/// O(k·d²) — a few hundred bytes — so 64 KiB is generous headroom.
constexpr std::size_t kMaxDatagram = 64 * 1024;

std::uint32_t parse_ipv4(const std::string& host) {
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (inet_pton(AF_INET, resolved.c_str(), &addr) != 1) {
    throw ConfigError("udp: '" + host +
                      "' is not an IPv4 address (use dotted quad)");
  }
  return addr.s_addr;  // network byte order
}

sockaddr_in make_sockaddr(const UdpPeer& peer) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = parse_ipv4(peer.host);
  sa.sin_port = htons(peer.port);
  return sa;
}

std::uint64_t address_key(const sockaddr_in& sa) {
  return (static_cast<std::uint64_t>(sa.sin_addr.s_addr) << 16) |
         ntohs(sa.sin_port);
}

}  // namespace

UdpTransport::UdpTransport(PeerId self, std::vector<UdpPeer> peers,
                           UdpOptions options)
    : self_(self),
      peers_(std::move(peers)),
      options_(options),
      loss_rng_(stats::Rng::derive(options.loss_seed, 0x55445000ULL)),
      state_(peers_.size()),
      stats_(peers_.size()) {
  DDC_EXPECTS(self_ < peers_.size());
  DDC_EXPECTS(options_.probe_retries >= 1);
  DDC_EXPECTS(options_.inject_receive_loss >= 0.0 &&
              options_.inject_receive_loss <= 1.0);
  bind_socket(peers_[self_]);
  const auto now = Clock::now();
  for (PeerId p = 0; p < peers_.size(); ++p) {
    state_[p].last_heard = now;
    state_[p].last_probe = now;
    update_peer_key(p);
  }
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::bind_socket(const UdpPeer& own) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    throw ConfigError(std::string("udp: socket() failed: ") +
                      std::strerror(errno));
  }
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw ConfigError(std::string("udp: O_NONBLOCK failed: ") +
                      std::strerror(errno));
  }
  sockaddr_in sa = make_sockaddr(own);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
    throw ConfigError("udp: cannot bind " + own.host + ":" +
                      std::to_string(own.port) + ": " + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw ConfigError(std::string("udp: getsockname failed: ") +
                      std::strerror(errno));
  }
  local_port_ = ntohs(bound.sin_port);
}

void UdpTransport::update_peer_key(PeerId peer) {
  by_address_.erase(state_[peer].addr_key);
  const sockaddr_in sa = make_sockaddr(peers_[peer]);
  state_[peer].addr_key = address_key(sa);
  if (peers_[peer].port != 0) {
    by_address_[state_[peer].addr_key] = peer;
  }
}

void UdpTransport::set_peer_address(PeerId peer, const std::string& host,
                                    std::uint16_t port) {
  DDC_EXPECTS(peer < peers_.size());
  peers_[peer] = UdpPeer{host, port};
  state_[peer].last_heard = Clock::now();
  state_[peer].probes_outstanding = 0;
  state_[peer].reachable = true;
  update_peer_key(peer);
}

void UdpTransport::send_raw(PeerId to, const std::vector<std::byte>& frame) {
  LinkStats& s = stats_[to];
  const sockaddr_in sa = make_sockaddr(peers_[to]);
  const ssize_t n =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n == static_cast<ssize_t>(frame.size())) {
    ++s.frames_sent;
    s.bytes_sent += frame.size();
  } else {
    // Full send buffer, oversize datagram, unreachable host: all just a
    // lost frame to this best-effort service.
    ++s.send_failures;
  }
}

void UdpTransport::send(PeerId to, const std::vector<std::byte>& frame) {
  DDC_EXPECTS(to < peers_.size());
  DDC_EXPECTS(frame.size() <= kMaxDatagram);
  send_raw(to, frame);
}

std::vector<Packet> UdpTransport::receive() {
  std::vector<Packet> out;
  std::vector<std::byte> buffer(kMaxDatagram);
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n =
        ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                   reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) break;  // EWOULDBLOCK (or any error): buffer drained
    if (options_.inject_receive_loss > 0.0 &&
        loss_rng_.bernoulli(options_.inject_receive_loss)) {
      ++injected_losses_;
      continue;
    }
    const auto it = by_address_.find(address_key(src));
    if (it == by_address_.end()) {
      ++unknown_source_frames_;
      continue;
    }
    const PeerId from = it->second;
    // Audited trust boundary: recvfrom wrote exactly n bytes into
    // buffer (the kernel bounds n by buffer.size()); every read past
    // this slice is re-validated by wire::decode_frame.
    // ddcverify: allow(wire-taint)
    const auto datagram_end = buffer.begin() + static_cast<long>(n);
    std::vector<std::byte> bytes(buffer.begin(), datagram_end);
    wire::Frame frame;
    try {
      frame = wire::decode_frame(bytes);
    } catch (const wire::DecodeError&) {
      ++malformed_frames_;
      continue;
    }
    note_heard(from);
    LinkStats& s = stats_[from];
    ++s.frames_received;
    s.bytes_received += bytes.size();
    switch (frame.kind) {
      case wire::FrameKind::probe:
        send_raw(from, wire::encode_frame(wire::FrameKind::probe_ack, self_,
                                          ++probe_seq_));
        break;
      case wire::FrameKind::probe_ack:
        break;  // note_heard above is the whole effect
      case wire::FrameKind::gossip:
      case wire::FrameKind::batch:
      case wire::FrameKind::batch_ack:
        out.push_back({from, std::move(bytes)});
        break;
    }
  }
  return out;
}

void UdpTransport::note_heard(PeerId peer) {
  state_[peer].last_heard = Clock::now();
  state_[peer].probes_outstanding = 0;
  state_[peer].reachable = true;
}

bool UdpTransport::peer_reachable(PeerId to) const {
  DDC_EXPECTS(to < peers_.size());
  return state_[to].reachable;
}

const LinkStats& UdpTransport::stats(PeerId peer) const {
  DDC_EXPECTS(peer < stats_.size());
  return stats_[peer];
}

void UdpTransport::maintain() {
  const auto now = Clock::now();
  for (PeerId p = 0; p < peers_.size(); ++p) {
    if (p == self_ || peers_[p].port == 0) continue;
    PeerState& st = state_[p];
    if (now - st.last_heard <= options_.probe_timeout) continue;
    if (st.probes_outstanding >= options_.probe_retries) {
      st.reachable = false;
      continue;
    }
    // Bounded retry: one probe per timeout span, up to probe_retries.
    if (st.probes_outstanding == 0 ||
        now - st.last_probe > options_.probe_timeout) {
      send_raw(p, wire::encode_frame(wire::FrameKind::probe, self_,
                                     ++probe_seq_));
      st.last_probe = now;
      ++st.probes_outstanding;
    }
  }
}

}  // namespace ddc::net
