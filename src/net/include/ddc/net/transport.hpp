// The message transport abstraction the networked gossip node drives.
//
// The paper's algorithm needs only an unreliable, unordered datagram
// service between neighbors — no routing, no connections, no delivery
// guarantees (Section 3.1 assumes reliable channels; the evaluation and
// our ablations deliberately relax that). This interface captures that
// minimal service. Two implementations ship:
//
//   * LoopbackTransport (loopback.hpp) — in-process, deterministic,
//     seeded delivery order with injectable loss and delay; hosts the
//     same node code the simulator tests exercise.
//   * UdpTransport (udp.hpp) — non-blocking UDP sockets; one process
//     per node, localhost or LAN.
//
// Frames are opaque byte vectors; src/wire defines their contents
// (envelope in framing.hpp, payloads in serialize.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ddc::net {

/// Index of an endpoint in the cluster's peer table. Dense and small —
/// the table is part of the static cluster configuration, exactly like
/// the simulator's NodeId space.
using PeerId = std::uint32_t;

/// One received datagram, attributed to the peer that sent it.
struct Packet {
  PeerId from;
  std::vector<std::byte> bytes;
};

/// Per-peer traffic counters. `send_failures` counts frames the
/// transport could not hand to the network (socket errors, unknown
/// peer); lost-in-flight frames are invisible here by nature.
struct LinkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t send_failures = 0;
};

/// A datagram endpoint bound to one peer id. Non-blocking throughout:
/// `send` queues or emits and returns, `receive` drains whatever has
/// arrived and returns immediately.
class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// This endpoint's id in the peer table.
  [[nodiscard]] virtual PeerId self() const = 0;

  /// Size of the peer table (including self).
  [[nodiscard]] virtual std::size_t num_peers() const = 0;

  /// Sends one frame to `to`. Best-effort: the frame may be lost in
  /// flight; a frame the transport could not even emit is counted in
  /// stats(to).send_failures.
  virtual void send(PeerId to, const std::vector<std::byte>& frame) = 0;

  /// Drains every frame that has arrived since the last call.
  [[nodiscard]] virtual std::vector<Packet> receive() = 0;

  /// Liveness estimate for `to`. Loopback transports have no failure
  /// detector and report every peer reachable; UdpTransport reports the
  /// probe-based estimate. Advisory only — a "reachable" peer can still
  /// drop frames.
  [[nodiscard]] virtual bool peer_reachable(PeerId to) const {
    (void)to;
    return true;
  }

  /// Traffic counters for the link to/from `peer`.
  [[nodiscard]] virtual const LinkStats& stats(PeerId peer) const = 0;

 protected:
  Transport() = default;
};

}  // namespace ddc::net
