// Cluster — an in-process ensemble of NetNodes on a LoopbackNetwork.
//
// The adapter that lets the networked node stack host the workloads the
// simulation runners are tested with: it takes the same ingredients as
// sim::RoundRunner (a Topology, a vector of protocol nodes, options)
// but drives them through the real Transport/NetNode/wire path — every
// message is encoded to bytes, queued in the fabric, decoded on
// receipt. Deterministic end to end: for a fixed seed two runs are
// bit-identical (tests/net/loopback_test pins this).
//
// A round is: every live node takes one send opportunity (ascending id
// order, like the sequential round engine), the fabric advances one
// tick, every live node services its inbox, crash draws apply. With
// delays configured, frames may span rounds — the asynchronous flavor
// of Section 3.1 rather than lockstep rounds.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/net/codec.hpp>
#include <ddc/net/loopback.hpp>
#include <ddc/net/net_node.hpp>
#include <ddc/sim/gossip_node.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::net {

struct ClusterOptions {
  sim::NeighborSelection selection = sim::NeighborSelection::uniform_random;
  /// Master seed; the fabric's channel stream and each node's selection
  /// stream derive from it.
  std::uint64_t seed = 1;
  /// Channel model (see LoopbackOptions).
  double loss_probability = 0.0;
  std::size_t min_delay_ticks = 0;
  std::size_t max_delay_ticks = 0;
  /// Per-node end-of-round crash probability. Crashed nodes stop
  /// sending and servicing; the (perfect) loopback failure detector
  /// excludes them from everyone's target selection, the Fig. 4 regime.
  double crash_probability = 0.0;
};

template <sim::GossipNode Node, typename Codec>
class Cluster {
 public:
  Cluster(sim::Topology topology, std::vector<Node> nodes,
          ClusterOptions options = {})
      : options_(options),
        network_(nodes.size(),
                 LoopbackOptions{stats::derive_seed(options.seed, 0x434c55ULL),
                                 options.loss_probability,
                                 options.min_delay_ticks,
                                 options.max_delay_ticks}),
        env_rng_(stats::Rng::derive(options.seed, 0x434c5553ULL)),
        alive_(nodes.size(), true) {
    DDC_EXPECTS(topology.num_nodes() == nodes.size());
    DDC_EXPECTS(options_.crash_probability >= 0.0 &&
                options_.crash_probability <= 1.0);
    drivers_.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      NetNodeOptions node_options;
      node_options.selection = options.selection;
      node_options.seed = stats::derive_seed(options.seed, 0x4e4f4445ULL + i);
      drivers_.emplace_back(std::move(nodes[i]), network_.endpoint(
                                static_cast<PeerId>(i)),
                            topology, node_options);
    }
  }

  void run_round() {
    for (std::size_t i = 0; i < drivers_.size(); ++i) {
      if (alive_[i]) (void)drivers_[i].begin_round();
    }
    network_.advance();
    for (std::size_t i = 0; i < drivers_.size(); ++i) {
      if (alive_[i]) (void)drivers_[i].service();
    }
    if (options_.crash_probability > 0.0) {
      for (std::size_t i = 0; i < drivers_.size(); ++i) {
        if (alive_[i] && env_rng_.bernoulli(options_.crash_probability)) {
          alive_[i] = false;
          network_.set_peer_up(static_cast<PeerId>(i), false);
        }
      }
    }
    ++round_;
  }

  void run_rounds(std::size_t count) {
    for (std::size_t r = 0; r < count; ++r) run_round();
  }

  /// Drains in-flight frames without new sends or crashes — the quiesce
  /// step before reading final classifications when delays are nonzero.
  void drain(std::size_t ticks) {
    for (std::size_t t = 0; t < ticks; ++t) {
      network_.advance();
      for (std::size_t i = 0; i < drivers_.size(); ++i) {
        if (alive_[i]) (void)drivers_[i].service();
      }
    }
  }

  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return drivers_.size();
  }
  [[nodiscard]] const std::vector<NetNode<Node, Codec>>& nodes()
      const noexcept {
    return drivers_;
  }
  [[nodiscard]] std::vector<NetNode<Node, Codec>>& nodes() noexcept {
    return drivers_;
  }
  [[nodiscard]] const Node& node(std::size_t i) const {
    DDC_EXPECTS(i < drivers_.size());
    return drivers_[i].node();
  }
  [[nodiscard]] LoopbackNetwork& network() noexcept { return network_; }

  [[nodiscard]] bool alive(std::size_t i) const {
    DDC_EXPECTS(i < alive_.size());
    return alive_[i];
  }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    std::size_t count = 0;
    for (const bool a : alive_) count += a ? 1 : 0;
    return count;
  }

 private:
  ClusterOptions options_;
  LoopbackNetwork network_;
  stats::Rng env_rng_;
  std::vector<NetNode<Node, Codec>> drivers_;
  std::vector<bool> alive_;
  std::size_t round_ = 0;
};

}  // namespace ddc::net
