// Bindings between protocol node Message types and the wire payload
// codecs — the glue NetNode needs to put a node's messages on a
// Transport. A codec type provides:
//
//   static std::vector<std::byte> encode(const Message&);
//   static Message decode(std::span<const std::byte>);
//
// decode throws wire::DecodeError on malformed payloads; NetNode counts
// and drops those frames instead of letting them kill the node.
#pragma once

#include <span>
#include <vector>

#include <ddc/core/collection.hpp>
#include <ddc/gossip/push_sum.hpp>
#include <ddc/wire/serialize.hpp>

namespace ddc::net {

/// Codec for classifier nodes (Message = core::Classification<Summary>).
/// Auxiliary vectors never travel — they are diagnostic-only and O(n).
template <typename Summary>
struct ClassificationCodec {
  using Message = core::Classification<Summary>;

  [[nodiscard]] static std::vector<std::byte> encode(const Message& message) {
    return wire::encode_classification(message);
  }
  [[nodiscard]] static Message decode(std::span<const std::byte> payload) {
    return wire::decode_classification<Summary>(payload);
  }
};

/// Codec for push-sum nodes.
struct PushSumCodec {
  using Message = gossip::PushSumMessage;

  [[nodiscard]] static std::vector<std::byte> encode(const Message& message) {
    return wire::encode_push_sum(message);
  }
  [[nodiscard]] static Message decode(std::span<const std::byte> payload) {
    return wire::decode_push_sum(payload);
  }
};

}  // namespace ddc::net
