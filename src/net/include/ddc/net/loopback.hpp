// Deterministic in-process transport.
//
// A LoopbackNetwork is a little switch fabric: it owns one
// LoopbackTransport endpoint per peer and a queue of in-flight frames.
// Time is a tick counter advanced explicitly by the driver. Every
// environmental decision — whether a frame is lost, how many ticks it
// spends in flight — comes from a stream seeded in the options, and
// delivery order is fixed by (due tick, submission order), so a run is
// bit-identical across executions for a fixed seed. That determinism
// contract is what lets the networked node driver be tested with the
// same rigor as the simulator (tests/net/loopback_test).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include <ddc/net/transport.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::net {

/// Channel model of a loopback fabric.
struct LoopbackOptions {
  /// Seed of the fabric's loss/delay stream.
  std::uint64_t seed = 1;
  /// Probability that a submitted frame is silently dropped. Drawn at
  /// submission time (one draw per frame, in submission order) only when
  /// nonzero, so loss-free runs consume no randomness.
  double loss_probability = 0.0;
  /// Frames spend uniform[min_delay_ticks, max_delay_ticks] whole ticks
  /// in flight. 0/0 delivers on the next advance(). The delay draw
  /// happens at submission time (after the loss draw) only when the
  /// range is nontrivial.
  std::size_t min_delay_ticks = 0;
  std::size_t max_delay_ticks = 0;
};

class LoopbackTransport;

/// The shared fabric. Create it with the cluster size, hand each node
/// `endpoint(i)`, and call `advance()` once per time step to move due
/// frames into receive queues.
class LoopbackNetwork {
 public:
  explicit LoopbackNetwork(std::size_t num_peers, LoopbackOptions options = {});
  ~LoopbackNetwork();

  LoopbackNetwork(const LoopbackNetwork&) = delete;
  LoopbackNetwork& operator=(const LoopbackNetwork&) = delete;

  [[nodiscard]] std::size_t num_peers() const noexcept;

  /// The endpoint of peer `id`. Borrowed; valid as long as the network.
  [[nodiscard]] LoopbackTransport& endpoint(PeerId id);

  /// Advances time by one tick and delivers every frame that is due.
  void advance();

  /// Marks a peer down (or back up). Every endpoint's peer_reachable
  /// reflects it immediately — the loopback fabric models the PERFECT
  /// failure detector, the best case a real deployment's probe-based
  /// detector approximates. Frames already in flight to a down peer
  /// still deliver into its queue (nobody services them), so the weight
  /// they carry is lost exactly as when a real node dies holding it.
  void set_peer_up(PeerId id, bool up);
  [[nodiscard]] bool peer_up(PeerId id) const;

  [[nodiscard]] std::size_t tick() const noexcept { return tick_; }
  [[nodiscard]] std::size_t frames_in_flight() const noexcept {
    return in_flight_.size();
  }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept {
    return dropped_;
  }

 private:
  friend class LoopbackTransport;

  struct InFlight {
    std::size_t due_tick;
    PeerId from;
    PeerId to;
    std::vector<std::byte> bytes;
  };

  /// Called by endpoints' send(). Applies the loss and delay draws.
  void submit(PeerId from, PeerId to, const std::vector<std::byte>& frame);

  LoopbackOptions options_;
  stats::Rng channel_rng_;
  std::vector<std::unique_ptr<LoopbackTransport>> endpoints_;
  /// Kept in submission order; advance() scans it stably, so two frames
  /// due the same tick deliver in the order they were sent.
  std::deque<InFlight> in_flight_;
  std::vector<bool> up_;
  std::size_t tick_ = 0;
  std::uint64_t dropped_ = 0;
};

/// One peer's endpoint on a LoopbackNetwork.
class LoopbackTransport final : public Transport {
 public:
  [[nodiscard]] PeerId self() const override { return self_; }
  [[nodiscard]] std::size_t num_peers() const override;
  void send(PeerId to, const std::vector<std::byte>& frame) override;
  [[nodiscard]] std::vector<Packet> receive() override;
  [[nodiscard]] bool peer_reachable(PeerId to) const override;
  [[nodiscard]] const LinkStats& stats(PeerId peer) const override;

 private:
  friend class LoopbackNetwork;
  LoopbackTransport(LoopbackNetwork& network, PeerId self,
                    std::size_t num_peers)
      : network_(network), self_(self), stats_(num_peers) {}

  /// Called by the network when a frame reaches this endpoint.
  void deliver(PeerId from, std::vector<std::byte> bytes);

  LoopbackNetwork& network_;
  PeerId self_;
  std::vector<Packet> rx_queue_;
  std::vector<LinkStats> stats_;
};

}  // namespace ddc::net
