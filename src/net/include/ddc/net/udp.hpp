// UDP datagram transport — the first deployable backend.
//
// One process per node; the cluster is a static peer table of
// host:port pairs (sensor deployments are configured, not discovered).
// The socket is non-blocking: send() emits or counts a failure,
// receive() drains the kernel buffer until it is empty. Incoming
// datagrams are attributed to peers by source address; datagrams from
// addresses outside the table are counted and dropped.
//
// Liveness: the transport keeps a probe-based failure detector. Call
// maintain() periodically; a peer silent for longer than
// `probe_timeout` is probed, and after `probe_retries` unanswered
// probes it is reported unreachable (peer_reachable() == false). Any
// later frame from the peer revives it — the detector is a hint for
// target selection, never a permanent eviction, matching the paper's
// crash-recovery-free but silence-tolerant model.
//
// Probe and probe-ack frames (wire::FrameKind) are handled inside the
// transport; receive() surfaces only gossip, batch and batch_ack
// frames, still wrapped in their full envelope.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <ddc/net/transport.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::net {

/// One row of the static peer table. `host` must be an IPv4 dotted quad
/// or the literal "localhost".
struct UdpPeer {
  std::string host;
  std::uint16_t port = 0;
};

struct UdpOptions {
  /// Silence span after which a peer gets probed.
  std::chrono::milliseconds probe_timeout{250};
  /// Unanswered probes before the peer is reported unreachable.
  int probe_retries = 3;
  /// Test hook: probability of dropping each incoming datagram before
  /// it is even parsed, simulating channel loss on a lossless loopback
  /// interface. Applies to every frame kind, probes included.
  double inject_receive_loss = 0.0;
  /// Seed of the injected-loss stream.
  std::uint64_t loss_seed = 1;
};

/// Non-blocking UDP endpoint. Throws ddc::ConfigError when the socket
/// cannot be created or bound.
class UdpTransport final : public Transport {
 public:
  /// Binds peers[self]'s address. A port of 0 in the own entry binds an
  /// ephemeral port (see local_port()); peer entries with port 0 must be
  /// fixed up via set_peer_address before sending.
  UdpTransport(PeerId self, std::vector<UdpPeer> peers,
               UdpOptions options = {});
  ~UdpTransport() override;

  [[nodiscard]] PeerId self() const override { return self_; }
  [[nodiscard]] std::size_t num_peers() const override {
    return peers_.size();
  }
  void send(PeerId to, const std::vector<std::byte>& frame) override;
  [[nodiscard]] std::vector<Packet> receive() override;
  [[nodiscard]] bool peer_reachable(PeerId to) const override;
  [[nodiscard]] const LinkStats& stats(PeerId peer) const override;

  /// The port the socket actually bound (== configured port unless 0).
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }

  /// Rebinds the table entry for `peer` (two-phase setup with ephemeral
  /// ports). Resets that peer's liveness state.
  void set_peer_address(PeerId peer, const std::string& host,
                        std::uint16_t port);

  /// Failure-detector upkeep: probes silent peers, expires the ones that
  /// exhausted their retries. Call once per driver tick.
  void maintain();

  /// Datagrams from addresses outside the peer table (dropped).
  [[nodiscard]] std::uint64_t unknown_source_frames() const noexcept {
    return unknown_source_frames_;
  }
  /// Datagrams that failed envelope parsing (dropped).
  [[nodiscard]] std::uint64_t malformed_frames() const noexcept {
    return malformed_frames_;
  }
  /// Datagrams dropped by the inject_receive_loss hook.
  [[nodiscard]] std::uint64_t injected_losses() const noexcept {
    return injected_losses_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct PeerState {
    std::uint64_t addr_key = 0;  // packed ip:port for the reverse map
    Clock::time_point last_heard;
    Clock::time_point last_probe;
    int probes_outstanding = 0;
    bool reachable = true;
  };

  void bind_socket(const UdpPeer& own);
  void update_peer_key(PeerId peer);
  void note_heard(PeerId peer);
  void send_raw(PeerId to, const std::vector<std::byte>& frame);

  PeerId self_;
  std::vector<UdpPeer> peers_;
  UdpOptions options_;
  stats::Rng loss_rng_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::vector<PeerState> state_;
  std::vector<LinkStats> stats_;
  std::unordered_map<std::uint64_t, PeerId> by_address_;
  std::uint64_t probe_seq_ = 0;
  std::uint64_t unknown_source_frames_ = 0;
  std::uint64_t malformed_frames_ = 0;
  std::uint64_t injected_losses_ = 0;
};

}  // namespace ddc::net
