// NetNode — one networked gossip endpoint.
//
// Runs the same protocol nodes the simulation runners drive (anything
// satisfying sim::GossipNode) against a Transport instead of an
// in-process runner. The driver is push gossip, exactly Algorithm 1's
// shape: each round the node splits its state (prepare_message), picks
// a fair neighbor among the ones its transport considers reachable, and
// ships the encoded half; whenever serviced it drains the transport and
// absorbs everything received as one batch, matching the paper's
// multi-message-round methodology (Section 5.3).
//
// Corrupt payloads are counted and dropped (the codecs throw
// DecodeError); a NetNode must survive anything the network delivers.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/net/transport.hpp>
#include <ddc/sim/gossip_node.hpp>
#include <ddc/sim/neighbor_selection.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/stats/rng.hpp>
#include <ddc/wire/framing.hpp>

namespace ddc::net {

struct NetNodeOptions {
  sim::NeighborSelection selection = sim::NeighborSelection::uniform_random;
  /// Seed of this node's neighbor-selection stream. Give every node of a
  /// cluster a distinct derived seed.
  std::uint64_t seed = 1;
};

/// Drives one protocol node over a Transport. The topology is the
/// node's static view of the cluster (every process of a deployment
/// builds the same one from shared configuration); gossip targets are
/// this node's out-neighbors in it.
template <sim::GossipNode Node, typename Codec>
class NetNode {
 public:
  using Message = typename Node::Message;

  NetNode(Node node, Transport& transport, sim::Topology topology,
          NetNodeOptions options = {})
      : node_(std::move(node)),
        transport_(transport),
        topology_(std::move(topology)),
        selector_(options.selection, topology_.num_nodes()),
        rng_(stats::Rng::derive(options.seed, 0x4e45544eULL)),
        reachable_(topology_.num_nodes(), true) {
    DDC_EXPECTS(topology_.num_nodes() == transport_.num_peers());
    DDC_EXPECTS(transport_.self() < topology_.num_nodes());
  }

  /// One send opportunity: splits the node's state and ships half to a
  /// fairly chosen reachable neighbor. Returns false when nothing was
  /// sent (no reachable neighbor, or nothing to send — an empty split
  /// leaves the node's state untouched, so no weight is lost).
  bool begin_round() {
    for (sim::NodeId p = 0; p < reachable_.size(); ++p) {
      reachable_[p] = transport_.peer_reachable(static_cast<PeerId>(p));
    }
    const auto target = selector_.pick(topology_, transport_.self(),
                                       reachable_, /*avoid=*/true, rng_);
    if (!target) return false;
    Message message = node_.prepare_message();
    if (message.empty()) return false;
    transport_.send(static_cast<PeerId>(*target),
                    wire::encode_frame(wire::FrameKind::gossip,
                                       transport_.self(), ++seq_,
                                       Codec::encode(message)));
    ++rounds_initiated_;
    return true;
  }

  /// Drains the transport and absorbs every received classification as
  /// one batch. Returns the number of messages absorbed.
  std::size_t service() {
    std::vector<Message> batch;
    for (const Packet& packet : transport_.receive()) {
      try {
        const wire::Frame frame = wire::decode_frame(packet.bytes);
        if (frame.kind != wire::FrameKind::gossip) continue;
        Message message = Codec::decode(frame.payload);
        if (!std::as_const(message).empty()) {
          batch.push_back(std::move(message));
        }
      } catch (const wire::DecodeError&) {
        ++decode_errors_;
      }
    }
    const std::size_t absorbed = batch.size();
    if (absorbed > 0) node_.absorb(std::move(batch));
    messages_absorbed_ += absorbed;
    return absorbed;
  }

  [[nodiscard]] const Node& node() const noexcept { return node_; }
  [[nodiscard]] Node& node() noexcept { return node_; }
  [[nodiscard]] Transport& transport() noexcept { return transport_; }

  /// Passthrough so metrics helpers written against protocol nodes
  /// (`nodes()[i].classification()`) work on NetNode sequences too.
  [[nodiscard]] decltype(auto) classification() const
    requires requires(const Node& n) { n.classification(); }
  {
    return node_.classification();
  }

  [[nodiscard]] std::uint64_t rounds_initiated() const noexcept {
    return rounds_initiated_;
  }
  [[nodiscard]] std::uint64_t messages_absorbed() const noexcept {
    return messages_absorbed_;
  }
  [[nodiscard]] std::uint64_t decode_errors() const noexcept {
    return decode_errors_;
  }

 private:
  Node node_;
  Transport& transport_;
  sim::Topology topology_;
  sim::NeighborSelector selector_;
  stats::Rng rng_;
  std::vector<bool> reachable_;
  std::uint64_t seq_ = 0;
  std::uint64_t rounds_initiated_ = 0;
  std::uint64_t messages_absorbed_ = 0;
  std::uint64_t decode_errors_ = 0;
};

}  // namespace ddc::net
