#include <ddc/stats/gaussian.hpp>

#include <cmath>
#include <numbers>

#include <ddc/common/error.hpp>
#include <ddc/linalg/moments.hpp>

namespace ddc::stats {

using linalg::Cholesky;
using linalg::Matrix;
using linalg::Vector;

Gaussian::Gaussian(std::size_t dim)
    : mean_(dim), cov_(Matrix::identity(dim)) {}

Gaussian::Gaussian(Vector mean, Matrix cov)
    : mean_(std::move(mean)), cov_(std::move(cov)) {
  DDC_EXPECTS(cov_.square());
  DDC_EXPECTS(cov_.rows() == mean_.dim());
  DDC_EXPECTS(linalg::is_symmetric(cov_, 1e-9));
  cov_ = linalg::symmetrize(cov_);
}

Gaussian Gaussian::point_mass(Vector mean) {
  const std::size_t d = mean.dim();
  return Gaussian(std::move(mean), Matrix(d, d));
}

Gaussian Gaussian::spherical(Vector mean, double stddev) {
  DDC_EXPECTS(stddev >= 0.0);
  const std::size_t d = mean.dim();
  return Gaussian(std::move(mean), Matrix::identity(d) * (stddev * stddev));
}

const Cholesky& Gaussian::factor() const {
  if (!factor_) factor_ = linalg::regularized_cholesky(cov_);
  return *factor_;
}

double Gaussian::mahalanobis_squared(const Vector& x) const {
  DDC_EXPECTS(x.dim() == dim());
  return factor().mahalanobis_squared(x - mean_);
}

double Gaussian::log_pdf(const Vector& x) const {
  DDC_EXPECTS(x.dim() == dim());
  const double d = static_cast<double>(dim());
  return -0.5 * (d * std::log(2.0 * std::numbers::pi) + factor().log_det() +
                 mahalanobis_squared(x));
}

double Gaussian::pdf(const Vector& x) const { return std::exp(log_pdf(x)); }

Vector Gaussian::sample(Rng& rng) const {
  const std::size_t d = dim();
  Vector z(d);
  for (std::size_t i = 0; i < d; ++i) z[i] = rng.normal();
  return mean_ + factor().lower() * z;
}

double kl_divergence(const Gaussian& a, const Gaussian& b) {
  DDC_EXPECTS(a.dim() == b.dim());
  const double d = static_cast<double>(a.dim());
  const Cholesky fb = linalg::regularized_cholesky(b.cov());
  const Cholesky fa = linalg::regularized_cholesky(a.cov());
  const Matrix b_inv = fb.inverse();
  const double tr = linalg::trace(b_inv * a.cov());
  const double maha = fb.mahalanobis_squared(b.mean() - a.mean());
  return 0.5 * (tr + maha - d + fb.log_det() - fa.log_det());
}

double symmetric_kl(const Gaussian& a, const Gaussian& b) {
  return kl_divergence(a, b) + kl_divergence(b, a);
}

double bhattacharyya(const Gaussian& a, const Gaussian& b) {
  DDC_EXPECTS(a.dim() == b.dim());
  const Matrix avg_cov = (a.cov() + b.cov()) / 2.0;
  const Cholesky favg = linalg::regularized_cholesky(avg_cov);
  const Cholesky fa = linalg::regularized_cholesky(a.cov());
  const Cholesky fb = linalg::regularized_cholesky(b.cov());
  const double maha = favg.mahalanobis_squared(a.mean() - b.mean());
  const double log_ratio =
      favg.log_det() - 0.5 * (fa.log_det() + fb.log_det());
  return maha / 8.0 + 0.5 * log_ratio;
}

double expected_log_pdf(const Gaussian& a, const Gaussian& b) {
  // One-shot form of ExpectedLogPdfScorer(b).score(a) — same values
  // combined in the same order (scorer_test checks the equivalence
  // exactly), without paying the scorer's member copies. Callers scoring
  // many inputs against one model should hold a scorer instead.
  DDC_EXPECTS(a.dim() == b.dim());
  const double d = static_cast<double>(a.dim());
  const Cholesky fb = linalg::regularized_cholesky(b.cov());
  const double tr = linalg::trace_product(fb.inverse(), a.cov());
  const double maha = fb.mahalanobis_squared(a.mean() - b.mean());
  return -0.5 *
         (d * std::log(2.0 * std::numbers::pi) + fb.log_det() + tr + maha);
}

ExpectedLogPdfScorer::ExpectedLogPdfScorer(const Gaussian& model)
    : mean_(model.mean()),
      factor_(linalg::regularized_cholesky(model.cov())),
      inverse_(factor_.inverse()),
      base_(static_cast<double>(model.dim()) *
                std::log(2.0 * std::numbers::pi) +
            factor_.log_det()) {}

double ExpectedLogPdfScorer::score(const Gaussian& a) const {
  DDC_EXPECTS(a.dim() == mean_.dim());
  // E_{x~N(µa,Σa)}[log N(x; µb, Σb)]
  //   = −½ (d log 2π + log|Σb| + tr(Σb⁻¹ Σa) + (µa−µb)ᵀ Σb⁻¹ (µa−µb)).
  // base_ carries the first two (input-independent) terms.
  const double tr = linalg::trace_product(inverse_, a.cov());
  const double maha = factor_.mahalanobis_squared(a.mean() - mean_);
  return -0.5 * (base_ + tr + maha);
}

Gaussian moment_match(const std::vector<WeightedGaussian>& parts) {
  DDC_EXPECTS(!parts.empty());
  const std::size_t d = parts.front().gaussian.dim();
  double total = 0.0;
  for (const auto& p : parts) {
    DDC_EXPECTS(p.weight > 0.0);
    DDC_EXPECTS(p.gaussian.dim() == d);
    total += p.weight;
  }
  DDC_EXPECTS(total > 0.0);

  // Law of total covariance: Σ = Σᵢ wᵢ (Σᵢ + (µᵢ−µ)(µᵢ−µ)ᵀ) / W, built
  // in place (no per-part temporaries; same arithmetic bit for bit).
  linalg::WeightedMomentAccumulator acc(d);
  for (const auto& p : parts) {
    acc.accumulate_mean(p.weight / total, p.gaussian.mean());
  }
  for (const auto& p : parts) {
    acc.accumulate_spread(p.weight / total, p.gaussian.cov(),
                          p.gaussian.mean());
  }
  return Gaussian(acc.take_mean(), linalg::symmetrize(acc.take_cov()));
}

}  // namespace ddc::stats
