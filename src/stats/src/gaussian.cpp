#include <ddc/stats/gaussian.hpp>

#include <cmath>
#include <numbers>

#include <algorithm>

#include <ddc/common/error.hpp>
#include <ddc/linalg/moments.hpp>
#include <ddc/linalg/simd.hpp>
#include <ddc/stats/gaussian_batch.hpp>

namespace ddc::stats {

using linalg::Cholesky;
using linalg::Matrix;
using linalg::Vector;

Gaussian::Gaussian(std::size_t dim)
    : mean_(dim), cov_(Matrix::identity(dim)) {}

Gaussian::Gaussian(Vector mean, Matrix cov)
    : mean_(std::move(mean)), cov_(std::move(cov)) {
  DDC_EXPECTS(cov_.square());
  DDC_EXPECTS(cov_.rows() == mean_.dim());
  DDC_EXPECTS(linalg::is_symmetric(cov_, 1e-9));
  cov_ = linalg::symmetrize(cov_);
}

Gaussian Gaussian::point_mass(Vector mean) {
  const std::size_t d = mean.dim();
  return Gaussian(std::move(mean), Matrix(d, d));
}

Gaussian Gaussian::spherical(Vector mean, double stddev) {
  DDC_EXPECTS(stddev >= 0.0);
  const std::size_t d = mean.dim();
  return Gaussian(std::move(mean), Matrix::identity(d) * (stddev * stddev));
}

const Cholesky& Gaussian::factor() const {
  if (!factor_) factor_ = linalg::regularized_cholesky(cov_);
  return *factor_;
}

double Gaussian::mahalanobis_squared(const Vector& x) const {
  DDC_EXPECTS(x.dim() == dim());
  return factor().mahalanobis_squared(x - mean_);
}

double Gaussian::log_pdf(const Vector& x) const {
  DDC_EXPECTS(x.dim() == dim());
  const double d = static_cast<double>(dim());
  return -0.5 * (d * std::log(2.0 * std::numbers::pi) + factor().log_det() +
                 mahalanobis_squared(x));
}

double Gaussian::pdf(const Vector& x) const { return std::exp(log_pdf(x)); }

Vector Gaussian::sample(Rng& rng) const {
  const std::size_t d = dim();
  Vector z(d);
  for (std::size_t i = 0; i < d; ++i) z[i] = rng.normal();
  return mean_ + factor().lower() * z;
}

double kl_divergence(const Gaussian& a, const Gaussian& b) {
  DDC_EXPECTS(a.dim() == b.dim());
  const double d = static_cast<double>(a.dim());
  const Cholesky fb = linalg::regularized_cholesky(b.cov());
  const Cholesky fa = linalg::regularized_cholesky(a.cov());
  const Matrix b_inv = fb.inverse();
  const double tr = linalg::trace(b_inv * a.cov());
  const double maha = fb.mahalanobis_squared(b.mean() - a.mean());
  return 0.5 * (tr + maha - d + fb.log_det() - fa.log_det());
}

double symmetric_kl(const Gaussian& a, const Gaussian& b) {
  return kl_divergence(a, b) + kl_divergence(b, a);
}

double bhattacharyya(const Gaussian& a, const Gaussian& b) {
  DDC_EXPECTS(a.dim() == b.dim());
  const Matrix avg_cov = (a.cov() + b.cov()) / 2.0;
  const Cholesky favg = linalg::regularized_cholesky(avg_cov);
  const Cholesky fa = linalg::regularized_cholesky(a.cov());
  const Cholesky fb = linalg::regularized_cholesky(b.cov());
  const double maha = favg.mahalanobis_squared(a.mean() - b.mean());
  const double log_ratio =
      favg.log_det() - 0.5 * (fa.log_det() + fb.log_det());
  return maha / 8.0 + 0.5 * log_ratio;
}

double expected_log_pdf(const Gaussian& a, const Gaussian& b) {
  // Rides the hoisted scorer so the one-shot path shares the packed
  // kernel implementation instead of duplicating the Cholesky/inverse
  // transcription inline (scorer_test checks the exact equivalence to
  // the textbook formula). Callers scoring many inputs against one
  // model should hold a scorer — or a GaussianBatch — instead.
  DDC_EXPECTS(a.dim() == b.dim());
  return ExpectedLogPdfScorer(b).score(a);
}

ExpectedLogPdfScorer::ExpectedLogPdfScorer(const Gaussian& model)
    : d_(model.dim()), scratch_(8 * model.dim()) {
  const Cholesky factor = linalg::regularized_cholesky(model.cov());
  const Matrix inverse = factor.inverse();
  base_ = static_cast<double>(d_) * std::log(2.0 * std::numbers::pi) +
          factor.log_det();
  store_.resize(d_ + 2 * d_ * d_);
  double* out = store_.data();
  out = std::copy(model.mean().data().begin(), model.mean().data().end(), out);
  out = std::copy(factor.lower().data().begin(), factor.lower().data().end(),
                  out);
  std::copy(inverse.data().begin(), inverse.data().end(), out);
}

linalg::kernels::ScorerData ExpectedLogPdfScorer::view() const noexcept {
  const double* base = store_.data();
  return {d_, base, base + d_, base + d_ + d_ * d_, base_};
}

double ExpectedLogPdfScorer::score(const Gaussian& a) const {
  DDC_EXPECTS(a.dim() == d_);
  // E_{x~N(µa,Σa)}[log N(x; µb, Σb)]
  //   = −½ (d log 2π + log|Σb| + tr(Σb⁻¹ Σa) + (µa−µb)ᵀ Σb⁻¹ (µa−µb)).
  // base_ carries the first two (input-independent) terms; the kernel
  // performs the exact arithmetic of the pre-kernel implementation
  // (trace product with zero-skip, then forward substitution).
  return linalg::kernels::dispatch_dim(d_, [&](auto d) {
    return linalg::kernels::score_one<d()>(view(), a.mean().data().data(),
                                           a.cov().data().data(),
                                           scratch_.data(), d_);
  });
}

// ddcverify: hotpath
void ExpectedLogPdfScorer::score_batch(const GaussianBatch& batch,
                                       double* out) const {
  DDC_EXPECTS(batch.empty() || batch.dim() == d_);
  linalg::simd::batch_score_kernel()(view(), batch.means(), batch.covs(),
                                     batch.size(), out, scratch_.data());
}

Gaussian moment_match(const std::vector<WeightedGaussian>& parts) {
  DDC_EXPECTS(!parts.empty());
  const std::size_t d = parts.front().gaussian.dim();
  double total = 0.0;
  for (const auto& p : parts) {
    DDC_EXPECTS(p.weight > 0.0);
    DDC_EXPECTS(p.gaussian.dim() == d);
    total += p.weight;
  }
  DDC_EXPECTS(total > 0.0);

  // Law of total covariance: Σ = Σᵢ wᵢ (Σᵢ + (µᵢ−µ)(µᵢ−µ)ᵀ) / W, built
  // in place (no per-part temporaries; same arithmetic bit for bit).
  linalg::WeightedMomentAccumulator acc(d);
  for (const auto& p : parts) {
    acc.accumulate_mean(p.weight / total, p.gaussian.mean());
  }
  for (const auto& p : parts) {
    acc.accumulate_spread(p.weight / total, p.gaussian.cov(),
                          p.gaussian.mean());
  }
  return Gaussian(acc.take_mean(), linalg::symmetrize(acc.take_cov()));
}

}  // namespace ddc::stats
