#include <ddc/stats/descriptive.hpp>

#include <ddc/common/assert.hpp>

namespace ddc::stats {

using linalg::Matrix;
using linalg::Vector;

double total_weight(const std::vector<WeightedValue>& sample) {
  double acc = 0.0;
  for (const auto& wv : sample) {
    DDC_EXPECTS(wv.weight > 0.0);
    acc += wv.weight;
  }
  return acc;
}

Vector weighted_mean(const std::vector<WeightedValue>& sample) {
  DDC_EXPECTS(!sample.empty());
  const double total = total_weight(sample);
  DDC_EXPECTS(total > 0.0);
  Vector acc(sample.front().value.dim());
  for (const auto& wv : sample) acc += (wv.weight / total) * wv.value;
  return acc;
}

Matrix weighted_covariance(const std::vector<WeightedValue>& sample) {
  DDC_EXPECTS(!sample.empty());
  const Vector mu = weighted_mean(sample);
  const double total = total_weight(sample);
  Matrix acc(mu.dim(), mu.dim());
  for (const auto& wv : sample) {
    const Vector d = wv.value - mu;
    acc += (wv.weight / total) * linalg::outer(d, d);
  }
  return linalg::symmetrize(acc);
}

RunningMoments::RunningMoments(std::size_t dim)
    : mean_(dim), scatter_(dim, dim) {}

void RunningMoments::add(const Vector& value, double w) {
  DDC_EXPECTS(w > 0.0);
  DDC_EXPECTS(value.dim() == dim());
  const double new_weight = weight_ + w;
  const Vector delta = value - mean_;
  mean_ += (w / new_weight) * delta;
  // West (1979): scatter += w · δ (v − µ_new)ᵀ, expressed symmetrically.
  const Vector delta2 = value - mean_;
  scatter_ += w * linalg::outer(delta, delta2);
  weight_ = new_weight;
  ++count_;
  // outer(delta, delta2) is asymmetric in finite precision; symmetrize
  // lazily in covariance() instead of every step.
}

const Vector& RunningMoments::mean() const {
  DDC_EXPECTS(weight_ > 0.0);
  return mean_;
}

Matrix RunningMoments::covariance() const {
  DDC_EXPECTS(weight_ > 0.0);
  return linalg::symmetrize(scatter_ / weight_);
}

}  // namespace ddc::stats
