#include <ddc/stats/mixture.hpp>

#include <algorithm>
#include <cmath>
#include <limits>

#include <ddc/common/error.hpp>

namespace ddc::stats {

using linalg::Vector;

GaussianMixture::GaussianMixture(std::vector<WeightedGaussian> components)
    : components_(std::move(components)) {
  if (components_.empty()) return;
  const std::size_t d = components_.front().gaussian.dim();
  for (const auto& c : components_) {
    DDC_EXPECTS(c.weight > 0.0);
    DDC_EXPECTS(c.gaussian.dim() == d);
  }
}

void GaussianMixture::add(WeightedGaussian component) {
  DDC_EXPECTS(component.weight > 0.0);
  DDC_EXPECTS(components_.empty() || component.gaussian.dim() == dim());
  components_.push_back(std::move(component));
}

double GaussianMixture::total_weight() const noexcept {
  double acc = 0.0;
  for (const auto& c : components_) acc += c.weight;
  return acc;
}

double GaussianMixture::pdf(const Vector& x) const {
  return std::exp(log_pdf(x));
}

double GaussianMixture::log_pdf(const Vector& x) const {
  DDC_EXPECTS(!components_.empty());
  const double log_total = std::log(total_weight());
  double max_term = -std::numeric_limits<double>::infinity();
  std::vector<double> terms;
  terms.reserve(components_.size());
  for (const auto& c : components_) {
    const double t = std::log(c.weight) - log_total + c.gaussian.log_pdf(x);
    terms.push_back(t);
    max_term = std::max(max_term, t);
  }
  if (!std::isfinite(max_term)) return max_term;
  double acc = 0.0;
  for (double t : terms) acc += std::exp(t - max_term);
  return max_term + std::log(acc);
}

std::vector<double> GaussianMixture::responsibilities(const Vector& x) const {
  DDC_EXPECTS(!components_.empty());
  std::vector<double> logs;
  logs.reserve(components_.size());
  double max_term = -std::numeric_limits<double>::infinity();
  for (const auto& c : components_) {
    const double t = std::log(c.weight) + c.gaussian.log_pdf(x);
    logs.push_back(t);
    max_term = std::max(max_term, t);
  }
  std::vector<double> out(components_.size(), 0.0);
  if (!std::isfinite(max_term)) {
    // All densities underflowed; fall back to uniform responsibility.
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(out.size()));
    return out;
  }
  double denom = 0.0;
  for (std::size_t i = 0; i < logs.size(); ++i) {
    out[i] = std::exp(logs[i] - max_term);
    denom += out[i];
  }
  for (double& r : out) r /= denom;
  return out;
}

std::size_t GaussianMixture::classify(const Vector& x) const {
  const std::vector<double> r = responsibilities(x);
  return static_cast<std::size_t>(
      std::distance(r.begin(), std::max_element(r.begin(), r.end())));
}

Vector GaussianMixture::sample(Rng& rng) const {
  DDC_EXPECTS(!components_.empty());
  std::vector<double> weights;
  weights.reserve(components_.size());
  for (const auto& c : components_) weights.push_back(c.weight);
  return components_[rng.discrete(weights)].gaussian.sample(rng);
}

std::vector<Vector> GaussianMixture::sample(Rng& rng, std::size_t count) const {
  std::vector<Vector> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(sample(rng));
  return out;
}

Vector GaussianMixture::mean() const {
  DDC_EXPECTS(!components_.empty());
  const double total = total_weight();
  Vector acc(dim());
  for (const auto& c : components_) acc += (c.weight / total) * c.gaussian.mean();
  return acc;
}

Gaussian GaussianMixture::collapse() const { return moment_match(components_); }

}  // namespace ddc::stats
