#include <ddc/stats/mixture_distance.hpp>

#include <algorithm>

#include <ddc/common/assert.hpp>

namespace ddc::stats {

double product_integral(const GaussianMixture& f, const GaussianMixture& g) {
  DDC_EXPECTS(!f.empty() && !g.empty());
  DDC_EXPECTS(f.dim() == g.dim());
  const double f_total = f.total_weight();
  const double g_total = g.total_weight();
  double acc = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    for (std::size_t j = 0; j < g.size(); ++j) {
      // ∫ N(x;µᵢ,Σᵢ) N(x;µⱼ,Σⱼ) dx = N(µᵢ−µⱼ; 0, Σᵢ+Σⱼ).
      const Gaussian convolution(
          linalg::Vector(f.dim()),
          f[i].gaussian.cov() + g[j].gaussian.cov());
      acc += (f[i].weight / f_total) * (g[j].weight / g_total) *
             convolution.pdf(f[i].gaussian.mean() - g[j].gaussian.mean());
    }
  }
  return acc;
}

double ise_distance(const GaussianMixture& f, const GaussianMixture& g) {
  const double ise = product_integral(f, f) - 2.0 * product_integral(f, g) +
                     product_integral(g, g);
  return std::max(ise, 0.0);  // clamp the tiny negative rounding residue
}

double normalized_ise(const GaussianMixture& f, const GaussianMixture& g) {
  const double ff = product_integral(f, f);
  const double gg = product_integral(g, g);
  DDC_EXPECTS(ff + gg > 0.0);
  return std::clamp(
      (ff - 2.0 * product_integral(f, g) + gg) / (ff + gg), 0.0, 1.0);
}

}  // namespace ddc::stats
