#include <ddc/stats/gaussian_batch.hpp>

#include <ddc/common/assert.hpp>

namespace ddc::stats {

void GaussianBatch::reserve(std::size_t count, std::size_t dim) {
  means_.reserve(count * dim);
  covs_.reserve(count * dim * dim);
}

void GaussianBatch::push_back(const Gaussian& g) {
  if (count_ == 0) {
    d_ = g.dim();
  } else {
    DDC_EXPECTS(g.dim() == d_);
  }
  const std::vector<double>& mean = g.mean().data();
  const std::vector<double>& cov = g.cov().data();
  means_.insert(means_.end(), mean.begin(), mean.end());
  covs_.insert(covs_.end(), cov.begin(), cov.end());
  ++count_;
}

void GaussianBatch::assign(const GaussianMixture& mixture) {
  clear();
  reserve(mixture.size(), mixture.dim());
  for (const WeightedGaussian& part : mixture.components()) {
    push_back(part.gaussian);
  }
}

}  // namespace ddc::stats
