#include <ddc/stats/histogram.hpp>

#include <algorithm>
#include <cmath>

namespace ddc::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), mass_(bins, 0.0) {
  DDC_EXPECTS(bins >= 1);
  DDC_EXPECTS(lo < hi);
}

std::size_t Histogram::bin_of(double x) const noexcept {
  if (x <= lo_) return 0;
  if (x >= hi_) return mass_.size() - 1;
  const double t = (x - lo_) / (hi_ - lo_);
  const auto b = static_cast<std::size_t>(t * static_cast<double>(mass_.size()));
  return std::min(b, mass_.size() - 1);
}

void Histogram::add(double x, double weight) {
  DDC_EXPECTS(weight >= 0.0);
  mass_[bin_of(x)] += weight;
}

void Histogram::merge(const Histogram& other, double scale) {
  DDC_EXPECTS(other.lo_ == lo_ && other.hi_ == hi_ &&
              other.mass_.size() == mass_.size());
  DDC_EXPECTS(scale >= 0.0);
  for (std::size_t b = 0; b < mass_.size(); ++b) {
    mass_[b] += scale * other.mass_[b];
  }
}

void Histogram::scale(double s) {
  DDC_EXPECTS(s >= 0.0);
  for (double& m : mass_) m *= s;
}

double Histogram::total() const noexcept {
  double acc = 0.0;
  for (double m : mass_) acc += m;
  return acc;
}

double Histogram::bin_center(std::size_t b) const {
  DDC_EXPECTS(b < mass_.size());
  const double width = (hi_ - lo_) / static_cast<double>(mass_.size());
  return lo_ + (static_cast<double>(b) + 0.5) * width;
}

double Histogram::mean() const {
  const double t = total();
  DDC_EXPECTS(t > 0.0);
  double acc = 0.0;
  for (std::size_t b = 0; b < mass_.size(); ++b) {
    acc += mass_[b] * bin_center(b);
  }
  return acc / t;
}

double Histogram::l1_distance(const Histogram& other) const {
  DDC_EXPECTS(other.lo_ == lo_ && other.hi_ == hi_ &&
              other.mass_.size() == mass_.size());
  const double ta = total();
  const double tb = other.total();
  DDC_EXPECTS(ta > 0.0 && tb > 0.0);
  double acc = 0.0;
  for (std::size_t b = 0; b < mass_.size(); ++b) {
    acc += std::abs(mass_[b] / ta - other.mass_[b] / tb);
  }
  return acc;
}

}  // namespace ddc::stats
