#include <ddc/stats/rng.hpp>

#include <vector>

#include <ddc/common/assert.hpp>

namespace ddc::stats {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) noexcept {
  std::uint64_t state = seed ^ (0x6a09e667f3bcc909ULL + salt * 0x3c6ef372fe94f82bULL);
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  return a ^ (b << 1);
}

Rng Rng::derive(std::uint64_t seed, std::uint64_t salt) {
  return Rng(derive_seed(seed, salt));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  DDC_EXPECTS(lo < hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t Rng::uniform_index(std::size_t n) {
  DDC_EXPECTS(n > 0);
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double Rng::normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

double Rng::normal(double mean, double stddev) {
  DDC_EXPECTS(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::bernoulli(double p) {
  DDC_EXPECTS(p >= 0.0 && p <= 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  DDC_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DDC_EXPECTS(w >= 0.0);
    total += w;
  }
  DDC_EXPECTS(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: r consumed by rounding
}

}  // namespace ddc::stats
