// Fixed-bin 1-D histogram.
//
// The related-work baselines the paper contrasts itself with (Haridasan &
// van Renesse 2008; Sacha et al. 2009) estimate distributions in sensor
// networks with histograms over single-dimensional data. We implement a
// histogram summary as an ablation instantiation of the generic algorithm
// so the "histograms merge distant small clusters / are 1-D only" claim
// can be demonstrated, not just asserted.
#pragma once

#include <cstddef>
#include <vector>

#include <ddc/common/assert.hpp>

namespace ddc::stats {

/// Equal-width histogram over a fixed interval [lo, hi). Mass outside the
/// interval is clamped into the first/last bin so that total mass is
/// conserved under merging (which the generic algorithm requires).
class Histogram {
 public:
  /// Histogram with `bins` equal-width bins on [lo, hi). Requires
  /// bins ≥ 1 and lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bins() const noexcept { return mass_.size(); }
  [[nodiscard]] const std::vector<double>& mass() const noexcept { return mass_; }

  /// Adds `weight` mass at position `x` (clamped into range).
  void add(double x, double weight = 1.0);

  /// Adds another histogram's mass bin-by-bin. Requires identical binning.
  void merge(const Histogram& other, double scale = 1.0);

  /// Multiplies all mass by `s ≥ 0`.
  void scale(double s);

  /// Total mass.
  [[nodiscard]] double total() const noexcept;

  /// Bin index for position `x` (after clamping).
  [[nodiscard]] std::size_t bin_of(double x) const noexcept;

  /// Center position of bin `b`.
  [[nodiscard]] double bin_center(std::size_t b) const;

  /// Mass-weighted mean position. Requires total() > 0.
  [[nodiscard]] double mean() const;

  /// L1 distance between the *normalized* histograms (total variation ×2).
  /// Requires identical binning.
  [[nodiscard]] double l1_distance(const Histogram& other) const;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  double lo_;
  double hi_;
  std::vector<double> mass_;
};

}  // namespace ddc::stats
