// Deterministic random-number streams.
//
// Simulations must be reproducible from (configuration, seed): every node
// and the environment (delays, crashes) gets its own independent stream so
// that changing one node's behaviour does not shift everyone else's
// randomness.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ddc::stats {

/// A seeded random stream. Thin wrapper over std::mt19937_64 with the
/// sampling helpers the simulator and workload generators need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives a child stream; `derive(s)` for distinct `s` yields streams
  /// that are independent for simulation purposes. Implemented with
  /// SplitMix64 over (seed, salt) so that child seeds are well spread even
  /// for consecutive salts.
  [[nodiscard]] static Rng derive(std::uint64_t seed, std::uint64_t salt);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi). Requires lo < hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t uniform_index(std::size_t n);

  /// Standard normal sample.
  [[nodiscard]] double normal();

  /// Normal sample with the given mean and standard deviation (σ ≥ 0).
  [[nodiscard]] double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p ∈ [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Samples an index with probability proportional to `weights[i]`.
  /// Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t discrete(const std::vector<double>& weights);

  /// Underlying engine, for std distributions not wrapped here.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 step — public because tests and seed-derivation use it.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Derives a child SEED (rather than a stream) from (seed, salt) — for
/// components that take a seed in their options and construct their own
/// streams. `Rng::derive(s, t)` and `Rng(derive_seed(s, t))` produce
/// identical streams.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed,
                                        std::uint64_t salt) noexcept;

}  // namespace ddc::stats
