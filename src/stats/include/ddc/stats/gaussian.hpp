// Multivariate Gaussian model.
//
// The GM instantiation (paper Section 5.1) summarizes a collection by
// ⟨µ, Σ⟩; this class is that summary's mathematical payload: density
// evaluation, sampling, and the divergences used by partition policies.
#pragma once

#include <optional>
#include <vector>

#include <ddc/linalg/cholesky.hpp>
#include <ddc/linalg/kernels.hpp>
#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::stats {

/// A d-dimensional Gaussian N(µ, Σ). Σ must be symmetric positive
/// semi-definite; operations that need Σ⁻¹ regularize degenerate Σ
/// internally (a fresh single-value collection legitimately has Σ = 0).
class Gaussian {
 public:
  /// Standard normal of the given dimension: N(0, I).
  explicit Gaussian(std::size_t dim);

  /// N(mean, cov). Requires cov to be square, symmetric (to 1e-9·scale) and
  /// of order mean.dim().
  Gaussian(linalg::Vector mean, linalg::Matrix cov);

  /// A point mass at `mean` represented as N(mean, 0) — the summary of a
  /// one-value collection.
  [[nodiscard]] static Gaussian point_mass(linalg::Vector mean);

  /// Spherical Gaussian N(mean, s²·I).
  [[nodiscard]] static Gaussian spherical(linalg::Vector mean, double stddev);

  [[nodiscard]] std::size_t dim() const noexcept { return mean_.dim(); }
  [[nodiscard]] const linalg::Vector& mean() const noexcept { return mean_; }
  [[nodiscard]] const linalg::Matrix& cov() const noexcept { return cov_; }

  /// Probability density at `x`. Degenerate Σ is regularized with a small
  /// jitter so the density is finite and usable for classification
  /// decisions.
  [[nodiscard]] double pdf(const linalg::Vector& x) const;

  /// Natural log of pdf(x) — robust to underflow.
  [[nodiscard]] double log_pdf(const linalg::Vector& x) const;

  /// Squared Mahalanobis distance (x−µ)ᵀ Σ⁻¹ (x−µ) (jittered if needed).
  [[nodiscard]] double mahalanobis_squared(const linalg::Vector& x) const;

  /// Draws a sample: µ + L z with L Lᵀ = Σ and z standard normal.
  [[nodiscard]] linalg::Vector sample(Rng& rng) const;

  /// Equality of the model parameters (the cached factorization is
  /// deliberately excluded).
  friend bool operator==(const Gaussian& a, const Gaussian& b) {
    return a.mean_ == b.mean_ && a.cov_ == b.cov_;
  }

 private:
  linalg::Vector mean_;
  linalg::Matrix cov_;

  /// Lazily computed factorization shared by pdf/log_pdf/sample.
  [[nodiscard]] const linalg::Cholesky& factor() const;
  mutable std::optional<linalg::Cholesky> factor_;
};

/// Kullback–Leibler divergence KL(a‖b) between Gaussians of equal
/// dimension. Degenerate covariances are jitter-regularized.
[[nodiscard]] double kl_divergence(const Gaussian& a, const Gaussian& b);

/// Symmetrized KL: KL(a‖b) + KL(b‖a).
[[nodiscard]] double symmetric_kl(const Gaussian& a, const Gaussian& b);

/// Bhattacharyya distance — bounded, symmetric; a convenient merge
/// criterion for mixture reduction.
[[nodiscard]] double bhattacharyya(const Gaussian& a, const Gaussian& b);

/// Expected log-density E_{x~a}[log b(x)] — the quantity the EM partition
/// uses as a soft-assignment score when the "data points" are themselves
/// Gaussians (Section 5.2).
[[nodiscard]] double expected_log_pdf(const Gaussian& a, const Gaussian& b);

class GaussianBatch;

/// Precomputed invariants of `expected_log_pdf(·, model)`: the Cholesky
/// factor, inverse, and log-determinant of the model covariance depend
/// only on the model, so the EM E step — which scores every input
/// component against every model component — factorizes each model once
/// per iteration through this scorer instead of once per (input, model)
/// pair. `score(a)` is bit-identical to `expected_log_pdf(a, model)`
/// (the free function is implemented through this class). The
/// invariants are packed flat ([mean | L | Σ⁻¹], row-major) so the
/// fixed-dimension kernels (linalg/kernels.hpp) and the SIMD batch
/// kernels (linalg/simd.hpp) read them without indirection.
class ExpectedLogPdfScorer {
 public:
  explicit ExpectedLogPdfScorer(const Gaussian& model);

  [[nodiscard]] std::size_t dim() const noexcept { return d_; }

  /// E_{x~a}[log model(x)]. Requires `a.dim() == model.dim()`.
  [[nodiscard]] double score(const Gaussian& a) const;

  /// Scores every component of `batch` against the model, writing
  /// `out[0..batch.size())`. One pass per model through the SoA inputs,
  /// dispatched to the simd-selected batch kernel; `out[i]` is
  /// bit-identical to `score(batch component i)` on every default-path
  /// tier (only the opt-in fast-math tier relaxes this). Requires
  /// `batch.dim() == model.dim()` when the batch is nonempty.
  void score_batch(const GaussianBatch& batch, double* out) const;

 private:
  [[nodiscard]] linalg::kernels::ScorerData view() const noexcept;

  std::size_t d_ = 0;
  double base_ = 0.0;  // d·log 2π + log|Σ_model|, input-independent
  /// Packed model invariants: mean (d), then L (d²), then Σ⁻¹ (d²).
  std::vector<double> store_;
  /// Kernel workspace (8·d doubles) — scoring is logically const.
  mutable std::vector<double> scratch_;
};

/// Moment-matched merge of weighted Gaussians: the single Gaussian with the
/// mean and covariance of the mixture Σᵢ wᵢ N(µᵢ, Σᵢ). This is exactly the
/// paper's GM `mergeSet`. Requires at least one component and positive
/// total weight.
struct WeightedGaussian {
  double weight;
  Gaussian gaussian;
};
[[nodiscard]] Gaussian moment_match(const std::vector<WeightedGaussian>& parts);

}  // namespace ddc::stats
