// Structure-of-arrays packing of a set of Gaussians.
//
// The EM E step scores every input component against every model
// component; doing that through the object layout (one Vector + one
// Matrix per Gaussian, checked element accessors) costs a pointer chase
// and a bounds check per load. This container packs the means
// (count×d) and covariances (count×d², row-major) contiguously — the
// input layout of ExpectedLogPdfScorer::score_batch and the SIMD batch
// kernels behind it. Pack once per EM run, score once per (model,
// iteration).
#pragma once

#include <cstddef>
#include <vector>

#include <ddc/stats/mixture.hpp>

namespace ddc::stats {

/// Reusable SoA view of Gaussian parameters: assign() clears and
/// refills without shrinking capacity, so per-round scratch instances
/// stop allocating once warm.
class GaussianBatch {
 public:
  GaussianBatch() = default;

  void clear() noexcept {
    count_ = 0;
    means_.clear();
    covs_.clear();
  }

  /// Pre-sizes the storage for `count` components of dimension `dim`.
  void reserve(std::size_t count, std::size_t dim);

  /// Appends one Gaussian. The first component fixes the batch
  /// dimension; later components must match it.
  void push_back(const Gaussian& g);

  /// Repacks the batch from the mixture's components.
  void assign(const GaussianMixture& mixture);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t dim() const noexcept { return d_; }

  /// Packed means, count×d row-major.
  [[nodiscard]] const double* means() const noexcept { return means_.data(); }
  /// Packed covariances, count×d² row-major.
  [[nodiscard]] const double* covs() const noexcept { return covs_.data(); }

 private:
  std::size_t d_ = 0;
  std::size_t count_ = 0;
  std::vector<double> means_;
  std::vector<double> covs_;
};

}  // namespace ddc::stats
