// Distances between Gaussian mixtures.
//
// The Integrated Squared Error ∫(f−g)² between two Gaussian mixtures has a
// closed form (every cross term is itself a Gaussian density evaluated at
// a mean difference), which makes it the principled way to score how well
// a node's converged classification matches the generating truth — no
// component matching heuristics, no Monte Carlo.
#pragma once

#include <ddc/stats/mixture.hpp>

namespace ddc::stats {

/// ∫ f·g over R^d for the weight-normalized densities of two mixtures.
/// Closed form: Σᵢⱼ wᵢ w̃ⱼ N(µᵢ − µⱼ; 0, Σᵢ + Σⱼ). Degenerate covariance
/// sums are jitter-regularized (consistent with Gaussian::pdf).
[[nodiscard]] double product_integral(const GaussianMixture& f,
                                      const GaussianMixture& g);

/// Integrated squared error ∫ (f − g)² = ∫f² − 2∫fg + ∫g² ≥ 0.
[[nodiscard]] double ise_distance(const GaussianMixture& f,
                                  const GaussianMixture& g);

/// Normalized ISE: ISE / (∫f² + ∫g²) ∈ [0, 1]. 0 iff the densities
/// coincide; → 1 for mixtures with disjoint support.
[[nodiscard]] double normalized_ise(const GaussianMixture& f,
                                    const GaussianMixture& g);

}  // namespace ddc::stats
