// Descriptive statistics for weighted multivariate samples.
//
// Centralized references (Lloyd's k-means, batch EM) and tests use these to
// compute the exact moments that the distributed protocol should agree
// with: the paper's Lemma 1 says a collection's summary must equal the
// summary `f` of the weighted values it stands for.
#pragma once

#include <vector>

#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/vector.hpp>

namespace ddc::stats {

/// A value with an attached positive weight — the paper's ⟨val, α⟩ pair.
struct WeightedValue {
  linalg::Vector value;
  double weight = 1.0;
};

/// Sum of the weights. Requires all weights > 0.
[[nodiscard]] double total_weight(const std::vector<WeightedValue>& sample);

/// Weighted mean Σ αᵢ vᵢ / Σ αᵢ. Requires a nonempty sample with positive
/// total weight and consistent dimensions.
[[nodiscard]] linalg::Vector weighted_mean(const std::vector<WeightedValue>& sample);

/// Weighted population covariance Σ αᵢ (vᵢ−µ)(vᵢ−µ)ᵀ / Σ αᵢ (the paper's
/// GM summary uses the population convention — a single value has Σ = 0).
[[nodiscard]] linalg::Matrix weighted_covariance(
    const std::vector<WeightedValue>& sample);

/// Streaming weighted mean/covariance accumulator (West's incremental
/// update). Numerically stable alternative to two-pass moments for large
/// samples; also usable as a running probe inside the simulator.
class RunningMoments {
 public:
  explicit RunningMoments(std::size_t dim);

  /// Accumulates one observation with weight `w > 0`.
  void add(const linalg::Vector& value, double w = 1.0);

  [[nodiscard]] std::size_t dim() const noexcept { return mean_.dim(); }
  [[nodiscard]] double weight() const noexcept { return weight_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Current weighted mean. Requires weight() > 0.
  [[nodiscard]] const linalg::Vector& mean() const;

  /// Current weighted population covariance. Requires weight() > 0.
  [[nodiscard]] linalg::Matrix covariance() const;

 private:
  linalg::Vector mean_;
  linalg::Matrix scatter_;  // Σ wᵢ (vᵢ−µ)(vᵢ−µ)ᵀ accumulated incrementally
  double weight_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace ddc::stats
