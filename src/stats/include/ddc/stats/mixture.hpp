// Gaussian Mixture model.
//
// A node's classification under the GM instantiation *is* a weighted set of
// Gaussians (paper Section 5); this class also serves as the ground-truth
// generator for every evaluation workload (Figures 2–4).
#pragma once

#include <vector>

#include <ddc/stats/gaussian.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::stats {

/// A finite mixture Σᵢ wᵢ N(µᵢ, Σᵢ) with wᵢ > 0. Weights need not sum to 1;
/// densities are computed with normalized weights.
class GaussianMixture {
 public:
  GaussianMixture() = default;

  /// Mixture from explicit components; all must share one dimension and
  /// have positive weight.
  explicit GaussianMixture(std::vector<WeightedGaussian> components);

  [[nodiscard]] std::size_t size() const noexcept { return components_.size(); }
  [[nodiscard]] bool empty() const noexcept { return components_.empty(); }
  [[nodiscard]] std::size_t dim() const noexcept {
    return components_.empty() ? 0 : components_.front().gaussian.dim();
  }

  [[nodiscard]] const WeightedGaussian& operator[](std::size_t i) const {
    DDC_EXPECTS(i < components_.size());
    return components_[i];
  }
  [[nodiscard]] const std::vector<WeightedGaussian>& components() const noexcept {
    return components_;
  }

  /// Appends a component. Requires positive weight and matching dimension
  /// (if the mixture is nonempty).
  void add(WeightedGaussian component);

  /// Sum of component weights.
  [[nodiscard]] double total_weight() const noexcept;

  /// Density at `x` under the weight-normalized mixture.
  [[nodiscard]] double pdf(const linalg::Vector& x) const;

  /// log pdf(x), computed with the log-sum-exp trick.
  [[nodiscard]] double log_pdf(const linalg::Vector& x) const;

  /// Posterior responsibilities p(component i | x); sums to 1.
  [[nodiscard]] std::vector<double> responsibilities(const linalg::Vector& x) const;

  /// Index of the component with the largest posterior at `x` — the
  /// "associate the value with the collection it fits best" rule from the
  /// paper's introduction.
  [[nodiscard]] std::size_t classify(const linalg::Vector& x) const;

  /// Draws one sample (choose a component by weight, then sample it).
  [[nodiscard]] linalg::Vector sample(Rng& rng) const;

  /// Draws `count` samples.
  [[nodiscard]] std::vector<linalg::Vector> sample(Rng& rng, std::size_t count) const;

  /// Mean of the full mixture: Σ wᵢ µᵢ / Σ wᵢ.
  [[nodiscard]] linalg::Vector mean() const;

  /// Single moment-matched Gaussian of the whole mixture.
  [[nodiscard]] Gaussian collapse() const;

 private:
  std::vector<WeightedGaussian> components_;
};

}  // namespace ddc::stats
