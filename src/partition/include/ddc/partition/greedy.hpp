// Greedy distance-based partition — the paper's Algorithm 2 `partition`,
// generalized to any summary policy.
//
// Starting from singleton groups, repeatedly merge the two groups whose
// *merged summaries* are closest under the policy's dS until at most k
// groups remain. For centroid summaries this is exactly Algorithm 2; for
// any other policy it is the natural lift. The one-quantum constraint of
// Section 4.1 is enforced by the engine, so policies only have to respect
// the k bound.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include <ddc/common/agglomerate.hpp>
#include <ddc/common/assert.hpp>
#include <ddc/core/policy.hpp>
#include <ddc/linalg/kernels.hpp>
#include <ddc/linalg/simd.hpp>

namespace ddc::partition {

/// PartitionPolicy: greedy closest-pair merging under SP::distance.
/// Stateless; copyable.
///
/// Runs on common::agglomerate_to_k — a cached distance matrix with
/// per-row nearest-neighbor tracking — so a partition of m collections
/// costs O(m²) distance evaluations instead of the transcription's O(m³)
/// full rescans, with bit-identical groupings (the tie-break argument
/// lives in agglomerate.hpp; NaiveGreedyDistancePartition below is the
/// reference it is tested against).
///
/// Policies that declare `kPackedEuclideanSummary` (their Summary is a
/// linalg::Vector and their distance is linalg::distance2) additionally
/// take a packed path: summaries are copied into one flat row-major m×d
/// buffer and the C(m,2) up-front distance-matrix fill runs through
/// linalg::simd::batch_distance_kernel(), 4 distances per AVX2 pass
/// where available. Every tier of that kernel is bit-identical to the
/// scalar kernels::distance2 — which is itself a transcription of
/// linalg::distance2's accumulation order — so the grouping is
/// unchanged bit for bit (greedy_partition_property_test pits the
/// packed path against the naive reference directly).
template <core::SummaryPolicy SP>
struct GreedyDistancePartition {
  using Summary = typename SP::Summary;

  [[nodiscard]] core::Grouping partition(
      const std::vector<core::WeightedSummary<Summary>>& collections,
      std::size_t k) const {
    if constexpr (requires { SP::kPackedEuclideanSummary; }) {
      if (packable(collections)) return partition_packed(collections, k);
    }
    std::vector<core::WeightedSummary<Summary>> merged(collections.begin(),
                                                       collections.end());
    return common::agglomerate_to_k(
        merged.size(), k,
        [&](std::size_t a, std::size_t b) {
          return SP::distance(merged[a].summary, merged[b].summary);
        },
        [&](std::size_t a, std::size_t b) {
          merged[a] = core::WeightedSummary<Summary>{
              SP::merge_set({merged[a], merged[b]}),
              merged[a].weight + merged[b].weight};
        });
  }

 private:
  /// The packed path needs one uniform row width; mixed-dimension
  /// inputs (never produced by the protocol, but legal for the API)
  /// fall back to the generic path.
  [[nodiscard]] static bool packable(
      const std::vector<core::WeightedSummary<Summary>>& collections) {
    if (collections.empty()) return false;
    const std::size_t d = collections.front().summary.dim();
    if (d == 0) return false;
    for (const auto& c : collections) {
      if (c.summary.dim() != d) return false;
    }
    return true;
  }

  [[nodiscard]] core::Grouping partition_packed(
      const std::vector<core::WeightedSummary<Summary>>& collections,
      std::size_t k) const {
    const std::size_t m = collections.size();
    const std::size_t d = collections.front().summary.dim();
    std::vector<core::WeightedSummary<Summary>> merged(collections.begin(),
                                                       collections.end());
    std::vector<double> flat(m * d);
    for (std::size_t i = 0; i < m; ++i) {
      const auto& elems = merged[i].summary.data();
      for (std::size_t c = 0; c < d; ++c) flat[i * d + c] = elems[c];
    }
    const auto row = [&](std::size_t i) { return flat.data() + i * d; };
    const linalg::simd::DistanceBatchFn fill =
        linalg::simd::batch_distance_kernel();
    return common::agglomerate_to_k(
        m, k,
        [&](std::size_t a, std::size_t b) {
          // Post-merge refresh distances: one pair at a time off the
          // packed rows — kernels::distance2 is bit-identical to
          // SP::distance (linalg::distance2) on the same components.
          return linalg::kernels::dispatch_dim(d, [&](auto dd) {
            return linalg::kernels::distance2<dd()>(row(a), row(b), d);
          });
        },
        [&](std::size_t a, std::size_t b) {
          merged[a] = core::WeightedSummary<Summary>{
              SP::merge_set({merged[a], merged[b]}),
              merged[a].weight + merged[b].weight};
          const auto& elems = merged[a].summary.data();
          DDC_EXPECTS(elems.size() == d);
          for (std::size_t c = 0; c < d; ++c) flat[a * d + c] = elems[c];
        },
        [&](std::size_t a, std::size_t count, double* out) {
          fill(row(a), row(a + 1), count, out, d);
        });
  }
};

/// The direct transcription of Algorithm 2: every round rescans all
/// pairs (O(m³) distance evaluations) and compacts with quadratic
/// erases. Retained as the reference the optimized policy must match
/// bit for bit — greedy_partition_property_test checks the equivalence
/// on randomized inputs, and the partition benchmarks use it as the
/// "before" side. Not for production use.
template <core::SummaryPolicy SP>
struct NaiveGreedyDistancePartition {
  using Summary = typename SP::Summary;

  [[nodiscard]] core::Grouping partition(
      const std::vector<core::WeightedSummary<Summary>>& collections,
      std::size_t k) const {
    DDC_EXPECTS(k >= 1);
    core::Grouping groups(collections.size());
    std::vector<core::WeightedSummary<Summary>> merged;
    merged.reserve(collections.size());
    for (std::size_t i = 0; i < collections.size(); ++i) {
      groups[i] = {i};
      merged.push_back(collections[i]);
    }

    while (groups.size() > k) {
      // Algorithm 2, lines 8–10: find and merge the closest pair.
      std::size_t best_a = 0;
      std::size_t best_b = 1;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a + 1 < groups.size(); ++a) {
        for (std::size_t b = a + 1; b < groups.size(); ++b) {
          const double d = SP::distance(merged[a].summary, merged[b].summary);
          if (d < best) {
            best = d;
            best_a = a;
            best_b = b;
          }
        }
      }
      merged[best_a] = core::WeightedSummary<Summary>{
          SP::merge_set({merged[best_a], merged[best_b]}),
          merged[best_a].weight + merged[best_b].weight};
      groups[best_a].insert(groups[best_a].end(), groups[best_b].begin(),
                            groups[best_b].end());
      merged.erase(merged.begin() + static_cast<std::ptrdiff_t>(best_b));
      groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(best_b));
    }
    return groups;
  }
};

}  // namespace ddc::partition
