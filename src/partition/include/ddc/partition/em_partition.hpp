// Partition policies for the Gaussian-Mixture instantiation.
//
// The paper's GM algorithm makes its merge decisions by reducing the
// (≤ 2k)-component mixture a node holds after a receive down to k
// components with Expectation Maximization (Section 5.2). EmPartition is
// that policy; RunnallsPartition and NearestMeansPartition expose the
// greedy reducers as drop-in alternatives for the partition-strategy
// ablation bench.
#pragma once

#include <cstddef>
#include <vector>

#include <ddc/core/policy.hpp>
#include <ddc/em/mixture_reduction.hpp>
#include <ddc/stats/gaussian.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::partition {

/// PartitionPolicy: EM-based mixture reduction (paper Section 5.2).
/// Stateful: owns the RNG used for restart seeding, so each node should
/// carry its own instance (constructed from its seed) to keep runs
/// deterministic.
class EmPartition {
 public:
  explicit EmPartition(stats::Rng rng, em::ReductionOptions options = {})
      : rng_(rng), options_(options) {}

  [[nodiscard]] core::Grouping partition(
      const std::vector<core::WeightedSummary<stats::Gaussian>>& collections,
      std::size_t k);

  [[nodiscard]] const em::ReductionOptions& options() const noexcept {
    return options_;
  }

  /// The restart-seeding RNG. Mutable so the scale engine can swap each
  /// node's persistent stream in and out of a scratch policy instance —
  /// a node's draws must follow its own stream regardless of which
  /// scratch classifier happens to run it.
  [[nodiscard]] stats::Rng& rng() noexcept { return rng_; }

  /// Wall-clock spent inside reduce_em, accumulated across partitions
  /// (two clock reads per call). Feeds `ddcsim --timing`.
  [[nodiscard]] double em_seconds() const noexcept { return em_seconds_; }

 private:
  stats::Rng rng_;
  em::ReductionOptions options_;
  double em_seconds_ = 0.0;
};

/// PartitionPolicy: greedy Runnalls KL-bound pairwise merging.
struct RunnallsPartition {
  [[nodiscard]] core::Grouping partition(
      const std::vector<core::WeightedSummary<stats::Gaussian>>& collections,
      std::size_t k) const;
};

/// PartitionPolicy: greedy nearest-means pairwise merging — Algorithm 2's
/// heuristic applied to Gaussian summaries (covariance-blind).
struct NearestMeansPartition {
  [[nodiscard]] core::Grouping partition(
      const std::vector<core::WeightedSummary<stats::Gaussian>>& collections,
      std::size_t k) const;
};

}  // namespace ddc::partition
