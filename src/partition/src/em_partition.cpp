#include <ddc/partition/em_partition.hpp>

#include <chrono>

#include <ddc/common/assert.hpp>
#include <ddc/stats/mixture.hpp>

namespace ddc::partition {

namespace {

stats::GaussianMixture to_input_mixture(
    const std::vector<core::WeightedSummary<stats::Gaussian>>& collections) {
  DDC_EXPECTS(!collections.empty());
  std::vector<stats::WeightedGaussian> components;
  components.reserve(collections.size());
  for (const auto& c : collections) {
    components.push_back({c.weight, c.summary});
  }
  return stats::GaussianMixture(std::move(components));
}

}  // namespace

core::Grouping EmPartition::partition(
    const std::vector<core::WeightedSummary<stats::Gaussian>>& collections,
    std::size_t k) {
  // Audited timing probe: feeds only the em_seconds reporting counter
  // (`ddcsim --timing`), never control flow.
  const auto start = std::chrono::steady_clock::now();  // ddclint: allow(wall-clock)
  core::Grouping groups =
      em::reduce_em(to_input_mixture(collections), k, rng_, options_).groups;
  em_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)  // ddclint: allow(wall-clock)
          .count();
  return groups;
}

core::Grouping RunnallsPartition::partition(
    const std::vector<core::WeightedSummary<stats::Gaussian>>& collections,
    std::size_t k) const {
  return em::reduce_runnalls(to_input_mixture(collections), k).groups;
}

core::Grouping NearestMeansPartition::partition(
    const std::vector<core::WeightedSummary<stats::Gaussian>>& collections,
    std::size_t k) const {
  return em::reduce_nearest_means(to_input_mixture(collections), k).groups;
}

}  // namespace ddc::partition
