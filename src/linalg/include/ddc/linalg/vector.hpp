// Dense dynamic-size real vector.
//
// The Gaussian-Mixture instantiation of the paper works in R^d for small d
// (the evaluation uses d = 2), and the auxiliary mixture-space vectors of
// Section 4.2 live in R^n.  A simple contiguous double vector with value
// semantics covers both uses; all operations are bounds-checked through
// contracts.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include <ddc/common/assert.hpp>

namespace ddc::linalg {

/// Dense real vector with value semantics.
///
/// Regular type: default-constructible (empty), copyable, movable,
/// equality-comparable.  Arithmetic operations require equal dimensions and
/// enforce that with preconditions.
class Vector {
 public:
  /// Empty (dimension-0) vector.
  Vector() = default;

  /// Zero vector of dimension `dim`.
  explicit Vector(std::size_t dim) : elems_(dim, 0.0) {}

  /// Vector of dimension `dim` with every component equal to `fill`.
  Vector(std::size_t dim, double fill) : elems_(dim, fill) {}

  /// Vector from an explicit component list, e.g. `Vector{1.0, 2.0}`.
  Vector(std::initializer_list<double> init) : elems_(init) {}

  /// Vector adopting the contents of `elems`.
  explicit Vector(std::vector<double> elems) : elems_(std::move(elems)) {}

  /// Number of components.
  [[nodiscard]] std::size_t dim() const noexcept { return elems_.size(); }

  /// True iff the vector has no components.
  [[nodiscard]] bool empty() const noexcept { return elems_.empty(); }

  /// Component access (checked).
  [[nodiscard]] double& operator[](std::size_t i) {
    DDC_EXPECTS(i < elems_.size());
    return elems_[i];
  }
  [[nodiscard]] double operator[](std::size_t i) const {
    DDC_EXPECTS(i < elems_.size());
    return elems_[i];
  }

  /// Raw storage access for interoperation with algorithms.
  [[nodiscard]] const std::vector<double>& data() const noexcept { return elems_; }
  [[nodiscard]] std::vector<double>& data() noexcept { return elems_; }

  // Iteration (enables range-for and <algorithm> use).
  [[nodiscard]] auto begin() noexcept { return elems_.begin(); }
  [[nodiscard]] auto end() noexcept { return elems_.end(); }
  [[nodiscard]] auto begin() const noexcept { return elems_.begin(); }
  [[nodiscard]] auto end() const noexcept { return elems_.end(); }

  // In-place arithmetic.  All binary forms require matching dimensions.
  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s) noexcept;
  Vector& operator/=(double s);

  friend bool operator==(const Vector&, const Vector&) = default;

 private:
  std::vector<double> elems_;
};

[[nodiscard]] Vector operator+(Vector lhs, const Vector& rhs);
[[nodiscard]] Vector operator-(Vector lhs, const Vector& rhs);
[[nodiscard]] Vector operator*(Vector v, double s);
[[nodiscard]] Vector operator*(double s, Vector v);
[[nodiscard]] Vector operator/(Vector v, double s);
[[nodiscard]] Vector operator-(Vector v);

/// Inner product. Requires `a.dim() == b.dim()`.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Euclidean (L2) norm.
[[nodiscard]] double norm2(const Vector& v) noexcept;

/// Manhattan (L1) norm — the collection weight of an auxiliary vector in
/// the paper's mixture space is `‖aux‖₁` (Lemma 1, Eq. 2).
[[nodiscard]] double norm1(const Vector& v) noexcept;

/// Maximum absolute component.
[[nodiscard]] double norm_inf(const Vector& v) noexcept;

/// Euclidean distance `‖a − b‖₂`. Requires matching dimensions.
[[nodiscard]] double distance2(const Vector& a, const Vector& b);

/// Angle in radians between two nonzero vectors — the paper's mixture-space
/// metric d_M (Section 4.2) and its reference angles ϕᵥᵢ (Section 6.1).
/// Result is in [0, π]. Throws NumericalError on a zero vector.
[[nodiscard]] double angle_between(const Vector& a, const Vector& b);

/// `v / ‖v‖₂`. Throws NumericalError on a zero vector.
[[nodiscard]] Vector normalized(const Vector& v);

/// i'th standard basis vector e_i of dimension `dim` (the initial auxiliary
/// vector of node i in Algorithm 1, line 2).
[[nodiscard]] Vector unit_vector(std::size_t dim, std::size_t i);

std::ostream& operator<<(std::ostream& os, const Vector& v);

}  // namespace ddc::linalg
