// Cholesky (LLᵀ) factorization of symmetric positive-definite matrices.
//
// Everything the Gaussian summary needs — densities, log-determinants,
// Mahalanobis distances, multivariate-normal sampling — reduces to one
// Cholesky factorization plus triangular solves.
#pragma once

#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/vector.hpp>

namespace ddc::linalg {

/// Cholesky factorization `A = L Lᵀ` with `L` lower-triangular.
///
/// Construction throws ddc::NumericalError if `A` is not (numerically)
/// positive definite. Callers that must cope with degenerate covariance
/// matrices (e.g. a collection holding a single value has Σ = 0) should
/// regularize first — see `regularized_cholesky`.
class Cholesky {
 public:
  /// Factorizes the symmetric positive-definite matrix `a`.
  /// Only the lower triangle of `a` is read.
  explicit Cholesky(const Matrix& a);

  /// Order of the factorized matrix.
  [[nodiscard]] std::size_t dim() const noexcept { return l_.rows(); }

  /// The lower-triangular factor L.
  [[nodiscard]] const Matrix& lower() const noexcept { return l_; }

  /// Solves `A x = b`. Requires `b.dim() == dim()`.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solves `A X = B` column-by-column. Requires `B.rows() == dim()`.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Solves `L y = b` (forward substitution).
  [[nodiscard]] Vector solve_lower(const Vector& b) const;

  /// The inverse `A⁻¹` (symmetric).
  [[nodiscard]] Matrix inverse() const;

  /// `log det A = 2 Σ log L(i,i)`; numerically robust even when `det A`
  /// would underflow, which matters for sharp Gaussian summaries.
  [[nodiscard]] double log_det() const noexcept;

  /// `det A` (may under/overflow; prefer log_det()).
  [[nodiscard]] double det() const noexcept;

  /// Squared Mahalanobis distance `xᵀ A⁻¹ x`.
  [[nodiscard]] double mahalanobis_squared(const Vector& x) const;

 private:
  Matrix l_;
};

/// Cholesky of `A + εI` where `ε ≥ min_jitter` is grown geometrically until
/// the factorization succeeds (up to `max_jitter`). Handles the degenerate
/// covariances that legitimately occur in the protocol: a fresh collection
/// summarizing one input value has an exactly-zero covariance matrix.
/// Throws ddc::NumericalError if even `A + max_jitter·I` fails.
[[nodiscard]] Cholesky regularized_cholesky(const Matrix& a,
                                            double min_jitter = 1e-9,
                                            double max_jitter = 1e3);

/// Convenience: inverse of an SPD matrix via Cholesky.
[[nodiscard]] Matrix spd_inverse(const Matrix& a);

/// Convenience: determinant of an SPD matrix via Cholesky.
[[nodiscard]] double spd_det(const Matrix& a);

}  // namespace ddc::linalg
