// Symmetric eigendecomposition (cyclic Jacobi).
//
// Used to (a) report equidensity ellipses of Gaussian summaries the way the
// paper's figures draw them, and (b) repair covariance matrices whose
// smallest eigenvalue drifted slightly negative through merging arithmetic.
#pragma once

#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/vector.hpp>

namespace ddc::linalg {

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
/// Eigenvalues are sorted in descending order; `vectors.col(i)` is the
/// (unit) eigenvector for `values[i]`.
struct SymEigen {
  Vector values;
  Matrix vectors;
};

/// Eigendecomposition of the symmetric matrix `a` via the cyclic Jacobi
/// method. Converges quadratically for the small matrices used here.
/// Throws ddc::NumericalError if `max_sweeps` is exhausted before the
/// off-diagonal mass drops below tolerance.
[[nodiscard]] SymEigen eigen_sym(const Matrix& a, int max_sweeps = 64);

/// Projects `a` onto the cone of symmetric matrices with eigenvalues
/// ≥ `min_eigenvalue` (clipping negative/small eigenvalues). The standard
/// "nearest SPD" repair for covariance matrices.
[[nodiscard]] Matrix clip_eigenvalues(const Matrix& a, double min_eigenvalue);

}  // namespace ddc::linalg
