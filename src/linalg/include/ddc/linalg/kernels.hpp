// Fixed-dimension kernel layer for the dense small-d hot paths.
//
// The GM instantiation spends its arithmetic in d-dimensional primitives
// with d ∈ {1, 2, 3, 4} in every paper workload: Cholesky factorizations,
// triangular solves, trace products and moment accumulations, executed
// millions of times per simulated round. Compiled as generic runtime-d
// loops (through the checked Matrix/Vector accessors) none of that
// unrolls; this header provides the same algorithms templated on a
// compile-time dimension D operating on raw row-major storage, plus a
// runtime dispatcher that selects the D = 1..4 instantiation matching the
// observed input dimension (and the dynamic instantiation otherwise).
//
// BIT-EXACTNESS CONTRACT: every kernel here performs the exact
// floating-point operations, in the exact order, of the generic routine
// it replaces (Cholesky ctor / solve_lower / inverse, trace_product,
// dot, add_scaled, add_scaled_spread, ExpectedLogPdfScorer::score). A
// fixed-D instantiation only pins the trip counts — unrolling never
// reorders the arithmetic — so the d = 1..4 specializations are
// bit-identical to the dynamic one by construction, and the dynamic one
// is a line-for-line transcription of the original. The protocol's
// determinism goldens hash every mantissa bit of downstream
// classifications; tests/linalg/kernel_equivalence_test.cpp asserts the
// equivalence exhaustively (random + adversarial near-singular inputs).
#pragma once

#include <cmath>
#include <cstddef>
#include <type_traits>
#include <utility>

namespace ddc::linalg::kernels {

/// Sentinel compile-time dimension meaning "use the runtime dimension".
inline constexpr std::size_t kDynamic = 0;

/// The effective trip count: the compile-time D when fixed, else `rd`.
template <std::size_t D>
[[nodiscard]] constexpr std::size_t dim_of(std::size_t rd) noexcept {
  return D == kDynamic ? rd : D;
}

/// Invokes `f` with an integral_constant for the specialized dimension
/// matching `d` (1..4), or kDynamic for anything larger. The callable is
/// instantiated once per dimension, so the fixed-d bodies fully unroll.
template <typename F>
decltype(auto) dispatch_dim(std::size_t d, F&& f) {
  switch (d) {
    case 1:
      return std::forward<F>(f)(std::integral_constant<std::size_t, 1>{});
    case 2:
      return std::forward<F>(f)(std::integral_constant<std::size_t, 2>{});
    case 3:
      return std::forward<F>(f)(std::integral_constant<std::size_t, 3>{});
    case 4:
      return std::forward<F>(f)(std::integral_constant<std::size_t, 4>{});
    default:
      return std::forward<F>(f)(
          std::integral_constant<std::size_t, kDynamic>{});
  }
}

/// Lower Cholesky factor of the row-major d×d matrix `a` into `l`
/// (pre-zeroed; only the lower triangle is written, only the lower
/// triangle of `a` is read). Returns false when `a` is not numerically
/// positive definite — exactly the `!(diag > 0) || !isfinite(diag)`
/// rejection of the Cholesky constructor.
template <std::size_t D>
[[nodiscard]] bool cholesky_factor(const double* a, double* l,
                                   std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= l[j * n + k] * l[j * n + k];
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) acc -= l[i * n + k] * l[j * n + k];
      l[i * n + j] = acc / ljj;
    }
  }
  return true;
}

/// Forward substitution `L y = b` with `l` the row-major factor.
template <std::size_t D>
void solve_lower(const double* l, const double* b, double* y,
                 std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l[i * n + k] * y[k];
    y[i] = acc / l[i * n + i];
  }
}

/// Back substitution `Lᵀ x = y` (the second half of an SPD solve).
template <std::size_t D>
void solve_upper_transposed(const double* l, const double* y, double* x,
                            std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l[k * n + ii] * x[k];
    x[ii] = acc / l[ii * n + ii];
  }
}

/// `log det A = 2 Σ log L(i,i)` accumulated in ascending index order.
template <std::size_t D>
[[nodiscard]] double log_det_from_factor(const double* l,
                                         std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += std::log(l[i * n + i]);
  return 2.0 * acc;
}

/// `A⁻¹` from the factor `l`, column by column — the exact arithmetic of
/// Cholesky::inverse() (solve of the identity, forward then backward
/// substitution per column). `scratch` must hold 2·d doubles.
template <std::size_t D>
void inverse_from_factor(const double* l, double* inv, double* scratch,
                         std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  double* y = scratch;
  double* x = scratch + n;
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = i == c ? 1.0 : 0.0;
      for (std::size_t k = 0; k < i; ++k) acc -= l[i * n + k] * y[k];
      y[i] = acc / l[i * n + i];
    }
    for (std::size_t ii = n; ii-- > 0;) {
      double acc = y[ii];
      for (std::size_t k = ii + 1; k < n; ++k) acc -= l[k * n + ii] * x[k];
      x[ii] = acc / l[ii * n + ii];
    }
    for (std::size_t r = 0; r < n; ++r) inv[r * n + c] = x[r];
  }
}

/// Inner product in ascending index order.
template <std::size_t D>
[[nodiscard]] double dot(const double* a, const double* b,
                         std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// Squared Mahalanobis form `xᵀ A⁻¹ x` via one forward substitution —
/// Cholesky::mahalanobis_squared. `y` must hold d doubles.
template <std::size_t D>
[[nodiscard]] double mahalanobis_squared(const double* l, const double* x,
                                         double* y, std::size_t rd) noexcept {
  solve_lower<D>(l, x, y, rd);
  return dot<D>(y, y, rd);
}

/// `Σ (a[i]−b[i])²` then sqrt — linalg::distance2's accumulation order.
template <std::size_t D>
[[nodiscard]] double distance2(const double* a, const double* b,
                               std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

/// Distances from one point `a` to `count` consecutively packed points
/// (`bs` row-major count×d). Scalar reference tier: out[j] is
/// bit-identical to distance2 on (a, bs + j·d).
template <std::size_t D>
void distance2_batch(const double* a, const double* bs, std::size_t count,
                     double* out, std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  for (std::size_t j = 0; j < count; ++j) {
    out[j] = distance2<D>(a, bs + j * n, n);
  }
}

/// `trace(a·b)` for square row-major d×d matrices — linalg::trace_product:
/// per-row accumulator, ascending k, zero a(i,k) coefficients skipped
/// (mirroring operator*'s sparse-coefficient skip), row sums added in
/// ascending row order.
template <std::size_t D>
[[nodiscard]] double trace_product(const double* a, const double* b,
                                   std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a[i * n + k];
      if (aik == 0.0) continue;
      acc += aik * b[k * n + i];
    }
    total += acc;
  }
  return total;
}

/// `acc += scale * v`, elementwise.
template <std::size_t D>
void add_scaled(double* acc, double scale, const double* v,
                std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  for (std::size_t i = 0; i < n; ++i) acc[i] += scale * v[i];
}

/// `acc += scale * (m + delta deltaᵀ)`, elementwise over the d×d matrices.
template <std::size_t D>
void add_scaled_spread(double* acc, double scale, const double* m,
                       const double* delta, std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      acc[r * n + c] += scale * (m[r * n + c] + delta[r] * delta[c]);
    }
  }
}

/// `acc += scale * (delta deltaᵀ)` — the point-part spread (note the
/// parenthesization matches the original: scale * (δr·δc), no m term).
template <std::size_t D>
void add_scaled_outer(double* acc, double scale, const double* delta,
                      std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      acc[r * n + c] += scale * (delta[r] * delta[c]);
    }
  }
}

/// The model-side invariants of an expected-log-pdf scorer, viewed as raw
/// row-major storage: mean (d), Cholesky factor L of the regularized
/// covariance (d×d), its inverse (d×d), and the input-independent base
/// term d·log 2π + log|Σ|.
struct ScorerData {
  std::size_t d = 0;
  const double* mean = nullptr;
  const double* l = nullptr;
  const double* inv = nullptr;
  double base = 0.0;
};

/// Scores one input ⟨mean, cov⟩ against the hoisted model — the exact
/// arithmetic of ExpectedLogPdfScorer::score: trace term (zero-skip
/// trace product of Σb⁻¹ with the input covariance), Mahalanobis term of
/// the mean difference through L, then −½(base + tr + maha). `scratch`
/// must hold 2·d doubles.
template <std::size_t D>
[[nodiscard]] double score_one(const ScorerData& s, const double* mean,
                               const double* cov, double* scratch,
                               std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  const double tr = trace_product<D>(s.inv, cov, n);
  double* diff = scratch;
  double* y = scratch + n;
  for (std::size_t i = 0; i < n; ++i) diff[i] = mean[i] - s.mean[i];
  const double maha = mahalanobis_squared<D>(s.l, diff, y, n);
  return -0.5 * (s.base + tr + maha);
}

/// Scores `count` structure-of-arrays inputs (means packed input-major
/// count×d, covariances count×d²) against one hoisted model. Scalar
/// reference tier: out[i] is bit-identical to score_one on input i.
/// `scratch` must hold at least 2·d doubles.
template <std::size_t D>
void score_batch(const ScorerData& s, const double* means, const double* covs,
                 std::size_t count, double* out, double* scratch,
                 std::size_t rd) noexcept {
  const std::size_t n = dim_of<D>(rd);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] =
        score_one<D>(s, means + i * n, covs + i * n * n, scratch, n);
  }
}

}  // namespace ddc::linalg::kernels
