// Runtime CPU-dispatch seam for the batched math kernels.
//
// The kernel layer (linalg/kernels.hpp) is scalar and bit-exact by
// construction. This seam selects, once per process, which *batched*
// implementation backs ExpectedLogPdfScorer::score_batch:
//
//   Tier::scalar — the kernels.hpp reference loop. Always available.
//   Tier::avx2   — 4-inputs-at-a-time lanewise AVX2. Each SIMD lane
//                  executes the exact scalar operation sequence (no
//                  horizontal reductions, no re-association, and no FMA
//                  contraction — nothing here compiles with -mfma), so
//                  this tier is bit-identical to Tier::scalar and safe
//                  for the determinism goldens.
//
// On top of the selected tier sits an optional FAST-MATH tier (off by
// default, only enabled by an explicit Mode::avx2 request): per-input
// kernels that re-associate the d² trace-term accumulation into 4-lane
// partial sums. Fast-math results differ from scalar in the last few
// ulps; they are covered by error-bound tests (tests/stats) and must
// never feed a golden/digest test. ddclint's float-reorder rule flags
// the fast-math entry points so every use is audited.
//
// Mode selection:
//   Mode::auto_detect (default) — lanewise AVX2 iff the binary carries
//     the AVX2 translation unit AND the CPU reports AVX2; scalar
//     otherwise. Fast-math stays off. Bit-exact everywhere.
//   Mode::scalar — force the reference tier (CI fallback leg).
//   Mode::avx2   — require AVX2 (ConfigError if unavailable) and enable
//     the fast-math tier. Opt-in only, never the default.
//
// The DDC_SIMD environment variable ("auto" | "scalar" | "avx2")
// provides a soft process-wide default: it is read once, unrecognized
// values fall back to auto, and an "avx2" request on an unsupported
// host degrades to auto instead of erroring (only configure(), i.e. the
// --simd flag, is strict). Tools wire the --simd flag through
// cli::engine_flags and call configure() right after parsing.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include <ddc/linalg/kernels.hpp>

namespace ddc::linalg::simd {

/// Requested dispatch policy (the --simd flag / DDC_SIMD env values).
enum class Mode { auto_detect, scalar, avx2 };

/// Resolved implementation tier actually executing.
enum class Tier { scalar, avx2 };

/// True iff the running CPU reports AVX2 support.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// True iff this binary was built with the AVX2 translation unit
/// (the toolchain accepted -mavx2 on an x86-64 target).
[[nodiscard]] bool compiled_with_avx2() noexcept;

/// Applies `mode` process-wide. Strict: Mode::avx2 throws ConfigError
/// when the CPU or the build lacks AVX2. Thread-safe; later calls
/// override earlier ones (and the DDC_SIMD default).
void configure(Mode mode);

/// The tier the process is currently dispatching to.
[[nodiscard]] Tier dispatch() noexcept;

/// True iff the fast-math tier is active (explicit Mode::avx2 only).
[[nodiscard]] bool fast_math_enabled() noexcept;

/// Parses "auto" / "scalar" / "avx2"; nullopt on anything else.
[[nodiscard]] std::optional<Mode> parse_mode(std::string_view text) noexcept;

[[nodiscard]] const char* mode_name(Mode mode) noexcept;
[[nodiscard]] const char* tier_name(Tier tier) noexcept;

/// Batched scorer kernel: scores `count` SoA inputs (means count×d,
/// covariances count×d², row-major) against the hoisted model `s`,
/// writing `out[0..count)`. `scratch` must hold at least 8·d doubles.
using ScoreBatchFn = void (*)(const kernels::ScorerData& s,
                              const double* means, const double* covs,
                              std::size_t count, double* out,
                              double* scratch);

/// The kernel matching the current dispatch() tier (+ fast-math state).
/// Never null.
[[nodiscard]] ScoreBatchFn batch_score_kernel() noexcept;

/// The scalar reference kernel (always available; the equivalence
/// tests compare every other kernel against this one).
[[nodiscard]] ScoreBatchFn scalar_score_kernel() noexcept;

/// The bit-exact lanewise AVX2 kernel, or nullptr when the binary has
/// no AVX2 translation unit.
[[nodiscard]] ScoreBatchFn avx2_lanewise_score_kernel() noexcept;

/// The fast-math (re-associated) AVX2 kernel, or nullptr when the
/// binary has no AVX2 translation unit. Covered by error-bound tests,
/// never by golden digests.
[[nodiscard]] ScoreBatchFn fast_math_score_kernel() noexcept;

/// Batched centroid-distance kernel: Euclidean distances from one point
/// `a` to `count` consecutively packed points (`bs` row-major count×d),
/// writing `out[0..count)`. Every tier is bit-identical to
/// kernels::distance2 per output — there is no fast-math variant, the
/// centroid protocol's golden digests ride directly on these values.
using DistanceBatchFn = void (*)(const double* a, const double* bs,
                                 std::size_t count, double* out,
                                 std::size_t d);

/// The distance kernel matching the current dispatch() tier. Never null.
[[nodiscard]] DistanceBatchFn batch_distance_kernel() noexcept;

/// The scalar reference distance kernel (always available).
[[nodiscard]] DistanceBatchFn scalar_distance_kernel() noexcept;

/// The bit-exact lanewise AVX2 distance kernel, or nullptr when the
/// binary has no AVX2 translation unit.
[[nodiscard]] DistanceBatchFn avx2_lanewise_distance_kernel() noexcept;

}  // namespace ddc::linalg::simd
