// In-place weighted-moment accumulation.
//
// Moment matching (the GM instantiation's mergeSet and the EM M step) is
// a two-pass reduction: mean = Σ sᵢ µᵢ, then Σ = Σ sᵢ (Σᵢ + δᵢδᵢᵀ) with
// δᵢ = µᵢ − mean. Written with the vector/matrix operators each part costs
// three heap-allocated temporaries (scaled copy, outer product, sum);
// these kernels sit on the classifier's merge hot path, so this header
// provides the same arithmetic as in-place updates. Every routine
// performs BIT-IDENTICAL floating-point operations (same values, same
// order) to its operator-based equivalent — that is load-bearing: the
// protocol's determinism goldens hash every mantissa bit.
#pragma once

#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/vector.hpp>

namespace ddc::linalg {

/// `acc += scale * v`, elementwise — `acc += scale * v` without the
/// temporary scaled copy. Requires matching dimensions.
void add_scaled(Vector& acc, double scale, const Vector& v);

/// `acc += scale * (m + delta deltaᵀ)`, elementwise — the covariance leg
/// of a moment match (`acc += scale * (m + outer(delta, delta))`) without
/// the outer-product, sum, and scaled temporaries. Requires `m` square of
/// order `delta.dim()` and `acc` of the same shape.
void add_scaled_spread(Matrix& acc, double scale, const Matrix& m,
                       const Vector& delta);

/// Accumulates the weighted mean and population covariance of a sequence
/// of parts (scalars optionally pre-normalized by the caller) entirely
/// in place. Usage mirrors the two passes of a moment match:
///
///   WeightedMomentAccumulator acc(d);
///   for (part : parts) acc.accumulate_mean(w / total, part.mean);
///   for (part : parts) acc.accumulate_spread(w / total, part.cov, part.mean);
///   Gaussian(acc.take_mean(), symmetrize(acc.take_cov()));
///
/// `accumulate_spread` computes δ = part_mean − mean() itself so callers
/// cannot accidentally use a stale mean.
class WeightedMomentAccumulator {
 public:
  explicit WeightedMomentAccumulator(std::size_t dim)
      : mean_(dim), cov_(dim, dim), delta_(dim) {}

  /// First pass: `mean += scale * part_mean`.
  void accumulate_mean(double scale, const Vector& part_mean) {
    add_scaled(mean_, scale, part_mean);
  }

  /// Second pass: `cov += scale * (part_cov + δδᵀ)`, δ = part_mean − mean.
  void accumulate_spread(double scale, const Matrix& part_cov,
                         const Vector& part_mean);

  /// Second pass for point parts (no covariance term): `cov += scale·δδᵀ`.
  void accumulate_spread(double scale, const Vector& part_mean);

  [[nodiscard]] const Vector& mean() const noexcept { return mean_; }
  [[nodiscard]] const Matrix& cov() const noexcept { return cov_; }
  [[nodiscard]] Vector take_mean() noexcept { return std::move(mean_); }
  [[nodiscard]] Matrix take_cov() noexcept { return std::move(cov_); }

 private:
  Vector mean_;
  Matrix cov_;
  Vector delta_;  // scratch, reused across accumulate_spread calls
};

}  // namespace ddc::linalg
