// Dense dynamic-size real matrix (row-major).
//
// Covariance matrices in the Gaussian-Mixture summary (Section 5.1) are
// small d×d symmetric matrices; everything here is sized and written for
// that regime (no blocking, no expression templates — clarity first, and
// at d ≤ 16 the straightforward loops are as fast as anything).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/linalg/vector.hpp>

namespace ddc::linalg {

/// Dense row-major real matrix with value semantics.
class Matrix {
 public:
  /// Empty (0×0) matrix.
  Matrix() = default;

  /// Zero matrix of shape `rows × cols`.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), elems_(rows * cols, 0.0) {}

  /// Matrix of shape `rows × cols` with every entry equal to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), elems_(rows * cols, fill) {}

  /// Matrix from nested row lists, e.g. `Matrix{{1, 0}, {0, 1}}`.
  /// All rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return elems_.empty(); }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  /// Entry access (checked).
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    DDC_EXPECTS(r < rows_ && c < cols_);
    return elems_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    DDC_EXPECTS(r < rows_ && c < cols_);
    return elems_[r * cols_ + c];
  }

  /// Row `r` copied into a Vector.
  [[nodiscard]] Vector row(std::size_t r) const;
  /// Column `c` copied into a Vector.
  [[nodiscard]] Vector col(std::size_t c) const;

  [[nodiscard]] const std::vector<double>& data() const noexcept { return elems_; }
  /// Mutable raw storage — the fixed-dimension kernels (linalg/kernels.hpp)
  /// write factor/inverse results straight into Matrix storage.
  [[nodiscard]] std::vector<double>& data() noexcept { return elems_; }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;
  Matrix& operator/=(double s);

  friend bool operator==(const Matrix&, const Matrix&) = default;

  /// Identity matrix of order `n`.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Diagonal matrix from the components of `d`.
  [[nodiscard]] static Matrix diagonal(const Vector& d);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> elems_;
};

[[nodiscard]] Matrix operator+(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator-(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator*(Matrix m, double s);
[[nodiscard]] Matrix operator*(double s, Matrix m);
[[nodiscard]] Matrix operator/(Matrix m, double s);

/// Matrix product. Requires `a.cols() == b.rows()`.
[[nodiscard]] Matrix operator*(const Matrix& a, const Matrix& b);

/// Matrix–vector product. Requires `m.cols() == v.dim()`.
[[nodiscard]] Vector operator*(const Matrix& m, const Vector& v);

/// Transpose.
[[nodiscard]] Matrix transpose(const Matrix& m);

/// Outer product `a bᵀ` (used by moment-matching covariance merges).
[[nodiscard]] Matrix outer(const Vector& a, const Vector& b);

/// Sum of diagonal entries. Requires a square matrix.
[[nodiscard]] double trace(const Matrix& m);

/// `trace(a * b)` without materializing the product — O(n²) instead of
/// O(n³) plus an allocation. Bit-identical to `trace(a * b)`: the diagonal
/// entries accumulate in the same order (ascending k, zero a(i,k) terms
/// skipped) as operator*'s inner loop, then sum in ascending row order.
/// Requires `a.cols() == b.rows()` and a square product.
[[nodiscard]] double trace_product(const Matrix& a, const Matrix& b);

/// Largest absolute entry (max norm) — convenient for approximate
/// comparisons in tests.
[[nodiscard]] double max_abs(const Matrix& m) noexcept;

/// True iff `m` is square and symmetric to tolerance `tol` (relative to the
/// magnitude of the entries involved).
[[nodiscard]] bool is_symmetric(const Matrix& m, double tol = 1e-12) noexcept;

/// `(m + mᵀ) / 2` — removes rounding asymmetry from a nominally symmetric
/// matrix. Requires a square matrix.
[[nodiscard]] Matrix symmetrize(const Matrix& m);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace ddc::linalg
