// LDLᵀ factorization of symmetric (possibly semi-definite) matrices.
//
// The Gaussian summary occasionally has to work with covariance matrices
// that are positive *semi*-definite — e.g. a collection whose values all
// lie on a line.  LDLᵀ with a zero-pivot tolerance lets us compute rank,
// pseudo-solves, and log-pseudo-determinants without jitter.
#pragma once

#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/vector.hpp>

namespace ddc::linalg {

/// LDLᵀ factorization `A = L D Lᵀ` with unit-lower-triangular `L` and
/// diagonal `D` (no pivoting; intended for diagonally-dominant covariance
/// matrices). Pivots with `|d| ≤ zero_tol · scale` are treated as zero.
class Ldlt {
 public:
  /// Factorizes the symmetric matrix `a`.
  /// Throws ddc::NumericalError if a pivot is significantly negative
  /// (matrix is indefinite beyond `zero_tol`).
  explicit Ldlt(const Matrix& a, double zero_tol = 1e-12);

  [[nodiscard]] std::size_t dim() const noexcept { return l_.rows(); }

  /// The unit-lower-triangular factor L.
  [[nodiscard]] const Matrix& lower() const noexcept { return l_; }

  /// The diagonal D as a vector (entries may be exactly 0 for a
  /// semi-definite input).
  [[nodiscard]] const Vector& diag() const noexcept { return d_; }

  /// Number of nonzero pivots.
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

  /// True iff every pivot is strictly positive.
  [[nodiscard]] bool positive_definite() const noexcept {
    return rank_ == dim();
  }

  /// Solves `A x = b`; zero pivots are treated as "no constraint" (the
  /// corresponding solution component is set to 0), which yields the
  /// minimum-norm-ish solution adequate for density evaluation on the
  /// support of a degenerate Gaussian.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// `log det A` over nonzero pivots (log-pseudo-determinant).
  [[nodiscard]] double log_pseudo_det() const noexcept;

 private:
  Matrix l_;
  Vector d_;
  std::size_t rank_ = 0;
};

}  // namespace ddc::linalg
