// AVX2 batch-scoring kernels. This translation unit is the only one
// compiled with -mavx2 (CMake adds the flag per-file when the toolchain
// supports it on x86-64); everything else in the library stays on the
// baseline ISA, and runtime dispatch (simd.cpp) never routes here
// unless the CPU reports AVX2.
//
// Three kernels live here:
//
//   score_batch_avx2_lanewise — BIT-EXACT. Scores 4 inputs per pass
//   with one input per SIMD lane. Every lane executes the exact scalar
//   operation sequence of kernels::score_one: same per-row trace
//   accumulator with the same zero-coefficient skip (the skip tests the
//   *model* inverse entry, so it is uniform across lanes), same forward
//   substitution, same add/mul/div/sub ordering. No horizontal
//   reductions, no re-association; vaddpd/vmulpd/vdivpd are IEEE-exact
//   per lane, and nothing here compiles with -mfma, so no contraction.
//   The kernel equivalence matrix asserts bit-identity to the scalar
//   reference on every input it can construct.
//
//   distance_batch_avx2_lanewise — BIT-EXACT. Euclidean distances from
//   one point to 4 packed points per pass, one point per lane, each
//   lane running kernels::distance2's exact subtract/multiply/
//   accumulate order; vsqrtpd is correctly rounded per lane like
//   std::sqrt. Backs the greedy centroid partition's distance-matrix
//   fill, so it feeds golden digests and has no fast-math variant.
//
//   score_batch_avx2_fastmath — NOT bit-exact (fast-math tier). The
//   trace term re-associates the d² elementwise products into 4-lane
//   partial sums (both matrices are symmetric, so trace(A·B) equals the
//   full elementwise dot of their row-major storage) and drops the
//   zero-coefficient skip. Differs from scalar in the last few ulps;
//   bounded by tests/stats/score_batch_test.cpp, never in goldens.
#if defined(DDC_LINALG_HAVE_AVX2_TU)

#include <immintrin.h>

#include <cstddef>

#include <ddc/linalg/kernels.hpp>

namespace ddc::linalg::simd::detail {

namespace {

/// Scores inputs [base, base+4) lanewise. `ylanes` must hold 4·d
/// doubles (lane-interleaved forward-substitution solutions).
template <std::size_t D>
void score4_lanewise(const kernels::ScorerData& s, const double* means,
                     const double* covs, std::size_t base, double* out,
                     double* ylanes) {
  const std::size_t n = kernels::dim_of<D>(s.d);
  const double* mean[4];
  const double* cov[4];
  for (std::size_t j = 0; j < 4; ++j) {
    mean[j] = means + (base + j) * n;
    cov[j] = covs + (base + j) * n * n;
  }

  // Trace term — kernels::trace_product per lane: per-row accumulator,
  // ascending k, zero model-inverse coefficients skipped (uniform
  // across lanes), row sums added in ascending row order.
  __m256d tr = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = s.inv[i * n + k];
      if (aik == 0.0) continue;
      const __m256d b = _mm256_set_pd(cov[3][k * n + i], cov[2][k * n + i],
                                      cov[1][k * n + i], cov[0][k * n + i]);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(aik), b));
    }
    tr = _mm256_add_pd(tr, acc);
  }

  // Mahalanobis term — diff = input mean − model mean, forward
  // substitution through L, then Σ yᵢ² in ascending i (the scalar
  // kernel finishes the solve before the dot product, but the dot
  // accumulates in the same ascending order, so fusing the loops
  // performs identical arithmetic).
  __m256d maha = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    __m256d acc =
        _mm256_sub_pd(_mm256_set_pd(mean[3][i], mean[2][i], mean[1][i],
                                    mean[0][i]),
                      _mm256_set1_pd(s.mean[i]));
    for (std::size_t k = 0; k < i; ++k) {
      const __m256d yk = _mm256_loadu_pd(ylanes + 4 * k);
      acc = _mm256_sub_pd(acc,
                          _mm256_mul_pd(_mm256_set1_pd(s.l[i * n + k]), yk));
    }
    const __m256d yi = _mm256_div_pd(acc, _mm256_set1_pd(s.l[i * n + i]));
    _mm256_storeu_pd(ylanes + 4 * i, yi);
    maha = _mm256_add_pd(maha, _mm256_mul_pd(yi, yi));
  }

  // −½(base + tr + maha), left-associated exactly like the scalar path.
  const __m256d total = _mm256_mul_pd(
      _mm256_set1_pd(-0.5),
      _mm256_add_pd(_mm256_add_pd(_mm256_set1_pd(s.base), tr), maha));
  _mm256_storeu_pd(out + base, total);
}

template <std::size_t D>
void batch_lanewise(const kernels::ScorerData& s, const double* means,
                    const double* covs, std::size_t count, double* out,
                    double* scratch) {
  const std::size_t n = kernels::dim_of<D>(s.d);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    score4_lanewise<D>(s, means, covs, i, out, scratch);
  }
  // Remainder inputs take the scalar kernel — bit-identical anyway.
  for (; i < count; ++i) {
    out[i] = kernels::score_one<D>(s, means + i * n, covs + i * n * n,
                                   scratch, n);
  }
}

/// Fast-math trace term: Σₑ inv[e]·cov[e] over the d² row-major
/// entries, accumulated as 4-lane partial sums and folded with a
/// horizontal add. Valid because both matrices are symmetric; NOT
/// bit-identical to the scalar trace (different association, no
/// zero-skip).
template <std::size_t D>
double trace_reassoc(const double* inv, const double* cov,
                     std::size_t rd) {
  const std::size_t n = kernels::dim_of<D>(rd);
  const std::size_t n2 = n * n;
  const std::size_t vec_end = n2 - n2 % 4;
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t e = 0; e < vec_end; e += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(inv + e), _mm256_loadu_pd(cov + e)));
  }
  const __m256d folded = _mm256_hadd_pd(acc, acc);  // ddclint: allow(float-reorder) cross-lane reduction is the fast-math tier's documented re-association; error-bounded in tests/stats/score_batch_test.cpp
  double tr = _mm_cvtsd_f64(_mm_add_sd(_mm256_castpd256_pd128(folded),
                                       _mm256_extractf128_pd(folded, 1)));
  for (std::size_t e = vec_end; e < n2; ++e) tr += inv[e] * cov[e];
  return tr;
}

template <std::size_t D>
void batch_reassoc(const kernels::ScorerData& s, const double* means,
                   const double* covs, std::size_t count, double* out,
                   double* scratch) {
  const std::size_t n = kernels::dim_of<D>(s.d);
  double* diff = scratch;
  double* y = scratch + n;
  for (std::size_t i = 0; i < count; ++i) {
    const double* mean = means + i * n;
    const double tr = trace_reassoc<D>(s.inv, covs + i * n * n, n);
    for (std::size_t c = 0; c < n; ++c) diff[c] = mean[c] - s.mean[c];
    const double maha = kernels::mahalanobis_squared<D>(s.l, diff, y, n);
    out[i] = -0.5 * (s.base + tr + maha);
  }
}

/// Distances from `a` to packed points [base, base+4) lanewise — the
/// exact scalar sequence of kernels::distance2 per lane: diff = a[i] −
/// b[i], acc += diff·diff in ascending i, then one correctly-rounded
/// square root (vsqrtpd is IEEE-exact per lane, like std::sqrt).
template <std::size_t D>
void distance4_lanewise(const double* a, const double* bs, std::size_t base,
                        double* out, std::size_t rd) {
  const std::size_t n = kernels::dim_of<D>(rd);
  const double* b0 = bs + base * n;
  const double* b1 = b0 + n;
  const double* b2 = b1 + n;
  const double* b3 = b2 + n;
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    const __m256d diff = _mm256_sub_pd(
        _mm256_set1_pd(a[i]), _mm256_set_pd(b3[i], b2[i], b1[i], b0[i]));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  }
  _mm256_storeu_pd(out + base, _mm256_sqrt_pd(acc));
}

template <std::size_t D>
void distance_batch_lanewise(const double* a, const double* bs,
                             std::size_t count, double* out, std::size_t rd) {
  const std::size_t n = kernels::dim_of<D>(rd);
  std::size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    distance4_lanewise<D>(a, bs, j, out, rd);
  }
  // Remainder points take the scalar kernel — bit-identical anyway.
  for (; j < count; ++j) {
    out[j] = kernels::distance2<D>(a, bs + j * n, n);
  }
}

}  // namespace

void score_batch_avx2_lanewise(const kernels::ScorerData& s,
                               const double* means, const double* covs,
                               std::size_t count, double* out,
                               double* scratch) {
  kernels::dispatch_dim(s.d, [&](auto d) {
    batch_lanewise<d()>(s, means, covs, count, out, scratch);
  });
}

void score_batch_avx2_fastmath(  // ddclint: allow(float-reorder) fast-math tier definition; opt-in via --simd=avx2 only, never on the golden path
    const kernels::ScorerData& s, const double* means, const double* covs,
    std::size_t count, double* out, double* scratch) {
  kernels::dispatch_dim(s.d, [&](auto d) {
    batch_reassoc<d()>(s, means, covs, count, out, scratch);
  });
}

void distance_batch_avx2_lanewise(const double* a, const double* bs,
                                  std::size_t count, double* out,
                                  std::size_t d) {
  kernels::dispatch_dim(d, [&](auto dd) {
    distance_batch_lanewise<dd()>(a, bs, count, out, d);
  });
}

}  // namespace ddc::linalg::simd::detail

#endif  // DDC_LINALG_HAVE_AVX2_TU
