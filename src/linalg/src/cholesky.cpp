#include <ddc/linalg/cholesky.hpp>

#include <cmath>

#include <ddc/common/error.hpp>

namespace ddc::linalg {

Cholesky::Cholesky(const Matrix& a) {
  DDC_EXPECTS(a.square());
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      throw_numerical_error("Cholesky: matrix is not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc / ljj;
    }
  }
}

Vector Cholesky::solve_lower(const Vector& b) const {
  DDC_EXPECTS(b.dim() == dim());
  const std::size_t n = dim();
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc / l_(i, i);
  }
  return y;
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = dim();
  Vector y = solve_lower(b);
  // Back substitution with Lᵀ.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  DDC_EXPECTS(b.rows() == dim());
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector xc = solve(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

Matrix Cholesky::inverse() const { return solve(Matrix::identity(dim())); }

double Cholesky::log_det() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

double Cholesky::det() const noexcept { return std::exp(log_det()); }

double Cholesky::mahalanobis_squared(const Vector& x) const {
  // xᵀ A⁻¹ x = ‖L⁻¹ x‖² — one forward substitution, no explicit inverse.
  const Vector y = solve_lower(x);
  return dot(y, y);
}

Cholesky regularized_cholesky(const Matrix& a, double min_jitter,
                              double max_jitter) {
  DDC_EXPECTS(a.square());
  DDC_EXPECTS(min_jitter > 0.0 && min_jitter <= max_jitter);
  // Fast path: the matrix may already be comfortably positive definite.
  try {
    return Cholesky(a);
  } catch (const NumericalError&) {
    // fall through to jittered attempts
  }
  for (double eps = min_jitter; eps <= max_jitter; eps *= 10.0) {
    Matrix jittered = a;
    for (std::size_t i = 0; i < a.rows(); ++i) jittered(i, i) += eps;
    try {
      return Cholesky(jittered);
    } catch (const NumericalError&) {
      // keep growing the jitter
    }
  }
  throw_numerical_error(
      "regularized_cholesky: matrix not positive definite even after "
      "maximal jitter");
}

Matrix spd_inverse(const Matrix& a) { return Cholesky(a).inverse(); }

double spd_det(const Matrix& a) { return Cholesky(a).det(); }

}  // namespace ddc::linalg
