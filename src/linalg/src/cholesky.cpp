#include <ddc/linalg/cholesky.hpp>

#include <array>
#include <cmath>
#include <vector>

#include <ddc/common/error.hpp>
#include <ddc/linalg/kernels.hpp>

namespace ddc::linalg {

namespace {

/// Small-dimension scratch: stack storage for the paper-scale d ≤ 8, heap
/// beyond (the mixture-space auxiliary vectors can be R^n).
struct Scratch {
  explicit Scratch(std::size_t n) {
    if (n > stack.size()) {
      heap.resize(n);
      ptr = heap.data();
    } else {
      ptr = stack.data();
    }
  }
  std::array<double, 16> stack{};
  std::vector<double> heap;
  double* ptr = nullptr;
};

}  // namespace

Cholesky::Cholesky(const Matrix& a) {
  DDC_EXPECTS(a.square());
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  const bool ok = kernels::dispatch_dim(n, [&](auto d) {
    return kernels::cholesky_factor<d()>(a.data().data(), l_.data().data(), n);
  });
  if (!ok) throw_numerical_error("Cholesky: matrix is not positive definite");
}

Vector Cholesky::solve_lower(const Vector& b) const {
  DDC_EXPECTS(b.dim() == dim());
  const std::size_t n = dim();
  Vector y(n);
  kernels::dispatch_dim(n, [&](auto d) {
    kernels::solve_lower<d()>(l_.data().data(), b.data().data(),
                              y.data().data(), n);
  });
  return y;
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = dim();
  Vector y = solve_lower(b);
  // Back substitution with Lᵀ.
  Vector x(n);
  kernels::dispatch_dim(n, [&](auto d) {
    kernels::solve_upper_transposed<d()>(l_.data().data(), y.data().data(),
                                         x.data().data(), n);
  });
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  DDC_EXPECTS(b.rows() == dim());
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector xc = solve(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

Matrix Cholesky::inverse() const {
  // Column-by-column solve of the identity through the fixed-d kernel —
  // the same forward/backward substitutions as solve(Matrix::identity)
  // performed, without materializing the identity or per-column Vectors.
  const std::size_t n = dim();
  Matrix inv(n, n);
  Scratch scratch(2 * n);
  kernels::dispatch_dim(n, [&](auto d) {
    kernels::inverse_from_factor<d()>(l_.data().data(), inv.data().data(),
                                      scratch.ptr, n);
  });
  return inv;
}

double Cholesky::log_det() const noexcept {
  const std::size_t n = dim();
  return kernels::dispatch_dim(n, [&](auto d) {
    return kernels::log_det_from_factor<d()>(l_.data().data(), n);
  });
}

double Cholesky::det() const noexcept { return std::exp(log_det()); }

double Cholesky::mahalanobis_squared(const Vector& x) const {
  // xᵀ A⁻¹ x = ‖L⁻¹ x‖² — one forward substitution, no explicit inverse.
  DDC_EXPECTS(x.dim() == dim());
  const std::size_t n = dim();
  Scratch y(n);
  return kernels::dispatch_dim(n, [&](auto d) {
    return kernels::mahalanobis_squared<d()>(l_.data().data(),
                                             x.data().data(), y.ptr, n);
  });
}

Cholesky regularized_cholesky(const Matrix& a, double min_jitter,
                              double max_jitter) {
  DDC_EXPECTS(a.square());
  DDC_EXPECTS(min_jitter > 0.0 && min_jitter <= max_jitter);
  // Fast path: the matrix may already be comfortably positive definite.
  try {
    return Cholesky(a);
  } catch (const NumericalError&) {
    // fall through to jittered attempts
  }
  for (double eps = min_jitter; eps <= max_jitter; eps *= 10.0) {
    Matrix jittered = a;
    for (std::size_t i = 0; i < a.rows(); ++i) jittered(i, i) += eps;
    try {
      return Cholesky(jittered);
    } catch (const NumericalError&) {
      // keep growing the jitter
    }
  }
  throw_numerical_error(
      "regularized_cholesky: matrix not positive definite even after "
      "maximal jitter");
}

Matrix spd_inverse(const Matrix& a) { return Cholesky(a).inverse(); }

double spd_det(const Matrix& a) { return Cholesky(a).det(); }

}  // namespace ddc::linalg
