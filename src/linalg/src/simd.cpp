#include <ddc/linalg/simd.hpp>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include <ddc/common/error.hpp>

#include "simd_kernels.hpp"

namespace ddc::linalg::simd {

namespace {

/// Scalar reference: dispatch the fixed-d kernel on the model dimension.
void score_batch_scalar(const kernels::ScorerData& s, const double* means,
                        const double* covs, std::size_t count, double* out,
                        double* scratch) {
  kernels::dispatch_dim(s.d, [&](auto d) {
    kernels::score_batch<d()>(s, means, covs, count, out, scratch, s.d);
  });
}

/// Scalar reference: dispatch the fixed-d distance kernel on `d`.
void distance_batch_scalar(const double* a, const double* bs,
                           std::size_t count, double* out, std::size_t d) {
  kernels::dispatch_dim(d, [&](auto dd) {
    kernels::distance2_batch<dd()>(a, bs, count, out, d);
  });
}

std::atomic<Tier> g_tier{Tier::scalar};
std::atomic<bool> g_fast_math{false};
std::once_flag g_env_default_once;

bool avx2_available() noexcept {
  return compiled_with_avx2() && cpu_supports_avx2();
}

/// Applies a mode that is already known to be satisfiable.
void apply(Mode mode) noexcept {
  switch (mode) {
    case Mode::scalar:
      g_tier.store(Tier::scalar, std::memory_order_relaxed);
      g_fast_math.store(false, std::memory_order_relaxed);
      break;
    case Mode::avx2:
      g_tier.store(Tier::avx2, std::memory_order_relaxed);
      g_fast_math.store(true, std::memory_order_relaxed);
      break;
    case Mode::auto_detect:
      g_tier.store(avx2_available() ? Tier::avx2 : Tier::scalar,
                   std::memory_order_relaxed);
      g_fast_math.store(false, std::memory_order_relaxed);
      break;
  }
}

/// The DDC_SIMD environment variable is a soft default: read once,
/// unrecognized values mean auto, and an avx2 request on a host without
/// AVX2 degrades to auto instead of erroring (only configure(), i.e.
/// the --simd flag, is strict).
void apply_env_default() noexcept {
  Mode mode = Mode::auto_detect;
  if (const char* env = std::getenv("DDC_SIMD")) {
    if (const auto parsed = parse_mode(env)) mode = *parsed;
  }
  if (mode == Mode::avx2 && !avx2_available()) mode = Mode::auto_detect;
  apply(mode);
}

void ensure_default() noexcept {
  std::call_once(g_env_default_once, apply_env_default);
}

}  // namespace

bool cpu_supports_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool compiled_with_avx2() noexcept {
#if defined(DDC_LINALG_HAVE_AVX2_TU)
  return true;
#else
  return false;
#endif
}

void configure(Mode mode) {
  ensure_default();
  if (mode == Mode::avx2 && !avx2_available()) {
    throw ConfigError(compiled_with_avx2()
                          ? "simd: avx2 requested but this CPU does not "
                            "report AVX2 (use --simd=auto or --simd=scalar)"
                          : "simd: avx2 requested but this binary was built "
                            "without the AVX2 kernels (use --simd=auto or "
                            "--simd=scalar)");
  }
  apply(mode);
}

Tier dispatch() noexcept {
  ensure_default();
  return g_tier.load(std::memory_order_relaxed);
}

bool fast_math_enabled() noexcept {
  ensure_default();
  return g_fast_math.load(std::memory_order_relaxed);
}

std::optional<Mode> parse_mode(std::string_view text) noexcept {
  if (text == "auto") return Mode::auto_detect;
  if (text == "scalar") return Mode::scalar;
  if (text == "avx2") return Mode::avx2;
  return std::nullopt;
}

const char* mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::auto_detect:
      return "auto";
    case Mode::scalar:
      return "scalar";
    case Mode::avx2:
      return "avx2";
  }
  return "auto";
}

const char* tier_name(Tier tier) noexcept {
  return tier == Tier::avx2 ? "avx2" : "scalar";
}

ScoreBatchFn batch_score_kernel() noexcept {
  if (dispatch() == Tier::avx2) {
#if defined(DDC_LINALG_HAVE_AVX2_TU)
    if (g_fast_math.load(std::memory_order_relaxed)) {
      return &detail::score_batch_avx2_fastmath;  // ddclint: allow(float-reorder) explicit fast-math tier selection; only reachable via Mode::avx2 opt-in
    }
    return &detail::score_batch_avx2_lanewise;
#endif
  }
  return &score_batch_scalar;
}

ScoreBatchFn scalar_score_kernel() noexcept { return &score_batch_scalar; }

ScoreBatchFn avx2_lanewise_score_kernel() noexcept {
#if defined(DDC_LINALG_HAVE_AVX2_TU)
  return &detail::score_batch_avx2_lanewise;
#else
  return nullptr;
#endif
}

ScoreBatchFn fast_math_score_kernel() noexcept {
#if defined(DDC_LINALG_HAVE_AVX2_TU)
  return &detail::score_batch_avx2_fastmath;  // ddclint: allow(float-reorder) accessor for the error-bound tests; off the default path
#else
  return nullptr;
#endif
}

DistanceBatchFn batch_distance_kernel() noexcept {
  if (dispatch() == Tier::avx2) {
#if defined(DDC_LINALG_HAVE_AVX2_TU)
    // No fast-math variant: distances feed the centroid goldens, so the
    // lanewise (bit-exact) kernel is the only vector tier.
    return &detail::distance_batch_avx2_lanewise;
#endif
  }
  return &distance_batch_scalar;
}

DistanceBatchFn scalar_distance_kernel() noexcept {
  return &distance_batch_scalar;
}

DistanceBatchFn avx2_lanewise_distance_kernel() noexcept {
#if defined(DDC_LINALG_HAVE_AVX2_TU)
  return &detail::distance_batch_avx2_lanewise;
#else
  return nullptr;
#endif
}

}  // namespace ddc::linalg::simd
