#include <ddc/linalg/eigen_sym.hpp>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <ddc/common/error.hpp>

namespace ddc::linalg {

namespace {

/// Sum of squares of the strictly-off-diagonal entries.
double off_diagonal_mass(const Matrix& a) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (i != j) acc += a(i, j) * a(i, j);
    }
  }
  return acc;
}

}  // namespace

SymEigen eigen_sym(const Matrix& a, int max_sweeps) {
  DDC_EXPECTS(a.square());
  DDC_EXPECTS(is_symmetric(a, 1e-9));
  const std::size_t n = a.rows();
  Matrix d = symmetrize(a);
  Matrix v = Matrix::identity(n);

  const double scale = std::max(1.0, max_abs(d));
  const double tol = 1e-30 * scale * scale * static_cast<double>(n * n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_mass(d) <= tol) break;
    if (sweep == max_sweeps - 1) {
      throw_numerical_error("eigen_sym: Jacobi sweeps did not converge");
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (d(q, q) - d(p, p)) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply Givens rotation G(p,q,θ) on both sides of D and accumulate
        // into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return d(x, x) > d(y, y); });

  SymEigen out;
  out.values = Vector(n);
  out.vectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = d(order[i], order[i]);
    for (std::size_t k = 0; k < n; ++k) out.vectors(k, i) = v(k, order[i]);
  }
  return out;
}

Matrix clip_eigenvalues(const Matrix& a, double min_eigenvalue) {
  const SymEigen eig = eigen_sym(a);
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double lambda = std::max(eig.values[i], min_eigenvalue);
    const Vector vi = eig.vectors.col(i);
    out += lambda * outer(vi, vi);
  }
  return symmetrize(out);
}

}  // namespace ddc::linalg
