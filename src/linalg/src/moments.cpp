#include <ddc/linalg/moments.hpp>

#include <ddc/linalg/kernels.hpp>

namespace ddc::linalg {

void add_scaled(Vector& acc, double scale, const Vector& v) {
  DDC_EXPECTS(acc.dim() == v.dim());
  const std::size_t n = acc.dim();
  kernels::dispatch_dim(n, [&](auto d) {
    kernels::add_scaled<d()>(acc.data().data(), scale, v.data().data(), n);
  });
}

void add_scaled_spread(Matrix& acc, double scale, const Matrix& m,
                       const Vector& delta) {
  const std::size_t d = delta.dim();
  DDC_EXPECTS(m.rows() == d && m.cols() == d);
  DDC_EXPECTS(acc.rows() == d && acc.cols() == d);
  kernels::dispatch_dim(d, [&](auto fd) {
    kernels::add_scaled_spread<fd()>(acc.data().data(), scale,
                                     m.data().data(), delta.data().data(), d);
  });
}

void WeightedMomentAccumulator::accumulate_spread(double scale,
                                                  const Matrix& part_cov,
                                                  const Vector& part_mean) {
  DDC_EXPECTS(part_mean.dim() == delta_.dim());
  for (std::size_t i = 0; i < delta_.dim(); ++i) {
    delta_[i] = part_mean[i] - mean_[i];
  }
  add_scaled_spread(cov_, scale, part_cov, delta_);
}

void WeightedMomentAccumulator::accumulate_spread(double scale,
                                                  const Vector& part_mean) {
  DDC_EXPECTS(part_mean.dim() == delta_.dim());
  const std::size_t d = delta_.dim();
  for (std::size_t i = 0; i < d; ++i) delta_[i] = part_mean[i] - mean_[i];
  kernels::dispatch_dim(d, [&](auto fd) {
    kernels::add_scaled_outer<fd()>(cov_.data().data(), scale,
                                    delta_.data().data(), d);
  });
}

}  // namespace ddc::linalg
