#include <ddc/linalg/moments.hpp>

namespace ddc::linalg {

void add_scaled(Vector& acc, double scale, const Vector& v) {
  DDC_EXPECTS(acc.dim() == v.dim());
  for (std::size_t i = 0; i < acc.dim(); ++i) acc[i] += scale * v[i];
}

void add_scaled_spread(Matrix& acc, double scale, const Matrix& m,
                       const Vector& delta) {
  const std::size_t d = delta.dim();
  DDC_EXPECTS(m.rows() == d && m.cols() == d);
  DDC_EXPECTS(acc.rows() == d && acc.cols() == d);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      acc(r, c) += scale * (m(r, c) + delta[r] * delta[c]);
    }
  }
}

void WeightedMomentAccumulator::accumulate_spread(double scale,
                                                  const Matrix& part_cov,
                                                  const Vector& part_mean) {
  DDC_EXPECTS(part_mean.dim() == delta_.dim());
  for (std::size_t i = 0; i < delta_.dim(); ++i) {
    delta_[i] = part_mean[i] - mean_[i];
  }
  add_scaled_spread(cov_, scale, part_cov, delta_);
}

void WeightedMomentAccumulator::accumulate_spread(double scale,
                                                  const Vector& part_mean) {
  DDC_EXPECTS(part_mean.dim() == delta_.dim());
  const std::size_t d = delta_.dim();
  for (std::size_t i = 0; i < d; ++i) delta_[i] = part_mean[i] - mean_[i];
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      cov_(r, c) += scale * (delta_[r] * delta_[c]);
    }
  }
}

}  // namespace ddc::linalg
