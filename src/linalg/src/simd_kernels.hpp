// Internal declarations of the AVX2 kernel translation unit
// (simd_avx2.cpp, compiled with -mavx2 when the toolchain supports it).
// Not installed; only simd.cpp includes this.
#pragma once

#include <cstddef>

#include <ddc/linalg/kernels.hpp>

#if defined(DDC_LINALG_HAVE_AVX2_TU)

namespace ddc::linalg::simd::detail {

/// Lanewise 4-wide batch scorer: bit-identical to the scalar kernel
/// (each lane runs the exact scalar operation sequence).
void score_batch_avx2_lanewise(const kernels::ScorerData& s,
                               const double* means, const double* covs,
                               std::size_t count, double* out,
                               double* scratch);

/// Re-associated trace-term batch scorer. NOT bit-identical to scalar —
/// fast-math tier only, error-bound tested, never in golden tests.
void score_batch_avx2_fastmath(  // ddclint: allow(float-reorder) fast-math tier entry point; re-association is its documented contract (tests/stats/score_batch_test.cpp bounds the error)
    const kernels::ScorerData& s, const double* means, const double* covs,
    std::size_t count, double* out, double* scratch);

/// Lanewise 4-wide batched centroid distance: bit-identical to
/// kernels::distance2_batch (each lane runs the exact scalar subtract/
/// multiply/accumulate sequence; vsqrtpd is correctly rounded like
/// std::sqrt).
void distance_batch_avx2_lanewise(const double* a, const double* bs,
                                  std::size_t count, double* out,
                                  std::size_t d);

}  // namespace ddc::linalg::simd::detail

#endif  // DDC_LINALG_HAVE_AVX2_TU
