// Internal declarations of the AVX2 kernel translation unit
// (simd_avx2.cpp, compiled with -mavx2 when the toolchain supports it).
// Not installed; only simd.cpp includes this.
#pragma once

#include <cstddef>

#include <ddc/linalg/kernels.hpp>

#if defined(DDC_LINALG_HAVE_AVX2_TU)

namespace ddc::linalg::simd::detail {

/// Lanewise 4-wide batch scorer: bit-identical to the scalar kernel
/// (each lane runs the exact scalar operation sequence).
void score_batch_avx2_lanewise(const kernels::ScorerData& s,
                               const double* means, const double* covs,
                               std::size_t count, double* out,
                               double* scratch);

/// Re-associated trace-term batch scorer. NOT bit-identical to scalar —
/// fast-math tier only, error-bound tested, never in golden tests.
void score_batch_avx2_fastmath(  // ddclint: allow(float-reorder) fast-math tier entry point; re-association is its documented contract (tests/stats/score_batch_test.cpp bounds the error)
    const kernels::ScorerData& s, const double* means, const double* covs,
    std::size_t count, double* out, double* scratch);

}  // namespace ddc::linalg::simd::detail

#endif  // DDC_LINALG_HAVE_AVX2_TU
