#include <ddc/linalg/vector.hpp>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>

#include <ddc/common/error.hpp>
#include <ddc/linalg/kernels.hpp>

namespace ddc::linalg {

Vector& Vector::operator+=(const Vector& rhs) {
  DDC_EXPECTS(dim() == rhs.dim());
  for (std::size_t i = 0; i < elems_.size(); ++i) elems_[i] += rhs.elems_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  DDC_EXPECTS(dim() == rhs.dim());
  for (std::size_t i = 0; i < elems_.size(); ++i) elems_[i] -= rhs.elems_[i];
  return *this;
}

Vector& Vector::operator*=(double s) noexcept {
  for (double& e : elems_) e *= s;
  return *this;
}

Vector& Vector::operator/=(double s) {
  DDC_EXPECTS(s != 0.0);
  for (double& e : elems_) e /= s;
  return *this;
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(Vector v, double s) { return v *= s; }
Vector operator*(double s, Vector v) { return v *= s; }
Vector operator/(Vector v, double s) { return v /= s; }
Vector operator-(Vector v) { return v *= -1.0; }

double dot(const Vector& a, const Vector& b) {
  DDC_EXPECTS(a.dim() == b.dim());
  const std::size_t n = a.dim();
  return kernels::dispatch_dim(n, [&](auto d) {
    return kernels::dot<d()>(a.data().data(), b.data().data(), n);
  });
}

double norm2(const Vector& v) noexcept {
  double acc = 0.0;
  for (double e : v) acc += e * e;
  return std::sqrt(acc);
}

double norm1(const Vector& v) noexcept {
  double acc = 0.0;
  for (double e : v) acc += std::abs(e);
  return acc;
}

double norm_inf(const Vector& v) noexcept {
  double acc = 0.0;
  for (double e : v) acc = std::max(acc, std::abs(e));
  return acc;
}

double distance2(const Vector& a, const Vector& b) {
  DDC_EXPECTS(a.dim() == b.dim());
  const std::size_t n = a.dim();
  return kernels::dispatch_dim(n, [&](auto d) {
    return kernels::distance2<d()>(a.data().data(), b.data().data(), n);
  });
}

double angle_between(const Vector& a, const Vector& b) {
  const double na = norm2(a);
  const double nb = norm2(b);
  if (na == 0.0 || nb == 0.0) {
    throw_numerical_error("angle_between: zero vector has no direction");
  }
  // Clamp to [-1, 1]: rounding can push the cosine marginally outside.
  const double c = std::clamp(dot(a, b) / (na * nb), -1.0, 1.0);
  return std::acos(c);
}

Vector normalized(const Vector& v) {
  const double n = norm2(v);
  if (n == 0.0) throw_numerical_error("normalized: zero vector");
  return v / n;
}

Vector unit_vector(std::size_t dim, std::size_t i) {
  DDC_EXPECTS(i < dim);
  Vector e(dim);
  e[i] = 1.0;
  return e;
}

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.dim(); ++i) {
    if (i > 0) os << ", ";
    os << v[i];
  }
  return os << ']';
}

}  // namespace ddc::linalg
