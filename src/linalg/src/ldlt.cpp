#include <ddc/linalg/ldlt.hpp>

#include <cmath>

#include <ddc/common/error.hpp>

namespace ddc::linalg {

Ldlt::Ldlt(const Matrix& a, double zero_tol) {
  DDC_EXPECTS(a.square());
  DDC_EXPECTS(zero_tol >= 0.0);
  const std::size_t n = a.rows();
  l_ = Matrix::identity(n);
  d_ = Vector(n);
  const double scale = std::max(1.0, max_abs(a));
  for (std::size_t j = 0; j < n; ++j) {
    double dj = a(j, j);
    for (std::size_t k = 0; k < j; ++k) dj -= l_(j, k) * l_(j, k) * d_[k];
    if (dj < -zero_tol * scale) {
      throw_numerical_error("Ldlt: matrix is indefinite (negative pivot)");
    }
    if (dj <= zero_tol * scale) {
      d_[j] = 0.0;
      // A zero pivot is only consistent with positive semi-definiteness if
      // the remaining entries of this column (after elimination) vanish
      // too; a nonzero entry there means the matrix is indefinite (e.g.
      // [[0,1],[1,0]]), which no amount of pivot-free LDLᵀ can represent.
      for (std::size_t i = j + 1; i < n; ++i) {
        double acc = a(i, j);
        for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k) * d_[k];
        if (std::abs(acc) > zero_tol * scale) {
          throw_numerical_error(
              "Ldlt: zero pivot with nonzero column (matrix is indefinite)");
        }
      }
      continue;
    }
    d_[j] = dj;
    ++rank_;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k) * d_[k];
      l_(i, j) = acc / dj;
    }
  }
}

Vector Ldlt::solve(const Vector& b) const {
  DDC_EXPECTS(b.dim() == dim());
  const std::size_t n = dim();
  // Forward: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc;
  }
  // Diagonal: D z = y, treating zero pivots as unconstrained.
  for (std::size_t i = 0; i < n; ++i) y[i] = d_[i] > 0.0 ? y[i] / d_[i] : 0.0;
  // Backward: Lᵀ x = z.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc;
  }
  return x;
}

double Ldlt::log_pseudo_det() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    if (d_[i] > 0.0) acc += std::log(d_[i]);
  }
  return acc;
}

}  // namespace ddc::linalg
