#include <ddc/linalg/matrix.hpp>

#include <algorithm>
#include <cmath>
#include <ostream>

#include <ddc/linalg/kernels.hpp>

namespace ddc::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() == 0 ? 0 : rows.begin()->size()) {
  elems_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    DDC_EXPECTS(r.size() == cols_);
    elems_.insert(elems_.end(), r.begin(), r.end());
  }
}

Vector Matrix::row(std::size_t r) const {
  DDC_EXPECTS(r < rows_);
  Vector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::col(std::size_t c) const {
  DDC_EXPECTS(c < cols_);
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  DDC_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < elems_.size(); ++i) elems_[i] += rhs.elems_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  DDC_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < elems_.size(); ++i) elems_[i] -= rhs.elems_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& e : elems_) e *= s;
  return *this;
}

Matrix& Matrix::operator/=(double s) {
  DDC_EXPECTS(s != 0.0);
  for (double& e : elems_) e /= s;
  return *this;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.dim(), d.dim());
  for (std::size_t i = 0; i < d.dim(); ++i) m(i, i) = d[i];
  return m;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix m, double s) { return m *= s; }
Matrix operator*(double s, Matrix m) { return m *= s; }
Matrix operator/(Matrix m, double s) { return m /= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  DDC_EXPECTS(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Vector operator*(const Matrix& m, const Vector& v) {
  DDC_EXPECTS(m.cols() == v.dim());
  Vector out(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) acc += m(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) out(j, i) = m(i, j);
  }
  return out;
}

Matrix outer(const Vector& a, const Vector& b) {
  Matrix out(a.dim(), b.dim());
  for (std::size_t i = 0; i < a.dim(); ++i) {
    for (std::size_t j = 0; j < b.dim(); ++j) out(i, j) = a[i] * b[j];
  }
  return out;
}

double trace(const Matrix& m) {
  DDC_EXPECTS(m.square());
  double acc = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) acc += m(i, i);
  return acc;
}

double trace_product(const Matrix& a, const Matrix& b) {
  DDC_EXPECTS(a.cols() == b.rows());
  DDC_EXPECTS(a.rows() == b.cols());
  // Mirrors operator*'s accumulation of out(i, i): ascending k with the
  // same zero-coefficient skip, so the result matches trace(a * b) bit
  // for bit (the determinism goldens depend on that). Square inputs (the
  // covariance hot path) go through the d = 1..4 unrolled kernel.
  if (a.square()) {
    const std::size_t n = a.rows();
    return kernels::dispatch_dim(n, [&](auto d) {
      return kernels::trace_product<d()>(a.data().data(), b.data().data(), n);
    });
  }
  double total = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      acc += aik * b(k, i);
    }
    total += acc;
  }
  return total;
}

double max_abs(const Matrix& m) noexcept {
  double acc = 0.0;
  for (double e : m.data()) acc = std::max(acc, std::abs(e));
  return acc;
}

bool is_symmetric(const Matrix& m, double tol) noexcept {
  if (!m.square()) return false;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i + 1; j < m.cols(); ++j) {
      const double scale =
          std::max({1.0, std::abs(m(i, j)), std::abs(m(j, i))});
      if (std::abs(m(i, j) - m(j, i)) > tol * scale) return false;
    }
  }
  return true;
}

Matrix symmetrize(const Matrix& m) {
  DDC_EXPECTS(m.square());
  Matrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      out(i, j) = 0.5 * (m(i, j) + m(j, i));
    }
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << '[';
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (i > 0) os << "; ";
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j > 0) os << ", ";
      os << m(i, j);
    }
  }
  return os << ']';
}

}  // namespace ddc::linalg
