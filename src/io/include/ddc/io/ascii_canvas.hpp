// ASCII rendering of 2-D point sets and Gaussian equidensity ellipses.
//
// The paper's Figure 2 is inherently visual: generated values (2b) and the
// estimated mixture's equidensity contours plus singleton x's (2c). This
// canvas reproduces those panels in a terminal, which is all a headless
// reproduction has.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include <ddc/linalg/vector.hpp>
#include <ddc/stats/gaussian.hpp>

namespace ddc::io {

/// A character raster over a fixed world-coordinate window.
class AsciiCanvas {
 public:
  /// Canvas of `cols × rows` characters covering the world rectangle
  /// [x_lo, x_hi] × [y_lo, y_hi] (y grows upward). Requires nonempty
  /// ranges and ≥ 2 cells per axis.
  AsciiCanvas(double x_lo, double x_hi, double y_lo, double y_hi,
              std::size_t cols = 72, std::size_t rows = 24);

  /// Convenience: a window padded around the bounding box of `points`
  /// (5 % margin). Requires at least one 2-D point.
  [[nodiscard]] static AsciiCanvas fit(const std::vector<linalg::Vector>& points,
                                       std::size_t cols = 72,
                                       std::size_t rows = 24);

  /// Plots one world point (clipped if outside the window).
  void plot(double x, double y, char mark);

  /// Plots every point of a 2-D point set.
  void plot_points(const std::vector<linalg::Vector>& points, char mark = '.');

  /// Draws the `n_sigma` equidensity contour of a 2-D Gaussian — the
  /// ellipse µ + n·(√λ₁ cosθ·v₁ + √λ₂ sinθ·v₂) — exactly what the paper's
  /// figures draw. Degenerate (zero-covariance) Gaussians plot as a
  /// single mark (the paper's singleton x's).
  void draw_gaussian(const stats::Gaussian& gaussian, double n_sigma = 2.0,
                     char mark = 'o');

  /// Writes the raster with a simple world-coordinate frame.
  void render(std::ostream& os) const;

  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

  /// Character at raster cell (col, row) — row 0 is the TOP line.
  [[nodiscard]] char at(std::size_t col, std::size_t row) const;

 private:
  double x_lo_, x_hi_, y_lo_, y_hi_;
  std::size_t cols_, rows_;
  std::vector<std::string> grid_;  // grid_[row][col], row 0 = top
};

}  // namespace ddc::io
