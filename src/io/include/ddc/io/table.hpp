// Column-aligned table / CSV emitters used by the benchmark harness to
// print the rows and series of the paper's figures.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ddc::io {

/// A cell: text, integer, or real (printed with fixed precision).
using Cell = std::variant<std::string, long long, double>;

/// A simple table with a header row. Rows must match the header width.
class Table {
 public:
  explicit Table(std::vector<std::string> header, int precision = 4);

  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Appends a row. Requires cells.size() == columns().
  void add_row(std::vector<Cell> cells);

  /// Writes a column-aligned rendering with a separator under the header.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes only when needed).
  void print_csv(std::ostream& os) const;

 private:
  [[nodiscard]] std::string render(const Cell& cell) const;

  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace ddc::io
