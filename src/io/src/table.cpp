#include <ddc/io/table.hpp>

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include <ddc/common/assert.hpp>

namespace ddc::io {

Table::Table(std::vector<std::string> header, int precision)
    : header_(std::move(header)), precision_(precision) {
  DDC_EXPECTS(!header_.empty());
  DDC_EXPECTS(precision_ >= 0);
}

void Table::add_row(std::vector<Cell> cells) {
  DDC_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render(row[c]));
      width[c] = std::max(width[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rendered) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "" : ",") << escape(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << escape(render(row[c]));
    }
    os << '\n';
  }
}

}  // namespace ddc::io
