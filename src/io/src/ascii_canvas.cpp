#include <ddc/io/ascii_canvas.hpp>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <ostream>
#include <sstream>

#include <ddc/common/assert.hpp>
#include <ddc/linalg/eigen_sym.hpp>

namespace ddc::io {

AsciiCanvas::AsciiCanvas(double x_lo, double x_hi, double y_lo, double y_hi,
                         std::size_t cols, std::size_t rows)
    : x_lo_(x_lo), x_hi_(x_hi), y_lo_(y_lo), y_hi_(y_hi), cols_(cols),
      rows_(rows), grid_(rows, std::string(cols, ' ')) {
  DDC_EXPECTS(x_lo < x_hi && y_lo < y_hi);
  DDC_EXPECTS(cols >= 2 && rows >= 2);
}

AsciiCanvas AsciiCanvas::fit(const std::vector<linalg::Vector>& points,
                             std::size_t cols, std::size_t rows) {
  DDC_EXPECTS(!points.empty());
  double x_lo = points.front()[0];
  double x_hi = x_lo;
  double y_lo = points.front()[1];
  double y_hi = y_lo;
  for (const auto& p : points) {
    DDC_EXPECTS(p.dim() == 2);
    x_lo = std::min(x_lo, p[0]);
    x_hi = std::max(x_hi, p[0]);
    y_lo = std::min(y_lo, p[1]);
    y_hi = std::max(y_hi, p[1]);
  }
  const double x_pad = std::max(1e-6, 0.05 * (x_hi - x_lo));
  const double y_pad = std::max(1e-6, 0.05 * (y_hi - y_lo));
  return AsciiCanvas(x_lo - x_pad, x_hi + x_pad, y_lo - y_pad, y_hi + y_pad,
                     cols, rows);
}

void AsciiCanvas::plot(double x, double y, char mark) {
  if (x < x_lo_ || x > x_hi_ || y < y_lo_ || y > y_hi_) return;
  const double fx = (x - x_lo_) / (x_hi_ - x_lo_);
  const double fy = (y - y_lo_) / (y_hi_ - y_lo_);
  const auto col = std::min(
      cols_ - 1, static_cast<std::size_t>(fx * static_cast<double>(cols_)));
  const auto row_from_bottom = std::min(
      rows_ - 1, static_cast<std::size_t>(fy * static_cast<double>(rows_)));
  grid_[rows_ - 1 - row_from_bottom][col] = mark;
}

void AsciiCanvas::plot_points(const std::vector<linalg::Vector>& points,
                              char mark) {
  for (const auto& p : points) {
    DDC_EXPECTS(p.dim() == 2);
    plot(p[0], p[1], mark);
  }
}

void AsciiCanvas::draw_gaussian(const stats::Gaussian& gaussian,
                                double n_sigma, char mark) {
  DDC_EXPECTS(gaussian.dim() == 2);
  DDC_EXPECTS(n_sigma > 0.0);
  const linalg::SymEigen eig = linalg::eigen_sym(gaussian.cov());
  const double a = std::sqrt(std::max(eig.values[0], 0.0)) * n_sigma;
  const double b = std::sqrt(std::max(eig.values[1], 0.0)) * n_sigma;
  if (a <= 0.0 && b <= 0.0) {
    // The paper's singleton collections render as x's.
    plot(gaussian.mean()[0], gaussian.mean()[1], 'x');
    return;
  }
  const linalg::Vector v1 = eig.vectors.col(0);
  const linalg::Vector v2 = eig.vectors.col(1);
  const int steps = static_cast<int>(4 * (cols_ + rows_));
  for (int s = 0; s < steps; ++s) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(s) / steps;
    const double ca = a * std::cos(theta);
    const double sb = b * std::sin(theta);
    plot(gaussian.mean()[0] + ca * v1[0] + sb * v2[0],
         gaussian.mean()[1] + ca * v1[1] + sb * v2[1], mark);
  }
}

char AsciiCanvas::at(std::size_t col, std::size_t row) const {
  DDC_EXPECTS(col < cols_ && row < rows_);
  return grid_[row][col];
}

void AsciiCanvas::render(std::ostream& os) const {
  const auto label = [](double v) {
    std::ostringstream s;
    s.precision(3);
    s << v;
    return s.str();
  };
  os << '+' << std::string(cols_, '-') << "+  y=" << label(y_hi_) << '\n';
  for (std::size_t r = 0; r < rows_; ++r) {
    os << '|' << grid_[r] << "|\n";
  }
  os << '+' << std::string(cols_, '-') << "+  y=" << label(y_lo_) << '\n'
     << " x=" << label(x_lo_) << std::string(cols_ > 24 ? cols_ - 18 : 1, ' ')
     << "x=" << label(x_hi_) << '\n';
}

}  // namespace ddc::io
