// Weighted k-means (Lloyd's algorithm with k-means++ seeding).
//
// MacQueen's k-means [15] is the classical centralized counterpart of the
// paper's centroids instantiation. We use it (a) as the reference
// classifier the distributed result is compared against in tests and the
// Fig. 1 bench, and (b) to seed EM.
#pragma once

#include <cstddef>
#include <vector>

#include <ddc/linalg/vector.hpp>
#include <ddc/stats/descriptive.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::em {

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster centroids (≤ k; empty clusters are dropped).
  std::vector<linalg::Vector> centers;
  /// assignment[i] = index into `centers` for sample i.
  std::vector<std::size_t> assignment;
  /// Weighted sum of squared distances to assigned centers.
  double inertia = 0.0;
  /// Lloyd iterations executed.
  std::size_t iterations = 0;
};

/// Options for k-means.
struct KMeansOptions {
  std::size_t max_iterations = 100;
  /// Stop when no assignment changes (always checked) or the inertia
  /// improvement falls below this.
  double tol = 1e-10;
};

/// k-means++ seeding over a weighted sample: returns k distinct-ish seed
/// points, chosen with probability proportional to weight × squared
/// distance from the nearest already-chosen seed. Requires a nonempty
/// sample and k ≥ 1.
[[nodiscard]] std::vector<linalg::Vector> kmeans_plus_plus_seeds(
    const std::vector<stats::WeightedValue>& sample, std::size_t k,
    stats::Rng& rng);

/// Weighted Lloyd's algorithm starting from the given seeds.
[[nodiscard]] KMeansResult lloyd(const std::vector<stats::WeightedValue>& sample,
                                 std::vector<linalg::Vector> seeds,
                                 const KMeansOptions& options = {});

/// k-means++ seeding followed by Lloyd's algorithm.
[[nodiscard]] KMeansResult kmeans(const std::vector<stats::WeightedValue>& sample,
                                  std::size_t k, stats::Rng& rng,
                                  const KMeansOptions& options = {});

}  // namespace ddc::em
