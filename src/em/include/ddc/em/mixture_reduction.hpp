// Gaussian mixture reduction: approximate an l-component mixture by a
// k-component one (l > k), reporting which input components were merged.
//
// This is the computational core of the paper's GM partition step
// (Section 5.2): finding the Maximum-Likelihood k-GM for an l-GM is
// NP-hard, so the paper "follows common practice and approximates it with
// the Expectation Maximization algorithm". We implement that EM reduction,
// plus Runnalls-style greedy pairwise merging (Salmond's tradition of
// mixture-reduction algorithms [18]) as an ablation baseline.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include <ddc/stats/mixture.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::em {

/// Result of a mixture reduction.
struct ReductionResult {
  /// The reduced mixture (≤ k components; dead components are dropped).
  stats::GaussianMixture mixture;
  /// groups[x] lists the indices of input components merged into output
  /// component x; together the groups partition {0, …, l−1}.
  std::vector<std::vector<std::size_t>> groups;
  /// EM iterations executed (0 for greedy reducers and pass-throughs).
  std::size_t iterations = 0;
  /// Final surrogate objective: Σᵢ wᵢ log Σⱼ πⱼ exp(E_{Nᵢ}[log Nⱼ]),
  /// normalized by total weight. NaN for greedy reducers.
  double objective = 0.0;
};

/// Options for EM mixture reduction.
struct ReductionOptions {
  std::size_t max_iterations = 50;
  /// Stop when the surrogate objective improves by less than this.
  double tol = 1e-7;
  /// Number of independent EM restarts; the best objective wins. Restarts
  /// beyond the first use random seeding (requires rng).
  std::size_t restarts = 1;
};

/// EM reduction of `input` to at most `k` components (Section 5.2).
///
/// The E step scores input component i against model component j with
/// πⱼ·exp(E_{Nᵢ}[log Nⱼ]) — the natural generalization of point
/// responsibilities to Gaussian-valued "data points" — and the M step
/// moment-matches each model component to its responsibility-weighted
/// inputs. The first restart is seeded deterministically by a maximin
/// (farthest-point) traversal of the component means starting from the
/// heaviest component; later restarts seed randomly with `rng`.
/// The returned grouping hard-assigns each input to its argmax model
/// component. If `input.size() ≤ k` the input is returned unchanged with
/// the identity grouping.
[[nodiscard]] ReductionResult reduce_em(const stats::GaussianMixture& input,
                                        std::size_t k, stats::Rng& rng,
                                        const ReductionOptions& options = {});

/// Greedy pairwise reduction: repeatedly merges the pair of components
/// with the smallest Runnalls upper bound on the KL discrimination
/// B(i,j) = ½[(wᵢ+wⱼ) log|Σ_merged| − wᵢ log|Σᵢ| − wⱼ log|Σⱼ|],
/// until at most `k` components remain.
[[nodiscard]] ReductionResult reduce_runnalls(const stats::GaussianMixture& input,
                                              std::size_t k);

/// Greedy nearest-centroid reduction: repeatedly merges the two components
/// whose *means* are closest (exactly Algorithm 2's partition heuristic
/// lifted to Gaussians). Ablation baseline showing what ignoring
/// covariance information costs.
[[nodiscard]] ReductionResult reduce_nearest_means(
    const stats::GaussianMixture& input, std::size_t k);

}  // namespace ddc::em
