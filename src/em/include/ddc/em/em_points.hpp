// Batch Expectation Maximization for Gaussian mixtures over (weighted)
// point samples — the centralized machine-learning reference (Dempster,
// Laird & Rubin [5]) that the paper's distributed GM algorithm is measured
// against in tests and the Fig. 2 bench.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include <ddc/stats/descriptive.hpp>
#include <ddc/stats/mixture.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::em {

/// Options for batch EM over points.
struct EmOptions {
  std::size_t max_iterations = 200;
  /// Stop when the average log-likelihood improves by less than this.
  double tol = 1e-8;
  /// Covariance eigenvalue floor, to keep components from collapsing onto
  /// single points.
  double cov_floor = 1e-6;
};

/// Result of a batch EM fit.
struct EmResult {
  stats::GaussianMixture mixture;
  /// Weight-averaged log-likelihood of the sample under `mixture`.
  double avg_log_likelihood = 0.0;
  std::size_t iterations = 0;
};

/// Fits a k-component Gaussian mixture to the weighted sample with EM,
/// seeded by k-means++. Requires a nonempty sample and 1 ≤ k.
[[nodiscard]] EmResult fit_gmm(const std::vector<stats::WeightedValue>& sample,
                               std::size_t k, stats::Rng& rng,
                               const EmOptions& options = {});

/// One EM step (E + M) from the given model; exposed for tests that check
/// the monotone-likelihood property. Returns the updated model and the
/// average log-likelihood of the *input* model on the sample.
[[nodiscard]] std::pair<stats::GaussianMixture, double> em_step(
    const std::vector<stats::WeightedValue>& sample,
    const stats::GaussianMixture& model, double cov_floor);

/// Result of BIC-based model selection over k.
struct SelectKResult {
  /// The k with the lowest BIC.
  std::size_t best_k = 1;
  /// bic[k−1] is the BIC of the best k-component fit, k = 1..k_max.
  std::vector<double> bic;
  /// The winning fitted mixture.
  stats::GaussianMixture mixture;
};

/// Chooses the component count by the Bayesian Information Criterion:
/// fits k = 1..k_max with EM and scores each with
/// BIC(k) = −2·logLik + params(k)·ln(total weight), where params(k) counts
/// the free parameters of a k-component d-dimensional GMM. The practical
/// answer to "what should I set the protocol's k to?" — run this on a
/// local sample (plus slack; see the abl_k_sweep bench for why slack
/// matters).
[[nodiscard]] SelectKResult select_k(const std::vector<stats::WeightedValue>& sample,
                                     std::size_t k_max, stats::Rng& rng,
                                     const EmOptions& options = {});

}  // namespace ddc::em
