#include <ddc/em/kmeans.hpp>

#include <algorithm>
#include <limits>

#include <ddc/common/assert.hpp>

namespace ddc::em {

using linalg::Vector;
using stats::WeightedValue;

namespace {

double squared_distance(const Vector& a, const Vector& b) {
  const double d = linalg::distance2(a, b);
  return d * d;
}

std::size_t nearest_center(const Vector& x, const std::vector<Vector>& centers,
                           double* out_d2 = nullptr) {
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers.size(); ++c) {
    const double d2 = squared_distance(x, centers[c]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c;
    }
  }
  if (out_d2 != nullptr) *out_d2 = best_d2;
  return best;
}

}  // namespace

std::vector<Vector> kmeans_plus_plus_seeds(
    const std::vector<WeightedValue>& sample, std::size_t k, stats::Rng& rng) {
  DDC_EXPECTS(!sample.empty());
  DDC_EXPECTS(k >= 1);

  std::vector<Vector> seeds;
  seeds.reserve(k);

  // First seed: weight-proportional draw.
  {
    std::vector<double> weights;
    weights.reserve(sample.size());
    for (const auto& wv : sample) weights.push_back(wv.weight);
    seeds.push_back(sample[rng.discrete(weights)].value);
  }

  std::vector<double> d2(sample.size());
  while (seeds.size() < std::min(k, sample.size())) {
    double total = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      double dist2 = 0.0;
      nearest_center(sample[i].value, seeds, &dist2);
      d2[i] = sample[i].weight * dist2;
      total += d2[i];
    }
    if (total <= 0.0) break;  // all remaining mass sits on chosen seeds
    seeds.push_back(sample[rng.discrete(d2)].value);
  }
  return seeds;
}

KMeansResult lloyd(const std::vector<WeightedValue>& sample,
                   std::vector<Vector> seeds, const KMeansOptions& options) {
  DDC_EXPECTS(!sample.empty());
  DDC_EXPECTS(!seeds.empty());
  const std::size_t dim = sample.front().value.dim();
  for (const auto& s : seeds) DDC_EXPECTS(s.dim() == dim);

  KMeansResult result;
  result.centers = std::move(seeds);
  result.assignment.assign(sample.size(), 0);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step.
    bool changed = false;
    double inertia = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      double dist2 = 0.0;
      const std::size_t c = nearest_center(sample[i].value, result.centers, &dist2);
      if (c != result.assignment[i]) {
        result.assignment[i] = c;
        changed = true;
      }
      inertia += sample[i].weight * dist2;
    }
    result.inertia = inertia;
    if (!changed && iter > 0) break;

    // Update step: weighted centroid of each cluster; empty clusters keep
    // their previous center (and are compacted away at the end).
    std::vector<Vector> sums(result.centers.size(), Vector(dim));
    std::vector<double> mass(result.centers.size(), 0.0);
    for (std::size_t i = 0; i < sample.size(); ++i) {
      sums[result.assignment[i]] += sample[i].weight * sample[i].value;
      mass[result.assignment[i]] += sample[i].weight;
    }
    for (std::size_t c = 0; c < result.centers.size(); ++c) {
      if (mass[c] > 0.0) result.centers[c] = sums[c] / mass[c];
    }

    if (prev_inertia - inertia < options.tol && iter > 0) break;
    prev_inertia = inertia;
  }

  // Compact away empty clusters so `centers` reflects the actual model.
  std::vector<bool> used(result.centers.size(), false);
  for (const std::size_t a : result.assignment) used[a] = true;
  std::vector<std::size_t> remap(result.centers.size(), 0);
  std::vector<Vector> compact;
  for (std::size_t c = 0; c < result.centers.size(); ++c) {
    if (used[c]) {
      remap[c] = compact.size();
      compact.push_back(result.centers[c]);
    }
  }
  for (std::size_t& a : result.assignment) a = remap[a];
  result.centers = std::move(compact);
  return result;
}

KMeansResult kmeans(const std::vector<WeightedValue>& sample, std::size_t k,
                    stats::Rng& rng, const KMeansOptions& options) {
  return lloyd(sample, kmeans_plus_plus_seeds(sample, k, rng), options);
}

}  // namespace ddc::em
