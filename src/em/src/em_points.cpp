#include <ddc/em/em_points.hpp>

#include <algorithm>
#include <cmath>
#include <limits>

#include <ddc/common/assert.hpp>
#include <ddc/em/kmeans.hpp>
#include <ddc/linalg/eigen_sym.hpp>

namespace ddc::em {

using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;
using stats::GaussianMixture;
using stats::WeightedGaussian;
using stats::WeightedValue;

std::pair<GaussianMixture, double> em_step(
    const std::vector<WeightedValue>& sample, const GaussianMixture& model,
    double cov_floor) {
  DDC_EXPECTS(!sample.empty());
  DDC_EXPECTS(!model.empty());
  const std::size_t k = model.size();
  const std::size_t d = model.dim();

  // E step: responsibilities, accumulating the data log-likelihood of the
  // current model on the way.
  const double total_weight = stats::total_weight(sample);
  double log_likelihood = 0.0;
  std::vector<double> resp_mass(k, 0.0);             // Σᵢ αᵢ rᵢⱼ
  std::vector<Vector> resp_mean(k, Vector(d));       // Σᵢ αᵢ rᵢⱼ vᵢ
  std::vector<std::vector<double>> resp(sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    resp[i] = model.responsibilities(sample[i].value);
    log_likelihood += sample[i].weight * model.log_pdf(sample[i].value);
    for (std::size_t j = 0; j < k; ++j) {
      const double m = sample[i].weight * resp[i][j];
      resp_mass[j] += m;
      resp_mean[j] += m * sample[i].value;
    }
  }

  // M step.
  std::vector<WeightedGaussian> components;
  components.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    if (resp_mass[j] <= 0.0) continue;  // dead component: drop it
    const Vector mu = resp_mean[j] / resp_mass[j];
    Matrix cov(d, d);
    for (std::size_t i = 0; i < sample.size(); ++i) {
      const double m = sample[i].weight * resp[i][j];
      if (m == 0.0) continue;
      const Vector delta = sample[i].value - mu;
      cov += (m / resp_mass[j]) * linalg::outer(delta, delta);
    }
    cov = linalg::clip_eigenvalues(linalg::symmetrize(cov), cov_floor);
    components.push_back({resp_mass[j] / total_weight, Gaussian(mu, cov)});
  }
  DDC_ENSURES(!components.empty());
  return {GaussianMixture(std::move(components)),
          log_likelihood / total_weight};
}

EmResult fit_gmm(const std::vector<WeightedValue>& sample, std::size_t k,
                 stats::Rng& rng, const EmOptions& options) {
  DDC_EXPECTS(!sample.empty());
  DDC_EXPECTS(k >= 1);

  // Seed with k-means++ centroids and per-cluster moments.
  const KMeansResult km = kmeans(sample, k, rng);
  std::vector<WeightedGaussian> components;
  for (std::size_t c = 0; c < km.centers.size(); ++c) {
    std::vector<WeightedValue> members;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      if (km.assignment[i] == c) members.push_back(sample[i]);
    }
    if (members.empty()) continue;
    const Vector mu = stats::weighted_mean(members);
    Matrix cov = stats::weighted_covariance(members);
    cov = linalg::clip_eigenvalues(cov, options.cov_floor);
    components.push_back({stats::total_weight(members), Gaussian(mu, cov)});
  }
  DDC_ASSERT(!components.empty());
  GaussianMixture model(std::move(components));

  EmResult result;
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    auto [next, ll] = em_step(sample, model, options.cov_floor);
    result.iterations = iter + 1;
    model = std::move(next);
    if (std::isfinite(prev_ll) && ll - prev_ll < options.tol) {
      result.avg_log_likelihood = ll;
      break;
    }
    prev_ll = ll;
    result.avg_log_likelihood = ll;
  }
  result.mixture = std::move(model);
  return result;
}

SelectKResult select_k(const std::vector<WeightedValue>& sample,
                       std::size_t k_max, stats::Rng& rng,
                       const EmOptions& options) {
  DDC_EXPECTS(!sample.empty());
  DDC_EXPECTS(k_max >= 1);
  const double total = stats::total_weight(sample);
  const double d = static_cast<double>(sample.front().value.dim());
  // Free parameters of a k-component GMM in d dimensions: k means (d
  // each), k covariances (d(d+1)/2 each), k−1 independent weights.
  const auto params = [d](std::size_t k) {
    return static_cast<double>(k) * (d + d * (d + 1.0) / 2.0) +
           (static_cast<double>(k) - 1.0);
  };

  SelectKResult result;
  double best_bic = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= k_max; ++k) {
    EmResult fit = fit_gmm(sample, k, rng, options);
    const double log_lik = fit.avg_log_likelihood * total;
    const double bic = -2.0 * log_lik + params(k) * std::log(total);
    result.bic.push_back(bic);
    if (bic < best_bic) {
      best_bic = bic;
      result.best_k = k;
      result.mixture = std::move(fit.mixture);
    }
  }
  return result;
}

}  // namespace ddc::em
