#include <ddc/em/mixture_reduction.hpp>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include <ddc/common/agglomerate.hpp>
#include <ddc/common/assert.hpp>
#include <ddc/linalg/cholesky.hpp>
#include <ddc/stats/gaussian_batch.hpp>

namespace ddc::em {

using linalg::Vector;
using stats::Gaussian;
using stats::GaussianMixture;
using stats::WeightedGaussian;

namespace {

/// Identity pass-through when no reduction is needed.
ReductionResult identity_result(const GaussianMixture& input) {
  ReductionResult out;
  out.mixture = input;
  out.groups.resize(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) out.groups[i] = {i};
  out.objective = std::numeric_limits<double>::quiet_NaN();
  return out;
}

/// Moment-matched merge of the input components listed in `group`.
WeightedGaussian merge_group(const GaussianMixture& input,
                             const std::vector<std::size_t>& group) {
  DDC_ASSERT(!group.empty());
  std::vector<WeightedGaussian> parts;
  parts.reserve(group.size());
  double weight = 0.0;
  for (const std::size_t i : group) {
    parts.push_back(input[i]);
    weight += input[i].weight;
  }
  if (parts.size() == 1) return parts.front();
  return {weight, stats::moment_match(parts)};
}

/// Deterministic seeds for EM restart 0: start from the heaviest
/// component, then repeatedly add the component whose mean is farthest
/// from every already-chosen seed (maximin / farthest-point traversal).
/// Weight-greedy seeding alone can drop all seeds into one cluster and
/// strand EM in a collapsed local optimum; maximin spreads them.
std::vector<std::size_t> maximin_seeds(const GaussianMixture& input,
                                       std::size_t k) {
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  std::size_t heaviest = 0;
  for (std::size_t i = 1; i < input.size(); ++i) {
    if (input[i].weight > input[heaviest].weight) heaviest = i;
  }
  chosen.push_back(heaviest);
  while (chosen.size() < std::min<std::size_t>(k, input.size())) {
    std::size_t best = input.size();
    double best_dist = -1.0;
    for (std::size_t i = 0; i < input.size(); ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const std::size_t c : chosen) {
        if (c == i) {
          nearest = 0.0;
          break;
        }
        nearest = std::min(nearest,
                           linalg::distance2(input[i].gaussian.mean(),
                                             input[c].gaussian.mean()));
      }
      // Tie-break toward heavier components for determinism with meaning.
      if (nearest > best_dist ||
          (nearest == best_dist && best < input.size() &&
           input[i].weight > input[best].weight)) {
        best_dist = nearest;
        best = i;
      }
    }
    DDC_ASSERT(best < input.size());
    chosen.push_back(best);
  }
  return chosen;
}

std::vector<std::size_t> random_k(const GaussianMixture& input, std::size_t k,
                                  stats::Rng& rng) {
  std::vector<std::size_t> order(input.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Weighted sampling without replacement via repeated discrete draws.
  std::vector<double> weights;
  weights.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) weights.push_back(input[i].weight);
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t draw = 0; draw < k; ++draw) {
    const std::size_t pick = rng.discrete(weights);
    chosen.push_back(pick);
    weights[pick] = 0.0;
    if (std::accumulate(weights.begin(), weights.end(), 0.0) <= 0.0) break;
  }
  return chosen;
}

struct EmRun {
  GaussianMixture model;
  std::vector<std::size_t> assignment;
  /// Per-input log-score toward its assigned component (final E pass).
  std::vector<double> assignment_score;
  double objective = -std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
};

/// Covariance floor for E-step *scoring* (the stored model is never
/// floored). Without it a point-mass model component repels even its own
/// cluster's broad collections — tr(Σ_model⁻¹ Σ_input) explodes — and EM
/// falls into cross-cluster local optima. The floor blends the average
/// *within-component* variance (the natural local scale) with a small
/// fraction of the overall spread (a fallback when all inputs are point
/// masses), the standard covariance-regularization device in EM practice.
double scoring_floor(const GaussianMixture& input) {
  // The floor must be commensurate with the OVERALL spread, not the
  // within-component scale: scoring a broad input against a (regularized)
  // point-mass model produces tr(Σ_model⁻¹ Σ_input) ≈ Σ_input/floor, and
  // unless the floor is a visible fraction of the spread this term
  // overwhelms the mean-distance term, making far broad models beat near
  // sharp ones — the cross-cluster pathology.
  const double overall =
      linalg::trace(input.collapse().cov()) / static_cast<double>(input.dim());
  return std::max(1e-2 * overall, 1e-12);
}

/// The model component as used for scoring: covariance floored at εI.
Gaussian floored(const Gaussian& g, double eps) {
  linalg::Matrix cov = g.cov();
  for (std::size_t i = 0; i < cov.rows(); ++i) cov(i, i) += eps;
  return Gaussian(g.mean(), std::move(cov));
}

/// One model component prepared for an E step / assignment pass: the
/// floored covariance factorized once (E steps score every input against
/// every model component — factorizing per pair was the dominant cost),
/// plus the component's log-prior, which is likewise input-independent.
struct ScoringComponent {
  stats::ExpectedLogPdfScorer scorer;
  double log_prior;
};

/// Build the per-component scoring invariants for the current model.
/// `out` is a reusable buffer; cleared and refilled.
void build_scoring(const GaussianMixture& model, double floor_eps,
                   std::vector<ScoringComponent>& out) {
  const double model_total = model.total_weight();
  out.clear();
  out.reserve(model.size());
  for (std::size_t j = 0; j < model.size(); ++j) {
    out.push_back(
        {stats::ExpectedLogPdfScorer(floored(model[j].gaussian, floor_eps)),
         std::log(model[j].weight / model_total)});
  }
}

/// One full EM optimization from the given seed components.
EmRun run_em(const GaussianMixture& input, const std::vector<std::size_t>& seeds,
             std::size_t k, const ReductionOptions& options) {
  const std::size_t l = input.size();
  const double total = input.total_weight();
  const double floor_eps = scoring_floor(input);

  // Initial model: the seed components, with priors proportional to the
  // seed weights (floored at the uniform share so a light seed is not
  // strangled in the very first E step).
  std::vector<WeightedGaussian> init;
  init.reserve(seeds.size());
  for (const std::size_t s : seeds) {
    init.push_back({std::max(input[s].weight, total / static_cast<double>(l)),
                    input[s].gaussian});
  }
  EmRun run;
  run.model = GaussianMixture(std::move(init));

  // Scratch reused across iterations: responsibilities, the factorized
  // scoring components, the SoA-packed inputs (constant across
  // iterations — packed once), the m×l score table, and the M-step part
  // list.
  std::vector<std::vector<double>> resp(l);
  std::vector<ScoringComponent> scoring;
  std::vector<double> logs;
  std::vector<WeightedGaussian> parts;
  stats::GaussianBatch batch;
  batch.assign(input);
  std::vector<double> scores;
  double prev_objective = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    run.iterations = iter + 1;
    const std::size_t m = run.model.size();

    // E step: rᵢⱼ ∝ πⱼ exp(E_{Nᵢ}[log Nⱼ]) with the log-sum-exp trick;
    // accumulate the surrogate objective. Model covariances are floored
    // for scoring only, each component is factorized once per iteration
    // (not per pair) via ScoringComponent, and every component scores
    // the whole SoA input batch in one score_batch pass — the E step's
    // only scoring entry point.
    build_scoring(run.model, floor_eps, scoring);
    scores.resize(m * l);
    for (std::size_t j = 0; j < m; ++j) {
      scoring[j].scorer.score_batch(batch, scores.data() + j * l);
    }
    logs.resize(m);
    double objective = 0.0;
    for (std::size_t i = 0; i < l; ++i) {
      double max_log = -std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < m; ++j) {
        logs[j] = scoring[j].log_prior + scores[j * l + i];
        max_log = std::max(max_log, logs[j]);
      }
      resp[i].assign(m, 0.0);
      double denom = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        resp[i][j] = std::exp(logs[j] - max_log);
        denom += resp[i][j];
      }
      for (double& r : resp[i]) r /= denom;
      objective += input[i].weight * (max_log + std::log(denom));
    }
    objective /= total;
    run.objective = objective;

    // M step: moment-match each model component to its responsibility-
    // weighted inputs.
    std::vector<WeightedGaussian> next;
    next.reserve(m);
    for (std::size_t j = 0; j < m; ++j) {
      parts.clear();
      double mass = 0.0;
      for (std::size_t i = 0; i < l; ++i) {
        const double w = input[i].weight * resp[i][j];
        if (w <= 0.0) continue;
        parts.push_back({w, input[i].gaussian});
        mass += w;
      }
      if (parts.empty()) continue;
      next.push_back({mass, stats::moment_match(parts)});
    }
    DDC_ASSERT(!next.empty());
    run.model = GaussianMixture(std::move(next));

    if (std::isfinite(prev_objective) &&
        objective - prev_objective < options.tol) {
      break;
    }
    prev_objective = objective;
  }

  // Hard assignment by final responsibilities against the final model
  // (same floored scoring as the E step, for consistency).
  const std::size_t m = run.model.size();
  build_scoring(run.model, floor_eps, scoring);
  scores.resize(m * l);
  for (std::size_t j = 0; j < m; ++j) {
    scoring[j].scorer.score_batch(batch, scores.data() + j * l);
  }
  run.assignment.assign(l, 0);
  run.assignment_score.assign(l, 0.0);
  for (std::size_t i = 0; i < l; ++i) {
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < m; ++j) {
      const double score = scoring[j].log_prior + scores[j * l + i];
      if (score > best) {
        best = score;
        run.assignment[i] = j;
      }
    }
    run.assignment_score[i] = best;
  }
  (void)k;
  return run;
}

/// Shared scaffolding for the greedy pairwise reducers: repeatedly merge
/// the best pair according to `cost` until at most k groups remain, via
/// the cached-distance agglomeration core (O(m²) cost evaluations; see
/// common/agglomerate.hpp for the bit-identity argument).
template <typename CostFn>
ReductionResult reduce_greedy(const GaussianMixture& input, std::size_t k,
                              CostFn cost) {
  DDC_EXPECTS(k >= 1);
  if (input.size() <= k) return identity_result(input);

  // Working components, slot-stable: merges fold into the lower slot.
  std::vector<WeightedGaussian> current;
  current.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) current.push_back(input[i]);

  ReductionResult out;
  out.groups = common::agglomerate_to_k(
      input.size(), k,
      [&](std::size_t a, std::size_t b) {
        return cost(current[a], current[b]);
      },
      [&](std::size_t a, std::size_t b) {
        current[a] = {current[a].weight + current[b].weight,
                      stats::moment_match({current[a], current[b]})};
      });
  // Each surviving group's first entry is the slot its merges folded into.
  for (const auto& g : out.groups) out.mixture.add(current[g.front()]);
  out.objective = std::numeric_limits<double>::quiet_NaN();
  return out;
}

}  // namespace

ReductionResult reduce_em(const GaussianMixture& input, std::size_t k,
                          stats::Rng& rng, const ReductionOptions& options) {
  DDC_EXPECTS(k >= 1);
  DDC_EXPECTS(options.restarts >= 1);
  if (input.size() <= k) return identity_result(input);

  EmRun best;
  bool have_best = false;
  for (std::size_t r = 0; r < options.restarts; ++r) {
    const std::vector<std::size_t> seeds =
        r == 0 ? maximin_seeds(input, k) : random_k(input, k, rng);
    EmRun run = run_em(input, seeds, k, options);
    if (!have_best || run.objective > best.objective) {
      best = std::move(run);
      have_best = true;
    }
  }

  // Group by the hard assignment. EM decides how many of the k available
  // collections it actually uses (adaptive compression, Section 4.1): with
  // l ≤ k the identity path above keeps everything; with l > k the local
  // optimum typically lands on the data's natural component count.
  std::vector<std::vector<std::size_t>> groups(best.model.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    groups[best.assignment[i]].push_back(i);
  }
  std::erase_if(groups, [](const auto& g) { return g.empty(); });

  ReductionResult out;
  for (auto& group : groups) {
    out.mixture.add(merge_group(input, group));
    out.groups.push_back(std::move(group));
  }
  out.iterations = best.iterations;
  out.objective = best.objective;
  DDC_ENSURES(out.mixture.size() <= k);
  return out;
}

ReductionResult reduce_runnalls(const GaussianMixture& input, std::size_t k) {
  const double total = input.total_weight();
  return reduce_greedy(
      input, k, [total](const WeightedGaussian& a, const WeightedGaussian& b) {
        const double wa = a.weight / total;
        const double wb = b.weight / total;
        const Gaussian merged = stats::moment_match({a, b});
        const double ld_m =
            linalg::regularized_cholesky(merged.cov()).log_det();
        const double ld_a = linalg::regularized_cholesky(a.gaussian.cov()).log_det();
        const double ld_b = linalg::regularized_cholesky(b.gaussian.cov()).log_det();
        return 0.5 * ((wa + wb) * ld_m - wa * ld_a - wb * ld_b);
      });
}

ReductionResult reduce_nearest_means(const GaussianMixture& input,
                                     std::size_t k) {
  return reduce_greedy(input, k,
                       [](const WeightedGaussian& a, const WeightedGaussian& b) {
                         return linalg::distance2(a.gaussian.mean(),
                                                  b.gaussian.mean());
                       });
}

}  // namespace ddc::em
