#include <ddc/gossip/dkmeans.hpp>

#include <limits>

namespace ddc::gossip {

using linalg::Vector;

DistributedKMeansNode::DistributedKMeansNode(
    Vector value, std::vector<Vector> initial_centroids,
    std::size_t rounds_per_iteration)
    : value_(std::move(value)),
      centroids_(std::move(initial_centroids)),
      rounds_per_iteration_(rounds_per_iteration) {
  DDC_EXPECTS(!centroids_.empty());
  DDC_EXPECTS(rounds_per_iteration_ >= 1);
  for (const auto& c : centroids_) DDC_EXPECTS(c.dim() == value_.dim());
  start_iteration();
}

std::size_t DistributedKMeansNode::own_cluster() const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double d = linalg::distance2(value_, centroids_[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

void DistributedKMeansNode::start_iteration() {
  // Fresh push-sum state: this node contributes weight 1 to its nearest
  // cluster's accumulator.
  accumulators_.assign(centroids_.size(),
                       DkmMessage::ClusterSum{Vector(value_.dim()), 0.0});
  const std::size_t mine = own_cluster();
  accumulators_[mine].sum = value_;
  accumulators_[mine].weight = 1.0;
  sends_this_iteration_ = 0;
}

void DistributedKMeansNode::commit_iteration() {
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    // A cluster this node heard no mass for keeps its previous centroid
    // (Lloyd's empty-cluster rule).
    if (accumulators_[c].weight > 0.0) {
      centroids_[c] = accumulators_[c].sum / accumulators_[c].weight;
    }
  }
  ++iteration_;
}

DkmMessage DistributedKMeansNode::prepare_message() {
  if (sends_this_iteration_ == rounds_per_iteration_) {
    // Iteration boundary: everyone reaches it in the same round because
    // every live node sends exactly once per round.
    commit_iteration();
    start_iteration();
  }
  ++sends_this_iteration_;

  DkmMessage out;
  out.iteration = iteration_;
  out.clusters.reserve(accumulators_.size());
  for (auto& acc : accumulators_) {
    out.clusters.push_back({acc.sum * 0.5, acc.weight * 0.5});
    acc.sum *= 0.5;
    acc.weight *= 0.5;
  }
  return out;
}

void DistributedKMeansNode::absorb(std::vector<DkmMessage> batch) {
  for (auto& msg : batch) {
    if (msg.iteration != iteration_ ||
        msg.clusters.size() != accumulators_.size()) {
      continue;  // stale/foreign message: impossible in lockstep, dropped
    }
    for (std::size_t c = 0; c < accumulators_.size(); ++c) {
      DDC_EXPECTS(msg.clusters[c].sum.dim() == value_.dim());
      accumulators_[c].sum += msg.clusters[c].sum;
      accumulators_[c].weight += msg.clusters[c].weight;
    }
  }
}

}  // namespace ddc::gossip
