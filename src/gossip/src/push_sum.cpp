#include <ddc/gossip/push_sum.hpp>

#include <ddc/common/assert.hpp>

namespace ddc::gossip {

PushSumNode::PushSumNode(const linalg::Vector& input)
    : sum_(input), weight_(1.0) {}

PushSumMessage PushSumNode::prepare_message() {
  PushSumMessage out{sum_ * 0.5, weight_ * 0.5};
  sum_ *= 0.5;
  weight_ *= 0.5;
  return out;
}

void PushSumNode::absorb(std::vector<PushSumMessage> batch) {
  DDC_EXPECTS(!batch.empty());
  for (auto& m : batch) {
    DDC_EXPECTS(m.sum.dim() == sum_.dim());
    sum_ += m.sum;
    weight_ += m.weight;
  }
}

linalg::Vector PushSumNode::estimate() const {
  DDC_EXPECTS(weight_ > 0.0);
  return sum_ / weight_;
}

}  // namespace ddc::gossip
