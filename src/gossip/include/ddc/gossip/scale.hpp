// Scale-engine bindings for the classifier protocols.
//
// SoaRoundEngine (src/sim) is protocol-agnostic: it stores node state in
// flat pools and drives scratch classifiers through the unmodified
// split/receive kernels. This header supplies what it cannot know — how
// one protocol's summary embeds into a fixed number of doubles, and how
// per-node policy state (the GM EM restart stream) persists across
// rounds — plus the factories that assemble a ready-to-run engine:
//
//   auto engine = ddc::gossip::make_centroid_scale_engine(
//       ddc::sim::Topology::grid(1000, 1000, false), inputs, net, options);
//
// Packing is EXACT (doubles are copied bit-for-bit), which is what lets
// the golden equivalence suite demand bit-identical classifications
// between this engine and RoundRunner.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/core/classifier.hpp>
#include <ddc/gossip/classifier_node.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/sim/scale_engine.hpp>
#include <ddc/stats/gaussian.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::gossip {

/// SoA embedding of the centroid protocol (Algorithm 2): a summary is its
/// centroid, packed as d doubles. The greedy partition policy is
/// stateless, so no per-node RNG pool is kept.
class CentroidScaleProtocol {
 public:
  using SummaryPolicy = summaries::CentroidPolicy;
  using Partition = partition::GreedyDistancePartition<SummaryPolicy>;
  using Classifier = core::GenericClassifier<SummaryPolicy, Partition>;
  using Summary = linalg::Vector;
  static constexpr bool has_node_rng = false;

  CentroidScaleProtocol(std::size_t dim, std::size_t num_nodes,
                        const NetworkConfig& config)
      : dim_(dim), num_nodes_(num_nodes), config_(config) {
    DDC_EXPECTS(dim_ >= 1);
  }

  [[nodiscard]] std::size_t k() const noexcept { return config_.k; }
  [[nodiscard]] std::int64_t quanta_per_unit() const noexcept {
    return config_.quanta_per_unit;
  }
  [[nodiscard]] std::size_t summary_doubles() const noexcept { return dim_; }

  [[nodiscard]] Classifier make_scratch() const {
    return Classifier(linalg::Vector(dim_), Partition{},
                      node_options(config_, 0, num_nodes_));
  }

  void pack(const Summary& summary, double* out) const {
    DDC_ASSERT(summary.dim() == dim_);
    std::copy_n(summary.data().data(), dim_, out);
  }

  [[nodiscard]] Summary unpack(const double* in) const {
    return linalg::Vector(std::vector<double>(in, in + dim_));
  }

 private:
  std::size_t dim_;
  std::size_t num_nodes_;
  NetworkConfig config_;
};

/// SoA embedding of the GM protocol (Section 5): a summary is ⟨µ, Σ⟩,
/// packed as d + d² doubles (mean, then covariance row-major). The EM
/// partition policy carries each node's restart RNG, persisted in the
/// engine's per-node stream pool and swapped into the scratch classifier
/// around every receive — so node i's EM draws follow the same stream
/// the object engine's dedicated EmPartition instance would consume.
class GmScaleProtocol {
 public:
  using SummaryPolicy = summaries::GaussianPolicy;
  using Partition = partition::EmPartition;
  using Classifier = core::GenericClassifier<SummaryPolicy, Partition>;
  using Summary = stats::Gaussian;
  static constexpr bool has_node_rng = true;

  GmScaleProtocol(std::size_t dim, std::size_t num_nodes,
                  const NetworkConfig& config,
                  const em::ReductionOptions& reduction = {})
      : dim_(dim),
        num_nodes_(num_nodes),
        config_(config),
        reduction_(reduction) {
    DDC_EXPECTS(dim_ >= 1);
  }

  [[nodiscard]] std::size_t k() const noexcept { return config_.k; }
  [[nodiscard]] std::int64_t quanta_per_unit() const noexcept {
    return config_.quanta_per_unit;
  }
  [[nodiscard]] std::size_t summary_doubles() const noexcept {
    return dim_ + dim_ * dim_;
  }

  [[nodiscard]] Classifier make_scratch() const {
    // Seed value is irrelevant: the engine swaps the per-node stream in
    // before any draw happens.
    return Classifier(linalg::Vector(dim_),
                      partition::EmPartition(stats::Rng(0), reduction_),
                      node_options(config_, 0, num_nodes_));
  }

  /// Per-node restart stream — same derivation as make_gm_nodes, so the
  /// engines are interchangeable on a given seed.
  [[nodiscard]] stats::Rng initial_rng(sim::NodeId i) const {
    return stats::Rng::derive(config_.seed, i);
  }

  [[nodiscard]] static stats::Rng& node_rng(Classifier& classifier) {
    return classifier.partition_policy().rng();
  }

  void pack(const Summary& summary, double* out) const {
    DDC_ASSERT(summary.dim() == dim_);
    std::copy_n(summary.mean().data().data(), dim_, out);
    std::copy_n(summary.cov().data().data(), dim_ * dim_, out + dim_);
  }

  [[nodiscard]] Summary unpack(const double* in) const {
    linalg::Vector mean(std::vector<double>(in, in + dim_));
    linalg::Matrix cov(dim_, dim_);
    for (std::size_t r = 0; r < dim_; ++r) {
      for (std::size_t c = 0; c < dim_; ++c) {
        cov(r, c) = in[dim_ + r * dim_ + c];
      }
    }
    // A packed covariance is bitwise symmetric, so the constructor's
    // symmetrize pass ((a+a)/2 per entry) reproduces it exactly — the
    // round-trip stays bit-identical.
    return stats::Gaussian(std::move(mean), std::move(cov));
  }

 private:
  std::size_t dim_;
  std::size_t num_nodes_;
  NetworkConfig config_;
  em::ReductionOptions reduction_;
};

/// Centroid network on the SoA scale engine (the 10⁵–10⁶ node backend).
/// Aux-vector tracking is not representable in the pools.
[[nodiscard]] inline sim::SoaRoundEngine<CentroidScaleProtocol>
make_centroid_scale_engine(sim::Topology topology,
                           const std::vector<linalg::Vector>& inputs,
                           const NetworkConfig& net = {},
                           const sim::RoundRunnerOptions& options = {}) {
  DDC_EXPECTS(!inputs.empty());
  DDC_EXPECTS(!net.track_aux);
  CentroidScaleProtocol protocol(inputs.front().dim(), inputs.size(), net);
  return sim::SoaRoundEngine<CentroidScaleProtocol>(
      std::move(topology), std::move(protocol), options,
      [&inputs](sim::NodeId i) {
        return summaries::CentroidPolicy::val_to_summary(inputs[i]);
      });
}

/// GM network on the SoA scale engine (see make_centroid_scale_engine).
[[nodiscard]] inline sim::SoaRoundEngine<GmScaleProtocol>
make_gm_scale_engine(sim::Topology topology,
                     const std::vector<linalg::Vector>& inputs,
                     const NetworkConfig& net = {},
                     const sim::RoundRunnerOptions& options = {},
                     const em::ReductionOptions& reduction = {}) {
  DDC_EXPECTS(!inputs.empty());
  DDC_EXPECTS(!net.track_aux);
  GmScaleProtocol protocol(inputs.front().dim(), inputs.size(), net,
                           reduction);
  return sim::SoaRoundEngine<GmScaleProtocol>(
      std::move(topology), std::move(protocol), options,
      [&inputs](sim::NodeId i) {
        return summaries::GaussianPolicy::val_to_summary(inputs[i]);
      });
}

}  // namespace ddc::gossip

namespace ddc::sim {
// Re-exports, matching the runner factories' convention (runners.hpp).
using gossip::make_centroid_scale_engine;
using gossip::make_gm_scale_engine;
}  // namespace ddc::sim
