// Push-sum average aggregation (Kempe, Dobra & Gehrke, FOCS 2003).
//
// This is the "regular average aggregation" baseline of the paper's
// Figures 3 and 4: it converges to the global average of all inputs but,
// having a single collection, cannot separate outliers from good values.
// It is also, structurally, the k = 1 special case of the generic
// algorithm — a useful cross-check the tests exploit.
#pragma once

#include <vector>

#include <ddc/linalg/vector.hpp>

namespace ddc::gossip {

/// Wire format of push-sum: a partial weighted sum.
struct PushSumMessage {
  linalg::Vector sum;    // Σ (weight share × value)
  double weight = 0.0;   // share of the total system weight

  [[nodiscard]] bool empty() const noexcept { return weight <= 0.0; }
};

/// One push-sum endpoint. Holds (s, w), initially (input, 1); each send
/// halves both and ships one half; each receive adds componentwise. The
/// running estimate s/w converges to the global average on any connected
/// topology with fair gossip (Boyd et al. [3]).
class PushSumNode {
 public:
  using Message = PushSumMessage;

  explicit PushSumNode(const linalg::Vector& input);

  /// Split step: keep half of (s, w), return the other half.
  [[nodiscard]] Message prepare_message();

  /// Receive step: add every message's (s, w) to the local pair.
  void absorb(std::vector<Message> batch);

  /// Current estimate of the global average (s/w). Requires weight() > 0.
  [[nodiscard]] linalg::Vector estimate() const;

  [[nodiscard]] double weight() const noexcept { return weight_; }

 private:
  linalg::Vector sum_;
  double weight_;
};

}  // namespace ddc::gossip
