// Factory helpers that assemble a ready-to-run simulation in one call.
//
// Before these existed every tool, example and bench hand-rolled the same
// three lines — build a node vector, build a topology, marry them in a
// runner — with the node-construction loop copy-pasted per protocol.
// The factories bundle that assembly:
//
//   auto runner = ddc::gossip::make_gm_round_runner(
//       ddc::sim::Topology::complete(n), inputs, net, options);
//
// They live in ddc::gossip because they construct gossip protocol nodes
// (the sim library cannot depend on gossip), but are re-exported into
// ddc::sim — the namespace callers already have open for Topology and the
// option structs — so `sim::make_gm_round_runner(...)` works too.
#pragma once

#include <utility>
#include <vector>

#include <ddc/em/mixture_reduction.hpp>
#include <ddc/gossip/classifier_node.hpp>
#include <ddc/gossip/dkmeans.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/gossip/scale.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/sim/async_runner.hpp>
#include <ddc/sim/engine_config.hpp>
#include <ddc/sim/round_runner.hpp>

namespace ddc::gossip {

/// The protocol-layer slice of an EngineConfig (the classifier nodes'
/// NetworkConfig). Every EngineConfig-taking factory goes through this,
/// so the protocol/environment seed split is decided in exactly one
/// place.
[[nodiscard]] inline NetworkConfig network_config(
    const sim::EngineConfig& config) {
  NetworkConfig net;
  net.k = config.k;
  net.quanta_per_unit = config.quanta_per_unit;
  net.seed = config.protocol_seed;
  return net;
}

/// Round-based GM network (the paper's Section 5 instantiation): one node
/// per input, EM partitioning with per-node derived RNG streams.
[[nodiscard]] inline sim::RoundRunner<GmNode> make_gm_round_runner(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const NetworkConfig& net = {}, const sim::RoundRunnerOptions& options = {},
    const em::ReductionOptions& reduction = {}) {
  return sim::RoundRunner<GmNode>(std::move(topology),
                                  make_gm_nodes(inputs, net, reduction),
                                  options);
}

/// Round-based centroid network (the paper's Algorithm 2).
[[nodiscard]] inline sim::RoundRunner<CentroidNode> make_centroid_round_runner(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const NetworkConfig& net = {},
    const sim::RoundRunnerOptions& options = {}) {
  return sim::RoundRunner<CentroidNode>(std::move(topology),
                                        make_centroid_nodes(inputs, net),
                                        options);
}

/// Round-based push-sum network (the plain average-aggregation baseline).
[[nodiscard]] inline sim::RoundRunner<PushSumNode> make_push_sum_round_runner(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const sim::RoundRunnerOptions& options = {}) {
  return sim::RoundRunner<PushSumNode>(std::move(topology),
                                       make_push_sum_nodes(inputs), options);
}

/// Round-based distributed k-means network (the Section 2 comparator).
/// All nodes share `initial_centroids`, as the algorithm requires.
[[nodiscard]] inline sim::RoundRunner<DistributedKMeansNode>
make_dkmeans_round_runner(sim::Topology topology,
                          const std::vector<linalg::Vector>& inputs,
                          const std::vector<linalg::Vector>& initial_centroids,
                          std::size_t rounds_per_iteration,
                          const sim::RoundRunnerOptions& options = {}) {
  std::vector<DistributedKMeansNode> nodes;
  nodes.reserve(inputs.size());
  for (const linalg::Vector& input : inputs) {
    nodes.emplace_back(input, initial_centroids, rounds_per_iteration);
  }
  return sim::RoundRunner<DistributedKMeansNode>(std::move(topology),
                                                 std::move(nodes), options);
}

/// Asynchronous (event-driven) GM network. Relies on guaranteed copy
/// elision — AsyncRunner is neither copyable nor movable, so bind the
/// result directly: `auto runner = make_gm_async_runner(...)`.
[[nodiscard]] inline sim::AsyncRunner<GmNode> make_gm_async_runner(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const NetworkConfig& net = {}, const sim::AsyncRunnerOptions& options = {},
    const em::ReductionOptions& reduction = {}) {
  return sim::AsyncRunner<GmNode>(std::move(topology),
                                  make_gm_nodes(inputs, net, reduction),
                                  options);
}

/// Asynchronous centroid network (see make_gm_async_runner on binding).
[[nodiscard]] inline sim::AsyncRunner<CentroidNode> make_centroid_async_runner(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const NetworkConfig& net = {},
    const sim::AsyncRunnerOptions& options = {}) {
  return sim::AsyncRunner<CentroidNode>(std::move(topology),
                                        make_centroid_nodes(inputs, net),
                                        options);
}

// ---------------------------------------------------------------------------
// EngineConfig overloads — the factories re-expressed on the unified
// configuration object. One EngineConfig carries what used to be four
// loose pieces (NetworkConfig, runner options, topology parameters,
// fault model); these overloads slice it for the classic runners and the
// scale engine. `config.validate()` is the caller's responsibility (the
// CLI layer validates at parse time).
// ---------------------------------------------------------------------------

[[nodiscard]] inline sim::RoundRunner<GmNode> make_gm_round_runner(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const sim::EngineConfig& config,
    const em::ReductionOptions& reduction = {}) {
  return make_gm_round_runner(std::move(topology), inputs,
                              network_config(config), config.round_options(),
                              reduction);
}

[[nodiscard]] inline sim::RoundRunner<CentroidNode> make_centroid_round_runner(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const sim::EngineConfig& config) {
  return make_centroid_round_runner(std::move(topology), inputs,
                                    network_config(config),
                                    config.round_options());
}

[[nodiscard]] inline sim::RoundRunner<PushSumNode> make_push_sum_round_runner(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const sim::EngineConfig& config) {
  return make_push_sum_round_runner(std::move(topology), inputs,
                                    config.round_options());
}

[[nodiscard]] inline sim::AsyncRunner<GmNode> make_gm_async_runner(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const sim::EngineConfig& config,
    const em::ReductionOptions& reduction = {}) {
  return make_gm_async_runner(std::move(topology), inputs,
                              network_config(config), config.async_options(),
                              reduction);
}

[[nodiscard]] inline sim::AsyncRunner<CentroidNode> make_centroid_async_runner(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const sim::EngineConfig& config) {
  return make_centroid_async_runner(std::move(topology), inputs,
                                    network_config(config),
                                    config.async_options());
}

[[nodiscard]] inline sim::SoaRoundEngine<GmScaleProtocol> make_gm_scale_engine(
    sim::Topology topology, const std::vector<linalg::Vector>& inputs,
    const sim::EngineConfig& config,
    const em::ReductionOptions& reduction = {}) {
  return make_gm_scale_engine(std::move(topology), inputs,
                              network_config(config), config.round_options(),
                              reduction);
}

[[nodiscard]] inline sim::SoaRoundEngine<CentroidScaleProtocol>
make_centroid_scale_engine(sim::Topology topology,
                           const std::vector<linalg::Vector>& inputs,
                           const sim::EngineConfig& config) {
  return make_centroid_scale_engine(std::move(topology), inputs,
                                    network_config(config),
                                    config.round_options());
}

}  // namespace ddc::gossip

namespace ddc::sim {
// Re-exports: the factory names read naturally next to Topology and the
// runner option structs, which callers qualify with sim:: already.
using gossip::make_centroid_async_runner;
using gossip::make_centroid_round_runner;
using gossip::make_dkmeans_round_runner;
using gossip::make_gm_async_runner;
using gossip::make_gm_round_runner;
using gossip::make_push_sum_round_runner;
}  // namespace ddc::sim
