// Convenience constructors for whole networks of protocol nodes.
//
// Experiments repeat the same setup — n inputs, one node each, shared
// protocol parameters, per-node derived RNG streams — so it lives here
// once instead of in every bench.
#pragma once

#include <cstdint>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/core/classifier.hpp>
#include <ddc/em/mixture_reduction.hpp>
#include <ddc/gossip/classifier_node.hpp>
#include <ddc/gossip/push_sum.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::gossip {

/// Shared parameters of a classifier network.
struct NetworkConfig {
  std::size_t k = 2;
  std::int64_t quanta_per_unit = std::int64_t{1} << 20;
  bool track_aux = false;
  std::uint64_t seed = 1;
};

/// Per-node classifier options for node `i` of `n`.
[[nodiscard]] inline core::ClassifierOptions node_options(
    const NetworkConfig& config, std::size_t i, std::size_t n) {
  core::ClassifierOptions options;
  options.k = config.k;
  options.quanta_per_unit = config.quanta_per_unit;
  options.track_aux = config.track_aux;
  options.num_nodes = n;
  options.node_index = i;
  return options;
}

/// One GM node (paper Section 5) per input, each with its own derived RNG
/// stream for EM restarts.
[[nodiscard]] inline std::vector<GmNode> make_gm_nodes(
    const std::vector<linalg::Vector>& inputs, const NetworkConfig& config,
    em::ReductionOptions reduction = {}) {
  DDC_EXPECTS(!inputs.empty());
  std::vector<GmNode> nodes;
  nodes.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    nodes.emplace_back(
        inputs[i],
        partition::EmPartition(stats::Rng::derive(config.seed, i), reduction),
        node_options(config, i, inputs.size()));
  }
  return nodes;
}

/// One centroid node (paper Algorithm 2) per input.
[[nodiscard]] inline std::vector<CentroidNode> make_centroid_nodes(
    const std::vector<linalg::Vector>& inputs, const NetworkConfig& config) {
  DDC_EXPECTS(!inputs.empty());
  std::vector<CentroidNode> nodes;
  nodes.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    nodes.emplace_back(
        inputs[i],
        partition::GreedyDistancePartition<summaries::CentroidPolicy>{},
        node_options(config, i, inputs.size()));
  }
  return nodes;
}

/// One push-sum node (regular average aggregation baseline) per input.
[[nodiscard]] inline std::vector<PushSumNode> make_push_sum_nodes(
    const std::vector<linalg::Vector>& inputs) {
  DDC_EXPECTS(!inputs.empty());
  std::vector<PushSumNode> nodes;
  nodes.reserve(inputs.size());
  for (const auto& input : inputs) nodes.emplace_back(input);
  return nodes;
}

}  // namespace ddc::gossip
