// Classifier node: binds the generic Algorithm 1 engine to the simulation
// runners' GossipNode interface.
#pragma once

#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/core/classifier.hpp>
#include <ddc/partition/em_partition.hpp>
#include <ddc/partition/greedy.hpp>
#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/gaussian_summary.hpp>

namespace ddc::gossip {

/// One protocol endpoint running the generic distributed classification
/// algorithm. `prepare_message()` is Algorithm 1's periodic split/send;
/// `absorb()` unions a batch of received classifications and runs a single
/// partition over the whole set, matching the paper's simulation
/// methodology ("accumulate all the received collections and run EM once
/// for the entire set", Section 5.3).
template <core::SummaryPolicy SP,
          core::PartitionPolicy<typename SP::Summary> PP>
class ClassifierNode {
 public:
  using Value = typename SP::Value;
  using Summary = typename SP::Summary;
  using Message = core::Classification<Summary>;

  ClassifierNode(const Value& input, PP partition_policy,
                 core::ClassifierOptions options)
      : classifier_(input, std::move(partition_policy), options) {}

  /// Split step (may return an empty message when every collection holds a
  /// single quantum; the runners skip delivering those).
  [[nodiscard]] Message prepare_message() { return classifier_.split(); }

  /// Receive step over a whole batch: one union, one partition.
  void absorb(std::vector<Message> batch) {
    DDC_EXPECTS(!batch.empty());
    Message combined = std::move(batch.front());
    for (std::size_t m = 1; m < batch.size(); ++m) {
      combined.absorb(std::move(batch[m]));
    }
    classifier_.receive(std::move(combined));
  }

  /// The node's current classification.
  [[nodiscard]] const core::Classification<Summary>& classification() const {
    return classifier_.classification();
  }

  [[nodiscard]] const core::GenericClassifier<SP, PP>& classifier() const {
    return classifier_;
  }

 private:
  core::GenericClassifier<SP, PP> classifier_;
};

/// The paper's GM algorithm: Gaussian summaries + EM partitioning.
using GmNode = ClassifierNode<summaries::GaussianPolicy, partition::EmPartition>;

/// The paper's in-line centroids example: Algorithm 2 end-to-end.
using CentroidNode =
    ClassifierNode<summaries::CentroidPolicy,
                   partition::GreedyDistancePartition<summaries::CentroidPolicy>>;

/// Gaussian summaries with the covariance-blind nearest-means partition
/// (ablation).
using GmNearestMeansNode =
    ClassifierNode<summaries::GaussianPolicy, partition::NearestMeansPartition>;

/// Gaussian summaries with Runnalls greedy reduction (ablation).
using GmRunnallsNode =
    ClassifierNode<summaries::GaussianPolicy, partition::RunnallsPartition>;

}  // namespace ddc::gossip
