// Distributed k-means in the style of Datta, Giannella & Kargupta (SDM
// 2006) — the related-work comparator of the paper's Section 2.
//
// The nodes collectively *simulate centralized Lloyd iterations*: all
// nodes share the current centroid set; each Lloyd iteration assigns every
// node's value to its nearest centroid and computes the new centroids with
// one distributed-averaging (push-sum) run per iteration. As the paper
// notes, "these algorithms require multiple aggregation iterations, each
// similar in length to one complete run of our algorithm" — the
// abl_comparators bench makes that cost concrete.
//
// The implementation is lockstep-synchronous on the round runner: every
// Lloyd iteration occupies a fixed number of gossip rounds
// (`rounds_per_iteration`); all nodes count their own sends to agree on
// the boundary, which holds in crash-free round-based execution (the
// regime Datta et al. assume).
#pragma once

#include <cstdint>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/linalg/vector.hpp>

namespace ddc::gossip {

/// Wire format: one push-sum pair (Σ weight·value, Σ weight) per cluster,
/// tagged with the Lloyd iteration it belongs to.
struct DkmMessage {
  std::uint64_t iteration = 0;
  struct ClusterSum {
    linalg::Vector sum;
    double weight = 0.0;
  };
  std::vector<ClusterSum> clusters;

  [[nodiscard]] bool empty() const noexcept { return clusters.empty(); }
};

/// One endpoint of the distributed k-means protocol.
class DistributedKMeansNode {
 public:
  using Message = DkmMessage;

  /// All nodes must be constructed with the SAME initial centroids (the
  /// algorithm assumes a shared seed — e.g. broadcast by a base station).
  /// Requires ≥ 1 centroid, all matching the value's dimension, and
  /// rounds_per_iteration ≥ 1.
  DistributedKMeansNode(linalg::Vector value,
                        std::vector<linalg::Vector> initial_centroids,
                        std::size_t rounds_per_iteration);

  /// Split step: on an iteration boundary first commits the averaged
  /// centroids and re-assigns the local value; then ships half of the
  /// per-cluster accumulators.
  [[nodiscard]] Message prepare_message();

  /// Receive step: accumulates same-iteration cluster sums (stale or
  /// futuristic messages are impossible in lockstep execution and are
  /// dropped defensively otherwise).
  void absorb(std::vector<Message> batch);

  /// The node's current centroid estimates.
  [[nodiscard]] const std::vector<linalg::Vector>& centroids() const noexcept {
    return centroids_;
  }

  /// Completed Lloyd iterations.
  [[nodiscard]] std::uint64_t iteration() const noexcept { return iteration_; }

  /// Index of the centroid nearest to this node's own value — the node's
  /// current class.
  [[nodiscard]] std::size_t own_cluster() const;

 private:
  void start_iteration();
  void commit_iteration();

  linalg::Vector value_;
  std::vector<linalg::Vector> centroids_;
  std::size_t rounds_per_iteration_;

  std::uint64_t iteration_ = 0;
  std::size_t sends_this_iteration_ = 0;
  /// Push-sum accumulators for the running iteration.
  std::vector<DkmMessage::ClusterSum> accumulators_;
};

}  // namespace ddc::gossip
