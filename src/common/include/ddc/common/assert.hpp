// Precondition / postcondition / invariant checking for the ddc libraries.
//
// Following the C++ Core Guidelines (I.6, I.8, E.12) we distinguish:
//   * DDC_EXPECTS(cond)  — precondition on a public API; violations are
//                          programming errors and throw ddc::ContractViolation
//                          so tests can observe them.
//   * DDC_ENSURES(cond)  — postcondition; same policy as DDC_EXPECTS.
//   * DDC_ASSERT(cond)   — internal invariant; compiled out in NDEBUG-like
//                          builds only if DDC_DISABLE_INTERNAL_ASSERTS is set.
//
// Throwing (rather than aborting) keeps the library testable and lets a
// long-running simulation surface a broken invariant as a recoverable error.
#pragma once

#include <ddc/common/error.hpp>

#define DDC_STRINGIZE_IMPL(x) #x
#define DDC_STRINGIZE(x) DDC_STRINGIZE_IMPL(x)

#define DDC_CONTRACT_CHECK(kind, cond)                                          \
  do {                                                                          \
    if (!(cond)) {                                                              \
      throw ::ddc::ContractViolation(kind " failed: " #cond " at " __FILE__     \
                                          ":" DDC_STRINGIZE(__LINE__));         \
    }                                                                           \
  } while (false)

#define DDC_EXPECTS(cond) DDC_CONTRACT_CHECK("precondition", cond)
#define DDC_ENSURES(cond) DDC_CONTRACT_CHECK("postcondition", cond)

#ifdef DDC_DISABLE_INTERNAL_ASSERTS
#define DDC_ASSERT(cond) ((void)0)
#else
#define DDC_ASSERT(cond) DDC_CONTRACT_CHECK("invariant", cond)
#endif
