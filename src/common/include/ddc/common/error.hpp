// Error types shared by all ddc libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace ddc {

/// Base class for all errors raised by the ddc libraries.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A contract (precondition, postcondition, or invariant) was violated.
/// Indicates a programming error in the caller or in the library itself.
class ContractViolation : public Error {
 public:
  using Error::Error;
};

/// A numerical operation could not be carried out (singular matrix,
/// non-positive-definite covariance, empty sample, ...).
class NumericalError : public Error {
 public:
  using Error::Error;
};

/// A simulation was configured inconsistently (disconnected topology,
/// out-of-range node id, ...).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Throws NumericalError with location info. Out-of-line to keep call
/// sites small.
[[noreturn]] void throw_numerical_error(const std::string& what);

}  // namespace ddc
