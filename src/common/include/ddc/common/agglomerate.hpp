// Greedy closest-pair agglomeration with a cached distance matrix.
//
// Both the partition policy (paper Algorithm 2) and the greedy mixture
// reducers repeatedly merge the closest pair of a working set until at
// most k groups remain. Transcribed directly, each round rescans every
// pair — O(m³) distance evaluations for m inputs — even though a merge
// only invalidates the distances involving the merged element. This
// helper keeps every pairwise distance in a cache and tracks each row's
// nearest neighbor, so a full run costs O(m²) distance evaluations:
// C(m,2) up front plus (live−1) refreshed entries per merge.
//
// Bit-identity contract: the grouping (and therefore every downstream
// summary, RNG draw, and classification) is identical to the naive
// rescan, not just equivalent. The naive loop scans pairs (a, b), a < b,
// in lexicographic order with a strict `<` update, so ties go to the
// lexicographically first pair and NaN/∞ distances never win (an all-∞
// round falls back to the first pair). Three observations make the cached
// version exact:
//
//   1. Merges happen in place at the lower slot and removals preserve
//      relative order, so the naive compacted positions are always the
//      live slots in ascending slot order; lexicographic position order
//      IS ascending slot order.
//   2. Each row's tracked nearest neighbor is its minimum under the same
//      strict-`<` ascending scan (earliest column wins ties); the global
//      winner is the strict-`<` ascending scan over row minima (earliest
//      row wins ties). Composing the two reproduces the lexicographic
//      pair scan exactly.
//   3. `distance` is pure, so a cached value equals a recomputed one, and
//      arguments are always passed (lower slot, higher slot) — the same
//      order the naive scan evaluates them in — so even a floating-point-
//      asymmetric distance sees identical argument order.
//
// The equivalence is enforced mechanically by greedy_partition_property_
// test (optimized vs naive on randomized inputs including exact ties) and
// by the hot-path golden digests. See DESIGN.md § Hot paths.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>

namespace ddc::common {

/// Group membership: original element indices, one vector per surviving
/// group. Structurally identical to core::Grouping.
using AgglomerationGroups = std::vector<std::vector<std::size_t>>;

/// Merge the closest pair under `distance` until at most `k` groups
/// remain. `distance(a, b)` is called with element slots a < b and must be
/// a pure function of the elements' current values; `merge(a, b)` must
/// fold element b into element a (slot b is never touched again).
/// `fill_row(a, count, out)` computes the initial upper-triangle row of
/// the distance cache — out[j] = distance(a, a+1+j) for j < count — and
/// must be bit-identical to calling `distance` per entry (callers with a
/// batched kernel, e.g. the packed centroid partition, hook it here; the
/// fill runs before any merge, so slots are still the original
/// contiguous indices). Returns the surviving groups in ascending
/// lowest-member order; each group's first entry is the slot its merges
/// accumulated into. Requires k ≥ 1.
template <typename DistanceFn, typename MergeFn, typename RowFillFn>
[[nodiscard]] AgglomerationGroups agglomerate_to_k(std::size_t size,
                                                   std::size_t k,
                                                   DistanceFn&& distance,
                                                   MergeFn&& merge,
                                                   RowFillFn&& fill_row) {
  DDC_EXPECTS(k >= 1);
  AgglomerationGroups groups(size);
  for (std::size_t i = 0; i < size; ++i) groups[i] = {i};
  if (size <= k) return groups;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t invalid = size;

  // Live slots, always in ascending order (merges keep the lower slot).
  std::vector<std::size_t> live(size);
  std::iota(live.begin(), live.end(), std::size_t{0});

  // dist[a·size + b] caches distance(a, b) for live slots a < b; rows
  // additionally track their nearest neighbor (earliest column on ties).
  std::vector<double> dist(size * size, kInf);
  std::vector<double> nn_dist(size, kInf);
  std::vector<std::size_t> nn_slot(size, invalid);
  const auto cached = [&](std::size_t a, std::size_t b) -> double& {
    return dist[a * size + b];
  };

  // Initial fill: live slots are still 0..size-1, so each row's
  // upper-triangle entries are contiguous in the cache and fill_row can
  // write them in one batched call. The nearest-neighbor scan stays a
  // separate strict-< ascending pass — identical winners to a fused
  // fill-and-scan loop because it reads the same values in the same
  // order.
  for (std::size_t pa = 0; pa + 1 < live.size(); ++pa) {
    const std::size_t a = live[pa];
    fill_row(a, size - a - 1, &cached(a, a + 1));
    for (std::size_t pb = pa + 1; pb < live.size(); ++pb) {
      const std::size_t b = live[pb];
      const double d = cached(a, b);
      if (d < nn_dist[a]) {
        nn_dist[a] = d;
        nn_slot[a] = b;
      }
    }
  }

  // Recompute live[pa]'s nearest neighbor from the cache.
  const auto rescan = [&](std::size_t pa) {
    const std::size_t a = live[pa];
    nn_dist[a] = kInf;
    nn_slot[a] = invalid;
    for (std::size_t pb = pa + 1; pb < live.size(); ++pb) {
      const std::size_t b = live[pb];
      const double d = cached(a, b);
      if (d < nn_dist[a]) {
        nn_dist[a] = d;
        nn_slot[a] = b;
      }
    }
  };

  while (live.size() > k) {
    // Global closest pair = strict-< scan over row minima; the first live
    // pair is the fallback when nothing beats ∞ (matching the naive
    // scan's (0, 1) default).
    std::size_t best_a = live[0];
    std::size_t best_b = live[1];
    double best = kInf;
    for (std::size_t p = 0; p + 1 < live.size(); ++p) {
      const std::size_t a = live[p];
      if (nn_dist[a] < best) {
        best = nn_dist[a];
        best_a = a;
        best_b = nn_slot[a];
      }
    }

    merge(best_a, best_b);
    groups[best_a].insert(groups[best_a].end(), groups[best_b].begin(),
                          groups[best_b].end());
    live.erase(std::find(live.begin(), live.end(), best_b));

    // Refresh cached distances involving the merged slot, arguments in
    // ascending-slot order like the naive evaluation.
    for (const std::size_t x : live) {
      if (x == best_a) continue;
      if (x < best_a) {
        cached(x, best_a) = distance(x, best_a);
      } else {
        cached(best_a, x) = distance(best_a, x);
      }
    }

    // Repair row minima. Only three kinds of rows can change: the merged
    // row itself (all values fresh), rows whose minimum pointed at a slot
    // that changed or died, and rows x < best_a whose refreshed candidate
    // now beats (or position-ties) their tracked minimum.
    for (std::size_t p = 0; p < live.size(); ++p) {
      const std::size_t x = live[p];
      if (x == best_a) {
        rescan(p);
        continue;
      }
      if (x > best_a) {
        if (nn_slot[x] == best_b) rescan(p);
        continue;
      }
      if (nn_slot[x] == best_a || nn_slot[x] == best_b) {
        rescan(p);
        continue;
      }
      const double d = cached(x, best_a);
      if (d < nn_dist[x] || (d == nn_dist[x] && best_a < nn_slot[x])) {
        nn_dist[x] = d;
        nn_slot[x] = best_a;
      }
    }
  }

  AgglomerationGroups out;
  out.reserve(live.size());
  for (const std::size_t s : live) out.push_back(std::move(groups[s]));
  return out;
}

/// Convenience overload: the initial row fill evaluates `distance` per
/// entry (the reference behavior the batched hook must match).
template <typename DistanceFn, typename MergeFn>
[[nodiscard]] AgglomerationGroups agglomerate_to_k(std::size_t size,
                                                   std::size_t k,
                                                   DistanceFn&& distance,
                                                   MergeFn&& merge) {
  return agglomerate_to_k(
      size, k, distance, std::forward<MergeFn>(merge),
      [&distance](std::size_t a, std::size_t count, double* out) {
        for (std::size_t j = 0; j < count; ++j) {
          out[j] = distance(a, a + 1 + j);
        }
      });
}

}  // namespace ddc::common
