#include <ddc/common/error.hpp>

namespace ddc {

void throw_numerical_error(const std::string& what) { throw NumericalError(what); }

}  // namespace ddc
