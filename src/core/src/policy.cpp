#include <ddc/core/policy.hpp>

#include <algorithm>

namespace ddc::core {

bool is_valid_grouping(const Grouping& grouping, std::size_t size) {
  std::vector<bool> seen(size, false);
  std::size_t covered = 0;
  for (const auto& group : grouping) {
    if (group.empty()) return false;
    for (const std::size_t j : group) {
      if (j >= size || seen[j]) return false;
      seen[j] = true;
      ++covered;
    }
  }
  return covered == size;
}

}  // namespace ddc::core
