#include <ddc/core/weight.hpp>

#include <ostream>

namespace ddc::core {

std::ostream& operator<<(std::ostream& os, Weight w) {
  return os << w.quanta() << 'q';
}

}  // namespace ddc::core
