// Collections and classifications (paper Definitions 1 and 2).
//
// The algorithm never materializes a collection's value multiset; a
// collection travels as its ⟨summary, weight⟩ pair, optionally accompanied
// by the auxiliary mixture-space vector of Section 4.2 that the paper uses
// to prove correctness and that our tests and metrics use to *check* it.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/core/weight.hpp>
#include <ddc/linalg/vector.hpp>

namespace ddc::core {

/// A collection as carried by the protocol: an application-specific
/// summary, a quantized weight, and (optionally) the auxiliary mixture
/// vector whose j'th component is the amount of input value j's weight
/// contained in the collection.
template <typename Summary>
struct Collection {
  Summary summary;
  Weight weight;

  /// Auxiliary mixture-space vector (R^n). Engaged only when the owning
  /// classifier was configured to track it; it costs O(n) per collection
  /// and exists for verification, metrics, and experiments — the protocol
  /// itself never reads it.
  std::optional<linalg::Vector> aux;
};

/// A classification: a bounded set of collections (weighted summaries).
/// Thin sequence wrapper that maintains no cross-collection invariant
/// beyond "weights are positive"; the classifier enforces the k-bound.
template <typename Summary>
class Classification {
 public:
  using value_type = Collection<Summary>;

  Classification() = default;

  explicit Classification(std::vector<Collection<Summary>> collections)
      : collections_(std::move(collections)) {
    for (const auto& c : collections_) DDC_EXPECTS(c.weight.positive());
  }

  [[nodiscard]] std::size_t size() const noexcept { return collections_.size(); }
  [[nodiscard]] bool empty() const noexcept { return collections_.empty(); }

  [[nodiscard]] const Collection<Summary>& operator[](std::size_t i) const {
    DDC_EXPECTS(i < collections_.size());
    return collections_[i];
  }
  [[nodiscard]] Collection<Summary>& operator[](std::size_t i) {
    DDC_EXPECTS(i < collections_.size());
    return collections_[i];
  }

  [[nodiscard]] auto begin() const noexcept { return collections_.begin(); }
  [[nodiscard]] auto end() const noexcept { return collections_.end(); }
  [[nodiscard]] auto begin() noexcept { return collections_.begin(); }
  [[nodiscard]] auto end() noexcept { return collections_.end(); }

  /// Appends a collection. Requires positive weight.
  void add(Collection<Summary> c) {
    DDC_EXPECTS(c.weight.positive());
    collections_.push_back(std::move(c));
  }

  /// Moves all collections out of `other` into this classification.
  void absorb(Classification&& other) {
    collections_.reserve(collections_.size() + other.collections_.size());
    for (auto& c : other.collections_) collections_.push_back(std::move(c));
    other.collections_.clear();
  }

  /// Sum of the collection weights.
  [[nodiscard]] Weight total_weight() const noexcept {
    Weight acc;
    for (const auto& c : collections_) acc += c.weight;
    return acc;
  }

  /// Weight of collection `i` as a fraction of the total. Requires a
  /// nonempty classification.
  [[nodiscard]] double relative_weight(std::size_t i) const {
    DDC_EXPECTS(i < collections_.size());
    const Weight total = total_weight();
    DDC_EXPECTS(total.positive());
    return static_cast<double>(collections_[i].weight.quanta()) /
           static_cast<double>(total.quanta());
  }

  [[nodiscard]] const std::vector<Collection<Summary>>& collections() const noexcept {
    return collections_;
  }
  [[nodiscard]] std::vector<Collection<Summary>>& collections() noexcept {
    return collections_;
  }

 private:
  std::vector<Collection<Summary>> collections_;
};

/// A summary with a real-valued weight — the shape partition and merge
/// policies consume. Policies see weights only up to scale (requirement
/// R3), so handing them raw quanta counts is sound.
template <typename Summary>
struct WeightedSummary {
  Summary summary;
  double weight;
};

}  // namespace ddc::core
