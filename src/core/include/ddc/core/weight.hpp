// Quantized collection weights.
//
// The paper quantizes weights to multiples of a system parameter q to rule
// out Zeno-style executions in which a finite weight takes infinitely many
// infinitesimal transfers to move (Section 4.1). We take that one step
// further and *represent* weights as integer counts of quanta. With
// integers, system-wide conservation of weight — the invariant the whole
// convergence proof leans on — holds exactly, not merely up to floating
// point rounding, and the test suite audits it after every event.
//
// The paper's q is `1 / quanta_per_unit`: a node's initial weight of 1 is
// `quanta_per_unit` quanta. The assumption q ≪ 1/n translates to
// `quanta_per_unit ≫ n`.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>

#include <ddc/common/assert.hpp>

namespace ddc::core {

/// A non-negative weight stored as an integer number of quanta.
class Weight {
 public:
  /// Zero weight.
  constexpr Weight() = default;

  /// Weight of `quanta` quanta. Requires quanta ≥ 0.
  [[nodiscard]] static constexpr Weight from_quanta(std::int64_t quanta) {
    DDC_EXPECTS(quanta >= 0);
    return Weight(quanta);
  }

  /// One whole input value under the given resolution.
  [[nodiscard]] static constexpr Weight one(std::int64_t quanta_per_unit) {
    DDC_EXPECTS(quanta_per_unit > 0);
    return Weight(quanta_per_unit);
  }

  [[nodiscard]] constexpr std::int64_t quanta() const noexcept { return quanta_; }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return quanta_ == 0; }
  [[nodiscard]] constexpr bool positive() const noexcept { return quanta_ > 0; }

  /// True iff this weight is exactly one quantum — the paper's "weight q"
  /// collections, which partition() must always merge with another
  /// collection (constraint (2) of Section 4.1).
  [[nodiscard]] constexpr bool is_single_quantum() const noexcept {
    return quanta_ == 1;
  }

  /// The paper's half(α): the multiple of q closest to α/2. For an odd
  /// number of quanta the two candidates are equally close; we
  /// deterministically round up, so the *kept* half is the larger one and
  /// a 1-quantum collection keeps everything (its send-half is zero and is
  /// simply not sent).
  [[nodiscard]] constexpr Weight half() const noexcept {
    return Weight((quanta_ + 1) / 2);
  }

  /// The complement of half(): weight − half(). Together they restore the
  /// original weight exactly, which is what makes conservation exact.
  [[nodiscard]] constexpr Weight remainder_after_half() const noexcept {
    return Weight(quanta_ / 2);
  }

  /// Real-valued weight under resolution `quanta_per_unit`.
  [[nodiscard]] constexpr double value(std::int64_t quanta_per_unit) const {
    DDC_EXPECTS(quanta_per_unit > 0);
    return static_cast<double>(quanta_) / static_cast<double>(quanta_per_unit);
  }

  constexpr Weight& operator+=(Weight rhs) noexcept {
    quanta_ += rhs.quanta_;
    return *this;
  }

  /// Subtraction. Requires rhs ≤ *this (weights cannot go negative).
  constexpr Weight& operator-=(Weight rhs) {
    DDC_EXPECTS(rhs.quanta_ <= quanta_);
    quanta_ -= rhs.quanta_;
    return *this;
  }

  friend constexpr Weight operator+(Weight a, Weight b) noexcept { return a += b; }
  friend constexpr Weight operator-(Weight a, Weight b) { return a -= b; }
  friend constexpr auto operator<=>(Weight, Weight) = default;

 private:
  explicit constexpr Weight(std::int64_t quanta) : quanta_(quanta) {}
  std::int64_t quanta_ = 0;
};

std::ostream& operator<<(std::ostream& os, Weight w);

}  // namespace ddc::core
