// Instantiation points of the generic algorithm (paper Section 4).
//
// Algorithm 1 is generic in a summary domain S and three functions:
// valToSummary, mergeSet, and partition, subject to requirements R1–R4.
// We express the instantiation as two C++20 concepts:
//
//   * SummaryPolicy  — S, valToSummary, mergeSet, and the pseudo-metric dS.
//     R2 (values map to their summaries) is the definition of
//     val_to_summary; R3 (scale invariance) and R4 (merge commutes with
//     summarization) cannot be captured in the type system and are
//     enforced by the parameterized property tests in
//     tests/summaries/requirements_test.cpp. R1 (Lipschitz w.r.t. the
//     mixture metric) is validated statistically there as well.
//
//   * PartitionPolicy — the merge-decision heuristic. The engine, not the
//     policy, enforces the two structural constraints of Section 4.1
//     (at most k groups; no singleton group holding exactly one quantum).
#pragma once

#include <concepts>
#include <cstddef>
#include <vector>

#include <ddc/core/collection.hpp>

namespace ddc::core {

/// Grouping produced by a partition policy: `groups[x]` lists the indices
/// of the input collections merged into output collection x. A valid
/// grouping is a partition of {0, …, input_size−1} into nonempty groups.
using Grouping = std::vector<std::vector<std::size_t>>;

/// An instantiation's summary domain and summary-manipulation functions.
template <typename P>
concept SummaryPolicy = requires(
    const typename P::Value& value,
    const std::vector<WeightedSummary<typename P::Summary>>& parts,
    const typename P::Summary& s) {
  typename P::Value;
  typename P::Summary;
  /// valToSummary: the summary of the one-value collection {⟨value, 1⟩}.
  { P::val_to_summary(value) } -> std::convertible_to<typename P::Summary>;
  /// mergeSet: the summary of the union of weighted collections.
  /// Must satisfy R3 (invariant under scaling all weights) and R4
  /// (equals summarizing the merged value multiset).
  { P::merge_set(parts) } -> std::convertible_to<typename P::Summary>;
  /// dS: pseudo-metric on summaries (used by convergence metrics and by
  /// the engine's fallback re-homing of one-quantum singleton groups).
  { P::distance(s, s) } -> std::convertible_to<double>;
};

/// A merge-decision heuristic for Algorithm 1's partition step. May be
/// stateful (e.g. hold an RNG for EM restarts); the engine calls it with
/// the combined collection set and the bound k and expects *some* grouping
/// with at most k groups — structural constraints are re-checked and, for
/// the one-quantum rule, repaired by the engine.
template <typename P, typename Summary>
concept PartitionPolicy = requires(
    P& p, const std::vector<WeightedSummary<Summary>>& collections,
    std::size_t k) {
  { p.partition(collections, k) } -> std::convertible_to<Grouping>;
};

/// Checks that `grouping` is a partition of {0, …, size−1} into nonempty
/// groups. Used by the engine (as a contract on policies) and by tests.
[[nodiscard]] bool is_valid_grouping(const Grouping& grouping, std::size_t size);

}  // namespace ddc::core
