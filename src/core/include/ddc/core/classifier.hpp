// The generic distributed classification engine — paper Algorithm 1.
//
// GenericClassifier is the per-node state machine, written against two
// compile-time policies (the paper's instantiation functions) and kept
// deliberately transport-agnostic: `split()` produces the classification
// to hand to a neighbor, `receive()` consumes one. The gossip runtimes in
// src/gossip bind it to the network simulator; tests drive it directly.
//
// Engine-enforced guarantees, independent of the policies plugged in:
//   * weight conservation: split() and receive() preserve the total number
//     of weight quanta held by the node plus the quanta handed out;
//   * the k-bound: after receive() at most k collections remain;
//   * the one-quantum rule (Section 4.1 constraint (2)): a group that is a
//     lone collection of weight q is re-homed into the nearest other group
//     before merging, whatever the partition policy returned;
//   * auxiliary correctness: when tracking is on, the mixture-space vector
//     of every collection is maintained exactly as in the paper's
//     dashed-frame auxiliary code, so Lemma 1 can be *checked* at runtime.
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include <ddc/common/assert.hpp>
#include <ddc/core/collection.hpp>
#include <ddc/core/policy.hpp>
#include <ddc/core/weight.hpp>
#include <ddc/linalg/vector.hpp>

namespace ddc::core {

/// Configuration of a classifier node.
struct ClassifierOptions {
  /// Maximum number of collections a node may hold (the paper's k).
  std::size_t k = 2;

  /// Weight resolution: the paper's q is 1/quanta_per_unit. Must satisfy
  /// quanta_per_unit ≫ number of nodes for the algorithm's assumption
  /// q ≪ 1/n to hold.
  std::int64_t quanta_per_unit = std::int64_t{1} << 20;

  /// When true, every collection carries its auxiliary mixture-space
  /// vector (O(num_nodes) memory per collection). For tests and metrics.
  bool track_aux = false;

  /// Total number of nodes (aux-vector dimension). Required iff track_aux.
  std::size_t num_nodes = 0;

  /// This node's input index in the mixture space. Required iff track_aux.
  std::size_t node_index = 0;
};

/// Counters describing the work a classifier has performed.
struct ClassifierStats {
  std::uint64_t splits = 0;
  std::uint64_t receives = 0;
  std::uint64_t collections_merged = 0;
  std::uint64_t singleton_rehomes = 0;
  /// Wall-clock spent inside the partition policy, accumulated across
  /// receives (two clock reads per receive — cheap next to the partition
  /// itself). Feeds `ddcsim --timing`.
  double partition_seconds = 0.0;
};

/// Per-node engine of the generic algorithm, instantiated with a
/// SummaryPolicy (domain S, valToSummary, mergeSet, dS) and a
/// PartitionPolicy (the merge-decision heuristic).
template <SummaryPolicy SP, PartitionPolicy<typename SP::Summary> PP>
class GenericClassifier {
 public:
  using Value = typename SP::Value;
  using Summary = typename SP::Summary;
  /// The wire format: a classification (Algorithm 1 sends one per gossip
  /// exchange; its size is bounded by k, independent of n).
  using Message = Classification<Summary>;

  /// Initializes the node with its input value (Algorithm 1, line 2):
  /// one collection of weight 1 whose summary is valToSummary(input).
  GenericClassifier(const Value& input, PP partition_policy,
                    ClassifierOptions options)
      : partition_policy_(std::move(partition_policy)),
        options_(options) {
    DDC_EXPECTS(options_.k >= 1);
    DDC_EXPECTS(options_.quanta_per_unit >= 1);
    if (options_.track_aux) {
      DDC_EXPECTS(options_.num_nodes > 0);
      DDC_EXPECTS(options_.node_index < options_.num_nodes);
    }
    Collection<Summary> initial{
        SP::val_to_summary(input), Weight::one(options_.quanta_per_unit), {}};
    if (options_.track_aux) {
      initial.aux =
          linalg::unit_vector(options_.num_nodes, options_.node_index);
    }
    classification_.add(std::move(initial));
  }

  /// Algorithm 1, lines 5–7: halves every collection, keeps one half and
  /// returns the other for transmission. Collections whose weight is a
  /// single quantum cannot be halved; they stay whole and contribute
  /// nothing to the message (which may therefore be empty).
  [[nodiscard]] Message split() {
    ++stats_.splits;
    Message outgoing;
    for (auto& c : classification_.collections()) {
      const Weight kept = c.weight.half();
      const Weight sent = c.weight.remainder_after_half();
      DDC_ASSERT(kept + sent == c.weight);
      if (sent.is_zero()) continue;  // 1-quantum collection: nothing to send
      Collection<Summary> out{c.summary, sent, {}};
      if (c.aux) {
        // Auxiliary code of Algorithm 1: scale by the exact weight ratios.
        const double kept_ratio = static_cast<double>(kept.quanta()) /
                                  static_cast<double>(c.weight.quanta());
        out.aux = *c.aux * (1.0 - kept_ratio);
        *c.aux *= kept_ratio;
      }
      c.weight = kept;
      outgoing.add(std::move(out));
    }
    return outgoing;
  }

  /// Algorithm 1, lines 8–11: unions `incoming` with the local
  /// classification, asks the partition policy for a grouping, repairs the
  /// one-quantum rule if necessary, and merges each group with mergeSet.
  void receive(Message incoming) {
    ++stats_.receives;
    Classification<Summary> big_set = std::move(classification_);
    classification_ = Classification<Summary>();
    big_set.absorb(std::move(incoming));
    DDC_ASSERT(!big_set.empty());

    Grouping groups = compute_grouping(big_set);
    merge_groups(std::move(big_set), groups);
    DDC_ENSURES(classification_.size() <= options_.k);
  }

  /// The node's current classification (the paper's classificationᵢ(t)).
  [[nodiscard]] const Classification<Summary>& classification() const noexcept {
    return classification_;
  }

  /// Mutable access to the classification, for LOADING externally held
  /// state (the scale engine keeps node state in struct-of-arrays pools
  /// and rehydrates a scratch classifier per node). The caller owns the
  /// invariants while mutating: positive weights, size within [1, k].
  [[nodiscard]] Classification<Summary>& mutable_classification() noexcept {
    return classification_;
  }

  [[nodiscard]] const ClassifierOptions& options() const noexcept {
    return options_;
  }

  [[nodiscard]] const ClassifierStats& stats() const noexcept { return stats_; }

  /// The partition policy (e.g. to inspect an EM policy's diagnostics).
  [[nodiscard]] const PP& partition_policy() const noexcept {
    return partition_policy_;
  }

  /// Mutable policy access, for swapping per-node policy state (e.g. the
  /// EM policy's RNG) in and out of a scratch classifier.
  [[nodiscard]] PP& partition_policy() noexcept { return partition_policy_; }

 private:
  /// Runs the policy and enforces the structural constraints of
  /// Section 4.1 on its output.
  [[nodiscard]] Grouping compute_grouping(const Classification<Summary>& big_set) {
    flat_.clear();
    flat_.reserve(big_set.size());
    for (const auto& c : big_set) {
      flat_.push_back(WeightedSummary<Summary>{
          c.summary, static_cast<double>(c.weight.quanta())});
    }

    // Audited timing probe: the clock reads feed only the
    // partition_seconds reporting counter (`ddcsim --timing`), never
    // control flow, so determinism of the classification is unaffected.
    const auto start = std::chrono::steady_clock::now();  // ddclint: allow(wall-clock)
    Grouping groups = partition_policy_.partition(flat_, options_.k);
    stats_.partition_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)  // ddclint: allow(wall-clock)
            .count();
    DDC_ENSURES(is_valid_grouping(groups, flat_.size()));
    DDC_ENSURES(groups.size() <= options_.k);

    rehome_quantum_singletons(big_set, flat_, groups);
    return groups;
  }

  /// Constraint (2) of Section 4.1: every collection of weight exactly q
  /// must be merged with at least one other. Any grouping that leaves such
  /// a collection alone is repaired by moving it into the group whose
  /// members are nearest in dS (the proof only needs *some* merge to
  /// happen; nearest keeps the repair quality-neutral).
  void rehome_quantum_singletons(const Classification<Summary>& big_set,
                                 const std::vector<WeightedSummary<Summary>>& flat,
                                 Grouping& groups) {
    if (groups.size() <= 1) return;  // nothing to re-home into
    for (std::size_t g = 0; g < groups.size();) {
      if (groups[g].size() != 1 ||
          !big_set[groups[g].front()].weight.is_single_quantum()) {
        ++g;
        continue;
      }
      const std::size_t lone = groups[g].front();
      // Find the nearest collection in any other group.
      std::size_t best_group = groups.size();
      double best_distance = 0.0;
      for (std::size_t h = 0; h < groups.size(); ++h) {
        if (h == g) continue;
        for (const std::size_t j : groups[h]) {
          const double dist =
              SP::distance(flat[lone].summary, flat[j].summary);
          if (best_group == groups.size() || dist < best_distance) {
            best_group = h;
            best_distance = dist;
          }
        }
      }
      DDC_ASSERT(best_group < groups.size());
      groups[best_group].push_back(lone);
      groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(g));
      ++stats_.singleton_rehomes;
      // Do not advance g: the element now at position g is unexamined.
    }
  }

  /// Merges each group into one collection (Algorithm 1, line 11).
  /// Singleton groups keep their collection unchanged — mergeSet over one
  /// part is the identity by R4, and skipping it avoids numerical drift.
  void merge_groups(Classification<Summary>&& big_set, const Grouping& groups) {
    for (const auto& group : groups) {
      DDC_ASSERT(!group.empty());
      if (group.size() == 1) {
        classification_.add(std::move(big_set[group.front()]));
        continue;
      }
      parts_.clear();
      parts_.reserve(group.size());
      Weight weight;
      std::optional<linalg::Vector> aux;
      for (const std::size_t j : group) {
        auto& c = big_set[j];
        parts_.push_back(WeightedSummary<Summary>{
            c.summary, static_cast<double>(c.weight.quanta())});
        weight += c.weight;
        if (c.aux) {
          if (aux) {
            *aux += *c.aux;
          } else {
            aux = std::move(*c.aux);
          }
        }
      }
      stats_.collections_merged += group.size();
      classification_.add(Collection<Summary>{SP::merge_set(parts_), weight,
                                              std::move(aux)});
    }
  }

  PP partition_policy_;
  ClassifierOptions options_;
  Classification<Summary> classification_;
  ClassifierStats stats_;
  // Scratch reused across receives: the flattened working set handed to
  // the partition policy and the per-group merge parts. Both are rebuilt
  // (clear + refill) on every use; keeping the capacity avoids two
  // allocations per receive and several per merge on the split/receive
  // hot cycle.
  std::vector<WeightedSummary<Summary>> flat_;
  std::vector<WeightedSummary<Summary>> parts_;
};

}  // namespace ddc::core
