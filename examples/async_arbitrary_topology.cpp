// Theorem 1 live: the protocol converges on an arbitrary connected
// topology under full asynchrony — random per-message delays, no rounds,
// no synchronized clocks. This example builds a sparse random geometric
// network (a simulated sensor field), runs the GM classifier on the
// event-driven asynchronous engine, and reports inter-node disagreement as
// (simulated) time passes.
//
//   $ ./async_arbitrary_topology [num_nodes] [sim_time]
#include <cstdlib>
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/summaries/gaussian_summary.hpp>

int main(int argc, char** argv) {
  using ddc::linalg::Vector;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  const double sim_time = argc > 2 ? std::strtod(argv[2], nullptr) : 400.0;

  ddc::stats::Rng rng(19);
  // Bimodal 1-D inputs: two "regimes" the network should discover.
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(
        Vector{i % 2 == 0 ? rng.normal(0.0, 1.0) : rng.normal(25.0, 2.0)});
  }

  ddc::gossip::NetworkConfig config;
  config.k = 2;
  config.seed = 19;

  ddc::sim::AsyncRunnerOptions options;
  options.seed = 19;
  options.mean_tick_interval = 1.0;
  options.min_delay = 0.05;
  options.max_delay = 3.0;  // delays exceed tick intervals → heavy reordering

  auto runner = ddc::sim::make_gm_async_runner(
      ddc::sim::Topology::random_geometric(n, 0.3, rng), inputs, config,
      options);

  std::cout << "time   messages   max disagreement vs node 0\n";
  for (double t = sim_time / 8.0; t <= sim_time; t += sim_time / 8.0) {
    runner.run_until(t);
    const double disagreement = ddc::metrics::max_disagreement_vs_first<
        ddc::summaries::GaussianPolicy>(runner.nodes());
    std::cout.width(5);
    std::cout << t << "   ";
    std::cout.width(8);
    std::cout << runner.messages_delivered() << "   " << disagreement << '\n';
  }

  const auto& c = runner.nodes()[0].classification();
  std::cout << "\nnode 0's final classification:\n";
  for (std::size_t j = 0; j < c.size(); ++j) {
    std::cout << "  mean " << c[j].summary.mean()[0] << "  (share "
              << c.relative_weight(j) << ")\n";
  }
  return 0;
}
