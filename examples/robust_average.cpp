// Robust average in the presence of outliers (the paper's Section 5.3.2
// application): 950 sensors read values from N((0,0), I); 50 faulty
// sensors report values near (0, Δ). Plain average aggregation is dragged
// toward the outliers; the GM classifier with k = 2 isolates them in their
// own collection and averages only the good one.
//
//   $ ./robust_average [delta] [rounds]
#include <cstdlib>
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/metrics/outlier_metrics.hpp>
#include <ddc/workload/scenarios.hpp>

int main(int argc, char** argv) {
  const double delta = argc > 1 ? std::strtod(argv[1], nullptr) : 10.0;
  const std::size_t rounds = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 40;

  ddc::stats::Rng rng(21);
  const ddc::workload::OutlierScenario scenario =
      ddc::workload::outlier_scenario(delta, rng);
  const std::size_t n = scenario.inputs.size();

  // GM classifier network, k = 2 (one collection for good values, one for
  // outliers), with auxiliary tracking so we can audit the separation.
  ddc::gossip::NetworkConfig config;
  config.k = 2;
  config.track_aux = true;
  config.seed = 3;
  auto runner = ddc::sim::make_gm_round_runner(ddc::sim::Topology::complete(n),
                                               scenario.inputs, config);

  // Baseline: plain push-sum average aggregation on the same inputs.
  auto baseline = ddc::sim::make_push_sum_round_runner(
      ddc::sim::Topology::complete(n), scenario.inputs);

  runner.run_rounds(rounds);
  baseline.run_rounds(rounds);

  double robust = 0.0;
  double regular = 0.0;
  double missed = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    robust += ddc::metrics::robust_mean_error(
                  runner.nodes()[i].classification(), scenario.true_mean) /
              static_cast<double>(n);
    regular += ddc::linalg::distance2(baseline.nodes()[i].estimate(),
                                      scenario.true_mean) /
               static_cast<double>(n);
    missed += ddc::metrics::missed_outlier_ratio(
                  runner.nodes()[i].classification(), scenario.outlier_flags) /
              static_cast<double>(n);
  }

  std::cout << "Outliers at distance delta = " << delta << " (" << rounds
            << " rounds, " << n << " nodes)\n"
            << "  robust mean error (GM, k=2):      " << robust << '\n'
            << "  regular mean error (push-sum):    " << regular << '\n'
            << "  outlier weight missed by the GM:  " << missed * 100.0
            << " %\n";
  return 0;
}
