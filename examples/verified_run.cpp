// Running the protocol with live runtime verification.
//
// The library ships the paper's proof machinery as executable auditors
// (ddc::audit): exact weight conservation, Lemma 1 (summaries equal the
// summarized collections), and Lemma 2 (monotone reference angles). This
// example runs a small network with every invariant checked after every
// round — the way you would validate a modified partition policy or a new
// summary domain before trusting it.
//
//   $ ./verified_run
#include <iostream>

#include <ddc/audit/auditors.hpp>
#include <ddc/gossip/runners.hpp>
#include <ddc/summaries/gaussian_summary.hpp>

int main() {
  using ddc::linalg::Vector;
  using ddc::summaries::GaussianPolicy;

  ddc::stats::Rng rng(33);
  const std::size_t n = 12;
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(i % 2 == 0 ? 0.0 : 12.0, 1.0),
                            rng.normal(0.0, 1.0)});
  }

  ddc::gossip::NetworkConfig config;
  config.k = 2;
  config.track_aux = true;  // auditors need the mixture-space vectors
  config.seed = 33;

  auto runner = ddc::sim::make_gm_round_runner(ddc::sim::Topology::ring(n),
                                               inputs, config);

  ddc::audit::ReferenceAngleMonitor angles(n);
  const std::int64_t expected_quanta =
      static_cast<std::int64_t>(n) * config.quanta_per_unit;

  const std::size_t rounds = 150;
  try {
    for (std::size_t r = 0; r < rounds; ++r) {
      runner.run_round();
      // The round runner leaves no messages in flight between rounds, so
      // the pool is exactly the union of node classifications.
      const auto pool = ddc::audit::collect_pool<ddc::stats::Gaussian>(
          runner.nodes(),
          std::vector<ddc::core::Classification<ddc::stats::Gaussian>>{});
      ddc::audit::check_conservation(pool, expected_quanta);
      ddc::audit::check_lemma1<GaussianPolicy>(pool, inputs,
                                               config.quanta_per_unit, 1e-6);
      angles.observe(pool);
    }
  } catch (const ddc::audit::AuditFailure& failure) {
    std::cerr << "INVARIANT VIOLATED: " << failure.what() << '\n';
    return 1;
  }

  std::cout << "ran " << rounds << " rounds on a ring of " << n
            << " nodes;\nevery round passed: exact conservation ("
            << expected_quanta << " quanta), Lemma 1 (summary = f(aux), "
            << "weight = ‖aux‖₁), Lemma 2 (monotone reference "
               "angles).\n\nfinal classification at node 0:\n";
  const auto& c = runner.nodes()[0].classification();
  for (std::size_t j = 0; j < c.size(); ++j) {
    std::cout << "  mean (" << c[j].summary.mean()[0] << ", "
              << c[j].summary.mean()[1] << "), share "
              << c.relative_weight(j) << '\n';
  }
  return 0;
}
