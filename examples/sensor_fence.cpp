// The paper's Section 5.3.1 scenario: temperature sensors on a fence by
// the woods, the right end close to a fire outbreak. Each sensor holds one
// (position, temperature) sample; the network runs the Gaussian-Mixture
// algorithm (k = 7) and every sensor converges to a mixture describing the
// whole fence — from which it can tell, locally, whether it sits in the
// fire zone.
//
//   $ ./sensor_fence [num_sensors] [rounds]
#include <cstdlib>
#include <iostream>

#include <ddc/em/em_points.hpp>
#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/workload/scenarios.hpp>

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  const std::size_t rounds = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 60;

  // Ground truth (three Gaussians in R²) and one sample per sensor.
  const ddc::stats::GaussianMixture truth = ddc::workload::fig2_mixture();
  ddc::stats::Rng rng(7);
  const auto inputs = ddc::workload::sample_inputs(truth, n, rng);

  // How to pick k in practice: BIC model selection on any local sample
  // suggests the component count; the protocol then wants some slack on
  // top (see bench/abl_k_sweep). Here the sample is the raw input set.
  {
    std::vector<ddc::stats::WeightedValue> sample;
    for (const auto& v : inputs) sample.push_back({v, 1.0});
    ddc::stats::Rng bic_rng(11);
    const auto choice = ddc::em::select_k(sample, 6, bic_rng);
    std::cout << "BIC suggests " << choice.best_k
              << " components; running with k = 7 (component count + "
                 "slack, the paper's choice)\n\n";
  }

  ddc::gossip::NetworkConfig config;
  config.k = 7;  // the paper's Fig. 2 parameter
  config.seed = 7;

  // Sensors communicate by radio range: a random geometric graph.
  auto runner = ddc::sim::make_gm_round_runner(
      ddc::sim::Topology::random_geometric(n, 0.15, rng), inputs, config);
  runner.run_rounds(rounds);

  // Any sensor's view of the fence (they all agree by now) — take node 0.
  const auto mixture =
      ddc::summaries::to_mixture(runner.nodes()[0].classification());

  ddc::io::Table table({"collection", "weight", "pos", "temp", "var(pos)",
                        "var(temp)", "cov"});
  for (std::size_t j = 0; j < mixture.size(); ++j) {
    const auto& g = mixture[j].gaussian;
    table.add_row({static_cast<long long>(j), mixture[j].weight, g.mean()[0],
                   g.mean()[1], g.cov()(0, 0), g.cov()(1, 1), g.cov()(0, 1)});
  }
  std::cout << "Node 0's view of the fence after " << rounds << " rounds ("
            << n << " sensors):\n\n";
  table.print(std::cout);

  // Local decision making: each sensor classifies ITS OWN reading against
  // the learned mixture and raises an alarm if its component is hot.
  std::size_t alarms = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto view =
        ddc::summaries::to_mixture(runner.nodes()[i].classification());
    const std::size_t comp = view.classify(inputs[i]);
    if (view[comp].gaussian.mean()[1] > 25.0) ++alarms;
  }
  std::cout << "\nSensors self-classified into the hot (>25°) component: "
            << alarms << " / " << n << '\n';
  return 0;
}
