// Quickstart: distributed classification in ~40 lines.
//
// Eight nodes on a ring each hold one scalar reading; they gossip until
// everyone knows the same two-collection classification of all eight
// values — without any node ever seeing the raw data set.
//
//   $ ./quickstart
#include <iostream>

#include <ddc/gossip/runners.hpp>

int main() {
  using ddc::linalg::Vector;

  // One input value per node: five readings near 10, three near 50.
  const std::vector<Vector> inputs = {
      Vector{10.2}, Vector{9.7},  Vector{10.5}, Vector{49.8},
      Vector{10.1}, Vector{50.4}, Vector{9.9},  Vector{50.0}};

  // Protocol parameters: at most k=2 collections per node.
  ddc::gossip::NetworkConfig config;
  config.k = 2;
  config.seed = 42;

  // A ring of 8 nodes running the centroids instantiation (Algorithm 2).
  auto runner = ddc::sim::make_centroid_round_runner(
      ddc::sim::Topology::ring(inputs.size()), inputs, config);

  runner.run_rounds(200);

  // Every node now holds (almost exactly) the same classification.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& c = runner.nodes()[i].classification();
    std::cout << "node " << i << " sees:";
    for (std::size_t j = 0; j < c.size(); ++j) {
      std::cout << "  [centroid " << c[j].summary[0] << ", share "
                << c.relative_weight(j) << "]";
    }
    std::cout << '\n';
  }
  return 0;
}
