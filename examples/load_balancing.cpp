// The introduction's grid-computing scenario: machines with bimodal load
// (half ~10 %, half ~90 %) learn a two-collection classification of the
// system's load distribution and then decide — each machine locally —
// whether it belongs with the heavily loaded collection and should stop
// accepting new requests.
//
// The punchline from the paper: the decision depends on the GLOBAL
// classification, not on a fixed threshold. A machine at 60 % load stops
// serving when the collections sit at 10 %/90 % (it is "heavy") but keeps
// serving when they sit at 50 %/80 % (it is "light").
//
//   $ ./load_balancing
#include <cmath>
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/workload/scenarios.hpp>

namespace {

/// Runs a centroid classification over machine loads and reports how the
/// probe machine (index 0, with the given load) classifies itself.
void classify_probe(double probe_load, double low_center, double high_center) {
  ddc::stats::Rng rng(5);
  const std::size_t n = 100;
  std::vector<ddc::linalg::Vector> loads =
      ddc::workload::load_balancing_inputs(n, rng, low_center, high_center);
  loads[0] = ddc::linalg::Vector{probe_load};

  ddc::gossip::NetworkConfig config;
  config.k = 2;
  config.seed = 13;
  auto runner = ddc::sim::make_centroid_round_runner(
      ddc::sim::Topology::erdos_renyi(n, 0.1, rng), loads, config);
  runner.run_rounds(150);

  const auto& c = runner.nodes()[0].classification();
  // Which collection does the probe's own load fit best (nearest centroid)?
  std::size_t best = 0;
  for (std::size_t j = 1; j < c.size(); ++j) {
    if (std::abs(c[j].summary[0] - probe_load) <
        std::abs(c[best].summary[0] - probe_load)) {
      best = j;
    }
  }
  std::size_t heavy = 0;
  for (std::size_t j = 1; j < c.size(); ++j) {
    if (c[j].summary[0] > c[heavy].summary[0]) heavy = j;
  }
  std::cout << "  cluster centers seen by the probe: ";
  for (std::size_t j = 0; j < c.size(); ++j) {
    std::cout << c[j].summary[0] * 100.0 << "%"
              << (j + 1 < c.size() ? " / " : "");
  }
  std::cout << "\n  probe at " << probe_load * 100.0 << "% load -> "
            << (best == heavy ? "HEAVY: stop taking new requests"
                              : "light: keep serving")
            << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Scenario A: loads cluster at ~10% and ~90%\n";
  classify_probe(0.60, 0.10, 0.90);

  std::cout << "Scenario B: loads cluster at ~50% and ~80%\n";
  classify_probe(0.60, 0.50, 0.80);
  return 0;
}
