// ddcsim — command-line driver for the distributed classification
// simulator.
//
// Examples:
//   ddcsim                                         # defaults: GM on clusters
//   ddcsim --protocol centroid --topology ring --nodes 64 --rounds 500
//   ddcsim --workload outliers --delta 10 --crash-prob 0.05
//   ddcsim --workload fence --k 7 --nodes 500 --topology geometric
//   ddcsim --protocol pushsum --workload loads --csv
//   ddcsim --nodes 100000 --engine soa --rounds 20   # scale engine
//
// The engine flags (--topology/--nodes/--pattern/--threads/--engine/...)
// are the shared cli::declare_engine_flags surface; only the
// tool-specific flags (--protocol, --workload, --rounds, output shape)
// are declared here.
#include <fstream>
#include <iostream>
#include <sstream>

#include <ddc/linalg/simd.hpp>
#include <ddc/cli/engine_flags.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/metrics/streaming.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/sim/trace.hpp>
#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/workload/scenarios.hpp>

#include "result_line.hpp"

namespace {

using ddc::linalg::Vector;

/// The flags that are ddcsim's own, on top of the shared engine surface.
struct ToolConfig {
  std::string protocol;
  std::string workload;
  std::size_t rounds;
  std::size_t report_every;
  double delta;
  bool csv;
  bool summary_line;
  bool timing;
  std::string trace_path;
};

std::vector<Vector> make_inputs(const ToolConfig& tool, std::size_t nodes,
                                ddc::stats::Rng& rng) {
  if (tool.workload == "clusters") {
    // Shared with ddcnode so networked and simulated runs on the same
    // seed classify identical inputs.
    return ddc::workload::two_clusters_inputs(nodes, rng);
  }
  if (tool.workload == "fence") {
    return ddc::workload::sample_inputs(ddc::workload::fig2_mixture(), nodes,
                                        rng);
  }
  if (tool.workload == "outliers") {
    const std::size_t n_out = std::max<std::size_t>(1, nodes / 20);
    return ddc::workload::outlier_scenario(tool.delta, rng, nodes - n_out,
                                           n_out)
        .inputs;
  }
  if (tool.workload == "loads") {
    return ddc::workload::load_balancing_inputs(nodes, rng);
  }
  throw ddc::ConfigError("unknown workload '" + tool.workload + "'");
}

void emit(const ToolConfig& tool, const ddc::io::Table& table) {
  if (tool.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// Writes the recorded trace (if requested) and reports where it went.
void flush_trace(const ToolConfig& tool, const ddc::sim::TraceRecorder& trace) {
  if (tool.trace_path.empty()) return;
  std::ofstream out(tool.trace_path);
  if (!out) {
    throw ddc::ConfigError("cannot write trace file '" + tool.trace_path +
                           "'");
  }
  trace.write_csv(out);
  std::cout << "\ntrace: " << trace.events().size() << " events -> "
            << tool.trace_path << '\n';
}

/// Prints node 0's classification table and the optional RESULT line —
/// shared tail of the object and scale classifier runs.
template <typename Summary, typename SummaryPrinter, typename MeanFn>
void report_classification(const ToolConfig& tool,
                           const ddc::core::Classification<Summary>& c,
                           SummaryPrinter print_summary, MeanFn mean_of) {
  std::cout << "\nnode 0's classification after " << tool.rounds
            << " rounds:\n";
  ddc::io::Table result({"collection", "share", "summary"});
  for (std::size_t j = 0; j < c.size(); ++j) {
    result.add_row({static_cast<long long>(j), c.relative_weight(j),
                    print_summary(c[j].summary)});
  }
  emit(tool, result);
  if (tool.summary_line) {
    // Machine-readable mirror of node 0's classification, comparable
    // against a ddcnode cluster's RESULT lines (scripts/run_cluster.sh).
    std::cout << ddc::tools::result_line(c, mean_of) << '\n';
  }
}

void report_timing(double prepare_s, double absorb_s, double partition_s,
                   double em_s) {
  std::cout << "\nTIMING prepare_s=" << prepare_s << " absorb_s=" << absorb_s
            << " partition_s=" << partition_s << " em_s=" << em_s << '\n';
}

template <typename Policy, typename Node, typename SummaryPrinter,
          typename MeanFn>
int run_classifier(const ToolConfig& tool, ddc::sim::RoundRunner<Node> runner,
                   SummaryPrinter print_summary, MeanFn mean_of) {
  ddc::sim::TraceRecorder trace;
  if (!tool.trace_path.empty()) runner.set_trace(&trace);

  ddc::io::Table progress({"round", "alive", "disagreement"}, 6);
  for (std::size_t r = 0; r < tool.rounds; ++r) {
    runner.run_round();
    if ((r + 1) % tool.report_every == 0 || r + 1 == tool.rounds) {
      progress.add_row(
          {static_cast<long long>(r + 1),
           static_cast<long long>(runner.alive_count()),
           ddc::metrics::max_disagreement_vs_first<Policy>(runner.nodes())});
    }
  }
  emit(tool, progress);

  report_classification(tool, runner.nodes()[0].classification(),
                        print_summary, mean_of);
  if (tool.timing) {
    // Per-phase wall-clock, from the accumulating counters in the runner
    // (prepare/absorb), the classifier engine (partition) and the EM
    // policy (em; 0 for policies without an EM stage). partition_s and
    // em_s are sums over nodes, so with --threads > 1 they can exceed
    // the enclosing absorb_s wall-clock.
    double partition_s = 0.0;
    double em_s = 0.0;
    for (const auto& node : runner.nodes()) {
      partition_s += node.classifier().stats().partition_seconds;
      if constexpr (requires {
                      node.classifier().partition_policy().em_seconds();
                    }) {
        em_s += node.classifier().partition_policy().em_seconds();
      }
    }
    const auto& t = runner.timings();
    report_timing(t.prepare_seconds, t.absorb_seconds, partition_s, em_s);
  }
  flush_trace(tool, trace);
  return 0;
}

/// The --engine soa path: same progress table, classification report and
/// TIMING line as run_classifier, with the streaming metrics replacing
/// the materializing ones (no per-node vector ever exists).
template <typename Policy, typename Engine, typename SummaryPrinter,
          typename MeanFn>
int run_scale(const ToolConfig& tool, Engine engine,
              SummaryPrinter print_summary, MeanFn mean_of) {
  ddc::io::Table progress({"round", "alive", "disagreement"}, 6);
  for (std::size_t r = 0; r < tool.rounds; ++r) {
    engine.run_round();
    if ((r + 1) % tool.report_every == 0 || r + 1 == tool.rounds) {
      progress.add_row(
          {static_cast<long long>(r + 1),
           static_cast<long long>(engine.alive_count()),
           ddc::metrics::streaming_max_disagreement<Policy>(engine)});
    }
  }
  emit(tool, progress);

  report_classification(tool, engine.classification_of(0), print_summary,
                        mean_of);
  if (tool.timing) {
    // Same TIMING contract as the object engine: partition_s/em_s are
    // sums over the engine's scratch classifiers, which accumulate
    // exactly one receive per node per delivery.
    const auto& t = engine.timings();
    report_timing(t.prepare_seconds, t.absorb_seconds,
                  engine.partition_seconds(), engine.em_seconds());
  }
  return 0;
}

int run_push_sum(const ToolConfig& tool,
                 ddc::sim::RoundRunner<ddc::gossip::PushSumNode> runner,
                 const std::vector<Vector>& inputs) {
  ddc::sim::TraceRecorder trace;
  if (!tool.trace_path.empty()) runner.set_trace(&trace);

  // True average for reference.
  Vector truth(inputs.front().dim());
  for (const auto& v : inputs) truth += v / static_cast<double>(inputs.size());

  ddc::io::Table progress({"round", "alive", "max estimate error"}, 6);
  for (std::size_t r = 0; r < tool.rounds; ++r) {
    runner.run_round();
    if ((r + 1) % tool.report_every == 0 || r + 1 == tool.rounds) {
      double worst = 0.0;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (!runner.alive(i)) continue;
        worst = std::max(
            worst, ddc::linalg::distance2(runner.nodes()[i].estimate(), truth));
      }
      progress.add_row({static_cast<long long>(r + 1),
                        static_cast<long long>(runner.alive_count()), worst});
    }
  }
  emit(tool, progress);
  std::ostringstream estimate;
  estimate << runner.nodes()[0].estimate();
  std::cout << "\nnode 0's average estimate: " << estimate.str() << '\n';
  flush_trace(tool, trace);
  return 0;
}

std::string describe(const Vector& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string describe(const ddc::stats::Gaussian& g) {
  std::ostringstream os;
  os << "N(" << g.mean() << ", diag≈[";
  for (std::size_t i = 0; i < g.dim(); ++i) {
    if (i > 0) os << ", ";
    os << g.cov()(i, i);
  }
  os << "])";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  ddc::cli::Flags flags("ddcsim",
                        "gossip-based distributed data classification "
                        "simulator (Eyal, Keidar & Rom, PODC 2010)");
  flags.declare("protocol", "gm | centroid | pushsum", "gm");
  flags.declare("workload", "clusters | fence | outliers | loads", "clusters");
  flags.declare("rounds", "gossip rounds to run", "100");
  flags.declare("report-every", "progress row interval", "10");
  flags.declare("delta", "outlier distance (outliers workload)", "10");
  flags.declare("trace", "write an event trace CSV to this path", "");
  flags.declare_bool("csv", "emit CSV instead of aligned tables");
  flags.declare_bool("summary-line",
                     "also print node 0's final classification as a "
                     "machine-readable RESULT line (gm/centroid)");
  ddc::cli::declare_engine_flags(flags);

  try {
    if (!flags.parse(argc, argv)) {
      std::cout << flags.help_text();
      return 0;
    }
    const ddc::sim::EngineConfig config = ddc::cli::parse_engine_config(flags);
    ddc::linalg::simd::configure(config.simd);
    const ToolConfig tool{
        flags.get("protocol"),
        flags.get("workload"),
        static_cast<std::size_t>(flags.get_int("rounds")),
        static_cast<std::size_t>(flags.get_int("report-every")),
        flags.get_double("delta"),
        flags.get_bool("csv"),
        flags.get_bool("summary-line"),
        ddc::cli::timing_requested(flags),
        flags.get("trace"),
    };

    // Workload inputs and the (possibly random) topology share one RNG
    // seeded with --seed, in this order — unchanged since the first
    // ddcsim so existing seeds reproduce bit-identically.
    ddc::stats::Rng rng(config.protocol_seed);
    const std::vector<Vector> inputs =
        make_inputs(tool, config.topology.nodes, rng);
    ddc::sim::Topology topology = config.build_topology(rng);

    const bool scale = config.use_soa() &&
                       (tool.protocol == "gm" || tool.protocol == "centroid");
    if (scale && !tool.trace_path.empty()) {
      throw ddc::ConfigError(
          "--trace needs the object engine (pass --engine object)");
    }

    if (tool.protocol == "gm") {
      auto print = [](const ddc::stats::Gaussian& g) { return describe(g); };
      auto mean = [](const ddc::stats::Gaussian& g) { return g.mean(); };
      if (scale) {
        return run_scale<ddc::summaries::GaussianPolicy>(
            tool,
            ddc::gossip::make_gm_scale_engine(std::move(topology), inputs,
                                              config),
            print, mean);
      }
      return run_classifier<ddc::summaries::GaussianPolicy>(
          tool,
          ddc::sim::make_gm_round_runner(std::move(topology), inputs, config),
          print, mean);
    }
    if (tool.protocol == "centroid") {
      auto print = [](const Vector& v) { return describe(v); };
      auto mean = [](const Vector& v) { return v; };
      if (scale) {
        return run_scale<ddc::summaries::CentroidPolicy>(
            tool,
            ddc::gossip::make_centroid_scale_engine(std::move(topology),
                                                    inputs, config),
            print, mean);
      }
      return run_classifier<ddc::summaries::CentroidPolicy>(
          tool,
          ddc::sim::make_centroid_round_runner(std::move(topology), inputs,
                                               config),
          print, mean);
    }
    if (tool.protocol == "pushsum") {
      // Push-sum has no SoA protocol binding; it always runs on the
      // object engine regardless of --engine.
      return run_push_sum(tool,
                          ddc::sim::make_push_sum_round_runner(
                              std::move(topology), inputs, config),
                          inputs);
    }
    throw ddc::ConfigError("unknown protocol '" + tool.protocol + "'");
  } catch (const ddc::Error& e) {
    std::cerr << "ddcsim: " << e.what() << '\n';
    return 1;
  }
}
