// ddcsim — command-line driver for the distributed classification
// simulator.
//
// Examples:
//   ddcsim                                         # defaults: GM on clusters
//   ddcsim --protocol centroid --topology ring --nodes 64 --rounds 500
//   ddcsim --workload outliers --delta 10 --crash-prob 0.05
//   ddcsim --workload fence --k 7 --nodes 500 --topology geometric
//   ddcsim --protocol pushsum --workload loads --csv
#include <fstream>
#include <iostream>
#include <sstream>

#include <ddc/cli/flags.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/sim/trace.hpp>
#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/workload/scenarios.hpp>

#include "result_line.hpp"

namespace {

using ddc::linalg::Vector;

struct Config {
  std::string protocol;
  std::string workload;
  std::string topology;
  std::size_t nodes;
  std::size_t k;
  std::size_t rounds;
  std::size_t report_every;
  std::size_t threads;
  double delta;
  double crash_prob;
  double loss_prob;
  std::uint64_t seed;
  int quanta_exp;
  std::string pattern;
  bool push_pull;
  bool round_robin;
  bool csv;
  bool summary_line;
  bool timing;
  std::string trace_path;
};

ddc::sim::Topology make_topology(const Config& config, ddc::stats::Rng& rng) {
  const std::size_t n = config.nodes;
  if (config.topology == "complete") return ddc::sim::Topology::complete(n);
  if (config.topology == "ring") return ddc::sim::Topology::ring(n);
  if (config.topology == "dring") return ddc::sim::Topology::directed_ring(n);
  if (config.topology == "line") return ddc::sim::Topology::line(n);
  if (config.topology == "star") return ddc::sim::Topology::star(n);
  if (config.topology == "grid" || config.topology == "torus") {
    std::size_t rows = 1;
    while ((rows + 1) * (rows + 1) <= n) ++rows;
    return ddc::sim::Topology::grid(rows, (n + rows - 1) / rows,
                                    config.topology == "torus");
  }
  if (config.topology == "geometric") {
    return ddc::sim::Topology::random_geometric(
        n, std::max(0.15, 2.0 / std::sqrt(static_cast<double>(n))), rng);
  }
  if (config.topology == "er") {
    return ddc::sim::Topology::erdos_renyi(
        n, std::max(0.05, 8.0 / static_cast<double>(n)), rng);
  }
  throw ddc::ConfigError("unknown topology '" + config.topology + "'");
}

std::vector<Vector> make_inputs(const Config& config, ddc::stats::Rng& rng) {
  if (config.workload == "clusters") {
    // Shared with ddcnode so networked and simulated runs on the same
    // seed classify identical inputs.
    return ddc::workload::two_clusters_inputs(config.nodes, rng);
  }
  if (config.workload == "fence") {
    return ddc::workload::sample_inputs(ddc::workload::fig2_mixture(),
                                        config.nodes, rng);
  }
  if (config.workload == "outliers") {
    const std::size_t n_out = std::max<std::size_t>(1, config.nodes / 20);
    return ddc::workload::outlier_scenario(config.delta, rng,
                                           config.nodes - n_out, n_out)
        .inputs;
  }
  if (config.workload == "loads") {
    return ddc::workload::load_balancing_inputs(config.nodes, rng);
  }
  throw ddc::ConfigError("unknown workload '" + config.workload + "'");
}

ddc::sim::GossipPattern parse_pattern(const Config& config) {
  if (config.push_pull) return ddc::sim::GossipPattern::push_pull;
  if (config.pattern == "push") return ddc::sim::GossipPattern::push;
  if (config.pattern == "pull") return ddc::sim::GossipPattern::pull;
  if (config.pattern == "push-pull") return ddc::sim::GossipPattern::push_pull;
  throw ddc::ConfigError("unknown pattern '" + config.pattern + "'");
}

ddc::sim::RoundRunnerOptions runner_options(const Config& config) {
  ddc::sim::RoundRunnerOptions options;
  options.selection = config.round_robin
                          ? ddc::sim::NeighborSelection::round_robin
                          : ddc::sim::NeighborSelection::uniform_random;
  options.pattern = parse_pattern(config);
  options.crash_probability = config.crash_prob;
  options.message_loss_probability = config.loss_prob;
  options.seed = config.seed + 1;
  options.parallelism = config.threads;
  return options;
}

void emit(const Config& config, const ddc::io::Table& table) {
  if (config.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// Writes the recorded trace (if requested) and reports where it went.
void flush_trace(const Config& config, const ddc::sim::TraceRecorder& trace) {
  if (config.trace_path.empty()) return;
  std::ofstream out(config.trace_path);
  if (!out) {
    throw ddc::ConfigError("cannot write trace file '" + config.trace_path +
                           "'");
  }
  trace.write_csv(out);
  std::cout << "\ntrace: " << trace.events().size() << " events -> "
            << config.trace_path << '\n';
}

template <typename Policy, typename Node, typename SummaryPrinter,
          typename MeanFn>
int run_classifier(const Config& config, ddc::sim::RoundRunner<Node> runner,
                   SummaryPrinter print_summary, MeanFn mean_of) {
  ddc::sim::TraceRecorder trace;
  if (!config.trace_path.empty()) runner.set_trace(&trace);

  ddc::io::Table progress({"round", "alive", "disagreement"}, 6);
  for (std::size_t r = 0; r < config.rounds; ++r) {
    runner.run_round();
    if ((r + 1) % config.report_every == 0 || r + 1 == config.rounds) {
      progress.add_row(
          {static_cast<long long>(r + 1),
           static_cast<long long>(runner.alive_count()),
           ddc::metrics::max_disagreement_vs_first<Policy>(runner.nodes())});
    }
  }
  emit(config, progress);

  std::cout << "\nnode 0's classification after " << config.rounds
            << " rounds:\n";
  ddc::io::Table result({"collection", "share", "summary"});
  const auto& c = runner.nodes()[0].classification();
  for (std::size_t j = 0; j < c.size(); ++j) {
    result.add_row({static_cast<long long>(j), c.relative_weight(j),
                    print_summary(c[j].summary)});
  }
  emit(config, result);
  if (config.summary_line) {
    // Machine-readable mirror of node 0's classification, comparable
    // against a ddcnode cluster's RESULT lines (scripts/run_cluster.sh).
    std::cout << ddc::tools::result_line(c, mean_of) << '\n';
  }
  if (config.timing) {
    // Per-phase wall-clock, from the accumulating counters in the runner
    // (prepare/absorb), the classifier engine (partition) and the EM
    // policy (em; 0 for policies without an EM stage). partition_s and
    // em_s are sums over nodes, so with --threads > 1 they can exceed
    // the enclosing absorb_s wall-clock.
    double partition_s = 0.0;
    double em_s = 0.0;
    for (const auto& node : runner.nodes()) {
      partition_s += node.classifier().stats().partition_seconds;
      if constexpr (requires {
                      node.classifier().partition_policy().em_seconds();
                    }) {
        em_s += node.classifier().partition_policy().em_seconds();
      }
    }
    const auto& t = runner.timings();
    std::cout << "\nTIMING prepare_s=" << t.prepare_seconds
              << " absorb_s=" << t.absorb_seconds
              << " partition_s=" << partition_s << " em_s=" << em_s << '\n';
  }
  flush_trace(config, trace);
  return 0;
}

int run_push_sum(const Config& config,
                 ddc::sim::RoundRunner<ddc::gossip::PushSumNode> runner,
                 const std::vector<Vector>& inputs) {
  ddc::sim::TraceRecorder trace;
  if (!config.trace_path.empty()) runner.set_trace(&trace);

  // True average for reference.
  Vector truth(inputs.front().dim());
  for (const auto& v : inputs) truth += v / static_cast<double>(inputs.size());

  ddc::io::Table progress({"round", "alive", "max estimate error"}, 6);
  for (std::size_t r = 0; r < config.rounds; ++r) {
    runner.run_round();
    if ((r + 1) % config.report_every == 0 || r + 1 == config.rounds) {
      double worst = 0.0;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (!runner.alive(i)) continue;
        worst = std::max(
            worst, ddc::linalg::distance2(runner.nodes()[i].estimate(), truth));
      }
      progress.add_row({static_cast<long long>(r + 1),
                        static_cast<long long>(runner.alive_count()), worst});
    }
  }
  emit(config, progress);
  std::ostringstream estimate;
  estimate << runner.nodes()[0].estimate();
  std::cout << "\nnode 0's average estimate: " << estimate.str() << '\n';
  flush_trace(config, trace);
  return 0;
}

std::string describe(const Vector& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string describe(const ddc::stats::Gaussian& g) {
  std::ostringstream os;
  os << "N(" << g.mean() << ", diag≈[";
  for (std::size_t i = 0; i < g.dim(); ++i) {
    if (i > 0) os << ", ";
    os << g.cov()(i, i);
  }
  os << "])";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  ddc::cli::Flags flags("ddcsim",
                        "gossip-based distributed data classification "
                        "simulator (Eyal, Keidar & Rom, PODC 2010)");
  flags.declare("protocol", "gm | centroid | pushsum", "gm");
  flags.declare("workload", "clusters | fence | outliers | loads", "clusters");
  flags.declare("topology",
                "complete | ring | dring | line | star | grid | torus | "
                "geometric | er",
                "complete");
  flags.declare("nodes", "number of nodes", "200");
  flags.declare("k", "max collections per node", "2");
  flags.declare("rounds", "gossip rounds to run", "100");
  flags.declare("report-every", "progress row interval", "10");
  flags.declare("threads",
                "worker threads for the prepare/absorb phases (0 = one per "
                "hardware thread); results are identical at any setting",
                "1");
  flags.declare("pattern", "push | pull | push-pull", "push");
  flags.declare("delta", "outlier distance (outliers workload)", "10");
  flags.declare("crash-prob", "per-round crash probability", "0");
  flags.declare("loss-prob", "per-message loss probability", "0");
  flags.declare("seed", "RNG seed", "1");
  flags.declare("quanta-exp", "weight quanta per unit = 2^this", "20");
  flags.declare("trace", "write an event trace CSV to this path", "");
  flags.declare_bool("push-pull", "shorthand for --pattern push-pull");
  flags.declare_bool("round-robin", "round-robin neighbor selection");
  flags.declare_bool("csv", "emit CSV instead of aligned tables");
  flags.declare_bool("summary-line",
                     "also print node 0's final classification as a "
                     "machine-readable RESULT line (gm/centroid)");
  flags.declare_bool("timing",
                     "print accumulated per-phase wall-clock (prepare / "
                     "absorb / partition / em) after the run (gm/centroid)");

  try {
    if (!flags.parse(argc, argv)) {
      std::cout << flags.help_text();
      return 0;
    }
    const Config config{
        flags.get("protocol"),
        flags.get("workload"),
        flags.get("topology"),
        static_cast<std::size_t>(flags.get_int("nodes")),
        static_cast<std::size_t>(flags.get_int("k")),
        static_cast<std::size_t>(flags.get_int("rounds")),
        static_cast<std::size_t>(flags.get_int("report-every")),
        static_cast<std::size_t>(flags.get_int("threads")),
        flags.get_double("delta"),
        flags.get_double("crash-prob"),
        flags.get_double("loss-prob"),
        static_cast<std::uint64_t>(flags.get_int("seed")),
        static_cast<int>(flags.get_int("quanta-exp")),
        flags.get("pattern"),
        flags.get_bool("push-pull"),
        flags.get_bool("round-robin"),
        flags.get_bool("csv"),
        flags.get_bool("summary-line"),
        flags.get_bool("timing"),
        flags.get("trace"),
    };
    if (flags.get_int("threads") < 0) {
      throw ddc::ConfigError("--threads must be ≥ 0 (0 = one per hardware thread)");
    }
    if (config.nodes < 2) throw ddc::ConfigError("--nodes must be ≥ 2");
    if (config.quanta_exp < 0 || config.quanta_exp > 62) {
      throw ddc::ConfigError("--quanta-exp must be in [0, 62]");
    }

    ddc::stats::Rng rng(config.seed);
    const std::vector<Vector> inputs = make_inputs(config, rng);
    ddc::sim::Topology topology = make_topology(config, rng);

    ddc::gossip::NetworkConfig net;
    net.k = config.k;
    net.quanta_per_unit = std::int64_t{1} << config.quanta_exp;
    net.seed = config.seed;

    if (config.protocol == "gm") {
      return run_classifier<ddc::summaries::GaussianPolicy>(
          config,
          ddc::sim::make_gm_round_runner(std::move(topology), inputs, net,
                                         runner_options(config)),
          [](const ddc::stats::Gaussian& g) { return describe(g); },
          [](const ddc::stats::Gaussian& g) { return g.mean(); });
    }
    if (config.protocol == "centroid") {
      return run_classifier<ddc::summaries::CentroidPolicy>(
          config,
          ddc::sim::make_centroid_round_runner(std::move(topology), inputs, net,
                                               runner_options(config)),
          [](const Vector& v) { return describe(v); },
          [](const Vector& v) { return v; });
    }
    if (config.protocol == "pushsum") {
      return run_push_sum(config,
                          ddc::sim::make_push_sum_round_runner(
                              std::move(topology), inputs,
                              runner_options(config)),
                          inputs);
    }
    throw ddc::ConfigError("unknown protocol '" + config.protocol + "'");
  } catch (const ddc::Error& e) {
    std::cerr << "ddcsim: " << e.what() << '\n';
    return 1;
  }
}
