// ddclint — determinism lint for the ddc deterministic modules.
//
// The repo's headline guarantee is bit-identical runs at any thread
// count, any transport, any seed. That property is global: one stray
// wall-clock read, one unseeded RNG, or one iteration over a hash
// container feeding ordered output anywhere in a deterministic module
// silently breaks it for every seed. Example-based tests catch the
// breakage only on the configurations they happen to run; this lint
// catches the *source pattern* at review time.
//
// Usage:
//   ddclint [--self-test] [--list-rules] <file-or-dir>...
//
// Scans every .hpp/.cpp under the given paths and reports one line per
// violation:
//
//   src/foo/bar.cpp:42: [wall-clock] std::chrono clock read in a
//       deterministic module (route timing through the metrics layer)
//
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.
//
// Suppressions: a finding is suppressed by the marker
//
//   // ddclint: allow(<rule>)
//
// on the same line or the line directly above it. Suppressions are for
// sites that are *audited* nondeterminism sinks — e.g. the three timing
// probes that feed `ddcsim --timing` read the steady clock inside
// deterministic modules, but only ever into reporting counters, never
// into control flow. Every allow() marker is expected to carry a
// justification in the surrounding comment.
//
// Rules (see --list-rules):
//   raw-rand           rand()/srand()/std::random_device — unseeded or
//                      global-state randomness. All randomness must come
//                      from ddc::stats::Rng streams derived via
//                      stats::derive_seed.
//   nonportable-engine std::default_random_engine / std::knuth_b — the
//                      produced sequence is implementation-defined, so
//                      two standard libraries disagree bit-for-bit.
//   unordered-iter     std::unordered_map/std::unordered_set — hash
//                      iteration order is unspecified and changes across
//                      libstdc++ versions; anything iterating one into
//                      ordered output is a nondeterminism hazard.
//   wall-clock         std::chrono ::now() reads, time(), clock(),
//                      gettimeofday — real time must never steer a
//                      deterministic path.
//   float-reorder      std::reduce / std::execution:: / atomic floats —
//                      float addition is not associative; any construct
//                      that reorders accumulation across runs or threads
//                      changes low-order bits.
//
// The scanner is deliberately textual (it strips comments and string
// literals, then pattern-matches): it has no false negatives from
// macro-hidden calls it can see, needs no compile database, and runs in
// milliseconds as a pre-commit gate. The price is that it scans
// *mention*, not *use* — which is the right bias for a determinism
// gate: even a mentioned-but-unused hazard in a deterministic module
// deserves a comment explaining itself.
#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

struct Rule {
  std::string_view name;
  // Substring patterns; a line violates the rule if any pattern occurs
  // in its code portion (comments and string literals stripped).
  std::vector<std::string_view> patterns;
  std::string_view message;
};

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"raw-rand",
       {"std::random_device", "random_device", " rand(", "\trand(", "(rand(",
        "=rand(", " srand(", "\tsrand(", "(srand("},
       "raw C randomness / random_device in a deterministic module "
       "(derive a ddc::stats::Rng stream via stats::derive_seed instead)"},
      {"nonportable-engine",
       {"std::default_random_engine", "std::knuth_b"},
       "implementation-defined random engine (its sequence differs across "
       "standard libraries; use ddc::stats::Rng / std::mt19937_64)"},
      {"unordered-iter",
       {"std::unordered_map", "std::unordered_set", "std::unordered_multimap",
        "std::unordered_multiset"},
       "unordered container in a deterministic module (hash iteration "
       "order is unspecified and feeds ordered output; use std::map / "
       "std::set / a sorted vector, or justify with an allow marker)"},
      {"wall-clock",
       {"steady_clock::now", "system_clock::now", "high_resolution_clock::now",
        "gettimeofday", " time(nullptr", " time(NULL", "(time(nullptr",
        "(time(NULL", " clock()", "(clock()"},
       "wall-clock read in a deterministic module (real time must not "
       "steer a deterministic path; timing probes need an audited allow "
       "marker)"},
      {"float-reorder",
       {"std::reduce", "std::execution::", "std::atomic<double>",
        "std::atomic<float>", "atomic<double>", "atomic<float>", "fastmath",
        "_mm256_hadd_pd"},
       "accumulation-order hazard (float addition is not associative; "
       "reductions must run in a fixed sequential order — see "
       "exec/parallel_for.hpp — and fast-math / horizontal-add SIMD "
       "kernels re-associate by design, so every use needs an audited "
       "allow marker and error-bound tests, never golden digests)"},
  };
  return kRules;
}

constexpr std::string_view kAllowMarker = "ddclint: allow(";

/// Returns the code portion of `line`: contents of // comments, /* */
/// comments and string/char literals are blanked out (replaced by
/// spaces) so patterns inside them do not fire. `in_block_comment`
/// carries /* */ state across lines.
std::string code_portion(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size();) {
    if (in_block_comment) {
      if (line.compare(i, 2, "*/") == 0) {
        in_block_comment = false;
        out += "  ";
        i += 2;
      } else {
        out += ' ';
        ++i;
      }
      continue;
    }
    if (line.compare(i, 2, "//") == 0) {
      out.append(line.size() - i, ' ');
      break;
    }
    if (line.compare(i, 2, "/*") == 0) {
      in_block_comment = true;
      out += "  ";
      i += 2;
      continue;
    }
    if (line[i] == '"' || line[i] == '\'') {
      const char quote = line[i];
      out += ' ';
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out += "  ";
          i += 2;
          continue;
        }
        const bool closing = line[i] == quote;
        out += ' ';
        ++i;
        if (closing) break;
      }
      continue;
    }
    out += line[i];
    ++i;
  }
  return out;
}

/// True when `line` carries an allow marker for `rule` (in a comment —
/// the marker is searched on the raw line).
bool has_allow(const std::string& line, std::string_view rule) {
  std::size_t pos = line.find(kAllowMarker);
  while (pos != std::string::npos) {
    const std::size_t open = pos + kAllowMarker.size();
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos) return false;
    const std::string_view inside{line.data() + open, close - open};
    if (inside == rule || inside == "*") return true;
    pos = line.find(kAllowMarker, close);
  }
  return false;
}

struct Finding {
  std::string file;
  std::size_t line;
  std::string_view rule;
  std::string_view message;
};

/// Scans one logical source text. `name` labels findings; used for both
/// real files and the self-test's planted snippets.
std::vector<Finding> scan_text(const std::string& name,
                               const std::string& text) {
  std::vector<Finding> findings;
  std::istringstream stream(text);
  std::string line;
  std::string previous;
  bool in_block_comment = false;
  std::size_t lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    const std::string code = code_portion(line, in_block_comment);
    for (const Rule& rule : rules()) {
      bool hit = false;
      for (const std::string_view pattern : rule.patterns) {
        if (code.find(pattern) != std::string::npos) {
          hit = true;
          break;
        }
      }
      if (!hit) continue;
      if (has_allow(line, rule.name) || has_allow(previous, rule.name)) {
        continue;
      }
      findings.push_back(Finding{name, lineno, rule.name, rule.message});
    }
    previous = line;
  }
  return findings;
}

bool is_source_file(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

int scan_paths(const std::vector<std::string>& paths) {
  std::vector<std::filesystem::path> files;
  for (const std::string& p : paths) {
    const std::filesystem::path path(p);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && is_source_file(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::cerr << "ddclint: no such file or directory: " << p << "\n";
      return 2;
    }
  }
  // Deterministic report order, whatever order the filesystem returned.
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "ddclint: cannot read " << file.string() << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    for (const Finding& f : scan_text(file.string(), buffer.str())) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
      ++total;
    }
  }
  if (total != 0) {
    std::cout << "ddclint: " << total << " violation"
              << (total == 1 ? "" : "s") << " in " << files.size()
              << " file" << (files.size() == 1 ? "" : "s") << " scanned\n";
    return 1;
  }
  std::cout << "ddclint: clean (" << files.size() << " file"
            << (files.size() == 1 ? "" : "s") << " scanned)\n";
  return 0;
}

/// One planted violation per rule, each with a matching allow()
/// counterpart. The self-test proves (a) every rule fires on its
/// planted snippet, (b) the allow marker suppresses exactly that rule,
/// and (c) comments / string literals do not fire.
int self_test() {
  struct Plant {
    std::string_view rule;
    std::string_view code;
  };
  const std::vector<Plant> plants = {
      {"raw-rand", "  std::random_device rd;\n"},
      {"raw-rand", "  int x = rand();\n"},
      {"nonportable-engine", "  std::default_random_engine eng(7);\n"},
      {"unordered-iter", "  std::unordered_map<int, int> counts;\n"},
      {"wall-clock", "  auto t = std::chrono::steady_clock::now();\n"},
      {"float-reorder",
       "  double s = std::reduce(v.begin(), v.end(), 0.0);\n"},
      {"float-reorder",
       "  const __m256d h = _mm256_hadd_pd(acc, acc);\n"},
      {"float-reorder", "  out[i] = score_batch_avx2_fastmath(s, x);\n"},
  };
  std::size_t failures = 0;
  for (const Plant& plant : plants) {
    const auto findings = scan_text("<plant>", std::string(plant.code));
    bool fired = false;
    for (const Finding& f : findings) fired = fired || f.rule == plant.rule;
    if (!fired) {
      std::cerr << "self-test FAIL: rule " << plant.rule
                << " did not fire on planted violation: " << plant.code;
      ++failures;
    }
    // The same snippet with an inline allow marker must be clean.
    std::string allowed(plant.code);
    allowed.pop_back();  // strip newline
    allowed += "  // ddclint: allow(";
    allowed += plant.rule;
    allowed += ")\n";
    if (!scan_text("<plant>", allowed).empty()) {
      std::cerr << "self-test FAIL: allow(" << plant.rule
                << ") did not suppress: " << allowed;
      ++failures;
    }
    // And with the marker on the preceding line.
    std::string above = "  // audited sink. ddclint: allow(";
    above += plant.rule;
    above += ")\n";
    above += plant.code;
    if (!scan_text("<plant>", above).empty()) {
      std::cerr << "self-test FAIL: preceding-line allow(" << plant.rule
                << ") did not suppress\n";
      ++failures;
    }
  }
  // Mentions inside comments and string literals must never fire.
  const std::string benign =
      "// std::random_device is banned here\n"
      "/* steady_clock::now() in a block comment */\n"
      "const char* msg = \"std::unordered_map<int,int> in a string\";\n";
  for (const Finding& f : scan_text("<benign>", benign)) {
    std::cerr << "self-test FAIL: fired on comment/string: [" << f.rule
              << "] line " << f.line << "\n";
    ++failures;
  }
  if (failures != 0) {
    std::cerr << "ddclint self-test: " << failures << " failure(s)\n";
    return 1;
  }
  std::cout << "ddclint self-test: all " << plants.size()
            << " planted violations detected and suppressible\n";
  return 0;
}

void list_rules() {
  for (const Rule& rule : rules()) {
    std::cout << rule.name << "\n    " << rule.message << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") return self_test();
    if (arg == "--list-rules") {
      list_rules();
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ddclint [--self-test] [--list-rules] "
                   "<file-or-dir>...\n";
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "ddclint: unknown flag " << arg << "\n";
      return 2;
    }
    paths.emplace_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "usage: ddclint [--self-test] [--list-rules] "
                 "<file-or-dir>...\n";
    return 2;
  }
  return scan_paths(paths);
}
