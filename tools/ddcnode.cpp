// ddcnode — one networked classification node.
//
// Runs a single protocol endpoint (the same GM or centroid node the
// simulator drives) over UDP. A cluster is N of these processes sharing
// static configuration: every node derives the full input set, the
// topology and the peer table from the same --seed/--nodes flags and
// takes the row matching its --id — exactly how a sensor deployment
// ships one flashed configuration to every mote.
//
// Lifecycle: bind socket → wait until every peer has been heard from
// (bounded by --start-timeout-ms) → gossip for --rounds ticks → drain →
// print the final classification as a RESULT line on stdout.
//
//   ddcnode --id 3 --nodes 8 --base-port 9800 --protocol gm
//
// Shard mode (--num-shards S --shard-id s --nodes-per-shard M) runs one
// ShardEngine hosting M of the S*M simulated nodes instead of a single
// NetNode: S processes exchange batched cross-shard traffic (one frame
// per peer shard per round) and together replay the exact round-based
// protocol ddcsim runs in-process, so a healthy shard cluster's RESULT
// matches `ddcsim --summary-line` bit for bit.
//
//   ddcnode --shard-id 0 --num-shards 4 --nodes-per-shard 1000
//
// The shared engine flags (--topology/--nodes/--k/--quanta-exp/--seed)
// come from cli::declare_engine_flags; every process runs the same
// inputs-then-topology derivation ddcsim does, so a cluster and a
// simulator run on the same seed classify the same workload over the
// same graph. scripts/run_cluster.sh launches and checks a whole
// cluster.
#include <chrono>
#include <iostream>
#include <sstream>
#include <thread>

#include <ddc/linalg/simd.hpp>
#include <ddc/cli/engine_flags.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/gossip/runners.hpp>
#include <ddc/net/codec.hpp>
#include <ddc/net/net_node.hpp>
#include <ddc/net/udp.hpp>
#include <ddc/shard/factories.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/stats/rng.hpp>
#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/workload/scenarios.hpp>

#include "result_line.hpp"

namespace {

using ddc::linalg::Vector;

/// Which engine flag groups ddcnode exposes. Faults stay off — the
/// engine fault model simulates lossy channels, while ddcnode's own
/// --loss-prob injects receive-side datagram drops in a real transport.
constexpr ddc::cli::EngineFlagSet kNodeFlagSet{.topology = true,
                                               .gossip = false,
                                               .faults = false,
                                               .parallelism = false,
                                               .protocol = true,
                                               .backend = false,
                                               .timing = false};

ddc::sim::EngineConfig node_flag_defaults() {
  ddc::sim::EngineConfig defaults;
  defaults.topology.nodes = 8;  // a cluster of processes, not a simulation
  return defaults;
}

struct Config {
  std::size_t id;
  std::uint16_t base_port;
  std::string host;
  std::string protocol;
  std::string workload;
  std::size_t rounds;
  std::size_t tick_ms;
  std::size_t drain_ticks;
  std::size_t start_timeout_ms;
  std::size_t probe_timeout_ms;
  int probe_retries;
  double loss_prob;
  bool verbose;
  bool stats_json;
  // Shard mode (num_shards > 0): this process hosts nodes_per_shard of
  // the num_shards * nodes_per_shard simulated nodes.
  std::size_t num_shards;
  std::size_t shard_id;
  std::size_t nodes_per_shard;
  std::size_t max_exchange_polls;
  ddc::shard::Partitioner shard_map;
  ddc::sim::EngineConfig engine;

  [[nodiscard]] bool shard_mode() const { return num_shards > 0; }
  [[nodiscard]] std::size_t nodes() const { return engine.topology.nodes; }
  [[nodiscard]] std::uint64_t seed() const { return engine.protocol_seed; }
};

std::vector<Vector> make_inputs(const Config& config, ddc::stats::Rng& rng) {
  if (config.workload == "clusters") {
    return ddc::workload::two_clusters_inputs(config.nodes(), rng);
  }
  if (config.workload == "fence") {
    return ddc::workload::sample_inputs(ddc::workload::fig2_mixture(),
                                        config.nodes(), rng);
  }
  throw ddc::ConfigError("unknown workload '" + config.workload + "'");
}

ddc::net::UdpTransport make_transport(const Config& config) {
  std::vector<ddc::net::UdpPeer> peers;
  peers.reserve(config.nodes());
  for (std::size_t i = 0; i < config.nodes(); ++i) {
    peers.push_back({config.host,
                     static_cast<std::uint16_t>(config.base_port + i)});
  }
  ddc::net::UdpOptions options;
  options.probe_timeout = std::chrono::milliseconds(config.probe_timeout_ms);
  options.probe_retries = config.probe_retries;
  options.inject_receive_loss = config.loss_prob;
  options.loss_seed = ddc::stats::derive_seed(config.seed(), 7000 + config.id);
  return ddc::net::UdpTransport(static_cast<ddc::net::PeerId>(config.id),
                                std::move(peers), options);
}

/// Shard mode's transport: one endpoint per shard (not per node), shard
/// s listening on base-port + s.
ddc::net::UdpTransport make_shard_transport(const Config& config) {
  std::vector<ddc::net::UdpPeer> peers;
  peers.reserve(config.num_shards);
  for (std::size_t s = 0; s < config.num_shards; ++s) {
    peers.push_back({config.host,
                     static_cast<std::uint16_t>(config.base_port + s)});
  }
  ddc::net::UdpOptions options;
  options.probe_timeout = std::chrono::milliseconds(config.probe_timeout_ms);
  options.probe_retries = config.probe_retries;
  options.inject_receive_loss = config.loss_prob;
  options.loss_seed =
      ddc::stats::derive_seed(config.seed(), 7000 + config.shard_id);
  return ddc::net::UdpTransport(
      static_cast<ddc::net::PeerId>(config.shard_id), std::move(peers),
      options);
}

/// One-line JSON stats dump (--stats-json): per-peer link counters plus,
/// in shard mode, the engine's batch-exchange counters. Printed to
/// stdout so run_cluster.sh can assert on batching efficiency.
std::string stats_json(const ddc::net::UdpTransport& transport,
                       std::size_t num_peers, std::size_t self,
                       const ddc::shard::ShardEngineStats* engine,
                       const char* shard_map = nullptr) {
  std::ostringstream os;
  os << "{\"mode\":\"" << (engine != nullptr ? "shard" : "node")
     << "\",\"id\":" << self << ",\"injected_losses\":"
     << transport.injected_losses();
  if (shard_map != nullptr) os << ",\"shard_map\":\"" << shard_map << "\"";
  if (engine != nullptr) {
    const double records_per_frame =
        engine->batch_frames_sent > 0
            ? static_cast<double>(engine->batch_records_sent) /
                  static_cast<double>(engine->batch_frames_sent)
            : 0.0;
    os << ",\"engine\":{\"batch_frames_sent\":" << engine->batch_frames_sent
       << ",\"batch_records_sent\":" << engine->batch_records_sent
       << ",\"batch_frames_received\":" << engine->batch_frames_received
       << ",\"batch_records_received\":" << engine->batch_records_received
       << ",\"acks_received\":" << engine->acks_received
       << ",\"retransmits\":" << engine->retransmits
       << ",\"decode_errors\":" << engine->decode_errors
       << ",\"peer_timeouts\":" << engine->peer_timeouts
       << ",\"unplanned_records\":" << engine->unplanned_records
       << ",\"cut_edges\":" << engine->cut_edges
       << ",\"boundary_nodes\":" << engine->boundary_nodes
       << ",\"polls_during_compute\":" << engine->polls_during_compute
       << ",\"records_per_frame\":" << records_per_frame << "}";
  }
  os << ",\"peers\":[";
  for (std::size_t p = 0; p < num_peers; ++p) {
    const auto& s = transport.stats(static_cast<ddc::net::PeerId>(p));
    if (p > 0) os << ',';
    os << "{\"peer\":" << p << ",\"frames_sent\":" << s.frames_sent
       << ",\"bytes_sent\":" << s.bytes_sent
       << ",\"frames_received\":" << s.frames_received
       << ",\"bytes_received\":" << s.bytes_received
       << ",\"send_failures\":" << s.send_failures << ",\"reachable\":"
       << (p == self || transport.peer_reachable(
                            static_cast<ddc::net::PeerId>(p))
               ? "true"
               : "false")
       << '}';
  }
  os << "]}";
  return os.str();
}

/// Startup barrier: wait (bounded) until every peer has been heard from
/// at least once, so slow-starting processes don't miss the first
/// splits. Proceeds after the timeout regardless — a peer that is down
/// from the start must not wedge the cluster. Serviced through the
/// driver, not the raw transport: a faster peer may already be
/// gossiping, and discarding its frames here would destroy the weight
/// they carry.
template <typename Driver>
void await_peers(const Config& config, ddc::net::UdpTransport& transport,
                 Driver& driver) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config.start_timeout_ms);
  while (Clock::now() < deadline) {
    (void)driver.service();
    transport.maintain();
    bool all_heard = true;
    for (std::size_t p = 0; p < config.nodes(); ++p) {
      if (p == config.id) continue;
      if (transport.stats(static_cast<ddc::net::PeerId>(p)).frames_received ==
          0) {
        all_heard = false;
        break;
      }
    }
    if (all_heard) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::cerr << "ddcnode " << config.id
            << ": start barrier timed out; proceeding\n";
}

/// Shard-mode startup barrier. Discarding data frames here is safe —
/// unlike the gossip path, every batch is retransmitted until acked, so
/// nothing a fast-starting peer sent during our barrier is lost.
void await_shard_peers(const Config& config,
                       ddc::net::UdpTransport& transport) {
  if (config.num_shards <= 1) return;
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config.start_timeout_ms);
  while (Clock::now() < deadline) {
    transport.maintain();
    (void)transport.receive();
    bool all_heard = true;
    for (std::size_t p = 0; p < config.num_shards; ++p) {
      if (p == config.shard_id) continue;
      if (transport.stats(static_cast<ddc::net::PeerId>(p)).frames_received ==
          0) {
        all_heard = false;
        break;
      }
    }
    if (all_heard) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::cerr << "ddcnode shard " << config.shard_id
            << ": start barrier timed out; proceeding\n";
}

template <typename Engine, typename MeanFn>
int drive_shard(const Config& config, ddc::net::UdpTransport& transport,
                Engine& engine, MeanFn mean_of) {
  await_shard_peers(config, transport);
  engine.run_rounds(config.rounds);
  // Drain: a lagging or restarted peer shard may still be replaying
  // rounds and needs this shard's re-acks (service() answers them
  // without opening a new round).
  const auto tick = std::chrono::milliseconds(config.tick_ms);
  for (std::size_t t = 0; t < config.drain_ticks; ++t) {
    engine.service();
    transport.maintain();
    std::this_thread::sleep_for(tick);
  }
  if (config.verbose) {
    const auto& st = engine.stats();
    std::cerr << "ddcnode shard " << config.shard_id << ": frames_sent="
              << st.batch_frames_sent << " records_sent="
              << st.batch_records_sent << " retransmits=" << st.retransmits
              << " peer_timeouts=" << st.peer_timeouts
              << " injected_losses=" << transport.injected_losses() << '\n';
  }
  if (config.stats_json) {
    std::cout << stats_json(
                     transport, config.num_shards, config.shard_id,
                     &engine.stats(),
                     ddc::shard::partitioner_name(config.shard_map).data())
              << '\n';
  }
  // Every shard reports its first owned node; shard 0's line is global
  // node 0's classification, directly comparable with ddcsim's.
  std::cout << ddc::tools::result_line(
                   engine.nodes().front().classification(), mean_of)
            << '\n'
            << std::flush;
  return 0;
}

template <typename Node, typename Codec, typename MeanFn>
int run(const Config& config, Node node, ddc::sim::Topology topology,
        MeanFn mean_of) {
  ddc::net::UdpTransport transport = make_transport(config);
  ddc::net::NetNodeOptions node_options;
  node_options.seed = ddc::stats::derive_seed(config.seed(), 0x4e4f4445ULL +
                                                                 config.id);
  ddc::net::NetNode<Node, Codec> driver(std::move(node), transport,
                                        std::move(topology), node_options);
  await_peers(config, transport, driver);

  const auto tick = std::chrono::milliseconds(config.tick_ms);
  for (std::size_t r = 0; r < config.rounds; ++r) {
    (void)driver.begin_round();
    (void)driver.service();
    transport.maintain();
    std::this_thread::sleep_for(tick);
  }
  // Quiesce: keep absorbing in-flight traffic, send nothing new.
  for (std::size_t t = 0; t < config.drain_ticks; ++t) {
    (void)driver.service();
    std::this_thread::sleep_for(tick);
  }

  if (config.verbose) {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::size_t reachable = 0;
    for (std::size_t p = 0; p < config.nodes(); ++p) {
      const auto id = static_cast<ddc::net::PeerId>(p);
      sent += transport.stats(id).frames_sent;
      received += transport.stats(id).frames_received;
      if (p != config.id && transport.peer_reachable(id)) ++reachable;
    }
    std::cerr << "ddcnode " << config.id << ": sent=" << sent
              << " received=" << received
              << " absorbed=" << driver.messages_absorbed()
              << " decode_errors=" << driver.decode_errors()
              << " injected_losses=" << transport.injected_losses()
              << " reachable_peers=" << reachable << '\n';
  }
  if (config.stats_json) {
    std::cout << stats_json(transport, config.nodes(), config.id, nullptr)
              << '\n';
  }
  // Explicit flush: run_cluster.sh consumes this line from a pipe and
  // must see it even if the process is subsequently killed.
  std::cout << ddc::tools::result_line(driver.node().classification(), mean_of)
            << '\n'
            << std::flush;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ddc::cli::Flags flags("ddcnode",
                        "networked distributed-classification node (one "
                        "process per node, gossip over UDP)");
  flags.declare("id", "this node's index in the peer table", "0");
  flags.declare("base-port", "node i listens on base-port + i", "9800");
  flags.declare("host", "IPv4 address every node binds and dials", "127.0.0.1");
  flags.declare("protocol", "gm | centroid", "gm");
  flags.declare("workload", "clusters | fence", "clusters");
  flags.declare("rounds", "gossip ticks to run", "60");
  flags.declare("tick-ms", "milliseconds between gossip ticks", "20");
  flags.declare("drain-ticks", "receive-only ticks after the last round", "25");
  flags.declare("start-timeout-ms", "max wait for peers at startup", "5000");
  flags.declare("probe-timeout-ms", "silence span before probing a peer",
                "250");
  flags.declare("probe-retries", "unanswered probes before a peer is dead",
                "3");
  flags.declare("loss-prob",
                "probability of dropping each incoming datagram (loss "
                "injection for tests; in shard mode the batch protocol "
                "retransmits through it)",
                "0");
  flags.declare("num-shards",
                "run in shard mode with this many shard processes (0 = "
                "single-node mode)",
                "0");
  flags.declare("shard-id", "this process's shard index (shard mode)", "0");
  flags.declare("nodes-per-shard",
                "simulated nodes hosted by each shard (shard mode; total "
                "nodes = num-shards * nodes-per-shard)",
                "0");
  flags.declare("max-exchange-polls",
                "polls without traffic before a peer shard is declared "
                "dead (shard mode; 0 waits forever)",
                "4000");
  flags.declare("shard-map",
                "contiguous | edgecut node->shard assignment (shard mode)",
                "contiguous");
  flags.declare_bool("stats-json",
                     "print one line of JSON link/batch statistics to "
                     "stdout before the RESULT line");
  flags.declare_bool("verbose", "print traffic stats to stderr");
  ddc::cli::declare_engine_flags(flags, node_flag_defaults(), kNodeFlagSet);

  try {
    if (!flags.parse(argc, argv)) {
      std::cout << flags.help_text();
      return 0;
    }
    Config config{
        static_cast<std::size_t>(flags.get_int("id")),
        static_cast<std::uint16_t>(flags.get_int("base-port")),
        flags.get("host"),
        flags.get("protocol"),
        flags.get("workload"),
        static_cast<std::size_t>(flags.get_int("rounds")),
        static_cast<std::size_t>(flags.get_int("tick-ms")),
        static_cast<std::size_t>(flags.get_int("drain-ticks")),
        static_cast<std::size_t>(flags.get_int("start-timeout-ms")),
        static_cast<std::size_t>(flags.get_int("probe-timeout-ms")),
        static_cast<int>(flags.get_int("probe-retries")),
        flags.get_double("loss-prob"),
        flags.get_bool("verbose"),
        flags.get_bool("stats-json"),
        static_cast<std::size_t>(flags.get_int("num-shards")),
        static_cast<std::size_t>(flags.get_int("shard-id")),
        static_cast<std::size_t>(flags.get_int("nodes-per-shard")),
        static_cast<std::size_t>(flags.get_int("max-exchange-polls")),
        ddc::shard::parse_partitioner(flags.get("shard-map")),
        ddc::cli::parse_engine_config(flags, node_flag_defaults(),
                                      kNodeFlagSet),
    };
    ddc::linalg::simd::configure(config.engine.simd);
    if (config.shard_mode()) {
      if (config.nodes_per_shard == 0) {
        throw ddc::ConfigError("shard mode needs --nodes-per-shard > 0");
      }
      if (config.shard_id >= config.num_shards) {
        throw ddc::ConfigError("--shard-id must be < --num-shards");
      }
      // In shard mode the simulated population is derived, not taken
      // from --nodes: every shard must agree on the global node count.
      config.engine.topology.nodes =
          config.num_shards * config.nodes_per_shard;
    } else if (config.id >= config.nodes()) {
      throw ddc::ConfigError("--id must be < --nodes");
    }
    if (config.loss_prob < 0.0 || config.loss_prob > 1.0) {
      throw ddc::ConfigError("--loss-prob must be in [0, 1]");
    }

    // Same derivation sequence as ddcsim: inputs first, then the
    // topology, from one RNG seeded with --seed. Every process (and a
    // simulator run on the same flags) lands on the identical graph.
    ddc::stats::Rng rng(config.seed());
    const std::vector<Vector> inputs = make_inputs(config, rng);
    ddc::sim::Topology topology = config.engine.build_topology(rng);

    if (config.shard_mode()) {
      ddc::net::UdpTransport transport = make_shard_transport(config);
      ddc::shard::ShardEngineOptions pacing;
      pacing.max_exchange_polls = config.max_exchange_polls;
      pacing.partitioner = config.shard_map;
      pacing.idle = [&transport] {
        transport.maintain();
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      };
      const auto shard_id =
          static_cast<ddc::shard::ShardId>(config.shard_id);
      const auto num_shards =
          static_cast<ddc::shard::ShardId>(config.num_shards);
      if (config.protocol == "gm") {
        auto engine = ddc::shard::make_gm_shard_engine(
            std::move(topology), inputs, config.engine, shard_id, num_shards,
            &transport, pacing);
        return drive_shard(config, transport, engine,
                           [](const ddc::stats::Gaussian& g) {
                             return g.mean();
                           });
      }
      if (config.protocol == "centroid") {
        auto engine = ddc::shard::make_centroid_shard_engine(
            std::move(topology), inputs, config.engine, shard_id, num_shards,
            &transport, pacing);
        return drive_shard(config, transport, engine,
                           [](const Vector& v) { return v; });
      }
      throw ddc::ConfigError("unknown protocol '" + config.protocol + "'");
    }

    const ddc::gossip::NetworkConfig net =
        ddc::gossip::network_config(config.engine);
    const auto options =
        ddc::gossip::node_options(net, config.id, config.nodes());

    if (config.protocol == "gm") {
      ddc::gossip::GmNode node(
          inputs[config.id],
          ddc::partition::EmPartition(
              ddc::stats::Rng::derive(config.seed(), config.id), {}),
          options);
      return run<ddc::gossip::GmNode,
                 ddc::net::ClassificationCodec<ddc::stats::Gaussian>>(
          config, std::move(node), std::move(topology),
          [](const ddc::stats::Gaussian& g) { return g.mean(); });
    }
    if (config.protocol == "centroid") {
      ddc::gossip::CentroidNode node(
          inputs[config.id],
          ddc::partition::GreedyDistancePartition<
              ddc::summaries::CentroidPolicy>{},
          options);
      return run<ddc::gossip::CentroidNode,
                 ddc::net::ClassificationCodec<Vector>>(
          config, std::move(node), std::move(topology),
          [](const Vector& v) { return v; });
    }
    throw ddc::ConfigError("unknown protocol '" + config.protocol + "'");
  } catch (const ddc::Error& e) {
    std::cerr << "ddcnode: " << e.what() << '\n';
    return 1;
  }
}
