// ddcverify — protocol-invariant static analysis, generation 2.
//
// ddclint (generation 1) guards the *determinism* contract with a
// substring scanner: mention of a hazard in a deterministic module is
// itself worth a comment, so mention-level matching is the right bias.
// The three subsystems added since that pass — the sharded batch/ack
// protocol, the SoA scale engine and the SIMD dispatch seam — have
// invariants that substring matching cannot express: they are about
// *flow* (which buffer reached which operation), *reachability* (which
// function runs inside the per-round hot path) and *cross-file
// consistency* (which kernels the dispatch table registers vs. which
// the equivalence tests cover). ddcverify grows the scanner into a
// token-aware, multi-pass analyzer for exactly those three rule
// families:
//
//   wire-taint      In transport-facing code, any buffer originating
//                   from Transport::receive()/frame payloads (tainted:
//                   byte spans, Packet/Frame/Batch/BatchRecord
//                   variables, recv-filled buffers) must flow only
//                   through the bounds-checked wire::Decoder / framing
//                   readers. Raw memcpy/memmove, reinterpret_cast,
//                   direct indexing and pointer arithmetic on tainted
//                   bytes are flagged. The sanctioned readers
//                   themselves carry audited allow markers — the
//                   markers *document the trust boundary*.
//
//   hot-path-alloc  Functions reachable (same-file call graph) from a
//                   root annotated `// ddcverify: hotpath` must not
//                   allocate: no new/malloc/make_unique/make_shared,
//                   no local owning std containers (vector, string,
//                   map, ...). This locks in the scratch-reuse
//                   discipline the merge/EM/SoA/shard hot paths
//                   established by hand (PRs 3, 5, 8, 9).
//
//   simd-parity     Every kernel registered in the linalg::simd
//                   dispatch seam (--simd-dispatch files) must have a
//                   bit-exact scalar twin (name pairing: X_avx2* needs
//                   X_scalar), and every dispatch accessor (functions
//                   returning a *Fn kernel pointer) must be referenced
//                   by the equivalence tests (--simd-tests files), so
//                   a kernel cannot be wired into dispatch without a
//                   reference implementation and cross-tier coverage.
//
// Usage:
//   ddcverify [--self-test] [--list-rules]
//             [--simd-dispatch <f1,f2>] [--simd-tests <f1,f2>]
//             <file-or-dir>...
//
// Findings print one per line, ddclint-style:
//
//   src/net/src/udp.cpp:162: [wire-taint] raw memory operation on ...
//
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.
//
// Suppressions: `// ddcverify: allow(<rule>)` on the same line or the
// line directly above. Every marker is an *audited* exception and must
// carry a justification in the surrounding comment (the PR 4
// convention). `allow(*)` suppresses all rules on that line.
//
// Like ddclint, the analyzer is deliberately compiler-free: a shared
// lexer strips comments and string literals, a lightweight parser finds
// function definitions and call sites, and everything else is
// token-level pattern matching. No compile database, builds in
// seconds, runs in milliseconds — and the price (it reasons about
// tokens, not types) is the right bias for a gate: code too clever for
// the analyzer to follow deserves either simplification or an audited
// allow marker explaining itself.
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

constexpr std::string_view kAllowMarker = "ddcverify: allow(";
constexpr std::string_view kHotpathMarker = "ddcverify: hotpath";

// ---------------------------------------------------------------------------
// Shared lexer: comment/string stripping with cross-line state.
// ---------------------------------------------------------------------------

/// Returns the code portion of `line`: // and /* */ comments and
/// string/char literals are blanked (byte-for-byte, so columns and
/// offsets survive). `in_block_comment` carries /* */ state.
std::string code_portion(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size();) {
    if (in_block_comment) {
      if (line.compare(i, 2, "*/") == 0) {
        in_block_comment = false;
        out += "  ";
        i += 2;
      } else {
        out += ' ';
        ++i;
      }
      continue;
    }
    if (line.compare(i, 2, "//") == 0) {
      out.append(line.size() - i, ' ');
      break;
    }
    if (line.compare(i, 2, "/*") == 0) {
      in_block_comment = true;
      out += "  ";
      i += 2;
      continue;
    }
    if (line[i] == '"' || line[i] == '\'') {
      const char quote = line[i];
      out += ' ';
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out += "  ";
          i += 2;
          continue;
        }
        const bool closing = line[i] == quote;
        out += ' ';
        ++i;
        if (closing) break;
      }
      continue;
    }
    out += line[i];
    ++i;
  }
  return out;
}

/// One lexed source text: raw lines (for allow markers and reports) and
/// blanked code lines, plus the code joined for multi-line parsing.
struct SourceFile {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::string joined;                    ///< code lines joined with '\n'
  std::vector<std::size_t> line_start;   ///< joined offset of each line
};

SourceFile lex(const std::string& path, const std::string& text) {
  SourceFile f;
  f.path = path;
  std::istringstream stream(text);
  std::string line;
  bool in_block = false;
  while (std::getline(stream, line)) {
    f.raw.push_back(line);
    f.code.push_back(code_portion(line, in_block));
  }
  std::size_t offset = 0;
  for (const std::string& c : f.code) {
    f.line_start.push_back(offset);
    f.joined += c;
    f.joined += '\n';
    offset += c.size() + 1;
  }
  return f;
}

/// 1-based line number of a joined-text offset.
std::size_t line_of(const SourceFile& f, std::size_t offset) {
  const auto it = std::upper_bound(f.line_start.begin(), f.line_start.end(),
                                   offset);
  return static_cast<std::size_t>(it - f.line_start.begin());
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Whole-token occurrence of `tok` in `text` at/after `from`; npos if
/// absent. Boundaries are checked only on sides where `tok` itself
/// starts/ends with an identifier character.
std::size_t find_token(std::string_view text, std::string_view tok,
                       std::size_t from = 0) {
  while (from <= text.size()) {
    const std::size_t pos = text.find(tok, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    const bool left_ok = !ident_char(tok.front()) || pos == 0 ||
                         !ident_char(text[pos - 1]);
    const bool right_ok = !ident_char(tok.back()) ||
                          pos + tok.size() >= text.size() ||
                          !ident_char(text[pos + tok.size()]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
  return std::string_view::npos;
}

bool has_token(std::string_view text, std::string_view tok) {
  return find_token(text, tok) != std::string_view::npos;
}

std::size_t skip_ws(std::string_view text, std::size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0) {
    ++i;
  }
  return i;
}

std::string read_ident(std::string_view text, std::size_t i) {
  std::size_t e = i;
  while (e < text.size() && ident_char(text[e])) ++e;
  return std::string(text.substr(i, e - i));
}

// ---------------------------------------------------------------------------
// Allow markers and findings.
// ---------------------------------------------------------------------------

/// True when `line` carries an allow marker for `rule` (searched on the
/// raw line — markers live in comments).
bool has_allow(const std::string& line, std::string_view rule) {
  std::size_t pos = line.find(kAllowMarker);
  while (pos != std::string::npos) {
    const std::size_t open = pos + kAllowMarker.size();
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos) return false;
    const std::string_view inside{line.data() + open, close - open};
    if (inside == rule || inside == "*") return true;
    pos = line.find(kAllowMarker, close);
  }
  return false;
}

/// Allow marker on the finding's line or the line directly above it.
bool allowed(const SourceFile& f, std::size_t lineno, std::string_view rule) {
  if (lineno >= 1 && lineno <= f.raw.size() &&
      has_allow(f.raw[lineno - 1], rule)) {
    return true;
  }
  return lineno >= 2 && has_allow(f.raw[lineno - 2], rule);
}

struct Finding {
  std::string file;
  std::size_t line;
  std::string_view rule;
  std::string message;
};

void report(std::vector<Finding>& findings, const SourceFile& f,
            std::size_t lineno, std::string_view rule, std::string message) {
  if (allowed(f, lineno, rule)) return;
  findings.push_back(Finding{f.path, lineno, rule, std::move(message)});
}

// ---------------------------------------------------------------------------
// Function extraction + same-file call graph (shared by hot-path-alloc).
// ---------------------------------------------------------------------------

const std::set<std::string, std::less<>>& keywords() {
  static const std::set<std::string, std::less<>> kKeywords = {
      "if",       "else",     "for",      "while",    "do",
      "switch",   "case",     "return",   "sizeof",   "alignof",
      "decltype", "new",      "delete",   "throw",    "catch",
      "constexpr", "static_assert", "template", "using", "typedef",
      "operator", "requires", "noexcept", "alignas",  "co_await",
      "co_yield", "co_return"};
  return kKeywords;
}

struct FunctionDef {
  std::string name;
  std::size_t signature_line;  ///< 1-based line of the opening name
  std::size_t body_begin;      ///< joined offset just after '{'
  std::size_t body_end;        ///< joined offset of the matching '}'
};

/// Scans forward from the ')' of a candidate signature; returns the
/// offset of the body's '{' or npos when the construct is not a
/// function definition (declaration, call, initializer, ...).
std::size_t find_body_brace(std::string_view text, std::size_t i) {
  for (;;) {
    i = skip_ws(text, i);
    if (i >= text.size()) return std::string_view::npos;
    const char c = text[i];
    if (c == '{') return i;
    if (c == ';' || c == ',' || c == ')' || c == '=' || c == '}') {
      return std::string_view::npos;
    }
    if (c == ':') {
      // Constructor initializer list: scan at paren depth 0 for the
      // body brace (member brace-init is not used in this codebase).
      int depth = 0;
      for (++i; i < text.size(); ++i) {
        const char d = text[i];
        if (d == '(') ++depth;
        if (d == ')') --depth;
        if (d == '{' && depth == 0) return i;
        if (d == ';' && depth == 0) return std::string_view::npos;
      }
      return std::string_view::npos;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      // Trailing return type: skip to the body brace or statement end.
      const std::size_t brace = text.find_first_of("{;", i);
      if (brace == std::string_view::npos || text[brace] == ';') {
        return std::string_view::npos;
      }
      return brace;
    }
    if (c == '&') {
      ++i;  // ref-qualifier
      continue;
    }
    if (ident_char(c)) {
      const std::string word = read_ident(text, i);
      if (word == "const" || word == "override" || word == "final" ||
          word == "mutable" || word == "try") {
        i += word.size();
        continue;
      }
      if (word == "noexcept") {
        i += word.size();
        i = skip_ws(text, i);
        if (i < text.size() && text[i] == '(') {
          int depth = 0;
          for (; i < text.size(); ++i) {
            if (text[i] == '(') ++depth;
            if (text[i] == ')' && --depth == 0) {
              ++i;
              break;
            }
          }
        }
        continue;
      }
      return std::string_view::npos;
    }
    return std::string_view::npos;
  }
}

std::vector<FunctionDef> find_functions(const SourceFile& f) {
  std::vector<FunctionDef> defs;
  const std::string_view text = f.joined;
  for (std::size_t i = 0; i < text.size();) {
    if (!ident_char(text[i])) {
      ++i;
      continue;
    }
    const std::string name = read_ident(text, i);
    const std::size_t name_at = i;
    i += name.size();
    if (keywords().count(name) != 0) continue;
    const std::size_t open = skip_ws(text, i);
    if (open >= text.size() || text[open] != '(') continue;
    // Matching ')': only parens matter (strings are already blanked).
    int depth = 0;
    std::size_t close = open;
    for (; close < text.size(); ++close) {
      if (text[close] == '(') ++depth;
      if (text[close] == ')' && --depth == 0) break;
    }
    if (close >= text.size()) break;
    const std::size_t brace = find_body_brace(text, close + 1);
    if (brace == std::string_view::npos) continue;
    // Matching '}' of the body.
    int braces = 0;
    std::size_t end = brace;
    for (; end < text.size(); ++end) {
      if (text[end] == '{') ++braces;
      if (text[end] == '}' && --braces == 0) break;
    }
    if (end >= text.size()) break;
    defs.push_back(FunctionDef{name, line_of(f, name_at), brace + 1, end});
    // Continue scanning INSIDE the body: nested definitions (local
    // structs) and the next member function both live past `brace`.
    i = brace + 1;
  }
  return defs;
}

// ---------------------------------------------------------------------------
// Rule 1: wire-taint.
// ---------------------------------------------------------------------------

constexpr std::string_view kWireTaintRule = "wire-taint";

/// Struct types whose instances carry transport-originated bytes.
const std::vector<std::string_view>& tainted_types() {
  static const std::vector<std::string_view> kTypes = {
      "Packet", "Frame", "Batch", "BatchRecord", "StoredRecord"};
  return kTypes;
}

/// Pass A: the file's tainted identifiers — byte spans, frame/packet
/// variables, recv-filled buffers, and locals initialized from taint
/// accessors.
std::set<std::string> collect_tainted(const SourceFile& f) {
  std::set<std::string> tainted;
  for (const std::string& code : f.code) {
    // std::span<const std::byte> NAME  /  std::span<std::byte> NAME
    for (const std::string_view span_type :
         {std::string_view("std::span<const std::byte>"),
          std::string_view("std::span<std::byte>")}) {
      std::size_t pos = 0;
      while ((pos = code.find(span_type, pos)) != std::string::npos) {
        std::size_t i = skip_ws(code, pos + span_type.size());
        if (i < code.size() && code[i] == '&') i = skip_ws(code, i + 1);
        const std::string name = read_ident(code, i);
        if (!name.empty()) tainted.insert(name);
        pos += span_type.size();
      }
    }
    // TaintedType [&] NAME  (skipping function declarations: NAME '(')
    for (const std::string_view type : tainted_types()) {
      std::size_t pos = 0;
      while ((pos = find_token(code, type, pos)) != std::string::npos) {
        std::size_t i = skip_ws(code, pos + type.size());
        if (i < code.size() && code[i] == '&') i = skip_ws(code, i + 1);
        const std::string name = read_ident(code, i);
        pos += type.size();
        if (name.empty() || keywords().count(name) != 0) continue;
        const std::size_t after = skip_ws(code, code.find(name, i) +
                                                    name.size());
        if (after < code.size() && code[after] == '(') continue;  // a decl
        tainted.insert(name);
      }
    }
    // auto NAME = <expr involving receive()/get_bytes()/.payload>
    std::size_t auto_pos = find_token(code, "auto");
    if (auto_pos != std::string::npos) {
      std::size_t i = skip_ws(code, auto_pos + 4);
      if (i < code.size() && code[i] == '&') i = skip_ws(code, i + 1);
      const std::string name = read_ident(code, i);
      if (!name.empty()) {
        const std::string_view rest =
            std::string_view(code).substr(i + name.size());
        if (rest.find(".receive()") != std::string_view::npos ||
            rest.find("get_bytes(") != std::string_view::npos ||
            rest.find(".payload") != std::string_view::npos) {
          tainted.insert(name);
        }
      }
    }
    // recv-filled buffers: on a recv/recvfrom line, any NAME.data()
    // argument is the kernel-written buffer.
    if (code.find("recvfrom(") != std::string::npos ||
        find_token(code, "recv") != std::string::npos) {
      std::size_t pos = 0;
      while ((pos = code.find(".data()", pos)) != std::string::npos) {
        std::size_t s = pos;
        while (s > 0 && ident_char(code[s - 1])) --s;
        const std::string name = code.substr(s, pos - s);
        if (!name.empty()) tainted.insert(name);
        pos += 7;
      }
    }
  }
  return tainted;
}

/// Pass B: raw memory operations in taint context.
void scan_wire_taint(const SourceFile& f, std::vector<Finding>& findings) {
  const std::set<std::string> tainted = collect_tainted(f);
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& code = f.code[n];
    bool ctx = code.find(".payload") != std::string::npos;
    for (const std::string& name : tainted) {
      if (ctx) break;
      ctx = has_token(code, name);
    }
    if (!ctx) continue;
    const std::size_t lineno = n + 1;
    if (has_token(code, "memcpy") || has_token(code, "memmove")) {
      report(findings, f, lineno, kWireTaintRule,
             "raw memcpy/memmove in transport-taint context (route the "
             "bytes through the bounds-checked wire::Decoder / framing "
             "readers, or allow-mark an audited trust boundary)");
      continue;
    }
    if (has_token(code, "reinterpret_cast")) {
      report(findings, f, lineno, kWireTaintRule,
             "reinterpret_cast in transport-taint context (decode "
             "transport bytes with the checked readers; an OS-API cast "
             "at the socket boundary needs an audited allow marker)");
      continue;
    }
    // Pointer arithmetic / unchecked indexing on a tainted identifier.
    bool arith = false;
    auto check_after = [&](std::size_t after) {
      if (after < code.size() && code[after] == '[') arith = true;
      for (const std::string_view acc :
           {std::string_view(".data()"), std::string_view(".begin()")}) {
        if (code.compare(after, acc.size(), acc) == 0) {
          const std::size_t next = skip_ws(code, after + acc.size());
          if (next < code.size() && (code[next] == '+' || code[next] == '-')) {
            arith = true;
          }
        }
      }
    };
    for (const std::string& name : tainted) {
      std::size_t pos = 0;
      while (!arith &&
             (pos = find_token(code, name, pos)) != std::string::npos) {
        check_after(pos + name.size());
        pos += name.size();
      }
      if (arith) break;
    }
    if (!arith) {
      std::size_t pos = 0;
      while (!arith &&
             (pos = code.find(".payload", pos)) != std::string::npos) {
        check_after(pos + 8);
        pos += 8;
      }
    }
    if (arith) {
      report(findings, f, lineno, kWireTaintRule,
             "pointer arithmetic / unchecked indexing on transport-"
             "tainted bytes (use wire::Decoder, std::span::subspan, or "
             "allow-mark an audited length-validated access)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2: hot-path-alloc.
// ---------------------------------------------------------------------------

constexpr std::string_view kHotPathRule = "hot-path-alloc";

/// Owning std types whose *local declaration* (or temporary) allocates.
const std::vector<std::string_view>& owning_types() {
  static const std::vector<std::string_view> kTypes = {
      "vector",        "string",        "deque",      "list",
      "map",           "set",           "multimap",   "multiset",
      "unordered_map", "unordered_set", "basic_string",
      "ostringstream", "stringstream",  "istringstream", "function"};
  return kTypes;
}

/// True when line `code` declares (or constructs a temporary of) an
/// owning std:: type by value — `std::vector<T> x`, `std::string(...)`.
/// References and pointers (`const std::vector<T>&`) do not allocate.
bool owning_value_use(const std::string& code, std::string* which) {
  std::size_t pos = 0;
  while ((pos = code.find("std::", pos)) != std::string::npos) {
    const std::size_t name_at = pos + 5;
    const std::string name = read_ident(code, name_at);
    pos = name_at + name.size();
    bool owning = false;
    for (const std::string_view t : owning_types()) owning = owning || t == name;
    if (!owning) continue;
    std::size_t i = pos;
    if (i < code.size() && code[i] == '<') {
      int depth = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>' && --depth == 0) {
          ++i;
          break;
        }
      }
    }
    i = skip_ws(code, i);
    if (i >= code.size()) continue;
    if (code[i] == '&' || code[i] == '*' || code[i] == ':' ||
        code[i] == '>' || code[i] == ',' || code[i] == ';' ||
        code[i] == ')') {
      continue;  // reference/pointer/nested-template/type-only mention
    }
    if (code[i] == '(' || code[i] == '{' || ident_char(code[i])) {
      *which = "std::" + name;
      return true;
    }
  }
  return false;
}

void scan_hot_path_alloc(const SourceFile& f, std::vector<Finding>& findings) {
  // Roots: a hotpath marker attaches to the first function definition
  // on or within 6 lines below it (markers live in the doc comment).
  std::vector<std::size_t> marker_lines;
  for (std::size_t n = 0; n < f.raw.size(); ++n) {
    if (f.raw[n].find(kHotpathMarker) != std::string::npos) {
      marker_lines.push_back(n + 1);
    }
  }
  if (marker_lines.empty()) return;
  const std::vector<FunctionDef> defs = find_functions(f);
  std::map<std::string, const FunctionDef*> by_name;
  for (const FunctionDef& d : defs) {
    if (by_name.count(d.name) == 0) by_name[d.name] = &d;
  }
  std::map<std::string, std::string> root_of;  // reachable fn -> root name
  std::vector<const FunctionDef*> queue;
  for (const std::size_t marker : marker_lines) {
    const FunctionDef* best = nullptr;
    for (const FunctionDef& d : defs) {
      if (d.signature_line >= marker && d.signature_line <= marker + 6 &&
          (best == nullptr || d.signature_line < best->signature_line)) {
        best = &d;
      }
    }
    if (best == nullptr) {
      report(findings, f, marker, kHotPathRule,
             "hotpath marker with no function definition within 6 lines "
             "(move the marker onto the root's doc comment)");
      continue;
    }
    if (root_of.count(best->name) == 0) {
      root_of[best->name] = best->name;
      queue.push_back(best);
    }
  }
  // Same-file call-graph BFS from the roots.
  const std::string_view text = f.joined;
  while (!queue.empty()) {
    const FunctionDef* fn = queue.back();
    queue.pop_back();
    const std::string root = root_of[fn->name];
    const std::string_view body =
        text.substr(fn->body_begin, fn->body_end - fn->body_begin);
    for (const auto& [callee, def] : by_name) {
      if (root_of.count(callee) != 0) continue;
      std::size_t pos = 0;
      bool called = false;
      while (!called &&
             (pos = find_token(body, callee, pos)) != std::string_view::npos) {
        const std::size_t after = skip_ws(body, pos + callee.size());
        called = after < body.size() && body[after] == '(';
        pos += callee.size();
      }
      if (called) {
        root_of[callee] = root;
        queue.push_back(def);
      }
    }
  }
  // Scan every reachable body, line by line.
  for (const FunctionDef& d : defs) {
    const auto root_it = root_of.find(d.name);
    if (root_it == root_of.end()) continue;
    const std::size_t first = line_of(f, d.body_begin);
    const std::size_t last = line_of(f, d.body_end);
    for (std::size_t lineno = first; lineno <= last; ++lineno) {
      const std::string& code = f.code[lineno - 1];
      const std::string suffix =
          " in hot path (reachable from '" + root_it->second +
          "'; reuse a member scratch buffer, or allow-mark an audited "
          "bounded allocation)";
      std::size_t new_pos = find_token(code, "new");
      if (new_pos != std::string::npos) {
        const std::size_t after = skip_ws(code, new_pos + 3);
        if (after < code.size() &&
            (ident_char(code[after]) || code[after] == '(' ||
             code[after] == '[')) {
          report(findings, f, lineno, kHotPathRule,
                 "new-expression" + suffix);
          continue;
        }
      }
      if (has_token(code, "malloc") || has_token(code, "calloc") ||
          has_token(code, "realloc") || has_token(code, "strdup")) {
        report(findings, f, lineno, kHotPathRule, "raw allocation" + suffix);
        continue;
      }
      if (has_token(code, "make_unique") || has_token(code, "make_shared")) {
        report(findings, f, lineno, kHotPathRule,
               "smart-pointer allocation" + suffix);
        continue;
      }
      std::string which;
      if (owning_value_use(code, &which)) {
        report(findings, f, lineno, kHotPathRule,
               "local owning " + which + suffix);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 3: simd-parity.
// ---------------------------------------------------------------------------

constexpr std::string_view kSimdParityRule = "simd-parity";

struct SimdSymbol {
  std::string name;
  const SourceFile* file;
  std::size_t line;
};

/// Cross-references the dispatch seam against the equivalence tests:
/// every registered vector kernel needs a scalar twin, every dispatch
/// accessor needs a test reference.
void scan_simd_parity(const std::vector<SourceFile>& dispatch,
                      const std::vector<SourceFile>& tests,
                      std::vector<Finding>& findings) {
  if (dispatch.empty()) return;
  // Registered kernel symbols: address-of registrations `&name` /
  // `&detail::name` in the dispatch files.
  std::vector<SimdSymbol> kernels;
  std::set<std::string> kernel_names;
  // Dispatch accessors: functions whose return type token ends in "Fn".
  std::vector<SimdSymbol> accessors;
  std::set<std::string> seen_accessors;
  for (const SourceFile& f : dispatch) {
    for (std::size_t n = 0; n < f.code.size(); ++n) {
      const std::string& code = f.code[n];
      for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i] != '&' || !ident_char(code[i + 1])) continue;
        if (i > 0 && (ident_char(code[i - 1]) || code[i - 1] == '&')) {
          continue;  // binary '&' / '&&'
        }
        std::size_t s = i + 1;
        std::string name = read_ident(code, s);
        std::size_t e = s + name.size();
        while (code.compare(e, 2, "::") == 0) {  // qualified: keep the leaf
          s = e + 2;
          name = read_ident(code, s);
          e = s + name.size();
        }
        if (name.empty() || keywords().count(name) != 0) continue;
        if (e < code.size() && code[e] == '(') continue;  // call, not address
        kernels.push_back(SimdSymbol{name, &f, n + 1});
        kernel_names.insert(name);
      }
      // `SomethingFn accessor_name(` declarations/definitions.
      for (std::size_t i = 0; i < code.size();) {
        if (!ident_char(code[i])) {
          ++i;
          continue;
        }
        const std::string type = read_ident(code, i);
        i += type.size();
        if (type.size() < 3 || type.compare(type.size() - 2, 2, "Fn") != 0) {
          continue;
        }
        const std::size_t name_at = skip_ws(code, i);
        const std::string name = read_ident(code, name_at);
        if (name.empty() || keywords().count(name) != 0) continue;
        const std::size_t open = skip_ws(code, name_at + name.size());
        if (open >= code.size() || code[open] != '(') continue;
        if (seen_accessors.insert(name).second) {
          accessors.push_back(SimdSymbol{name, &f, n + 1});
        }
      }
    }
  }
  // (a) scalar twins for vector kernels.
  for (const SimdSymbol& k : kernels) {
    const std::size_t avx = k.name.find("_avx2");
    if (avx == std::string::npos) continue;
    const std::string twin = k.name.substr(0, avx) + "_scalar";
    if (kernel_names.count(twin) == 0) {
      report(findings, *k.file, k.line, kSimdParityRule,
             "SIMD kernel '" + k.name + "' registered without a scalar "
             "twin '" + twin + "' (every vector kernel needs a bit-exact "
             "scalar reference in the dispatch seam)");
    }
  }
  // (b) test references for dispatch accessors.
  for (const SimdSymbol& a : accessors) {
    bool referenced = false;
    for (const SourceFile& t : tests) {
      referenced = referenced || has_token(t.joined, a.name);
    }
    if (!referenced) {
      report(findings, *a.file, a.line, kSimdParityRule,
             "dispatch accessor '" + a.name + "' is not referenced by "
             "the equivalence tests (cover it in the --simd-tests suites "
             "so the kernel cannot drift from its scalar reference)");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

struct RuleDoc {
  std::string_view name;
  std::string_view doc;
};

const std::vector<RuleDoc>& rules() {
  static const std::vector<RuleDoc> kRules = {
      {kWireTaintRule,
       "transport-originated bytes (spans, Packet/Frame/Batch variables,\n"
       "    recv buffers) must flow through the bounds-checked wire::Decoder\n"
       "    readers; raw memcpy/reinterpret_cast/pointer arithmetic on\n"
       "    tainted bytes is flagged"},
      {kHotPathRule,
       "functions reachable (same-file call graph) from a\n"
       "    `// ddcverify: hotpath` root must not allocate: no new/malloc/\n"
       "    make_unique, no local owning std containers (scratch-reuse\n"
       "    discipline of the per-round hot paths)"},
      {kSimdParityRule,
       "every kernel registered in the linalg::simd dispatch seam needs a\n"
       "    scalar twin (X_avx2* pairs with X_scalar) and every dispatch\n"
       "    accessor must be referenced by the kernel-equivalence tests"},
  };
  return kRules;
}

bool is_source_file(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

bool load_file(const std::string& path, SourceFile& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = lex(path, buffer.str());
  return true;
}

int scan_paths(const std::vector<std::string>& paths,
               const std::vector<std::string>& dispatch_paths,
               const std::vector<std::string>& test_paths) {
  std::vector<std::filesystem::path> files;
  for (const std::string& p : paths) {
    const std::filesystem::path path(p);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && is_source_file(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::cerr << "ddcverify: no such file or directory: " << p << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    SourceFile f;
    if (!load_file(file.string(), f)) {
      std::cerr << "ddcverify: cannot read " << file.string() << "\n";
      return 2;
    }
    scan_wire_taint(f, findings);
    scan_hot_path_alloc(f, findings);
  }

  std::vector<SourceFile> dispatch;
  std::vector<SourceFile> tests;
  for (const std::string& p : dispatch_paths) {
    SourceFile f;
    if (!load_file(p, f)) {
      std::cerr << "ddcverify: cannot read dispatch file " << p << "\n";
      return 2;
    }
    dispatch.push_back(std::move(f));
  }
  for (const std::string& p : test_paths) {
    SourceFile f;
    if (!load_file(p, f)) {
      std::cerr << "ddcverify: cannot read test file " << p << "\n";
      return 2;
    }
    tests.push_back(std::move(f));
  }
  scan_simd_parity(dispatch, tests, findings);

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  const std::size_t scanned = files.size() + dispatch.size();
  if (!findings.empty()) {
    std::cout << "ddcverify: " << findings.size() << " violation"
              << (findings.size() == 1 ? "" : "s") << " in " << scanned
              << " file" << (scanned == 1 ? "" : "s") << " scanned\n";
    return 1;
  }
  std::cout << "ddcverify: clean (" << scanned << " file"
            << (scanned == 1 ? "" : "s") << " scanned)\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Self-test: one planted violation per rule, each with an allow-marked
// twin, plus benign shapes that must stay silent.
// ---------------------------------------------------------------------------

std::vector<Finding> findings_for(const std::string& text,
                                  std::string_view rule) {
  const SourceFile f = lex("<plant>", text);
  std::vector<Finding> findings;
  if (rule == kWireTaintRule) scan_wire_taint(f, findings);
  if (rule == kHotPathRule) scan_hot_path_alloc(f, findings);
  return findings;
}

int self_test() {
  std::size_t failures = 0;
  const auto expect_fires = [&](const std::string& text,
                                std::string_view rule, const char* what) {
    bool fired = false;
    for (const Finding& f : findings_for(text, rule)) {
      fired = fired || f.rule == rule;
    }
    if (!fired) {
      std::cerr << "self-test FAIL: " << rule << " did not fire on " << what
                << "\n";
      ++failures;
    }
  };
  const auto expect_clean = [&](const std::string& text,
                                std::string_view rule, const char* what) {
    if (!findings_for(text, rule).empty()) {
      std::cerr << "self-test FAIL: " << rule << " fired on " << what << "\n";
      ++failures;
    }
  };

  // --- wire-taint -----------------------------------------------------
  const std::string taint_memcpy =
      "void f(std::span<const std::byte> payload) {\n"
      "  std::memcpy(out, payload.data(), payload.size());\n"
      "}\n";
  expect_fires(taint_memcpy, kWireTaintRule, "tainted memcpy");
  expect_clean(
      "void f(std::span<const std::byte> payload) {\n"
      "  // audited: length validated above. ddcverify: allow(wire-taint)\n"
      "  std::memcpy(out, payload.data(), payload.size());\n"
      "}\n",
      kWireTaintRule, "allow-marked tainted memcpy");
  expect_fires(
      "void g(net::Transport& t) {\n"
      "  for (net::Packet& packet : t.receive()) {\n"
      "    const int* p = reinterpret_cast<const int*>(packet.bytes.data());\n"
      "  }\n"
      "}\n",
      kWireTaintRule, "reinterpret_cast of packet bytes");
  expect_fires(
      "void h(const wire::Frame& frame) {\n"
      "  auto body = frame.payload;\n"
      "  const std::byte b = body[7];\n"
      "}\n",
      kWireTaintRule, "unchecked indexing of a frame payload");
  expect_clean(
      "void ok(std::span<const std::byte> payload) {\n"
      "  wire::Decoder dec(payload);\n"
      "  const std::uint64_t round = dec.get_u64();\n"
      "}\n",
      kWireTaintRule, "decoder-routed payload (benign)");
  expect_clean(
      "double to_double(std::uint64_t bits) {\n"
      "  double v;\n"
      "  std::memcpy(&v, &bits, sizeof(v));\n"
      "  return v;\n"
      "}\n",
      kWireTaintRule, "scalar bit-copy with no taint (benign)");
  expect_clean(
      "// std::memcpy(out, payload.data(), n) would be flagged here\n"
      "const char* doc = \"std::span<const std::byte> payload\";\n",
      kWireTaintRule, "taint patterns in comment/string (benign)");

  // --- hot-path-alloc -------------------------------------------------
  const std::string hot_new =
      "// ddcverify: hotpath\n"
      "void begin_round() {\n"
      "  helper();\n"
      "}\n"
      "void helper() {\n"
      "  double* p = new double[8];\n"
      "}\n";
  expect_fires(hot_new, kHotPathRule, "transitive new in hot path");
  expect_fires(
      "// ddcverify: hotpath\n"
      "void prepare() {\n"
      "  std::vector<double> tmp(8);\n"
      "}\n",
      kHotPathRule, "local owning container in hot path");
  expect_clean(
      "// ddcverify: hotpath\n"
      "void prepare() {\n"
      "  // audited: one bounded frame per peer. ddcverify: allow(hot-path-alloc)\n"
      "  std::vector<double> tmp(8);\n"
      "}\n",
      kHotPathRule, "allow-marked hot-path allocation");
  expect_clean(
      "// ddcverify: hotpath\n"
      "void absorb(const std::vector<double>& in) {\n"
      "  scratch_.assign(in.begin(), in.end());\n"
      "}\n",
      kHotPathRule, "reference parameter + member reuse (benign)");
  expect_clean(
      "void not_hot() {\n"
      "  std::vector<double> tmp(8);\n"
      "  double* p = new double[8];\n"
      "}\n",
      kHotPathRule, "allocation outside any hot path (benign)");

  // --- simd-parity ----------------------------------------------------
  const auto simd_findings = [&](const std::string& dispatch_text,
                                 const std::string& test_text) {
    std::vector<SourceFile> dispatch{lex("<dispatch>", dispatch_text)};
    std::vector<SourceFile> tests{lex("<tests>", test_text)};
    std::vector<Finding> findings;
    scan_simd_parity(dispatch, tests, findings);
    return findings;
  };
  const std::string good_dispatch =
      "ScoreBatchFn scalar_score_kernel() noexcept {\n"
      "  return &score_batch_scalar;\n"
      "}\n"
      "ScoreBatchFn avx2_score_kernel() noexcept {\n"
      "  return &detail::score_batch_avx2_lanewise;\n"
      "}\n";
  const std::string good_tests =
      "check(scalar_score_kernel(), avx2_score_kernel());\n"
      "reference(score_batch_scalar, score_batch_avx2_lanewise);\n";
  if (!simd_findings(good_dispatch, good_tests).empty()) {
    std::cerr << "self-test FAIL: simd-parity fired on covered dispatch\n";
    ++failures;
  }
  const std::string orphan_kernel =
      "ScoreBatchFn scalar_score_kernel() noexcept {\n"
      "  return &score_batch_scalar;\n"
      "}\n"
      "NormBatchFn norm_kernel() noexcept {\n"
      "  return &detail::fused_norm_avx2_lanewise;\n"  // no fused_norm_scalar
      "}\n";
  const std::string orphan_tests =
      "check(scalar_score_kernel());\n"
      "check(norm_kernel());\n";
  {
    bool twin_fired = false;
    for (const Finding& f : simd_findings(orphan_kernel, orphan_tests)) {
      twin_fired = twin_fired ||
                   f.message.find("scalar twin") != std::string::npos;
    }
    if (!twin_fired) {
      std::cerr << "self-test FAIL: simd-parity missed a twinless kernel\n";
      ++failures;
    }
  }
  {
    bool ref_fired = false;
    for (const Finding& f :
         simd_findings(good_dispatch, "check(scalar_score_kernel());\n")) {
      ref_fired = ref_fired ||
                  f.message.find("not referenced") != std::string::npos;
    }
    if (!ref_fired) {
      std::cerr << "self-test FAIL: simd-parity missed an untested "
                   "accessor\n";
      ++failures;
    }
  }
  {
    const std::string allowed_kernel =
        "ScoreBatchFn scalar_score_kernel() noexcept {\n"
        "  return &score_batch_scalar;\n"
        "}\n"
        "NormBatchFn norm_kernel() noexcept {\n"
        "  // staged rollout, twin lands next PR. ddcverify: allow(simd-parity)\n"
        "  return &detail::fused_norm_avx2_lanewise;\n"
        "}\n";
    const std::string allowed_tests =
        "check(scalar_score_kernel());\ncheck(norm_kernel());\n";
    if (!simd_findings(allowed_kernel, allowed_tests).empty()) {
      std::cerr << "self-test FAIL: allow(simd-parity) did not suppress\n";
      ++failures;
    }
  }

  if (failures != 0) {
    std::cerr << "ddcverify self-test: " << failures << " failure(s)\n";
    return 1;
  }
  std::cout << "ddcverify self-test: all rule families fire, suppress and "
               "stay silent on benign shapes\n";
  return 0;
}

void list_rules() {
  for (const RuleDoc& rule : rules()) {
    std::cout << rule.name << "\n    " << rule.doc << "\n";
  }
}

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::istringstream stream(arg);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<std::string> dispatch_paths;
  std::vector<std::string> test_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") return self_test();
    if (arg == "--list-rules") {
      list_rules();
      return 0;
    }
    if (arg == "--simd-dispatch" || arg == "--simd-tests") {
      if (i + 1 >= argc) {
        std::cerr << "ddcverify: " << arg << " needs a comma-separated "
                     "file list\n";
        return 2;
      }
      auto& target = arg == "--simd-dispatch" ? dispatch_paths : test_paths;
      for (std::string& p : split_csv(argv[++i])) {
        target.push_back(std::move(p));
      }
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ddcverify [--self-test] [--list-rules]\n"
                   "                 [--simd-dispatch <f1,f2>] "
                   "[--simd-tests <f1,f2>]\n"
                   "                 <file-or-dir>...\n";
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "ddcverify: unknown flag " << arg << "\n";
      return 2;
    }
    paths.emplace_back(arg);
  }
  if (paths.empty() && dispatch_paths.empty()) {
    std::cerr << "usage: ddcverify [--self-test] [--list-rules]\n"
                 "                 [--simd-dispatch <f1,f2>] "
                 "[--simd-tests <f1,f2>]\n"
                 "                 <file-or-dir>...\n";
    return 2;
  }
  return scan_paths(paths, dispatch_paths, test_paths);
}
