// Machine-readable final-classification line shared by ddcsim and
// ddcnode, so scripts/run_cluster.sh can compare a UDP cluster's output
// against the in-process simulator's numerically.
//
// Format (space-separated, fixed 6-decimal precision):
//   RESULT <k> <w_1> <mean_1 components...> ... <w_k> <mean_k ...>
// with collections sorted by the first mean component, so equivalent
// classifications produce comparable lines regardless of internal order.
#pragma once

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include <ddc/core/collection.hpp>

namespace ddc::tools {

/// `mean_of(summary)` must yield something iterable over doubles (a
/// linalg::Vector: the centroid itself, a Gaussian's mean, ...).
template <typename Summary, typename MeanFn>
[[nodiscard]] std::string result_line(
    const core::Classification<Summary>& classification, MeanFn mean_of) {
  struct Row {
    double weight;
    std::vector<double> mean;
  };
  std::vector<Row> rows;
  rows.reserve(classification.size());
  for (std::size_t i = 0; i < classification.size(); ++i) {
    Row row;
    row.weight = classification.relative_weight(i);
    for (const double x : mean_of(classification[i].summary)) {
      row.mean.push_back(x);
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.mean < b.mean;
  });
  std::ostringstream os;
  os << "RESULT " << rows.size() << std::fixed << std::setprecision(6);
  for (const Row& row : rows) {
    os << ' ' << row.weight;
    for (const double x : row.mean) os << ' ' << x;
  }
  return os.str();
}

}  // namespace ddc::tools
