file(REMOVE_RECURSE
  "CMakeFiles/ddc_io.dir/src/ascii_canvas.cpp.o"
  "CMakeFiles/ddc_io.dir/src/ascii_canvas.cpp.o.d"
  "CMakeFiles/ddc_io.dir/src/table.cpp.o"
  "CMakeFiles/ddc_io.dir/src/table.cpp.o.d"
  "libddc_io.a"
  "libddc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
