# Empty dependencies file for ddc_io.
# This may be replaced when dependencies are built.
