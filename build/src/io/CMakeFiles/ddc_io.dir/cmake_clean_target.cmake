file(REMOVE_RECURSE
  "libddc_io.a"
)
