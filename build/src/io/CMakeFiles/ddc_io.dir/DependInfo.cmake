
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/src/ascii_canvas.cpp" "src/io/CMakeFiles/ddc_io.dir/src/ascii_canvas.cpp.o" "gcc" "src/io/CMakeFiles/ddc_io.dir/src/ascii_canvas.cpp.o.d"
  "/root/repo/src/io/src/table.cpp" "src/io/CMakeFiles/ddc_io.dir/src/table.cpp.o" "gcc" "src/io/CMakeFiles/ddc_io.dir/src/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ddc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ddc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ddc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
