file(REMOVE_RECURSE
  "CMakeFiles/ddc_core.dir/src/policy.cpp.o"
  "CMakeFiles/ddc_core.dir/src/policy.cpp.o.d"
  "CMakeFiles/ddc_core.dir/src/weight.cpp.o"
  "CMakeFiles/ddc_core.dir/src/weight.cpp.o.d"
  "libddc_core.a"
  "libddc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
