# Empty dependencies file for ddc_core.
# This may be replaced when dependencies are built.
