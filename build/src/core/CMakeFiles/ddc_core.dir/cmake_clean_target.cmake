file(REMOVE_RECURSE
  "libddc_core.a"
)
