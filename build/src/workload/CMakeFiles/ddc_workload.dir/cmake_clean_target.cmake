file(REMOVE_RECURSE
  "libddc_workload.a"
)
