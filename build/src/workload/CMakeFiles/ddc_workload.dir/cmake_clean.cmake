file(REMOVE_RECURSE
  "CMakeFiles/ddc_workload.dir/src/scenarios.cpp.o"
  "CMakeFiles/ddc_workload.dir/src/scenarios.cpp.o.d"
  "libddc_workload.a"
  "libddc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
