# Empty compiler generated dependencies file for ddc_workload.
# This may be replaced when dependencies are built.
