# Empty compiler generated dependencies file for ddc_partition.
# This may be replaced when dependencies are built.
