file(REMOVE_RECURSE
  "CMakeFiles/ddc_partition.dir/src/em_partition.cpp.o"
  "CMakeFiles/ddc_partition.dir/src/em_partition.cpp.o.d"
  "libddc_partition.a"
  "libddc_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
