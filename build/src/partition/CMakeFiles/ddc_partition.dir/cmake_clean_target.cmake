file(REMOVE_RECURSE
  "libddc_partition.a"
)
