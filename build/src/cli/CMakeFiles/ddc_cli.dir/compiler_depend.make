# Empty compiler generated dependencies file for ddc_cli.
# This may be replaced when dependencies are built.
