file(REMOVE_RECURSE
  "CMakeFiles/ddc_cli.dir/src/flags.cpp.o"
  "CMakeFiles/ddc_cli.dir/src/flags.cpp.o.d"
  "libddc_cli.a"
  "libddc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
