file(REMOVE_RECURSE
  "libddc_cli.a"
)
