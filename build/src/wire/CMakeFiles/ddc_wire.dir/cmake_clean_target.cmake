file(REMOVE_RECURSE
  "libddc_wire.a"
)
