# Empty compiler generated dependencies file for ddc_wire.
# This may be replaced when dependencies are built.
