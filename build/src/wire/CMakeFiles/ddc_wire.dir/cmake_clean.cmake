file(REMOVE_RECURSE
  "CMakeFiles/ddc_wire.dir/src/codec.cpp.o"
  "CMakeFiles/ddc_wire.dir/src/codec.cpp.o.d"
  "CMakeFiles/ddc_wire.dir/src/serialize.cpp.o"
  "CMakeFiles/ddc_wire.dir/src/serialize.cpp.o.d"
  "libddc_wire.a"
  "libddc_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
