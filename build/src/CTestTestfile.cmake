# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("linalg")
subdirs("stats")
subdirs("core")
subdirs("summaries")
subdirs("em")
subdirs("partition")
subdirs("sim")
subdirs("gossip")
subdirs("wire")
subdirs("metrics")
subdirs("workload")
subdirs("io")
subdirs("cli")
subdirs("audit")
