file(REMOVE_RECURSE
  "libddc_sim.a"
)
