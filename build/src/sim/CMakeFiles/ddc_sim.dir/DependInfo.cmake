
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/event_queue.cpp" "src/sim/CMakeFiles/ddc_sim.dir/src/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/ddc_sim.dir/src/event_queue.cpp.o.d"
  "/root/repo/src/sim/src/topology.cpp" "src/sim/CMakeFiles/ddc_sim.dir/src/topology.cpp.o" "gcc" "src/sim/CMakeFiles/ddc_sim.dir/src/topology.cpp.o.d"
  "/root/repo/src/sim/src/trace.cpp" "src/sim/CMakeFiles/ddc_sim.dir/src/trace.cpp.o" "gcc" "src/sim/CMakeFiles/ddc_sim.dir/src/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ddc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ddc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ddc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
