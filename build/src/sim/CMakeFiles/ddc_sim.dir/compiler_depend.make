# Empty compiler generated dependencies file for ddc_sim.
# This may be replaced when dependencies are built.
