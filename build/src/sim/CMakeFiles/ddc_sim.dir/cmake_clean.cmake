file(REMOVE_RECURSE
  "CMakeFiles/ddc_sim.dir/src/event_queue.cpp.o"
  "CMakeFiles/ddc_sim.dir/src/event_queue.cpp.o.d"
  "CMakeFiles/ddc_sim.dir/src/topology.cpp.o"
  "CMakeFiles/ddc_sim.dir/src/topology.cpp.o.d"
  "CMakeFiles/ddc_sim.dir/src/trace.cpp.o"
  "CMakeFiles/ddc_sim.dir/src/trace.cpp.o.d"
  "libddc_sim.a"
  "libddc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
