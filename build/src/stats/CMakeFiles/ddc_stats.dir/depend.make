# Empty dependencies file for ddc_stats.
# This may be replaced when dependencies are built.
