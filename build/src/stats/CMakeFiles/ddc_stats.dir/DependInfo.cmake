
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/src/descriptive.cpp" "src/stats/CMakeFiles/ddc_stats.dir/src/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/ddc_stats.dir/src/descriptive.cpp.o.d"
  "/root/repo/src/stats/src/gaussian.cpp" "src/stats/CMakeFiles/ddc_stats.dir/src/gaussian.cpp.o" "gcc" "src/stats/CMakeFiles/ddc_stats.dir/src/gaussian.cpp.o.d"
  "/root/repo/src/stats/src/histogram.cpp" "src/stats/CMakeFiles/ddc_stats.dir/src/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/ddc_stats.dir/src/histogram.cpp.o.d"
  "/root/repo/src/stats/src/mixture.cpp" "src/stats/CMakeFiles/ddc_stats.dir/src/mixture.cpp.o" "gcc" "src/stats/CMakeFiles/ddc_stats.dir/src/mixture.cpp.o.d"
  "/root/repo/src/stats/src/mixture_distance.cpp" "src/stats/CMakeFiles/ddc_stats.dir/src/mixture_distance.cpp.o" "gcc" "src/stats/CMakeFiles/ddc_stats.dir/src/mixture_distance.cpp.o.d"
  "/root/repo/src/stats/src/rng.cpp" "src/stats/CMakeFiles/ddc_stats.dir/src/rng.cpp.o" "gcc" "src/stats/CMakeFiles/ddc_stats.dir/src/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ddc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ddc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
