file(REMOVE_RECURSE
  "libddc_stats.a"
)
