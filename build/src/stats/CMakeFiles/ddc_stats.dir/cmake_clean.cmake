file(REMOVE_RECURSE
  "CMakeFiles/ddc_stats.dir/src/descriptive.cpp.o"
  "CMakeFiles/ddc_stats.dir/src/descriptive.cpp.o.d"
  "CMakeFiles/ddc_stats.dir/src/gaussian.cpp.o"
  "CMakeFiles/ddc_stats.dir/src/gaussian.cpp.o.d"
  "CMakeFiles/ddc_stats.dir/src/histogram.cpp.o"
  "CMakeFiles/ddc_stats.dir/src/histogram.cpp.o.d"
  "CMakeFiles/ddc_stats.dir/src/mixture.cpp.o"
  "CMakeFiles/ddc_stats.dir/src/mixture.cpp.o.d"
  "CMakeFiles/ddc_stats.dir/src/mixture_distance.cpp.o"
  "CMakeFiles/ddc_stats.dir/src/mixture_distance.cpp.o.d"
  "CMakeFiles/ddc_stats.dir/src/rng.cpp.o"
  "CMakeFiles/ddc_stats.dir/src/rng.cpp.o.d"
  "libddc_stats.a"
  "libddc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
