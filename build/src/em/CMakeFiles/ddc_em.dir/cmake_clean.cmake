file(REMOVE_RECURSE
  "CMakeFiles/ddc_em.dir/src/em_points.cpp.o"
  "CMakeFiles/ddc_em.dir/src/em_points.cpp.o.d"
  "CMakeFiles/ddc_em.dir/src/kmeans.cpp.o"
  "CMakeFiles/ddc_em.dir/src/kmeans.cpp.o.d"
  "CMakeFiles/ddc_em.dir/src/mixture_reduction.cpp.o"
  "CMakeFiles/ddc_em.dir/src/mixture_reduction.cpp.o.d"
  "libddc_em.a"
  "libddc_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
