# Empty dependencies file for ddc_em.
# This may be replaced when dependencies are built.
