file(REMOVE_RECURSE
  "libddc_em.a"
)
