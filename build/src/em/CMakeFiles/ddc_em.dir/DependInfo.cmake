
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/src/em_points.cpp" "src/em/CMakeFiles/ddc_em.dir/src/em_points.cpp.o" "gcc" "src/em/CMakeFiles/ddc_em.dir/src/em_points.cpp.o.d"
  "/root/repo/src/em/src/kmeans.cpp" "src/em/CMakeFiles/ddc_em.dir/src/kmeans.cpp.o" "gcc" "src/em/CMakeFiles/ddc_em.dir/src/kmeans.cpp.o.d"
  "/root/repo/src/em/src/mixture_reduction.cpp" "src/em/CMakeFiles/ddc_em.dir/src/mixture_reduction.cpp.o" "gcc" "src/em/CMakeFiles/ddc_em.dir/src/mixture_reduction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ddc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ddc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ddc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
