
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/src/cholesky.cpp" "src/linalg/CMakeFiles/ddc_linalg.dir/src/cholesky.cpp.o" "gcc" "src/linalg/CMakeFiles/ddc_linalg.dir/src/cholesky.cpp.o.d"
  "/root/repo/src/linalg/src/eigen_sym.cpp" "src/linalg/CMakeFiles/ddc_linalg.dir/src/eigen_sym.cpp.o" "gcc" "src/linalg/CMakeFiles/ddc_linalg.dir/src/eigen_sym.cpp.o.d"
  "/root/repo/src/linalg/src/ldlt.cpp" "src/linalg/CMakeFiles/ddc_linalg.dir/src/ldlt.cpp.o" "gcc" "src/linalg/CMakeFiles/ddc_linalg.dir/src/ldlt.cpp.o.d"
  "/root/repo/src/linalg/src/matrix.cpp" "src/linalg/CMakeFiles/ddc_linalg.dir/src/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/ddc_linalg.dir/src/matrix.cpp.o.d"
  "/root/repo/src/linalg/src/vector.cpp" "src/linalg/CMakeFiles/ddc_linalg.dir/src/vector.cpp.o" "gcc" "src/linalg/CMakeFiles/ddc_linalg.dir/src/vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ddc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
