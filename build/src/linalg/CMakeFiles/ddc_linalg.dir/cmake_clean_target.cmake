file(REMOVE_RECURSE
  "libddc_linalg.a"
)
