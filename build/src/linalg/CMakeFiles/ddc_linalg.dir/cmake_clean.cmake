file(REMOVE_RECURSE
  "CMakeFiles/ddc_linalg.dir/src/cholesky.cpp.o"
  "CMakeFiles/ddc_linalg.dir/src/cholesky.cpp.o.d"
  "CMakeFiles/ddc_linalg.dir/src/eigen_sym.cpp.o"
  "CMakeFiles/ddc_linalg.dir/src/eigen_sym.cpp.o.d"
  "CMakeFiles/ddc_linalg.dir/src/ldlt.cpp.o"
  "CMakeFiles/ddc_linalg.dir/src/ldlt.cpp.o.d"
  "CMakeFiles/ddc_linalg.dir/src/matrix.cpp.o"
  "CMakeFiles/ddc_linalg.dir/src/matrix.cpp.o.d"
  "CMakeFiles/ddc_linalg.dir/src/vector.cpp.o"
  "CMakeFiles/ddc_linalg.dir/src/vector.cpp.o.d"
  "libddc_linalg.a"
  "libddc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
