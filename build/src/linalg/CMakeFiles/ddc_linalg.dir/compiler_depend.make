# Empty compiler generated dependencies file for ddc_linalg.
# This may be replaced when dependencies are built.
