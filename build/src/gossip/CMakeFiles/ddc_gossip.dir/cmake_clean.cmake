file(REMOVE_RECURSE
  "CMakeFiles/ddc_gossip.dir/src/dkmeans.cpp.o"
  "CMakeFiles/ddc_gossip.dir/src/dkmeans.cpp.o.d"
  "CMakeFiles/ddc_gossip.dir/src/push_sum.cpp.o"
  "CMakeFiles/ddc_gossip.dir/src/push_sum.cpp.o.d"
  "libddc_gossip.a"
  "libddc_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
