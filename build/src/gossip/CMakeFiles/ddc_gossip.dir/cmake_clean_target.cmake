file(REMOVE_RECURSE
  "libddc_gossip.a"
)
