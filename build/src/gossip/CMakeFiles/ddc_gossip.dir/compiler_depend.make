# Empty compiler generated dependencies file for ddc_gossip.
# This may be replaced when dependencies are built.
