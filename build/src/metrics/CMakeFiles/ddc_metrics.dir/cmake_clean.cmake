file(REMOVE_RECURSE
  "CMakeFiles/ddc_metrics.dir/src/gaussian_metrics.cpp.o"
  "CMakeFiles/ddc_metrics.dir/src/gaussian_metrics.cpp.o.d"
  "CMakeFiles/ddc_metrics.dir/src/outlier_metrics.cpp.o"
  "CMakeFiles/ddc_metrics.dir/src/outlier_metrics.cpp.o.d"
  "libddc_metrics.a"
  "libddc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
