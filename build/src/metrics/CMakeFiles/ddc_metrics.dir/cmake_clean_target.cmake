file(REMOVE_RECURSE
  "libddc_metrics.a"
)
