# Empty compiler generated dependencies file for ddc_metrics.
# This may be replaced when dependencies are built.
