file(REMOVE_RECURSE
  "CMakeFiles/ddc_common.dir/src/error.cpp.o"
  "CMakeFiles/ddc_common.dir/src/error.cpp.o.d"
  "libddc_common.a"
  "libddc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
