file(REMOVE_RECURSE
  "libddc_summaries.a"
)
