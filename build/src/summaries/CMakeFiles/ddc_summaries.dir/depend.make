# Empty dependencies file for ddc_summaries.
# This may be replaced when dependencies are built.
