file(REMOVE_RECURSE
  "CMakeFiles/ddc_summaries.dir/src/centroid.cpp.o"
  "CMakeFiles/ddc_summaries.dir/src/centroid.cpp.o.d"
  "CMakeFiles/ddc_summaries.dir/src/gaussian_summary.cpp.o"
  "CMakeFiles/ddc_summaries.dir/src/gaussian_summary.cpp.o.d"
  "libddc_summaries.a"
  "libddc_summaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_summaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
