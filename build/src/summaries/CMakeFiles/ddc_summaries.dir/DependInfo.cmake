
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/summaries/src/centroid.cpp" "src/summaries/CMakeFiles/ddc_summaries.dir/src/centroid.cpp.o" "gcc" "src/summaries/CMakeFiles/ddc_summaries.dir/src/centroid.cpp.o.d"
  "/root/repo/src/summaries/src/gaussian_summary.cpp" "src/summaries/CMakeFiles/ddc_summaries.dir/src/gaussian_summary.cpp.o" "gcc" "src/summaries/CMakeFiles/ddc_summaries.dir/src/gaussian_summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ddc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ddc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ddc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ddc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
