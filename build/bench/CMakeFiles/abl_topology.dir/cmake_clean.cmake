file(REMOVE_RECURSE
  "CMakeFiles/abl_topology.dir/abl_topology.cpp.o"
  "CMakeFiles/abl_topology.dir/abl_topology.cpp.o.d"
  "abl_topology"
  "abl_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
