# Empty compiler generated dependencies file for abl_comparators.
# This may be replaced when dependencies are built.
