file(REMOVE_RECURSE
  "CMakeFiles/abl_comparators.dir/abl_comparators.cpp.o"
  "CMakeFiles/abl_comparators.dir/abl_comparators.cpp.o.d"
  "abl_comparators"
  "abl_comparators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_comparators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
