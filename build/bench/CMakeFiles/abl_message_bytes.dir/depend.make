# Empty dependencies file for abl_message_bytes.
# This may be replaced when dependencies are built.
