file(REMOVE_RECURSE
  "CMakeFiles/abl_message_bytes.dir/abl_message_bytes.cpp.o"
  "CMakeFiles/abl_message_bytes.dir/abl_message_bytes.cpp.o.d"
  "abl_message_bytes"
  "abl_message_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_message_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
