file(REMOVE_RECURSE
  "CMakeFiles/abl_k_sweep.dir/abl_k_sweep.cpp.o"
  "CMakeFiles/abl_k_sweep.dir/abl_k_sweep.cpp.o.d"
  "abl_k_sweep"
  "abl_k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
