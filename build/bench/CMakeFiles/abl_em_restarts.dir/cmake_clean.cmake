file(REMOVE_RECURSE
  "CMakeFiles/abl_em_restarts.dir/abl_em_restarts.cpp.o"
  "CMakeFiles/abl_em_restarts.dir/abl_em_restarts.cpp.o.d"
  "abl_em_restarts"
  "abl_em_restarts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_em_restarts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
