# Empty dependencies file for abl_em_restarts.
# This may be replaced when dependencies are built.
