file(REMOVE_RECURSE
  "CMakeFiles/abl_scalability.dir/abl_scalability.cpp.o"
  "CMakeFiles/abl_scalability.dir/abl_scalability.cpp.o.d"
  "abl_scalability"
  "abl_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
