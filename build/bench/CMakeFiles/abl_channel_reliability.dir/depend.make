# Empty dependencies file for abl_channel_reliability.
# This may be replaced when dependencies are built.
