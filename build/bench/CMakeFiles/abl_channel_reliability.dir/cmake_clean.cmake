file(REMOVE_RECURSE
  "CMakeFiles/abl_channel_reliability.dir/abl_channel_reliability.cpp.o"
  "CMakeFiles/abl_channel_reliability.dir/abl_channel_reliability.cpp.o.d"
  "abl_channel_reliability"
  "abl_channel_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_channel_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
