file(REMOVE_RECURSE
  "CMakeFiles/abl_dimensionality.dir/abl_dimensionality.cpp.o"
  "CMakeFiles/abl_dimensionality.dir/abl_dimensionality.cpp.o.d"
  "abl_dimensionality"
  "abl_dimensionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
