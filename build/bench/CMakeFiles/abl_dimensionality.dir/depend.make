# Empty dependencies file for abl_dimensionality.
# This may be replaced when dependencies are built.
