# Empty compiler generated dependencies file for fig2_gm_classification.
# This may be replaced when dependencies are built.
