file(REMOVE_RECURSE
  "CMakeFiles/fig2_gm_classification.dir/fig2_gm_classification.cpp.o"
  "CMakeFiles/fig2_gm_classification.dir/fig2_gm_classification.cpp.o.d"
  "fig2_gm_classification"
  "fig2_gm_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_gm_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
