file(REMOVE_RECURSE
  "CMakeFiles/abl_gossip_pattern.dir/abl_gossip_pattern.cpp.o"
  "CMakeFiles/abl_gossip_pattern.dir/abl_gossip_pattern.cpp.o.d"
  "abl_gossip_pattern"
  "abl_gossip_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gossip_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
