# Empty dependencies file for abl_gossip_pattern.
# This may be replaced when dependencies are built.
