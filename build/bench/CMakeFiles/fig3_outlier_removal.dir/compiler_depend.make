# Empty compiler generated dependencies file for fig3_outlier_removal.
# This may be replaced when dependencies are built.
