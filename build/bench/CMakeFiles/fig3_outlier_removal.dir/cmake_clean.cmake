file(REMOVE_RECURSE
  "CMakeFiles/fig3_outlier_removal.dir/fig3_outlier_removal.cpp.o"
  "CMakeFiles/fig3_outlier_removal.dir/fig3_outlier_removal.cpp.o.d"
  "fig3_outlier_removal"
  "fig3_outlier_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_outlier_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
