# Empty dependencies file for fig4_crash_robustness.
# This may be replaced when dependencies are built.
