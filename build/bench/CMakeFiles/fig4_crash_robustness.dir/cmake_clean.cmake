file(REMOVE_RECURSE
  "CMakeFiles/fig4_crash_robustness.dir/fig4_crash_robustness.cpp.o"
  "CMakeFiles/fig4_crash_robustness.dir/fig4_crash_robustness.cpp.o.d"
  "fig4_crash_robustness"
  "fig4_crash_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_crash_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
