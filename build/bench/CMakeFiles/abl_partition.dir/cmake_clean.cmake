file(REMOVE_RECURSE
  "CMakeFiles/abl_partition.dir/abl_partition.cpp.o"
  "CMakeFiles/abl_partition.dir/abl_partition.cpp.o.d"
  "abl_partition"
  "abl_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
