
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_ops.cpp" "bench/CMakeFiles/micro_ops.dir/micro_ops.cpp.o" "gcc" "bench/CMakeFiles/micro_ops.dir/micro_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ddc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ddc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ddc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ddc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/summaries/CMakeFiles/ddc_summaries.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/ddc_em.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ddc_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ddc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/ddc_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/ddc_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ddc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ddc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ddc_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
