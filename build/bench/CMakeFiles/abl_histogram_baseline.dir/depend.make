# Empty dependencies file for abl_histogram_baseline.
# This may be replaced when dependencies are built.
