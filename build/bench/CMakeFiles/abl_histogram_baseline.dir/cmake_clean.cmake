file(REMOVE_RECURSE
  "CMakeFiles/abl_histogram_baseline.dir/abl_histogram_baseline.cpp.o"
  "CMakeFiles/abl_histogram_baseline.dir/abl_histogram_baseline.cpp.o.d"
  "abl_histogram_baseline"
  "abl_histogram_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_histogram_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
