# Empty dependencies file for ddcsim.
# This may be replaced when dependencies are built.
