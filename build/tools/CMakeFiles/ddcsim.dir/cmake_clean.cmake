file(REMOVE_RECURSE
  "CMakeFiles/ddcsim.dir/ddcsim.cpp.o"
  "CMakeFiles/ddcsim.dir/ddcsim.cpp.o.d"
  "ddcsim"
  "ddcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
