# Empty compiler generated dependencies file for robust_average.
# This may be replaced when dependencies are built.
