file(REMOVE_RECURSE
  "CMakeFiles/robust_average.dir/robust_average.cpp.o"
  "CMakeFiles/robust_average.dir/robust_average.cpp.o.d"
  "robust_average"
  "robust_average.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
