file(REMOVE_RECURSE
  "CMakeFiles/verified_run.dir/verified_run.cpp.o"
  "CMakeFiles/verified_run.dir/verified_run.cpp.o.d"
  "verified_run"
  "verified_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
