# Empty compiler generated dependencies file for verified_run.
# This may be replaced when dependencies are built.
