# Empty compiler generated dependencies file for sensor_fence.
# This may be replaced when dependencies are built.
