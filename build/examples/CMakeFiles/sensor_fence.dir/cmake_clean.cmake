file(REMOVE_RECURSE
  "CMakeFiles/sensor_fence.dir/sensor_fence.cpp.o"
  "CMakeFiles/sensor_fence.dir/sensor_fence.cpp.o.d"
  "sensor_fence"
  "sensor_fence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
