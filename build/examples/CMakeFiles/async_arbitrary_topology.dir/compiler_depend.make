# Empty compiler generated dependencies file for async_arbitrary_topology.
# This may be replaced when dependencies are built.
