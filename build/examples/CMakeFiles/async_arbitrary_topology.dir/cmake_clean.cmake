file(REMOVE_RECURSE
  "CMakeFiles/async_arbitrary_topology.dir/async_arbitrary_topology.cpp.o"
  "CMakeFiles/async_arbitrary_topology.dir/async_arbitrary_topology.cpp.o.d"
  "async_arbitrary_topology"
  "async_arbitrary_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_arbitrary_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
