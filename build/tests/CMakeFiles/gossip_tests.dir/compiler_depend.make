# Empty compiler generated dependencies file for gossip_tests.
# This may be replaced when dependencies are built.
