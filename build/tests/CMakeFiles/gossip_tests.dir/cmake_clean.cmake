file(REMOVE_RECURSE
  "CMakeFiles/gossip_tests.dir/gossip/classifier_node_test.cpp.o"
  "CMakeFiles/gossip_tests.dir/gossip/classifier_node_test.cpp.o.d"
  "CMakeFiles/gossip_tests.dir/gossip/dkmeans_test.cpp.o"
  "CMakeFiles/gossip_tests.dir/gossip/dkmeans_test.cpp.o.d"
  "CMakeFiles/gossip_tests.dir/gossip/push_sum_test.cpp.o"
  "CMakeFiles/gossip_tests.dir/gossip/push_sum_test.cpp.o.d"
  "gossip_tests"
  "gossip_tests.pdb"
  "gossip_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
