file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/convergence_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/convergence_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/fuzz_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/fuzz_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/invariants_under_faults_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/invariants_under_faults_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/protocol_variants_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/protocol_variants_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/wire_protocol_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/wire_protocol_test.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
