file(REMOVE_RECURSE
  "CMakeFiles/em_tests.dir/em/em_points_test.cpp.o"
  "CMakeFiles/em_tests.dir/em/em_points_test.cpp.o.d"
  "CMakeFiles/em_tests.dir/em/kmeans_test.cpp.o"
  "CMakeFiles/em_tests.dir/em/kmeans_test.cpp.o.d"
  "CMakeFiles/em_tests.dir/em/mixture_reduction_test.cpp.o"
  "CMakeFiles/em_tests.dir/em/mixture_reduction_test.cpp.o.d"
  "CMakeFiles/em_tests.dir/em/select_k_test.cpp.o"
  "CMakeFiles/em_tests.dir/em/select_k_test.cpp.o.d"
  "em_tests"
  "em_tests.pdb"
  "em_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
