# Empty compiler generated dependencies file for em_tests.
# This may be replaced when dependencies are built.
