# Empty dependencies file for summaries_tests.
# This may be replaced when dependencies are built.
