file(REMOVE_RECURSE
  "CMakeFiles/summaries_tests.dir/summaries/centroid_test.cpp.o"
  "CMakeFiles/summaries_tests.dir/summaries/centroid_test.cpp.o.d"
  "CMakeFiles/summaries_tests.dir/summaries/gaussian_summary_test.cpp.o"
  "CMakeFiles/summaries_tests.dir/summaries/gaussian_summary_test.cpp.o.d"
  "CMakeFiles/summaries_tests.dir/summaries/histogram_summary_test.cpp.o"
  "CMakeFiles/summaries_tests.dir/summaries/histogram_summary_test.cpp.o.d"
  "CMakeFiles/summaries_tests.dir/summaries/requirements_test.cpp.o"
  "CMakeFiles/summaries_tests.dir/summaries/requirements_test.cpp.o.d"
  "summaries_tests"
  "summaries_tests.pdb"
  "summaries_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summaries_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
