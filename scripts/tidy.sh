#!/usr/bin/env bash
# clang-tidy gate over src/, tools/, bench/ and fuzz/ with the committed
# .clang-tidy config (WarningsAsErrors: '*', so any finding fails).
#
# Requires clang-tidy (and uses run-clang-tidy for parallelism when
# available). On hosts without clang-tidy the gate SKIPS with exit 0 and
# a loud message — the container this repo usually builds in ships only
# gcc — while .github/workflows/ci.yml installs the real tool and runs
# the gate authoritatively on every push. Set DDC_TIDY_STRICT=1 to turn
# a missing tool into a failure (CI does).
#
# Usage:
#   scripts/tidy.sh            # whole tree
#   scripts/tidy.sh src/wire   # one subtree (any filter regex)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tidy}
FILTER=${1:-'(src|tools|bench|fuzz)/'}

TIDY=$(command -v clang-tidy || true)
if [[ -z "$TIDY" ]]; then
  if [[ "${DDC_TIDY_STRICT:-0}" == "1" ]]; then
    echo "tidy: clang-tidy not found and DDC_TIDY_STRICT=1" >&2
    exit 1
  fi
  echo "tidy: SKIPPED — clang-tidy not installed on this host."
  echo "tidy: CI runs this gate; install clang-tidy to run it locally."
  exit 0
fi

# A dedicated build dir: the gate needs a compile database, and we do
# not want to perturb the default build tree's cache.
cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DDDC_FUZZ=ON >/dev/null

RUNNER=$(command -v run-clang-tidy || true)
if [[ -n "$RUNNER" ]]; then
  "$RUNNER" -p "$BUILD_DIR" -quiet "$FILTER"
else
  # Fallback: sequential clang-tidy over the matching translation units.
  mapfile -t sources < <(python3 - "$BUILD_DIR" "$FILTER" <<'EOF'
import json, re, sys
db, pattern = sys.argv[1] + "/compile_commands.json", sys.argv[2]
for entry in json.load(open(db)):
    if re.search(pattern, entry["file"]):
        print(entry["file"])
EOF
  )
  status=0
  for source in "${sources[@]}"; do
    "$TIDY" -p "$BUILD_DIR" "$source" || status=1
  done
  exit "$status"
fi

echo "clang-tidy clean over $FILTER"
