#!/usr/bin/env bash
# One-shot reproduction: configure, build, run the full test suite, and
# regenerate every figure/ablation table into bench_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo
echo "Done. Paper-vs-measured commentary: EXPERIMENTS.md"
