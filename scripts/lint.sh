#!/usr/bin/env bash
# Both lint generations, one entry point:
#
#   1. ddclint    (scripts/lint_determinism.sh) — determinism rules over
#                 the bit-reproducible modules.
#   2. ddcverify  (scripts/verify_invariants.sh) — protocol invariants:
#                 wire-taint, hot-path-alloc, simd-parity.
#
# Each runs its planted-violation self-test before scanning, so a rule
# that has gone blind fails here, not in review.
set -euo pipefail
cd "$(dirname "$0")/.."

scripts/lint_determinism.sh
echo
scripts/verify_invariants.sh
