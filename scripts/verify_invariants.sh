#!/usr/bin/env bash
# Protocol-invariant lint gate (generation 2).
#
# Runs tools/ddcverify — the token-aware analyzer — over the layers
# where its three rule families have teeth:
#
#   wire-taint       src/wire, src/net, src/shard: transport-derived
#                    bytes must flow through the bounds-checked Decoder;
#                    raw memcpy / pointer arithmetic / reinterpret_cast
#                    on tainted buffers is flagged.
#   hot-path-alloc   functions reachable from a `// ddcverify: hotpath`
#                    root must not allocate (new/malloc/make_unique or
#                    fresh owning containers) — scratch must be hoisted.
#   simd-parity      every kernel registered in the linalg::simd
#                    dispatch seam needs a scalar twin, and every
#                    dispatch accessor must appear in the equivalence
#                    tests.
#
# Kept exceptions carry inline `// ddcverify: allow(<rule>)` markers
# with an audit rationale on the same or preceding line — the analyzer
# reports a clean tree only when every unmarked site is genuinely clean.
#
# The analyzer's self-test runs first: one planted violation and one
# allow-marker per rule, so a rule that goes blind (or a marker that
# stops suppressing) fails the gate before the tree scan can vacuously
# pass.
#
# Usage:
#   scripts/verify_invariants.sh           # self-test + scan
#   BUILD_DIR=build scripts/verify_invariants.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
DDCVERIFY="$BUILD_DIR/tools/ddcverify"

if [[ ! -x "$DDCVERIFY" ]]; then
  echo "verify_invariants: building ddcverify..."
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target ddcverify -j "$(nproc)" >/dev/null
fi

"$DDCVERIFY" --self-test

# The scanned set: the wire/transport/shard stack (taint + hot path),
# the compute layers with hotpath roots (sim, stats, gossip, linalg),
# and the node binary's stats/result plumbing.
"$DDCVERIFY" \
  --simd-dispatch src/linalg/include/ddc/linalg/simd.hpp,src/linalg/src/simd.cpp \
  --simd-tests tests/linalg/kernel_equivalence_test.cpp,tests/stats/score_batch_test.cpp \
  src/wire \
  src/net \
  src/shard \
  src/sim \
  src/stats \
  src/gossip \
  src/linalg \
  tools/ddcnode.cpp \
  tools/result_line.hpp

echo "Protocol-invariant lint passed."
