#!/usr/bin/env bash
# clang-format gate / fixer for the C++ tree (.clang-format at the
# root codifies the existing style).
#
# Usage:
#   scripts/format.sh          # rewrite files in place
#   scripts/format.sh --check  # fail (exit 1) if any file would change
#
# On hosts without clang-format the gate SKIPS with exit 0 and a loud
# message (the default container ships only gcc); CI installs the real
# tool. Set DDC_FORMAT_STRICT=1 to turn a missing tool into a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=${1:-fix}

FORMAT=$(command -v clang-format || true)
if [[ -z "$FORMAT" ]]; then
  if [[ "${DDC_FORMAT_STRICT:-0}" == "1" ]]; then
    echo "format: clang-format not found and DDC_FORMAT_STRICT=1" >&2
    exit 1
  fi
  echo "format: SKIPPED — clang-format not installed on this host."
  echo "format: CI runs this gate; install clang-format to run it locally."
  exit 0
fi

mapfile -t files < <(find src tools bench fuzz tests examples \
  -name '*.hpp' -o -name '*.cpp' | sort)

if [[ "$MODE" == "--check" ]]; then
  "$FORMAT" --dry-run --Werror "${files[@]}"
  echo "format: clean (${#files[@]} files)"
else
  "$FORMAT" -i "${files[@]}"
  echo "format: formatted ${#files[@]} files"
fi
