#!/usr/bin/env bash
# Launches a cluster of ddcnode processes gossiping over UDP localhost,
# checks that every node reports the same final classification, and
# cross-validates the result against the in-process simulator
# (ddcsim --summary-line) on the same seeded workload.
#
#   scripts/run_cluster.sh --nodes 8 --protocol gm
#   scripts/run_cluster.sh --nodes 6 --protocol centroid --loss 0.1
#   scripts/run_cluster.sh --nodes 8 --kill 3        # kill node 3 mid-run
#
# Exit status 0 iff the cluster converged and matches the simulator.
set -euo pipefail
cd "$(dirname "$0")/.."

NODES=8
PROTOCOL=gm
BASE_PORT=$(( 9800 + (RANDOM % 500) * 16 ))
SEED=1
ROUNDS=60
TICK_MS=20
LOSS=0
KILL_ID=""
BUILD_DIR=build
# Numeric tolerances for the cross-checks. Weights drift by the residual
# gossip imbalance; means sit on well-separated clusters (0 vs 25), so
# these bands are tight relative to the structure being recovered.
WEIGHT_TOL=0.05
MEAN_TOL=1.0

usage() { sed -n '2,10p' "$0"; exit "${1:-0}"; }

while [[ $# -gt 0 ]]; do
  case "$1" in
    --nodes)     NODES=$2; shift 2 ;;
    --protocol)  PROTOCOL=$2; shift 2 ;;
    --base-port) BASE_PORT=$2; shift 2 ;;
    --seed)      SEED=$2; shift 2 ;;
    --rounds)    ROUNDS=$2; shift 2 ;;
    --tick-ms)   TICK_MS=$2; shift 2 ;;
    --loss)      LOSS=$2; shift 2 ;;
    --kill)      KILL_ID=$2; shift 2 ;;
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    -h|--help)   usage ;;
    *) echo "run_cluster.sh: unknown argument '$1'" >&2; usage 1 ;;
  esac
done

DDCNODE="$BUILD_DIR/tools/ddcnode"
DDCSIM="$BUILD_DIR/tools/ddcsim"
for bin in "$DDCNODE" "$DDCSIM"; do
  if [[ ! -x "$bin" ]]; then
    echo "run_cluster.sh: $bin not built (cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

WORK_DIR=$(mktemp -d)
trap 'jobs -p | xargs -r kill 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$WORK_DIR"' EXIT

echo "cluster: $NODES x ddcnode ($PROTOCOL) on 127.0.0.1:$BASE_PORT+, seed $SEED, loss $LOSS${KILL_ID:+, killing node $KILL_ID mid-run}"

declare -a PIDS
for (( i = 0; i < NODES; i++ )); do
  "$DDCNODE" --id "$i" --nodes "$NODES" --base-port "$BASE_PORT" \
    --protocol "$PROTOCOL" --seed "$SEED" --rounds "$ROUNDS" \
    --tick-ms "$TICK_MS" --loss-prob "$LOSS" \
    > "$WORK_DIR/node$i.out" 2> "$WORK_DIR/node$i.err" &
  PIDS[i]=$!
done

if [[ -n "$KILL_ID" ]]; then
  # Let the cluster mix first, then take the node down hard; the
  # survivors' probe-based failure detectors must route around it.
  sleep "$(awk "BEGIN { print $ROUNDS * $TICK_MS / 1000.0 / 3 }")"
  kill -9 "${PIDS[KILL_ID]}" 2>/dev/null || true
  echo "killed node $KILL_ID (pid ${PIDS[KILL_ID]})"
fi

FAILED=0
for (( i = 0; i < NODES; i++ )); do
  if [[ -n "$KILL_ID" && "$i" == "$KILL_ID" ]]; then
    wait "${PIDS[i]}" 2>/dev/null || true
    continue
  fi
  if ! wait "${PIDS[i]}"; then
    echo "node $i exited non-zero:" >&2
    cat "$WORK_DIR/node$i.err" >&2
    FAILED=1
  fi
done
[[ "$FAILED" == 0 ]] || exit 1

# Collect RESULT lines from every surviving node.
: > "$WORK_DIR/results"
for (( i = 0; i < NODES; i++ )); do
  [[ -n "$KILL_ID" && "$i" == "$KILL_ID" ]] && continue
  line=$(grep '^RESULT ' "$WORK_DIR/node$i.out" || true)
  if [[ -z "$line" ]]; then
    echo "node $i produced no RESULT line:" >&2
    cat "$WORK_DIR/node$i.err" >&2
    exit 1
  fi
  echo "node $i: $line"
  echo "$line" >> "$WORK_DIR/results"
done

# The simulator's answer on the identical workload and seed, with the
# same channel-loss rate (different draws, so weights only match
# statistically — hence WEIGHT_TOL).
SIM_LINE=$("$DDCSIM" --protocol "$PROTOCOL" --workload clusters \
  --nodes "$NODES" --rounds "$ROUNDS" --seed "$SEED" --loss-prob "$LOSS" \
  --summary-line | grep '^RESULT ')
echo "ddcsim: $SIM_LINE"

# compare_results <reference-line> <file-of-lines> <weight-tol> <mean-tol>
# Lines are "RESULT k w mean... w mean..." with collections sorted by
# mean, so positional comparison is meaningful. Field 2 (k) must match
# exactly; weights compare within the weight tolerance, means within the
# mean tolerance.
compare_results() {
  awk -v ref="$1" -v wtol="$3" -v mtol="$4" '
    BEGIN {
      n = split(ref, r, " ")
      if (n < 3) { print "malformed reference: " ref; exit 1 }
      k = r[2]
      dim = (n - 3 + 1) / k - 1   # fields per collection minus the weight
    }
    {
      if ($2 != k) {
        printf "MISMATCH line %d: k=%s, expected %s\n", NR, $2, k
        bad = 1; next
      }
      for (f = 3; f <= n; f++) {
        # Field f is a weight iff it starts a collection block.
        is_weight = ((f - 3) % (dim + 1) == 0)
        tol = is_weight ? wtol : mtol
        d = $f - r[f]; if (d < 0) d = -d
        if (d > tol) {
          printf "MISMATCH line %d field %d: %s vs %s (tol %s)\n", \
                 NR, f, $f, r[f], tol
          bad = 1
        }
      }
    }
    END { exit bad ? 1 : 0 }
  ' "$2"
}

# Node-vs-node agreement: summaries must match to RESULT precision;
# relative weights carry the residual mixing imbalance, which grows when
# the channel destroys weight.
NODE_WEIGHT_TOL=$(awk "BEGIN { print ($LOSS > 0) ? 0.01 : 1e-4 }")
REFERENCE=$(head -1 "$WORK_DIR/results")
echo
if ! compare_results "$REFERENCE" "$WORK_DIR/results" "$NODE_WEIGHT_TOL" 1e-4; then
  echo "FAIL: nodes disagree on the final classification" >&2
  exit 1
fi
echo "OK: all $(wc -l < "$WORK_DIR/results") surviving nodes agree"

if ! compare_results "$SIM_LINE" "$WORK_DIR/results" "$WEIGHT_TOL" "$MEAN_TOL"; then
  echo "FAIL: cluster result does not match the in-process simulator" >&2
  exit 1
fi
echo "OK: cluster matches ddcsim (weights ±$WEIGHT_TOL, means ±$MEAN_TOL)"
