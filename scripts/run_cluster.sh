#!/usr/bin/env bash
# Launches a cluster of ddcnode processes gossiping over UDP localhost,
# checks that every node reports the same final classification, and
# cross-validates the result against the in-process simulator
# (ddcsim --summary-line) on the same seeded workload.
#
#   scripts/run_cluster.sh --nodes 8 --protocol gm
#   scripts/run_cluster.sh --nodes 6 --protocol centroid --loss 0.1
#   scripts/run_cluster.sh --nodes 8 --kill 3        # kill node 3 mid-run
#
# Shard mode runs S ddcnode shard processes, each hosting M simulated
# nodes (S*M nodes total, batched cross-shard traffic, one UDP frame per
# peer shard per round). A healthy shard run must match ddcsim exactly.
#
#   scripts/run_cluster.sh --shards 4 --nodes-per-shard 1000
#   scripts/run_cluster.sh --shards 4 --nodes-per-shard 1000 --kill-shard 2
#   scripts/run_cluster.sh --shards 4 --nodes-per-shard 512 --shard-map edgecut
#
# Exit status 0 iff the cluster converged and matches the simulator.
set -euo pipefail
cd "$(dirname "$0")/.."

NODES=8
PROTOCOL=gm
BASE_PORT=""
SEED=1
ROUNDS=60
TICK_MS=20
LOSS=0
KILL_ID=""
SHARDS=0
NODES_PER_SHARD=0
KILL_SHARD=""
SHARD_MAP=contiguous
BUILD_DIR=build
# Numeric tolerances for the cross-checks. Weights drift by the residual
# gossip imbalance; means sit on well-separated clusters (0 vs 25), so
# these bands are tight relative to the structure being recovered.
WEIGHT_TOL=0.05
MEAN_TOL=1.0

usage() { sed -n '2,18p' "$0"; exit "${1:-0}"; }

while [[ $# -gt 0 ]]; do
  case "$1" in
    --nodes)           NODES=$2; shift 2 ;;
    --protocol)        PROTOCOL=$2; shift 2 ;;
    --base-port)       BASE_PORT=$2; shift 2 ;;
    --seed)            SEED=$2; shift 2 ;;
    --rounds)          ROUNDS=$2; shift 2 ;;
    --tick-ms)         TICK_MS=$2; shift 2 ;;
    --loss)            LOSS=$2; shift 2 ;;
    --kill)            KILL_ID=$2; shift 2 ;;
    --shards)          SHARDS=$2; shift 2 ;;
    --nodes-per-shard) NODES_PER_SHARD=$2; shift 2 ;;
    --kill-shard)      KILL_SHARD=$2; shift 2 ;;
    --shard-map)       SHARD_MAP=$2; shift 2 ;;
    --build-dir)       BUILD_DIR=$2; shift 2 ;;
    -h|--help)         usage ;;
    *) echo "run_cluster.sh: unknown argument '$1'" >&2; usage 1 ;;
  esac
done

if [[ "$SHARDS" -gt 0 && "$NODES_PER_SHARD" -le 0 ]]; then
  echo "run_cluster.sh: --shards needs --nodes-per-shard" >&2
  exit 1
fi

# Port base: seed-derived, not $RANDOM, so two runs on the same seed pick
# the same range (reproducible) while different seeds spread across the
# ephemeral space instead of colliding on a fixed constant. A run that
# still lands on occupied ports is retried on a shifted base below.
if [[ -z "$BASE_PORT" ]]; then
  BASE_PORT=$(( 9800 + (SEED * 7919 % 500) * 16 ))
fi

DDCNODE="$BUILD_DIR/tools/ddcnode"
DDCSIM="$BUILD_DIR/tools/ddcsim"
for bin in "$DDCNODE" "$DDCSIM"; do
  if [[ ! -x "$bin" ]]; then
    echo "run_cluster.sh: $bin not built (cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

WORK_DIR=$(mktemp -d)
trap 'jobs -p | xargs -r kill 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$WORK_DIR"' EXIT

declare -a PIDS

# launch_member <index> — one cluster process (node or shard) writing to
# $WORK_DIR/node<index>.{out,err}, pid recorded in PIDS[index].
launch_member() {
  local i=$1
  if [[ "$SHARDS" -gt 0 ]]; then
    "$DDCNODE" --shard-id "$i" --num-shards "$SHARDS" \
      --nodes-per-shard "$NODES_PER_SHARD" --base-port "$BASE_PORT" \
      --protocol "$PROTOCOL" --seed "$SEED" --rounds "$ROUNDS" \
      --shard-map "$SHARD_MAP" --loss-prob "$LOSS" --stats-json \
      > "$WORK_DIR/node$i.out" 2> "$WORK_DIR/node$i.err" &
  else
    "$DDCNODE" --id "$i" --nodes "$NODES" --base-port "$BASE_PORT" \
      --protocol "$PROTOCOL" --seed "$SEED" --rounds "$ROUNDS" \
      --tick-ms "$TICK_MS" --loss-prob "$LOSS" --stats-json \
      > "$WORK_DIR/node$i.out" 2> "$WORK_DIR/node$i.err" &
  fi
  PIDS[i]=$!
}

MEMBERS=$NODES
[[ "$SHARDS" -gt 0 ]] && MEMBERS=$SHARDS

# Launch with bind-failure retry: if any member cannot bind its port
# (stale process, overlapping CI job), kill the attempt and shift the
# whole cluster to a fresh port range.
for attempt in 1 2 3 4 5; do
  for (( i = 0; i < MEMBERS; i++ )); do
    launch_member "$i"
  done
  sleep 0.4
  BIND_FAILED=0
  for (( i = 0; i < MEMBERS; i++ )); do
    if ! kill -0 "${PIDS[i]}" 2>/dev/null \
        && grep -q "cannot bind" "$WORK_DIR/node$i.err" 2>/dev/null; then
      BIND_FAILED=1
    fi
  done
  [[ "$BIND_FAILED" == 0 ]] && break
  echo "port range $BASE_PORT+ busy (attempt $attempt); retrying" >&2
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  BASE_PORT=$(( BASE_PORT + 8192 ))
  if [[ "$BASE_PORT" -gt 57000 ]]; then BASE_PORT=$(( BASE_PORT - 47000 )); fi
  if [[ "$attempt" == 5 ]]; then
    echo "run_cluster.sh: no free port range found" >&2
    exit 1
  fi
done

if [[ "$SHARDS" -gt 0 ]]; then
  echo "cluster: $SHARDS shards x $NODES_PER_SHARD nodes ($PROTOCOL, $SHARD_MAP map) on 127.0.0.1:$BASE_PORT+, seed $SEED, loss $LOSS${KILL_SHARD:+, kill+restart shard $KILL_SHARD}"
else
  echo "cluster: $NODES x ddcnode ($PROTOCOL) on 127.0.0.1:$BASE_PORT+, seed $SEED, loss $LOSS${KILL_ID:+, killing node $KILL_ID mid-run}"
fi

if [[ -n "$KILL_ID" && "$SHARDS" == 0 ]]; then
  # Let the cluster mix first, then take the node down hard; the
  # survivors' probe-based failure detectors must route around it.
  sleep "$(awk "BEGIN { print $ROUNDS * $TICK_MS / 1000.0 / 3 }")"
  kill -9 "${PIDS[KILL_ID]}" 2>/dev/null || true
  echo "killed node $KILL_ID (pid ${PIDS[KILL_ID]})"
fi

if [[ -n "$KILL_SHARD" && "$SHARDS" -gt 0 ]]; then
  # Kill a whole shard mid-exchange (past the start barrier, into the
  # round loop), then restart it: the survivors must time the dead shard
  # out and keep rounding; the restarted process replays its rounds from
  # scratch, catches up through the survivors' buffered batches, and
  # rejoins the exchange.
  sleep 4
  kill -9 "${PIDS[KILL_SHARD]}" 2>/dev/null || true
  echo "killed shard $KILL_SHARD (pid ${PIDS[KILL_SHARD]})"
  sleep 1.5
  launch_member "$KILL_SHARD"
  echo "restarted shard $KILL_SHARD (pid ${PIDS[KILL_SHARD]})"
fi

FAILED=0
for (( i = 0; i < MEMBERS; i++ )); do
  if [[ "$SHARDS" == 0 && -n "$KILL_ID" && "$i" == "$KILL_ID" ]]; then
    wait "${PIDS[i]}" 2>/dev/null || true
    continue
  fi
  if ! wait "${PIDS[i]}"; then
    echo "member $i exited non-zero:" >&2
    cat "$WORK_DIR/node$i.err" >&2
    FAILED=1
  fi
done
[[ "$FAILED" == 0 ]] || exit 1

# Collect RESULT lines from every surviving member.
: > "$WORK_DIR/results"
for (( i = 0; i < MEMBERS; i++ )); do
  [[ "$SHARDS" == 0 && -n "$KILL_ID" && "$i" == "$KILL_ID" ]] && continue
  line=$(grep '^RESULT ' "$WORK_DIR/node$i.out" || true)
  if [[ -z "$line" ]]; then
    echo "member $i produced no RESULT line:" >&2
    cat "$WORK_DIR/node$i.err" >&2
    exit 1
  fi
  echo "member $i: $line"
  echo "$line" >> "$WORK_DIR/results"
done

# The simulator's answer on the identical workload and seed. Shard mode
# replays the simulator's round protocol exactly, so it compares against
# a lossless simulator run (transport loss is absorbed by retransmits);
# the async single-node mode passes the loss rate through.
SIM_NODES=$NODES
SIM_LOSS=$LOSS
if [[ "$SHARDS" -gt 0 ]]; then
  SIM_NODES=$(( SHARDS * NODES_PER_SHARD ))
  SIM_LOSS=0
fi
SIM_LINE=$("$DDCSIM" --protocol "$PROTOCOL" --workload clusters \
  --nodes "$SIM_NODES" --rounds "$ROUNDS" --seed "$SEED" \
  --loss-prob "$SIM_LOSS" --summary-line | grep '^RESULT ')
echo "ddcsim: $SIM_LINE"

# compare_results <reference-line> <file-of-lines> <weight-tol> <mean-tol>
# Lines are "RESULT k w mean... w mean..." with collections sorted by
# mean, so positional comparison is meaningful. Field 2 (k) must match
# exactly; weights compare within the weight tolerance, means within the
# mean tolerance.
compare_results() {
  awk -v ref="$1" -v wtol="$3" -v mtol="$4" '
    BEGIN {
      n = split(ref, r, " ")
      if (n < 3) { print "malformed reference: " ref; exit 1 }
      k = r[2]
      dim = (n - 3 + 1) / k - 1   # fields per collection minus the weight
    }
    {
      if ($2 != k) {
        printf "MISMATCH line %d: k=%s, expected %s\n", NR, $2, k
        bad = 1; next
      }
      for (f = 3; f <= n; f++) {
        # Field f is a weight iff it starts a collection block.
        is_weight = ((f - 3) % (dim + 1) == 0)
        tol = is_weight ? wtol : mtol
        d = $f - r[f]; if (d < 0) d = -d
        if (d > tol) {
          printf "MISMATCH line %d field %d: %s vs %s (tol %s)\n", \
                 NR, f, $f, r[f], tol
          bad = 1
        }
      }
    }
    END { exit bad ? 1 : 0 }
  ' "$2"
}

# Member-vs-member agreement: summaries must match to RESULT precision;
# relative weights carry the residual mixing imbalance, which grows when
# the channel destroys weight or a shard missed rounds.
NODE_WEIGHT_TOL=$(awk "BEGIN { print ($LOSS > 0) ? 0.01 : 1e-4 }")
NODE_MEAN_TOL=1e-4
if [[ -n "$KILL_SHARD" ]]; then
  NODE_WEIGHT_TOL=$WEIGHT_TOL
  NODE_MEAN_TOL=$MEAN_TOL
fi
REFERENCE=$(head -1 "$WORK_DIR/results")
echo
if ! compare_results "$REFERENCE" "$WORK_DIR/results" "$NODE_WEIGHT_TOL" "$NODE_MEAN_TOL"; then
  echo "FAIL: members disagree on the final classification" >&2
  exit 1
fi
echo "OK: all $(wc -l < "$WORK_DIR/results") surviving members agree"

if [[ "$SHARDS" -gt 0 && -z "$KILL_SHARD" ]]; then
  # Healthy shard runs replay ddcsim's protocol bit for bit: shard 0
  # reports global node 0, the same node ddcsim's summary line reports,
  # so the two lines must be identical strings.
  SHARD0_LINE=$(grep '^RESULT ' "$WORK_DIR/node0.out")
  if [[ "$SHARD0_LINE" != "$SIM_LINE" ]]; then
    echo "FAIL: shard 0 RESULT differs from ddcsim (expected exact match)" >&2
    echo "  shard 0: $SHARD0_LINE" >&2
    echo "  ddcsim:  $SIM_LINE" >&2
    exit 1
  fi
  echo "OK: shard 0 matches ddcsim exactly"
fi

if ! compare_results "$SIM_LINE" "$WORK_DIR/results" "$WEIGHT_TOL" "$MEAN_TOL"; then
  echo "FAIL: cluster result does not match the in-process simulator" >&2
  exit 1
fi
echo "OK: cluster matches ddcsim (weights ±$WEIGHT_TOL, means ±$MEAN_TOL)"

if [[ "$SHARDS" -gt 1 ]]; then
  # Batching efficiency: the whole point of the batch frame is packing
  # many cross-shard messages into one datagram. Assert the mean number
  # of records per sent batch frame exceeds 1 on every shard that ran
  # the full exchange.
  for (( i = 0; i < SHARDS; i++ )); do
    rpf=$(grep -o '"records_per_frame":[0-9.]*' "$WORK_DIR/node$i.out" \
          | head -1 | cut -d: -f2)
    if [[ -z "$rpf" ]]; then
      echo "FAIL: shard $i printed no stats-json records_per_frame" >&2
      exit 1
    fi
    if ! awk "BEGIN { exit !($rpf > 1.0) }"; then
      echo "FAIL: shard $i mean records/frame = $rpf (want > 1)" >&2
      exit 1
    fi
  done
  echo "OK: batched exchange packs > 1 message per frame on every shard"
fi
