#!/usr/bin/env bash
# Sanitizer gates.
#
# TSan: build the exec/sim/gossip test targets with ThreadSanitizer and
# run the suites that exercise the parallel engine. TSan finds data
# races only on code paths that actually run, so the determinism tests
# (which drive the pool at several thread counts) are the payload here.
#
# ASan+UBSan: build and run the wire, net and io suites — the byte-level
# decoding and socket paths where out-of-bounds reads, overflows on
# attacker-controlled lengths, and use-after-free of receive buffers
# would live.
#
# Bench gate: smoke-mode run of scripts/bench_gate.sh against the
# committed BENCH_hotpath.json baseline, so a hot-path complexity
# regression (say, an accidental return to the O(m³) partition rescan)
# fails CI even when every unit test still passes.
set -euo pipefail
cd "$(dirname "$0")/.."

TSAN_DIR=build-tsan
ASAN_DIR=build-asan

cmake -B "$TSAN_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$TSAN_DIR" --target exec_tests sim_tests gossip_tests -j "$(nproc)"

"$TSAN_DIR"/tests/exec_tests
"$TSAN_DIR"/tests/sim_tests
"$TSAN_DIR"/tests/gossip_tests

echo
echo "TSan-clean: exec, sim and gossip test suites."

cmake -B "$ASAN_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$ASAN_DIR" --target wire_tests net_tests io_tests -j "$(nproc)"

# halt_on_error so UBSan findings fail the gate instead of scrolling by.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
"$ASAN_DIR"/tests/wire_tests
"$ASAN_DIR"/tests/net_tests
"$ASAN_DIR"/tests/io_tests

echo
echo "ASan+UBSan-clean: wire, net and io test suites."

# The gate needs an optimized, unsanitized binary; the default build dir
# is RelWithDebInfo. Smoke mode keeps the run short and its tolerance
# loose enough for a loaded CI host while still catching order-of-
# magnitude complexity regressions.
scripts/bench_gate.sh --smoke

echo
echo "Bench gate passed: hot-path kernels within tolerance of BENCH_hotpath.json."
