#!/usr/bin/env bash
# Concurrency check: build the exec/sim/gossip test targets with
# ThreadSanitizer and run the suites that exercise the parallel engine.
# TSan finds data races only on code paths that actually run, so the
# determinism tests (which drive the pool at several thread counts) are
# the payload here.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan

cmake -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$BUILD_DIR" --target exec_tests sim_tests gossip_tests -j "$(nproc)"

"$BUILD_DIR"/tests/exec_tests
"$BUILD_DIR"/tests/sim_tests
"$BUILD_DIR"/tests/gossip_tests

echo
echo "TSan-clean: exec, sim and gossip test suites."
