#!/usr/bin/env bash
# The repo's correctness gate: every machine-checkable guarantee, one
# entry point. CI (.github/workflows/ci.yml) runs exactly this script;
# run it locally before sending a PR.
#
# Gates, cheapest first:
#
#   1. format      clang-format --check against .clang-format
#                  (skips, loudly, where clang-format is absent).
#   2. lint        both lint generations (scripts/lint.sh): ddclint's
#                  determinism rules, then ddcverify's protocol
#                  invariants (wire-taint, hot-path-alloc, simd-parity).
#                  Each tool self-tests its planted violations first.
#   3. clang-tidy  curated .clang-tidy over src/ tools/ bench/ fuzz/
#                  (skips, loudly, where clang-tidy is absent; CI has
#                  it and exports DDC_TIDY_STRICT=1).
#   4. schedules   the schedule-exhaustive race explorer
#                  (tests/shard/schedule_explorer_test.cpp): every
#                  delivery order / drop / duplication schedule of the
#                  shard batch+ack round must complete with the
#                  1-shard-identical digest, and the planted
#                  empty-barrier-retransmit bug must be caught.
#   5. TSan        exec/sim/gossip suites under ThreadSanitizer — the
#                  parallel engine's determinism tests drive the pool
#                  at several thread counts, which is where races live.
#   6. ASan+UBSan  the FULL ctest suite under AddressSanitizer +
#                  UndefinedBehaviorSanitizer. Not just wire/net/io:
#                  the partition/EM hot paths rewritten in PR 3 run
#                  under ASan here too, as do the shard suite, the
#                  schedule explorer and the multi-shard UDP smoke
#                  (cluster_multishard_smoke drives sanitized ddcnode
#                  shard processes).
#   7. SIMD tiers  a dedicated -mavx2 build runs the kernel-equivalence
#                  and batched-scorer suites (the lanewise AVX2 kernel
#                  must be bit-identical to the scalar reference; the
#                  fast-math tier must sit inside its documented error
#                  bound), then the same binaries rerun with
#                  DDC_SIMD=scalar — including the sim golden digests —
#                  and a ddcsim cross-mode run asserts --simd=auto and
#                  --simd=scalar produce byte-identical RESULT lines.
#   8. bench gate  smoke-mode scripts/bench_gate.sh against
#                  BENCH_hotpath.json, so a hot-path complexity
#                  regression (say, an accidental return to the O(m³)
#                  partition rescan) fails even when every unit test
#                  still passes; then the 10k-node scale tier against
#                  BENCH_scale.json (throughput + peak RSS of the SoA
#                  engine; the 100k/1M tiers are on-demand via
#                  scripts/bench_gate.sh --scale-full); then the
#                  sharded-cluster tier against BENCH_cluster.json
#                  (loopback throughput, RSS, records per batch frame).
#   9. fuzz smoke  both fuzz harnesses (wire framing decode, classifier
#                  invariants via the ddc::audit pool auditors) replay
#                  the committed corpus plus DDC_FUZZ_RUNS fresh
#                  deterministic iterations under ASan+UBSan.
#
# Environment:
#   DDC_FUZZ_RUNS   mutational iterations per fuzz harness (default
#                   20000; the acceptance bar of 100k+ is a one-off,
#                   see fuzz/README.md).
#   DDC_SKIP_SLOW   set to 1 to stop after the static gates (1-3).
set -euo pipefail
cd "$(dirname "$0")/.."

DDC_FUZZ_RUNS=${DDC_FUZZ_RUNS:-20000}

echo "=== gate 1/9: format check ==="
scripts/format.sh --check

echo
echo "=== gate 2/9: lint (determinism + protocol invariants) ==="
scripts/lint.sh

echo
echo "=== gate 3/9: clang-tidy ==="
scripts/tidy.sh

if [[ "${DDC_SKIP_SLOW:-0}" == "1" ]]; then
  echo
  echo "DDC_SKIP_SLOW=1 — static gates done, skipping sanitizers/bench/fuzz."
  exit 0
fi

TSAN_DIR=build-tsan
ASAN_DIR=build-asan
SIMD_DIR=build-simd
FUZZ_DIR=build-fuzz

echo
echo "=== gate 4/9: schedule-exhaustive race explorer ==="
cmake -B build -S . >/dev/null
cmake --build build --target schedule_tests -j "$(nproc)"
build/tests/schedule_tests

echo "Schedule gate passed: all explored schedules barrier-live and bit-exact."

echo
echo "=== gate 5/9: ThreadSanitizer (exec, sim, gossip) ==="
cmake -B "$TSAN_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$TSAN_DIR" --target exec_tests sim_tests gossip_tests -j "$(nproc)"

"$TSAN_DIR"/tests/exec_tests
"$TSAN_DIR"/tests/sim_tests
"$TSAN_DIR"/tests/gossip_tests

echo "TSan-clean: exec, sim and gossip test suites."

echo
echo "=== gate 6/9: ASan+UBSan, full test suite ==="
cmake -B "$ASAN_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$ASAN_DIR" -j "$(nproc)" --target \
  linalg_tests stats_tests core_tests summaries_tests em_tests \
  partition_tests exec_tests sim_tests gossip_tests wire_tests net_tests \
  shard_tests schedule_tests audit_tests metrics_tests workload_tests \
  io_tests cli_tests integration_tests ddcsim ddcnode

# halt_on_error so UBSan findings fail the gate instead of scrolling by.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
(cd "$ASAN_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "ASan+UBSan-clean: full ctest suite."

echo
echo "=== gate 7/9: SIMD tiers (AVX2 build + forced-scalar rerun) ==="
cmake -B "$SIMD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-mavx2"
cmake --build "$SIMD_DIR" --target linalg_tests stats_tests sim_tests ddcsim \
  -j "$(nproc)"

# AVX2 leg: kernel equivalence + batched scorer suites with the AVX2 TU
# guaranteed in the binary. The lanewise-vs-scalar bit-identity and
# fast-math error-bound tests skip themselves on non-AVX2 CPUs.
"$SIMD_DIR"/tests/linalg_tests
"$SIMD_DIR"/tests/stats_tests

# Forced-scalar leg: the same binaries pinned to the reference kernels.
# The sim golden digests must reproduce bit for bit on the scalar path.
DDC_SIMD=scalar "$SIMD_DIR"/tests/linalg_tests
DDC_SIMD=scalar "$SIMD_DIR"/tests/stats_tests
DDC_SIMD=scalar "$SIMD_DIR"/tests/sim_tests

# Cross-mode determinism: node 0's final classification must be
# byte-identical whichever bit-exact tier scored the E step.
simd_auto=$("$SIMD_DIR"/tools/ddcsim --nodes=24 --rounds=20 --seed=7 \
  --summary-line --simd=auto | grep '^RESULT')
simd_scalar=$("$SIMD_DIR"/tools/ddcsim --nodes=24 --rounds=20 --seed=7 \
  --summary-line --simd=scalar | grep '^RESULT')
if [[ "$simd_auto" != "$simd_scalar" ]]; then
  echo "SIMD gate FAILED: --simd=auto and --simd=scalar disagree" >&2
  echo "  auto:   $simd_auto" >&2
  echo "  scalar: $simd_scalar" >&2
  exit 1
fi

echo "SIMD gate passed: AVX2 + forced-scalar legs clean, cross-mode RESULT identical."

echo
echo "=== gate 8/9: bench regression gate ==="
# The gate needs an optimized, unsanitized binary; the default build dir
# is RelWithDebInfo. Smoke mode keeps the run short and its tolerance
# loose enough for a loaded CI host while still catching order-of-
# magnitude complexity regressions.
scripts/bench_gate.sh --smoke

echo "Bench gate passed: hot-path kernels within tolerance of BENCH_hotpath.json."

# Scale-engine tier: 10k-node throughput/RSS vs BENCH_scale.json. The
# 100k/1M tiers are on-demand only (scripts/bench_gate.sh --scale-full).
scripts/bench_gate.sh --scale

echo "Scale gate passed: 10k-node tier within tolerance of BENCH_scale.json."

# Sharded-cluster tier: loopback-fabric throughput/RSS plus the
# records-per-frame batching invariant vs BENCH_cluster.json.
scripts/bench_gate.sh --cluster

echo "Cluster gate passed: sharded tier within tolerance of BENCH_cluster.json."

echo
echo "=== gate 9/9: fuzz smoke ==="
cmake -B "$FUZZ_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDDC_FUZZ=ON \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$FUZZ_DIR" --target fuzz_framing fuzz_classifier -j "$(nproc)"

"$FUZZ_DIR"/fuzz/fuzz_framing    -runs="$DDC_FUZZ_RUNS" -seed=1 fuzz/corpus/framing
"$FUZZ_DIR"/fuzz/fuzz_classifier -runs="$DDC_FUZZ_RUNS" -seed=1 fuzz/corpus/classifier

echo "Fuzz smoke passed: corpus + ${DDC_FUZZ_RUNS} iterations per harness."

echo
echo "All gates passed."
