#!/usr/bin/env bash
# Benchmark regression gate for the hot-path kernels.
#
# Runs the gated subset of bench/micro_ops (greedy partition, EM E-step
# scoring, full EM reduction, classifier exchange, moment matching,
# expected-log-pdf, 512-node GM round) and compares each kernel's median
# real_time against the committed baseline in BENCH_hotpath.json. Fails
# if any gated kernel is more than TOLERANCE above its baseline.
#
# Also gates the SoA scale engine (bench/bench_scale) against
# BENCH_scale.json: gossip throughput (rounds/s) and peak RSS per
# (protocol, topology, node-count) configuration. The scale gate fails
# if throughput drops below baseline/(1+tolerance) or peak RSS rises
# above baseline*(1+tolerance).
#
# Usage:
#   scripts/bench_gate.sh            # full gate: 3 repetitions, 0.2s each
#   scripts/bench_gate.sh --smoke    # quick CI pass: 1 repetition, 0.05s,
#                                    # loose 2.0x tolerance (catches the
#                                    # accidental-O(m^3) class of regression
#                                    # without flaking on scheduler noise)
#   scripts/bench_gate.sh --update   # print a fresh "gate" JSON block to
#                                    # paste into BENCH_hotpath.json after a
#                                    # signed-off performance change
#   scripts/bench_gate.sh --scale        # 10k-node scale tier vs
#                                        # BENCH_scale.json "gate" block
#   scripts/bench_gate.sh --scale-full   # adds the 100k and 1M tiers
#                                        # ("full" block; ~2 min)
#   scripts/bench_gate.sh --scale-update # print fresh BENCH_scale.json
#                                        # "gate"/"full" blocks
#   scripts/bench_gate.sh --cluster        # sharded-cluster tier vs
#                                          # BENCH_cluster.json
#   scripts/bench_gate.sh --cluster-update # print a fresh
#                                          # BENCH_cluster.json block
#
# Environment:
#   BUILD_DIR      build tree holding bench/micro_ops (default: build;
#                  the top-level CMakeLists defaults to RelWithDebInfo,
#                  so the default tree is already optimized)
#   BASELINE       baseline file (default: BENCH_hotpath.json, or
#                  BENCH_scale.json in the --scale* modes)
#   DDC_BENCH_TOLERANCE  override the regression tolerance, e.g. 0.25
#                  means "fail if median > baseline * 1.25"
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

MODE=full
case "${1:-}" in
  --smoke) MODE=smoke ;;
  --update) MODE=update ;;
  --scale) MODE=scale ;;
  --scale-full) MODE=scale-full ;;
  --scale-update) MODE=scale-update ;;
  --cluster) MODE=cluster ;;
  --cluster-update) MODE=cluster-update ;;
  "") ;;
  *) echo "usage: $0 [--smoke|--update|--scale|--scale-full|--scale-update|--cluster|--cluster-update]" >&2
     exit 2 ;;
esac

# ---------------------------------------------------------------------------
# Sharded-cluster gate (--cluster / --cluster-update).
#
# One bench_cluster process per configuration (loopback fabric, S shard
# engines in one process). Gates throughput and peak RSS like the scale
# gate, plus the batching invariant: multi-shard entries whose baseline
# packs more than one message per batch frame must keep doing so — a
# frame-per-message regression defeats the point of the batch exchange.
# ---------------------------------------------------------------------------
if [[ "$MODE" == cluster* ]]; then
  BASELINE=${BASELINE:-BENCH_cluster.json}
  TOLERANCE=${DDC_BENCH_TOLERANCE:-0.5}

  if [[ ! -x "$BUILD_DIR/bench/bench_cluster" ]]; then
    cmake -B "$BUILD_DIR" -S . >/dev/null
    cmake --build "$BUILD_DIR" --target bench_cluster -j "$(nproc)"
  fi

  # name|bench_cluster arguments. Keep in sync with BENCH_cluster.json.
  # The geometric/ER pairs run once per partitioner: contiguous is
  # cut-pessimal there (ids carry no locality), so the edgecut entries
  # both gate the partitioner's cut and prove the throughput win.
  CLUSTER_TIER=(
    "centroid/grid/2048x4|--topology grid --nodes 2048 --shards 4 --rounds 50"
    "centroid/grid/2048x4-edgecut|--topology grid --nodes 2048 --shards 4 --rounds 50 --shard-map edgecut"
    "centroid/grid/2048x1|--topology grid --nodes 2048 --shards 1 --rounds 50"
    "centroid/ring/4096x8|--topology ring --nodes 4096 --shards 8 --rounds 30"
    "centroid/geometric/2048x4|--topology geometric --nodes 2048 --radius 0.05 --shards 4 --rounds 50"
    "centroid/geometric/2048x4-edgecut|--topology geometric --nodes 2048 --radius 0.05 --shards 4 --rounds 50 --shard-map edgecut"
    "centroid/er/2048x4|--topology er --nodes 2048 --er-prob 0.004 --shards 4 --rounds 50"
    "centroid/er/2048x4-edgecut|--topology er --nodes 2048 --er-prob 0.004 --shards 4 --rounds 50 --shard-map edgecut"
    "gm/grid/256x4|--protocol gm --topology grid --nodes 256 --shards 4 --rounds 50"
  )

  # run_cluster_tier — emit
  # "name rounds_per_s peak_rss_mb records_per_frame cut_edges".
  run_cluster_tier() {
    local entry name args line
    for entry in "$@"; do
      name=${entry%%|*}
      args=${entry#*|}
      # shellcheck disable=SC2086
      line=$("$BUILD_DIR/bench/bench_cluster" $args \
               --threads 0 --seed 1 --name "$name")
      echo "$line" | awk -F'[:,]' -v name="$name" '{
        for (i = 1; i < NF; ++i) {
          if ($i ~ /"rounds_per_s"/) rps = $(i + 1)
          if ($i ~ /"records_per_frame"/) rpf = $(i + 1)
          if ($i ~ /"cut_edges"/) cut = $(i + 1)
          if ($i ~ /"peak_rss_mb"/) { rss = $(i + 1); gsub(/}/, "", rss) }
        }
        print name, rps, rss, rpf, cut
      }'
    done
  }

  if [[ "$MODE" == cluster-update ]]; then
    echo
    echo "Fresh \"gate\" block for BENCH_cluster.json:"
    echo "  \"gate\": {"
    run_cluster_tier "${CLUSTER_TIER[@]}" | awk '{
      printf "    \"%s\": {\"rounds_per_s\": %s, \"peak_rss_mb\": %s, \"records_per_frame\": %s, \"cut_edges\": %s},\n",
             $1, $2, $3, $4, $5
    }' | sed '$ s/},$/}/'
    echo "  }"
    exit 0
  fi

  echo "bench_gate: cluster mode (tolerance=±$(awk -v t="$TOLERANCE" 'BEGIN{printf "%.0f%%", t*100}') vs $BASELINE)"
  STATUS=0
  while read -r name rps rss rpf cut; do
    base_rps=""
    base_rss=""
    base_rpf=""
    base_cut=""
    read -r base_rps base_rss base_rpf base_cut < <(awk -v key="\"$name\":" '
      index($0, key) {
        for (i = 1; i <= NF; ++i) {
          if ($i ~ /"rounds_per_s"/) { v = $(i + 1); gsub(/[,}]/, "", v); r = v }
          if ($i ~ /"peak_rss_mb"/) { v = $(i + 1); gsub(/[,}]/, "", v); m = v }
          if ($i ~ /"records_per_frame"/) { v = $(i + 1); gsub(/[,}]/, "", v); f = v }
          if ($i ~ /"cut_edges"/) { v = $(i + 1); gsub(/[,}]/, "", v); c = v }
        }
        print r, m, f, c
      }' "$BASELINE") || true
    if [[ -z "${base_rps:-}" || -z "${base_rss:-}" ]]; then
      echo "bench_gate: FAIL  $name missing from $BASELINE" >&2
      STATUS=1
      continue
    fi
    # cut_edges is deterministic for a fixed (topology, seed, shards,
    # partitioner), so any increase over the baseline is a partitioner
    # regression, not noise — gate it exactly.
    verdict=$(awk -v rps="$rps" -v rss="$rss" -v rpf="$rpf" -v cut="$cut" \
                  -v brps="$base_rps" -v brss="$base_rss" \
                  -v brpf="${base_rpf:-0}" -v bcut="${base_cut:--1}" \
                  -v t="$TOLERANCE" 'BEGIN {
      slow = rps < brps / (1 + t)
      fat = rss > brss * (1 + t)
      unbatched = brpf > 1 && rpf <= 1
      cutworse = bcut >= 0 && cut > bcut
      printf "%s rps=%.3g(min %.3g) rss=%.4gMB(max %.4g) rpf=%.3g cut=%d(max %d)",
             (slow || fat || unbatched || cutworse ? "FAIL" : "ok"),
             rps, brps / (1 + t), rss, brss * (1 + t), rpf, cut, bcut
    }')
    if [[ "$verdict" == FAIL* ]]; then
      echo "bench_gate: FAIL  $name  ${verdict#FAIL }" >&2
      STATUS=1
    else
      echo "bench_gate: ok    $name  ${verdict#ok }"
    fi
  done < <(run_cluster_tier "${CLUSTER_TIER[@]}")

  if [[ "$STATUS" -ne 0 ]]; then
    echo "bench_gate: CLUSTER REGRESSION — throughput, memory or batching moved past tolerance." >&2
    echo "bench_gate: if intentional and signed off, refresh BENCH_cluster.json with" >&2
    echo "bench_gate: 'scripts/bench_gate.sh --cluster-update'." >&2
    exit 1
  fi
  echo "bench_gate: sharded cluster within ±$(awk -v t="$TOLERANCE" 'BEGIN{printf "%.0f%%", t*100}') of $BASELINE."
  exit 0
fi

# ---------------------------------------------------------------------------
# Scale-engine gate (--scale / --scale-full / --scale-update).
#
# One bench_scale process per configuration so ru_maxrss is a clean
# per-configuration high-water mark. The 10⁵/10⁶-node entries pass
# explicit sparse --radius/--er-prob: the TopologySpec density defaults
# are sized for paper-scale graphs, not a million nodes.
# ---------------------------------------------------------------------------
if [[ "$MODE" == scale* ]]; then
  BASELINE=${BASELINE:-BENCH_scale.json}
  TOLERANCE=${DDC_BENCH_TOLERANCE:-0.5}

  if [[ ! -x "$BUILD_DIR/bench/bench_scale" ]]; then
    cmake -B "$BUILD_DIR" -S . >/dev/null
    cmake --build "$BUILD_DIR" --target bench_scale -j "$(nproc)"
  fi

  # name|bench_scale arguments. Keep in sync with BENCH_scale.json.
  SMOKE_TIER=(
    "centroid/ring/10000|--topology ring --nodes 10000 --rounds 10"
    "centroid/grid/10000|--topology grid --nodes 10000 --rounds 10"
    "centroid/geometric/10000|--topology geometric --nodes 10000 --radius 0.022 --rounds 10"
    "centroid/er/10000|--topology er --nodes 10000 --er-prob 0.0016 --rounds 10"
    "gm/ring/10000|--protocol gm --topology ring --nodes 10000 --rounds 5"
  )
  FULL_TIER=(
    "centroid/ring/100000|--topology ring --nodes 100000 --rounds 10"
    "centroid/grid/100000|--topology grid --nodes 100000 --rounds 10"
    "centroid/geometric/100000|--topology geometric --nodes 100000 --radius 0.007 --rounds 10"
    "centroid/er/100000|--topology er --nodes 100000 --er-prob 0.00016 --rounds 10"
    "gm/ring/100000|--protocol gm --topology ring --nodes 100000 --rounds 3"
    "centroid/ring/1000000|--topology ring --nodes 1000000 --rounds 5"
    "centroid/grid/1000000|--topology grid --nodes 1000000 --rounds 5"
    "centroid/geometric/1000000|--topology geometric --nodes 1000000 --radius 0.0022 --rounds 5"
    "centroid/er/1000000|--topology er --nodes 1000000 --er-prob 0.000016 --rounds 5"
  )

  # run_tier <entry>... — emit "name rounds_per_s peak_rss_mb" per entry.
  run_tier() {
    local entry name args line
    for entry in "$@"; do
      name=${entry%%|*}
      args=${entry#*|}
      # shellcheck disable=SC2086
      line=$("$BUILD_DIR/bench/bench_scale" $args \
               --engine soa --threads 0 --seed 1 --name "$name")
      echo "$line" | awk -F'[:,]' -v name="$name" '{
        for (i = 1; i < NF; ++i) {
          if ($i ~ /"rounds_per_s"/) rps = $(i + 1)
          if ($i ~ /"peak_rss_mb"/) { rss = $(i + 1); gsub(/}/, "", rss) }
        }
        print name, rps, rss
      }'
    done
  }

  if [[ "$MODE" == scale-update ]]; then
    for block in gate full; do
      if [[ "$block" == gate ]]; then
        rows=$(run_tier "${SMOKE_TIER[@]}")
      else
        rows=$(run_tier "${FULL_TIER[@]}")
      fi
      echo
      echo "Fresh \"$block\" block for BENCH_scale.json:"
      echo "  \"$block\": {"
      printf '%s\n' "$rows" | awk '{
        printf "    \"%s\": {\"rounds_per_s\": %s, \"peak_rss_mb\": %s},\n",
               $1, $2, $3
      }' | sed '$ s/},$/}/'
      echo "  },"
    done
    exit 0
  fi

  echo "bench_gate: scale mode=$MODE (tolerance=±$(awk -v t="$TOLERANCE" 'BEGIN{printf "%.0f%%", t*100}') vs $BASELINE)"
  ENTRIES=("${SMOKE_TIER[@]}")
  if [[ "$MODE" == scale-full ]]; then
    ENTRIES+=("${FULL_TIER[@]}")
  fi

  STATUS=0
  while read -r name rps rss; do
    # The baseline entry lives on one line: "name": {"rounds_per_s": R,
    # "peak_rss_mb": M}. Absent entries fail the gate.
    base_rps=""
    base_rss=""
    read -r base_rps base_rss < <(awk -v key="\"$name\":" '
      index($0, key) {
        for (i = 1; i <= NF; ++i) {
          if ($i ~ /"rounds_per_s"/) { v = $(i + 1); gsub(/[,}]/, "", v); r = v }
          if ($i ~ /"peak_rss_mb"/) { v = $(i + 1); gsub(/[,}]/, "", v); m = v }
        }
        print r, m
      }' "$BASELINE") || true
    if [[ -z "${base_rps:-}" || -z "${base_rss:-}" ]]; then
      echo "bench_gate: FAIL  $name missing from $BASELINE" >&2
      STATUS=1
      continue
    fi
    verdict=$(awk -v rps="$rps" -v rss="$rss" -v brps="$base_rps" \
                  -v brss="$base_rss" -v t="$TOLERANCE" 'BEGIN {
      slow = rps < brps / (1 + t)
      fat = rss > brss * (1 + t)
      printf "%s rps=%.3g(min %.3g) rss=%.4gMB(max %.4g)",
             (slow || fat ? "FAIL" : "ok"), rps, brps / (1 + t),
             rss, brss * (1 + t)
    }')
    if [[ "$verdict" == FAIL* ]]; then
      echo "bench_gate: FAIL  $name  ${verdict#FAIL }" >&2
      STATUS=1
    else
      echo "bench_gate: ok    $name  ${verdict#ok }"
    fi
  done < <(run_tier "${ENTRIES[@]}")

  if [[ "$STATUS" -ne 0 ]]; then
    echo "bench_gate: SCALE REGRESSION — throughput or memory moved past tolerance." >&2
    echo "bench_gate: if intentional and signed off, refresh BENCH_scale.json with" >&2
    echo "bench_gate: 'scripts/bench_gate.sh --scale-update'." >&2
    exit 1
  fi
  echo "bench_gate: scale engine within ±$(awk -v t="$TOLERANCE" 'BEGIN{printf "%.0f%%", t*100}') of $BASELINE."
  exit 0
fi

BASELINE=${BASELINE:-BENCH_hotpath.json}

REPS=3
MIN_TIME=0.2
TOLERANCE=${DDC_BENCH_TOLERANCE:-0.25}
if [[ "$MODE" == smoke ]]; then
  REPS=1
  MIN_TIME=0.05
  TOLERANCE=${DDC_BENCH_TOLERANCE:-2.0}
fi

if [[ ! -x "$BUILD_DIR/bench/micro_ops" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target micro_ops -j "$(nproc)"
fi

# The gated kernel set IS the set of keys in the baseline's "gate"
# block: the --benchmark_filter is derived from those keys (exact,
# anchored alternation), so a gate entry can never silently drift out
# of the benchmark run. To gate a new kernel, add its key to the gate
# block (any placeholder value) and run --update for the real baseline.
FILTER=$(awk '
  /"gate": *\{/ { in_gate = 1; next }
  in_gate && /\}/ { in_gate = 0 }
  in_gate && /":/ {
    line = $0
    sub(/^[^"]*"/, "", line)
    sub(/".*$/, "", line)
    names = names (names == "" ? "" : "|") line
  }
  END { print "^(" names ")$" }
' "$BASELINE")
if [[ "$FILTER" == '^()$' ]]; then
  echo "bench_gate: no gate keys found in $BASELINE" >&2
  exit 2
fi

BENCH_ARGS=(
  "--benchmark_filter=$FILTER"
  "--benchmark_min_time=$MIN_TIME"
  "--benchmark_format=json"
)
if [[ "$REPS" -gt 1 ]]; then
  BENCH_ARGS+=(
    "--benchmark_repetitions=$REPS"
    "--benchmark_report_aggregates_only=true"
  )
fi

echo "bench_gate: $MODE mode (reps=$REPS min_time=${MIN_TIME}s tolerance=+$(awk -v t="$TOLERANCE" 'BEGIN{printf "%.0f%%", t*100}'))"
RESULT_JSON=$("$BUILD_DIR/bench/micro_ops" "${BENCH_ARGS[@]}" 2>/dev/null)

# Emit "name real_time" per gated kernel. With repetitions we read the
# _median aggregate; single-rep runs report plain names.
measured() {
  printf '%s\n' "$RESULT_JSON" | awk -v reps="$REPS" '
    /"name":/ {
      name = $2
      gsub(/[",]/, "", name)
    }
    /"real_time":/ {
      rt = $2
      gsub(/,/, "", rt)
      if (reps > 1) {
        if (sub(/_median$/, "", name)) print name, rt
      } else {
        print name, rt
      }
    }'
}

if [[ "$MODE" == update ]]; then
  echo
  echo 'Fresh "gate" block (units match BENCH_hotpath.json):'
  echo '  "gate": {'
  measured | awk '{printf "    \"%s\": %g,\n", $1, $2}' | sed '$ s/,$//'
  echo '  },'
  exit 0
fi

# Compare against the baseline. The baseline "gate" object has one
# "name": value pair per line.
STATUS=0
while read -r name actual; do
  baseline=$(awk -v key="\"$name\":" '
    /"gate": *\{/ { in_gate = 1 }
    in_gate && /\}/ && !/\{/ { in_gate = 0 }
    in_gate && index($0, key) {
      v = $NF
      gsub(/,/, "", v)
      print v
    }' "$BASELINE")
  if [[ -z "$baseline" ]]; then
    echo "bench_gate: FAIL  $name missing from $BASELINE" >&2
    STATUS=1
    continue
  fi
  verdict=$(awk -v a="$actual" -v b="$baseline" -v t="$TOLERANCE" 'BEGIN {
    limit = b * (1 + t)
    printf "%s %.4g %.4g %.3fx", (a > limit ? "FAIL" : "ok"), a, limit, a / b
  }')
  read -r tag got limit ratio <<<"$verdict"
  if [[ "$tag" == FAIL ]]; then
    echo "bench_gate: FAIL  $name  median=$got > limit=$limit (${ratio} of baseline $baseline)" >&2
    STATUS=1
  else
    echo "bench_gate: ok    $name  median=$got  limit=$limit  (${ratio} of baseline)"
  fi
done < <(measured)

if [[ "$STATUS" -ne 0 ]]; then
  echo "bench_gate: REGRESSION — a gated hot-path kernel slowed past the tolerance." >&2
  echo "bench_gate: if the slowdown is intentional and signed off, refresh the" >&2
  echo "bench_gate: baseline with 'scripts/bench_gate.sh --update'." >&2
  exit 1
fi
echo "bench_gate: all gated kernels within +$(awk -v t="$TOLERANCE" 'BEGIN{printf "%.0f%%", t*100}') of $BASELINE."
