#!/usr/bin/env bash
# Benchmark regression gate for the hot-path kernels.
#
# Runs the gated subset of bench/micro_ops (greedy partition, EM E-step
# scoring, full EM reduction, classifier exchange, moment matching,
# expected-log-pdf, 512-node GM round) and compares each kernel's median
# real_time against the committed baseline in BENCH_hotpath.json. Fails
# if any gated kernel is more than TOLERANCE above its baseline.
#
# Usage:
#   scripts/bench_gate.sh            # full gate: 3 repetitions, 0.2s each
#   scripts/bench_gate.sh --smoke    # quick CI pass: 1 repetition, 0.05s,
#                                    # loose 2.0x tolerance (catches the
#                                    # accidental-O(m^3) class of regression
#                                    # without flaking on scheduler noise)
#   scripts/bench_gate.sh --update   # print a fresh "gate" JSON block to
#                                    # paste into BENCH_hotpath.json after a
#                                    # signed-off performance change
#
# Environment:
#   BUILD_DIR      build tree holding bench/micro_ops (default: build;
#                  the top-level CMakeLists defaults to RelWithDebInfo,
#                  so the default tree is already optimized)
#   BASELINE       baseline file (default: BENCH_hotpath.json)
#   DDC_BENCH_TOLERANCE  override the regression tolerance, e.g. 0.25
#                  means "fail if median > baseline * 1.25"
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BASELINE=${BASELINE:-BENCH_hotpath.json}

MODE=full
case "${1:-}" in
  --smoke) MODE=smoke ;;
  --update) MODE=update ;;
  "") ;;
  *) echo "usage: $0 [--smoke|--update]" >&2; exit 2 ;;
esac

REPS=3
MIN_TIME=0.2
TOLERANCE=${DDC_BENCH_TOLERANCE:-0.25}
if [[ "$MODE" == smoke ]]; then
  REPS=1
  MIN_TIME=0.05
  TOLERANCE=${DDC_BENCH_TOLERANCE:-2.0}
fi

if [[ ! -x "$BUILD_DIR/bench/micro_ops" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target micro_ops -j "$(nproc)"
fi

# Keep this filter in sync with the "command" field of BENCH_hotpath.json.
FILTER='BM_GreedyPartition/|BM_EmEStepHoisted|BM_ReduceEm/14|BM_GmNetworkRound/512/1|BM_ClassifierExchange/7|BM_MomentMatch/14$|BM_ExpectedLogPdf'

BENCH_ARGS=(
  "--benchmark_filter=$FILTER"
  "--benchmark_min_time=$MIN_TIME"
  "--benchmark_format=json"
)
if [[ "$REPS" -gt 1 ]]; then
  BENCH_ARGS+=(
    "--benchmark_repetitions=$REPS"
    "--benchmark_report_aggregates_only=true"
  )
fi

echo "bench_gate: $MODE mode (reps=$REPS min_time=${MIN_TIME}s tolerance=+$(awk -v t="$TOLERANCE" 'BEGIN{printf "%.0f%%", t*100}'))"
RESULT_JSON=$("$BUILD_DIR/bench/micro_ops" "${BENCH_ARGS[@]}" 2>/dev/null)

# Emit "name real_time" per gated kernel. With repetitions we read the
# _median aggregate; single-rep runs report plain names.
measured() {
  printf '%s\n' "$RESULT_JSON" | awk -v reps="$REPS" '
    /"name":/ {
      name = $2
      gsub(/[",]/, "", name)
    }
    /"real_time":/ {
      rt = $2
      gsub(/,/, "", rt)
      if (reps > 1) {
        if (sub(/_median$/, "", name)) print name, rt
      } else {
        print name, rt
      }
    }'
}

if [[ "$MODE" == update ]]; then
  echo
  echo 'Fresh "gate" block (units match BENCH_hotpath.json):'
  echo '  "gate": {'
  measured | awk '{printf "    \"%s\": %g,\n", $1, $2}' | sed '$ s/,$//'
  echo '  },'
  exit 0
fi

# Compare against the baseline. The baseline "gate" object has one
# "name": value pair per line.
STATUS=0
while read -r name actual; do
  baseline=$(awk -v key="\"$name\":" '
    /"gate": *\{/ { in_gate = 1 }
    in_gate && /\}/ && !/\{/ { in_gate = 0 }
    in_gate && index($0, key) {
      v = $NF
      gsub(/,/, "", v)
      print v
    }' "$BASELINE")
  if [[ -z "$baseline" ]]; then
    echo "bench_gate: FAIL  $name missing from $BASELINE" >&2
    STATUS=1
    continue
  fi
  verdict=$(awk -v a="$actual" -v b="$baseline" -v t="$TOLERANCE" 'BEGIN {
    limit = b * (1 + t)
    printf "%s %.4g %.4g %.3fx", (a > limit ? "FAIL" : "ok"), a, limit, a / b
  }')
  read -r tag got limit ratio <<<"$verdict"
  if [[ "$tag" == FAIL ]]; then
    echo "bench_gate: FAIL  $name  median=$got > limit=$limit (${ratio} of baseline $baseline)" >&2
    STATUS=1
  else
    echo "bench_gate: ok    $name  median=$got  limit=$limit  (${ratio} of baseline)"
  fi
done < <(measured)

if [[ "$STATUS" -ne 0 ]]; then
  echo "bench_gate: REGRESSION — a gated hot-path kernel slowed past the tolerance." >&2
  echo "bench_gate: if the slowdown is intentional and signed off, refresh the" >&2
  echo "bench_gate: baseline with 'scripts/bench_gate.sh --update'." >&2
  exit 1
fi
echo "bench_gate: all gated kernels within +$(awk -v t="$TOLERANCE" 'BEGIN{printf "%.0f%%", t*100}') of $BASELINE."
