#!/usr/bin/env bash
# Determinism lint gate.
#
# Runs tools/ddclint over the modules whose output must be bit-identical
# for a given (configuration, seed) — the deterministic core of the
# repo. Modules that legitimately touch real time, sockets or hash maps
# (net, io, metrics, cli, workload) are NOT scanned: nondeterminism is
# their job. Inside scanned modules, audited sinks (the --timing probes)
# carry inline `// ddclint: allow(<rule>)` markers.
#
# The linter's own self-test runs first: it plants one violation per
# rule and fails the gate if any rule has gone blind, so a regression in
# the lint itself cannot silently green-light the tree.
#
# Usage:
#   scripts/lint_determinism.sh           # self-test + scan
#   BUILD_DIR=build scripts/lint_determinism.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
DDCLINT="$BUILD_DIR/tools/ddclint"

if [[ ! -x "$DDCLINT" ]]; then
  echo "lint_determinism: building ddclint..."
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target ddclint -j "$(nproc)" >/dev/null
fi

"$DDCLINT" --self-test

# The deterministic modules: everything whose behaviour is a pure
# function of (inputs, options, seed).
"$DDCLINT" \
  src/common \
  src/linalg \
  src/stats \
  src/core \
  src/summaries \
  src/em \
  src/partition \
  src/exec \
  src/sim \
  src/gossip \
  src/wire \
  src/shard \
  src/audit

echo "Determinism lint passed."
