// Ablation — violating the reliable-channel assumption.
//
// The model (paper Section 3.1) assumes reliable links: every sent message
// is eventually delivered. This bench deliberately breaks that — each
// message is lost independently with probability p — and measures what it
// costs: lost messages carry weight out of the system permanently, so
// total weight decays geometrically, yet the *summaries* (which are ratios
// and averages) keep converging; what degrades is the precision of the
// relative weights and, at extreme loss, the ability to keep sparse
// collections alive.
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/summaries/centroid.hpp>

#include "bench_util.hpp"

int main() {
  const std::size_t n = 64;
  const std::size_t rounds = 400;

  std::cout << "=== Ablation: message loss (n = " << n
            << ", complete graph, centroid algorithm, " << rounds
            << " rounds) ===\n\n";

  ddc::stats::Rng rng(150);
  std::vector<ddc::linalg::Vector> inputs;
  std::size_t low_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool low = i % 3 != 2;
    low_count += low ? 1 : 0;
    inputs.push_back(ddc::linalg::Vector{
        low ? rng.normal(0.0, 1.0) : rng.normal(100.0, 1.0)});
  }
  const double true_fraction =
      static_cast<double>(low_count) / static_cast<double>(n);
  // Exact sample mean of the low cluster — the destination the summaries
  // converge to in a loss-free run.
  double low_mean = 0.0;
  for (const auto& v : inputs) {
    if (v[0] < 50.0) low_mean += v[0] / static_cast<double>(low_count);
  }

  const std::vector<double> losses = {0.0, 0.01, 0.05, 0.1, 0.25, 0.5};
  // Each loss level is an independent run — fan across the bench pool and
  // collect printable rows in order.
  const auto rows = ddc::bench::sweep(losses.size(), [&](std::size_t li) {
    const double loss = losses[li];
    ddc::gossip::NetworkConfig config;
    config.k = 2;
    config.quanta_per_unit = std::int64_t{1} << 40;
    config.seed = 151;
    ddc::sim::RoundRunnerOptions options;
    options.message_loss_probability = loss;
    options.seed = 152;
    auto runner = ddc::sim::make_centroid_round_runner(
        ddc::sim::Topology::complete(n), inputs, config, options);
    runner.run_rounds(rounds);

    const double initial_quanta =
        static_cast<double>(n) * static_cast<double>(config.quanta_per_unit);
    const double remaining =
        static_cast<double>(ddc::metrics::total_quanta(runner.nodes())) /
        initial_quanta;

    double worst_centroid = 0.0;
    double worst_share = 0.0;
    for (const auto& node : runner.nodes()) {
      const auto& c = node.classification();
      for (std::size_t j = 0; j < c.size(); ++j) {
        if (c[j].summary[0] < 50.0) {
          worst_centroid =
              std::max(worst_centroid, std::abs(c[j].summary[0] - low_mean));
          worst_share = std::max(
              worst_share, std::abs(c.relative_weight(j) - true_fraction));
        }
      }
    }
    return std::vector<double>{
        loss, 100.0 * remaining,
        ddc::metrics::max_disagreement_vs_first<ddc::summaries::CentroidPolicy>(
            runner.nodes()),
        worst_centroid, worst_share};
  });

  ddc::io::Table table({"loss prob", "weight remaining %", "disagreement",
                        "low-cluster centroid err", "weight-share err"});
  for (const auto& row : rows) {
    table.add_row({row[0], row[1], row[2], row[3], row[4]});
  }
  table.print(std::cout);
  std::cout << "\n(summaries survive heavy loss — they are weight-relative — "
               "but absolute weight drains geometrically, which is why the "
               "paper's model insists on reliable links)\n";
  return 0;
}
