// Microbenchmarks (google-benchmark) for the computational kernels the
// protocol spends its time in: small-matrix factorizations, Gaussian
// densities, moment matching, EM mixture reduction, the classifier's
// split/receive cycle, and the simulator's event loop.
#include <benchmark/benchmark.h>

#include <cstdint>

#include <ddc/core/classifier.hpp>
#include <ddc/em/mixture_reduction.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/gossip/runners.hpp>
#include <ddc/linalg/cholesky.hpp>
#include <ddc/linalg/eigen_sym.hpp>
#include <ddc/linalg/simd.hpp>
#include <ddc/partition/greedy.hpp>
#include <ddc/sim/event_queue.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/stats/gaussian.hpp>
#include <ddc/stats/gaussian_batch.hpp>
#include <ddc/summaries/centroid.hpp>

namespace {

using ddc::linalg::Matrix;
using ddc::linalg::Vector;
using ddc::stats::Gaussian;
using ddc::stats::GaussianMixture;

Matrix random_spd(std::size_t d, ddc::stats::Rng& rng) {
  Matrix b(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) b(r, c) = rng.normal();
  }
  Matrix a = b * ddc::linalg::transpose(b);
  for (std::size_t i = 0; i < d; ++i) a(i, i) += 0.5;
  return a;
}

void BM_CholeskyFactorize(benchmark::State& state) {
  ddc::stats::Rng rng(1);
  const Matrix a = random_spd(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    ddc::linalg::Cholesky f(a);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_CholeskyFactorize)->Arg(2)->Arg(4)->Arg(8);

void BM_EigenSym(benchmark::State& state) {
  ddc::stats::Rng rng(2);
  const Matrix a = random_spd(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto e = ddc::linalg::eigen_sym(a);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_EigenSym)->Arg(2)->Arg(4);

void BM_GaussianLogPdf(benchmark::State& state) {
  ddc::stats::Rng rng(3);
  const Gaussian g(Vector{0.0, 0.0}, random_spd(2, rng));
  const Vector x{0.5, -0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.log_pdf(x));
  }
}
BENCHMARK(BM_GaussianLogPdf);

void BM_ExpectedLogPdf(benchmark::State& state) {
  ddc::stats::Rng rng(4);
  const Gaussian a(Vector{0.0, 0.0}, random_spd(2, rng));
  const Gaussian b(Vector{1.0, 1.0}, random_spd(2, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddc::stats::expected_log_pdf(a, b));
  }
}
BENCHMARK(BM_ExpectedLogPdf);

void BM_MomentMatch(benchmark::State& state) {
  ddc::stats::Rng rng(5);
  std::vector<ddc::stats::WeightedGaussian> parts;
  for (int i = 0; i < state.range(0); ++i) {
    parts.push_back({rng.uniform(0.5, 2.0),
                     Gaussian(Vector{rng.normal(), rng.normal()},
                              random_spd(2, rng))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddc::stats::moment_match(parts));
  }
}
BENCHMARK(BM_MomentMatch)->Arg(2)->Arg(8)->Arg(14);

void BM_ReduceEm(benchmark::State& state) {
  ddc::stats::Rng rng(6);
  GaussianMixture input;
  for (int i = 0; i < state.range(0); ++i) {
    const double cx = (i % 3) * 10.0;
    input.add({rng.uniform(0.5, 2.0),
               Gaussian(Vector{rng.normal(cx, 1.0), rng.normal()},
                        random_spd(2, rng))});
  }
  for (auto _ : state) {
    ddc::stats::Rng em_rng(7);
    benchmark::DoNotOptimize(
        ddc::em::reduce_em(input, 3, em_rng));
  }
}
BENCHMARK(BM_ReduceEm)->Arg(6)->Arg(14);

void BM_ReduceRunnalls(benchmark::State& state) {
  ddc::stats::Rng rng(8);
  GaussianMixture input;
  for (int i = 0; i < state.range(0); ++i) {
    const double cx = (i % 3) * 10.0;
    input.add({rng.uniform(0.5, 2.0),
               Gaussian(Vector{rng.normal(cx, 1.0), rng.normal()},
                        random_spd(2, rng))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddc::em::reduce_runnalls(input, 3));
  }
}
BENCHMARK(BM_ReduceRunnalls)->Arg(6)->Arg(14);

// --- Hot-path benchmarks gated by scripts/bench_gate.sh ------------------
// Names and shapes are pinned by BENCH_hotpath.json; rename in both places.

std::vector<ddc::core::WeightedSummary<Vector>> partition_inputs(
    std::size_t m) {
  ddc::stats::Rng rng(12);
  std::vector<ddc::core::WeightedSummary<Vector>> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    out.push_back({Vector{rng.normal(i % 2 == 0 ? 0.0 : 10.0, 1.0),
                          rng.normal()},
                   static_cast<double>(1 + rng.uniform_index(4))});
  }
  return out;
}

void BM_GreedyPartition(benchmark::State& state) {
  const auto inputs = partition_inputs(static_cast<std::size_t>(state.range(0)));
  const ddc::partition::GreedyDistancePartition<ddc::summaries::CentroidPolicy>
      policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.partition(inputs, 2));
  }
}
BENCHMARK(BM_GreedyPartition)->Arg(16)->Arg(64)->Arg(256);

void BM_CentroidDistanceBatch(benchmark::State& state) {
  // The greedy partition's distance-matrix fill in isolation: distances
  // from one d-dimensional point to 256 packed points through the
  // dispatched batch kernel (lanewise AVX2 on this host, scalar
  // fallback elsewhere — both bit-identical to linalg::distance2).
  const auto d = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPoints = 256;
  ddc::stats::Rng rng(33);
  std::vector<double> a(d);
  std::vector<double> bs(kPoints * d);
  for (auto& v : a) v = rng.normal();
  for (auto& v : bs) v = rng.normal();
  std::vector<double> out(kPoints);
  const ddc::linalg::simd::DistanceBatchFn kernel =
      ddc::linalg::simd::batch_distance_kernel();
  for (auto _ : state) {
    kernel(a.data(), bs.data(), kPoints, out.data(), d);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CentroidDistanceBatch)->Arg(2)->Arg(4);

void BM_GreedyPartitionNaive(benchmark::State& state) {
  // The "before" side: the retained O(m³) reference implementation. Not
  // gated (it is the thing the gate protects against regressing TO).
  const auto inputs = partition_inputs(static_cast<std::size_t>(state.range(0)));
  const ddc::partition::NaiveGreedyDistancePartition<
      ddc::summaries::CentroidPolicy>
      policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.partition(inputs, 2));
  }
}
BENCHMARK(BM_GreedyPartitionNaive)->Arg(16)->Arg(64)->Arg(256);

GaussianMixture estep_mixture(std::size_t m, std::uint64_t seed) {
  ddc::stats::Rng rng(seed);
  GaussianMixture out;
  for (std::size_t i = 0; i < m; ++i) {
    const double cx = static_cast<double>(i % 3) * 10.0;
    out.add({rng.uniform(0.5, 2.0),
             Gaussian(Vector{rng.normal(cx, 1.0), rng.normal()},
                      random_spd(2, rng))});
  }
  return out;
}

void BM_EmEStepHoisted(benchmark::State& state) {
  // One EM E step's scoring work as run_em now does it: factorize each
  // model component once, then score every (input, model) pair.
  const GaussianMixture inputs = estep_mixture(14, 13);
  const GaussianMixture models = estep_mixture(7, 14);
  for (auto _ : state) {
    std::vector<ddc::stats::ExpectedLogPdfScorer> scorers;
    scorers.reserve(models.size());
    for (std::size_t j = 0; j < models.size(); ++j) {
      scorers.emplace_back(models[j].gaussian);
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      for (const auto& s : scorers) acc += s.score(inputs[i].gaussian);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EmEStepHoisted);

void BM_EmEStepBatched(benchmark::State& state) {
  // The same 14x7 workload through the E step's current entry point:
  // pack the inputs once (as run_em does per optimization run), then one
  // score_batch pass per model per "iteration".
  const GaussianMixture inputs = estep_mixture(14, 13);
  const GaussianMixture models = estep_mixture(7, 14);
  ddc::stats::GaussianBatch batch;
  batch.assign(inputs);
  std::vector<double> scores(models.size() * inputs.size());
  for (auto _ : state) {
    std::vector<ddc::stats::ExpectedLogPdfScorer> scorers;
    scorers.reserve(models.size());
    for (std::size_t j = 0; j < models.size(); ++j) {
      scorers.emplace_back(models[j].gaussian);
    }
    for (std::size_t j = 0; j < scorers.size(); ++j) {
      scorers[j].score_batch(batch, scores.data() + j * inputs.size());
    }
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_EmEStepBatched);

void BM_ScoreBatch(benchmark::State& state) {
  // Pure batched-scoring throughput at the paper's dimensions: 32 inputs
  // x 4 models, scorers and SoA batch prebuilt so only score_batch runs.
  const auto d = static_cast<std::size_t>(state.range(0));
  ddc::stats::Rng rng(21);
  GaussianMixture inputs;
  for (std::size_t i = 0; i < 32; ++i) {
    Vector mean(d);
    for (std::size_t c = 0; c < d; ++c) mean[c] = rng.normal();
    inputs.add({1.0, Gaussian(mean, random_spd(d, rng))});
  }
  std::vector<ddc::stats::ExpectedLogPdfScorer> scorers;
  for (std::size_t j = 0; j < 4; ++j) {
    Vector mean(d);
    for (std::size_t c = 0; c < d; ++c) mean[c] = rng.normal();
    scorers.emplace_back(Gaussian(mean, random_spd(d, rng)));
  }
  ddc::stats::GaussianBatch batch;
  batch.assign(inputs);
  std::vector<double> scores(scorers.size() * batch.size());
  for (auto _ : state) {
    for (std::size_t j = 0; j < scorers.size(); ++j) {
      scorers[j].score_batch(batch, scores.data() + j * batch.size());
    }
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_ScoreBatch)->Arg(2)->Arg(4);

void BM_MomentMatchFixed(benchmark::State& state) {
  // Moment matching with the dimension as the sweep axis — exercises the
  // fixed-d add_scaled/add_scaled_spread kernels (8 parts).
  const auto d = static_cast<std::size_t>(state.range(0));
  ddc::stats::Rng rng(22);
  std::vector<ddc::stats::WeightedGaussian> parts;
  for (int i = 0; i < 8; ++i) {
    Vector mean(d);
    for (std::size_t c = 0; c < d; ++c) mean[c] = rng.normal();
    parts.push_back({rng.uniform(0.5, 2.0), Gaussian(mean, random_spd(d, rng))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddc::stats::moment_match(parts));
  }
}
BENCHMARK(BM_MomentMatchFixed)->Arg(2)->Arg(4);

void BM_EmEStepPairwise(benchmark::State& state) {
  // The "before" side: the free function refactorizes the model for every
  // pair, which is what the E step used to do. Not gated.
  const GaussianMixture inputs = estep_mixture(14, 13);
  const GaussianMixture models = estep_mixture(7, 14);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      for (std::size_t j = 0; j < models.size(); ++j) {
        acc += ddc::stats::expected_log_pdf(inputs[i].gaussian,
                                            models[j].gaussian);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EmEStepPairwise);

// --------------------------------------------------------------------------

void BM_ClassifierExchange(benchmark::State& state) {
  // One full split→receive cycle between two GM nodes.
  ddc::stats::Rng rng(9);
  std::vector<Vector> inputs = {Vector{0.0, 0.0}, Vector{5.0, 5.0}};
  ddc::gossip::NetworkConfig config;
  config.k = static_cast<std::size_t>(state.range(0));
  auto nodes = ddc::gossip::make_gm_nodes(inputs, config);
  for (auto _ : state) {
    auto msg = nodes[0].prepare_message();
    if (!msg.empty()) {
      std::vector<ddc::gossip::GmNode::Message> batch;
      batch.push_back(std::move(msg));
      nodes[1].absorb(std::move(batch));
    }
    auto back = nodes[1].prepare_message();
    if (!back.empty()) {
      std::vector<ddc::gossip::GmNode::Message> batch;
      batch.push_back(std::move(back));
      nodes[0].absorb(std::move(batch));
    }
  }
}
BENCHMARK(BM_ClassifierExchange)->Arg(2)->Arg(7);

void BM_EventQueueSchedule(benchmark::State& state) {
  for (auto _ : state) {
    ddc::sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(static_cast<double>((i * 7919) % 1000), [] {});
    }
    q.run(1000);
    benchmark::DoNotOptimize(q.executed());
  }
}
BENCHMARK(BM_EventQueueSchedule)->Unit(benchmark::kMicrosecond);

void BM_PushSumRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ddc::stats::Rng rng(10);
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) inputs.push_back(Vector{rng.normal()});
  auto runner = ddc::sim::make_push_sum_round_runner(
      ddc::sim::Topology::complete(n), inputs);
  for (auto _ : state) {
    runner.run_round();
  }
}
BENCHMARK(BM_PushSumRound)->Arg(1000)->Unit(benchmark::kMicrosecond);

void BM_GmNetworkRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ddc::stats::Rng rng(11);
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(i % 2 == 0 ? 0.0 : 10.0, 1.0),
                            rng.normal()});
  }
  ddc::gossip::NetworkConfig config;
  config.k = 2;
  ddc::sim::RoundRunnerOptions options;
  options.parallelism = static_cast<std::size_t>(state.range(1));
  auto runner = ddc::sim::make_gm_round_runner(ddc::sim::Topology::complete(n),
                                               inputs, config, options);
  for (auto _ : state) {
    runner.run_round();
  }
}
BENCHMARK(BM_GmNetworkRound)
    ->Args({100, 1})
    ->Args({512, 1})  // gated: the BENCH_hotpath.json round-throughput pin
    ->Args({1000, 1})
    ->Args({1000, 4})
    ->Args({1000, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
