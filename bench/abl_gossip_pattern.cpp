// Ablation — gossip pattern and neighbor selection.
//
// Section 4.1 allows round-robin or randomized neighbor choice and push /
// push-pull exchange patterns. This bench measures rounds-to-agreement for
// each combination (note push-pull moves 2 messages per initiator per
// round, so compare message counts, not just rounds).
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/summaries/centroid.hpp>

#include "bench_util.hpp"

int main() {
  const std::size_t n = 64;
  std::cout << "=== Ablation: gossip pattern x neighbor selection (n = " << n
            << ", torus, centroid algorithm) ===\n\n";

  ddc::stats::Rng rng(90);
  std::vector<ddc::linalg::Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(ddc::linalg::Vector{
        i % 2 == 0 ? rng.normal(0.0, 1.0) : rng.normal(100.0, 1.0)});
  }

  struct Combo {
    const char* name;
    ddc::sim::NeighborSelection selection;
    ddc::sim::GossipPattern pattern;
  };
  const Combo combos[] = {
      {"push / round-robin", ddc::sim::NeighborSelection::round_robin,
       ddc::sim::GossipPattern::push},
      {"push / uniform", ddc::sim::NeighborSelection::uniform_random,
       ddc::sim::GossipPattern::push},
      {"push-pull / round-robin", ddc::sim::NeighborSelection::round_robin,
       ddc::sim::GossipPattern::push_pull},
      {"push-pull / uniform", ddc::sim::NeighborSelection::uniform_random,
       ddc::sim::GossipPattern::push_pull},
  };

  // The four combos are independent runs — fan them across the bench pool.
  const auto rounds_per_combo =
      ddc::bench::sweep(std::size(combos), [&](std::size_t ci) {
        const Combo& combo = combos[ci];
        ddc::gossip::NetworkConfig config;
        config.k = 2;
        config.quanta_per_unit = std::int64_t{1} << 40;
        config.seed = 91;
        ddc::sim::RoundRunnerOptions options;
        options.selection = combo.selection;
        options.pattern = combo.pattern;
        options.seed = 92;
        auto runner = ddc::sim::make_centroid_round_runner(
            ddc::sim::Topology::grid(8, 8, /*torus=*/true), inputs, config,
            options);
        return ddc::bench::run_until_agreement<ddc::summaries::CentroidPolicy>(
            runner, 1e-3, 5, 10000);
      });

  ddc::io::Table table({"pattern / selection", "rounds to agreement",
                        "messages (approx)"});
  for (std::size_t ci = 0; ci < std::size(combos); ++ci) {
    const Combo& combo = combos[ci];
    const std::size_t rounds = rounds_per_combo[ci];
    const std::size_t per_round =
        combo.pattern == ddc::sim::GossipPattern::push ? n : 2 * n;
    table.add_row({std::string(combo.name), static_cast<long long>(rounds),
                   static_cast<long long>(rounds * per_round)});
  }
  table.print(std::cout);
  std::cout << "\n(push-pull roughly halves rounds at twice the messages "
               "per round — useful when latency dominates)\n";
  return 0;
}
