// Ablation — message size on the wire.
//
// The paper claims its message size "is similar to [Datta et al. /
// Kowalczyk & Vlassis], dependent only on the parameters of the dataset,
// and not on the number of nodes". With the binary wire format this is
// measurable in bytes: we encode real protocol messages from live runs at
// several network sizes and report the observed sizes, plus the analytic
// cost per collection for each summary type.
#include <algorithm>
#include <iostream>

#include <ddc/gossip/network.hpp>
#include <ddc/io/table.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/wire/serialize.hpp>

int main() {
  std::cout << "=== Ablation: wire message size vs network size ===\n\n";

  ddc::io::Table table({"n", "k", "max GM msg bytes", "max centroid msg bytes",
                        "push-sum msg bytes"});
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    for (std::size_t k : {2u, 7u}) {
      ddc::stats::Rng rng(110);
      std::vector<ddc::linalg::Vector> inputs;
      for (std::size_t i = 0; i < n; ++i) {
        inputs.push_back(ddc::linalg::Vector{
            rng.normal(i % 2 == 0 ? 0.0 : 20.0, 1.0), rng.normal()});
      }
      ddc::gossip::NetworkConfig config;
      config.k = k;
      config.seed = 111;

      ddc::sim::RoundRunner<ddc::gossip::GmNode> gm(
          ddc::sim::Topology::complete(n),
          ddc::gossip::make_gm_nodes(inputs, config));
      ddc::sim::RoundRunner<ddc::gossip::CentroidNode> cent(
          ddc::sim::Topology::complete(n),
          ddc::gossip::make_centroid_nodes(inputs, config));
      gm.run_rounds(15);    // let classifications fill to k collections
      cent.run_rounds(15);

      std::size_t max_gm = 0;
      for (auto& node : gm.nodes()) {
        max_gm = std::max(
            max_gm, ddc::wire::encode_classification(node.prepare_message())
                        .size());
      }
      std::size_t max_cent = 0;
      for (auto& node : cent.nodes()) {
        max_cent = std::max(
            max_cent, ddc::wire::encode_classification(node.prepare_message())
                          .size());
      }
      ddc::gossip::PushSumNode ps(inputs[0]);
      const std::size_t ps_bytes =
          ddc::wire::encode_push_sum(ps.prepare_message()).size();

      table.add_row({static_cast<long long>(n), static_cast<long long>(k),
                     static_cast<long long>(max_gm),
                     static_cast<long long>(max_cent),
                     static_cast<long long>(ps_bytes)});
    }
  }
  table.print(std::cout);
  std::cout
      << "\nper-collection cost in R^d: centroid 8d+9, Gaussian "
         "8(d + d(d+1)/2)+9+1 bytes; TOTAL message cost is k·(that) + 6 "
         "header bytes — independent of n, the paper's bandwidth claim\n";
  return 0;
}
