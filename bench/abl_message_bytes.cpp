// Ablation — message size on the wire.
//
// The paper claims its message size "is similar to [Datta et al. /
// Kowalczyk & Vlassis], dependent only on the parameters of the dataset,
// and not on the number of nodes". With the binary wire format this is
// measurable in bytes: we encode real protocol messages from live runs at
// several network sizes and report the observed sizes, plus the analytic
// cost per collection for each summary type.
#include <algorithm>
#include <array>
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/wire/serialize.hpp>

#include "bench_util.hpp"

int main() {
  std::cout << "=== Ablation: wire message size vs network size ===\n\n";

  // Flatten the n × k grid; every cell is an independent pair of runs.
  const std::vector<std::size_t> sizes = {16, 64, 256, 1024};
  const std::vector<std::size_t> ks = {2, 7};
  const auto rows =
      ddc::bench::sweep(sizes.size() * ks.size(), [&](std::size_t cell) {
        const std::size_t n = sizes[cell / ks.size()];
        const std::size_t k = ks[cell % ks.size()];
        ddc::stats::Rng rng(110);
        std::vector<ddc::linalg::Vector> inputs;
        for (std::size_t i = 0; i < n; ++i) {
          inputs.push_back(ddc::linalg::Vector{
              rng.normal(i % 2 == 0 ? 0.0 : 20.0, 1.0), rng.normal()});
        }
        ddc::gossip::NetworkConfig config;
        config.k = k;
        config.seed = 111;

        auto gm = ddc::sim::make_gm_round_runner(
            ddc::sim::Topology::complete(n), inputs, config);
        auto cent = ddc::sim::make_centroid_round_runner(
            ddc::sim::Topology::complete(n), inputs, config);
        gm.run_rounds(15);  // let classifications fill to k collections
        cent.run_rounds(15);

        std::size_t max_gm = 0;
        for (auto& node : gm.nodes()) {
          max_gm = std::max(
              max_gm, ddc::wire::encode_classification(node.prepare_message())
                          .size());
        }
        std::size_t max_cent = 0;
        for (auto& node : cent.nodes()) {
          max_cent = std::max(
              max_cent, ddc::wire::encode_classification(node.prepare_message())
                            .size());
        }
        ddc::gossip::PushSumNode ps(inputs[0]);
        const std::size_t ps_bytes =
            ddc::wire::encode_push_sum(ps.prepare_message()).size();
        return std::array<std::size_t, 5>{n, k, max_gm, max_cent, ps_bytes};
      });

  ddc::io::Table table({"n", "k", "max GM msg bytes", "max centroid msg bytes",
                        "push-sum msg bytes"});
  for (const auto& row : rows) {
    table.add_row({static_cast<long long>(row[0]),
                   static_cast<long long>(row[1]),
                   static_cast<long long>(row[2]),
                   static_cast<long long>(row[3]),
                   static_cast<long long>(row[4])});
  }
  table.print(std::cout);
  std::cout
      << "\nper-collection cost in R^d: centroid 8d+9, Gaussian "
         "8(d + d(d+1)/2)+9+1 bytes; TOTAL message cost is k·(that) + 6 "
         "header bytes — independent of n, the paper's bandwidth claim\n";
  return 0;
}
