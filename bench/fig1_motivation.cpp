// Figure 1 — why centroids are not enough.
//
// The paper's motivating figure shows a new value that lies closer to
// collection A's centroid but is far more likely to belong to collection B
// because B's variance is much larger. This bench quantifies that: values
// are drawn from B and associated with A or B using (a) the centroid rule
// (nearest mean — all the centroids algorithm can do) and (b) the Gaussian
// rule (maximum posterior). We sweep B's standard deviation and report the
// fraction of draws associated correctly.
//
// Expected shape: the Gaussian rule stays near its Bayes-optimal accuracy
// while the centroid rule collapses toward ~50 % (and below, for draws
// that land on A's side) as σ_B grows.
#include <cmath>
#include <iostream>

#include <ddc/io/table.hpp>
#include <ddc/stats/mixture.hpp>
#include <ddc/stats/rng.hpp>

int main() {
  using ddc::linalg::Matrix;
  using ddc::linalg::Vector;
  using ddc::stats::Gaussian;

  std::cout << "=== Figure 1: associating a new value — centroid rule vs "
               "Gaussian rule ===\n"
            << "A = N(0, 0.5^2), B = N(4, sigma_B^2); draws come from B\n\n";

  ddc::stats::Rng rng(1);
  const Gaussian a(Vector{0.0}, Matrix{{0.25}});
  const int draws = 20000;

  ddc::io::Table table(
      {"sigma_B", "centroid rule acc", "gaussian rule acc"}, 3);
  for (double sigma_b : {0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0}) {
    const Gaussian b(Vector{4.0}, Matrix{{sigma_b * sigma_b}});
    ddc::stats::GaussianMixture mixture;
    mixture.add({0.5, a});
    mixture.add({0.5, b});

    int centroid_correct = 0;
    int gaussian_correct = 0;
    for (int t = 0; t < draws; ++t) {
      const Vector x = b.sample(rng);
      // Centroid rule: nearest mean.
      const bool centroid_says_b =
          std::abs(x[0] - 4.0) < std::abs(x[0] - 0.0);
      // Gaussian rule: maximum posterior under the mixture.
      const bool gaussian_says_b = mixture.classify(x) == 1;
      centroid_correct += centroid_says_b ? 1 : 0;
      gaussian_correct += gaussian_says_b ? 1 : 0;
    }
    table.add_row({sigma_b,
                   static_cast<double>(centroid_correct) / draws,
                   static_cast<double>(gaussian_correct) / draws});
  }
  table.print(std::cout);
  std::cout << "\n(paper Fig. 1: with unequal variances the nearest-centroid "
               "association is wrong; the Gaussian summary fixes it)\n";
  return 0;
}
