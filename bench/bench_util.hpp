// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <type_traits>
#include <vector>

#include <ddc/exec/parallel_for.hpp>
#include <ddc/exec/thread_pool.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/sim/round_runner.hpp>

namespace ddc::bench {

/// Runs gossip rounds until all nodes' classifications agree with node 0
/// to within `threshold` (checked every `check_every` rounds), or until
/// `max_rounds`. Returns the number of rounds executed — the
/// "rounds to convergence" statistic the paper reports.
template <typename SummaryPolicy, typename Node>
std::size_t run_until_agreement(sim::RoundRunner<Node>& runner,
                                double threshold, std::size_t check_every,
                                std::size_t max_rounds) {
  std::size_t rounds = 0;
  while (rounds < max_rounds) {
    for (std::size_t r = 0; r < check_every && rounds < max_rounds; ++r) {
      runner.run_round();
      ++rounds;
    }
    if (metrics::max_disagreement_vs_first<SummaryPolicy>(runner.nodes()) <
        threshold) {
      break;
    }
  }
  return rounds;
}

/// Thread budget for the bench binaries: DDC_BENCH_THREADS if set (a
/// value of 1 forces the old fully-sequential behaviour), otherwise one
/// per hardware thread.
[[nodiscard]] inline std::size_t bench_threads() {
  if (const char* env = std::getenv("DDC_BENCH_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  return exec::ThreadPool::hardware_threads();
}

/// Process-wide worker pool for replicate sweeps, sized from
/// bench_threads(). Returns nullptr when the budget is one thread —
/// exec::parallel_for then runs plain sequential loops.
[[nodiscard]] inline exec::ThreadPool* shared_pool() {
  static exec::ThreadPool pool(bench_threads() - 1);
  return pool.num_threads() > 0 ? &pool : nullptr;
}

/// Fans `count` independent runs across the shared pool and returns their
/// results in index order — the replicate/parameter-sweep workhorse of
/// the fig*/abl_* binaries. `fn(i)` must depend only on `i` (derive all
/// seeds from it or from per-index state) so that results are identical
/// at any thread count; rows are then printed in deterministic order by
/// the sequential caller.
template <typename Fn>
[[nodiscard]] auto sweep(std::size_t count, Fn&& fn) {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(!std::is_void_v<Result>,
                "sweep bodies return their row's data");
  std::vector<Result> results(count);
  exec::parallel_for(shared_pool(), count,
                     [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace ddc::bench
