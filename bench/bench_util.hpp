// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstddef>

#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/sim/round_runner.hpp>

namespace ddc::bench {

/// Runs gossip rounds until all nodes' classifications agree with node 0
/// to within `threshold` (checked every `check_every` rounds), or until
/// `max_rounds`. Returns the number of rounds executed — the
/// "rounds to convergence" statistic the paper reports.
template <typename SummaryPolicy, typename Node>
std::size_t run_until_agreement(sim::RoundRunner<Node>& runner,
                                double threshold, std::size_t check_every,
                                std::size_t max_rounds) {
  std::size_t rounds = 0;
  while (rounds < max_rounds) {
    for (std::size_t r = 0; r < check_every && rounds < max_rounds; ++r) {
      runner.run_round();
      ++rounds;
    }
    if (metrics::max_disagreement_vs_first<SummaryPolicy>(runner.nodes()) <
        threshold) {
      break;
    }
  }
  return rounds;
}

}  // namespace ddc::bench
