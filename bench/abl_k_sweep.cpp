// Ablation — the collection bound k (adaptive-compression knob).
//
// k controls how lossy the in-network compression is: k = 1 degenerates to
// average aggregation, k ≥ the true component count leaves room for exact
// structure plus outlier slack. This bench sweeps k on the Fig. 2 workload
// and reports recovery error and the average log-likelihood of a held-out
// sample under node 0's converged mixture.
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/gaussian_metrics.hpp>
#include <ddc/stats/mixture_distance.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/workload/scenarios.hpp>

#include "bench_util.hpp"

int main() {
  const std::size_t n = 300;
  std::cout << "=== Ablation: k sweep on the Fig. 2 workload (n = " << n
            << ") ===\n\n";

  const ddc::stats::GaussianMixture truth = ddc::workload::fig2_mixture();
  ddc::stats::Rng rng(70);
  const auto inputs = ddc::workload::sample_inputs(truth, n, rng);
  const auto holdout = ddc::workload::sample_inputs(truth, 500, rng);

  struct KRow {
    std::size_t k = 0;
    std::size_t rounds = 0;
    ddc::stats::GaussianMixture estimate;
  };
  const std::vector<std::size_t> ks = {1, 2, 3, 5, 7, 10, 14};
  // One independent simulation per k — fan across the bench pool.
  const auto rows = ddc::bench::sweep(ks.size(), [&](std::size_t ki) {
    KRow row;
    row.k = ks[ki];
    ddc::gossip::NetworkConfig config;
    config.k = row.k;
    config.seed = 71;
    auto runner = ddc::sim::make_gm_round_runner(
        ddc::sim::Topology::complete(n), inputs, config);
    row.rounds =
        ddc::bench::run_until_agreement<ddc::summaries::GaussianPolicy>(
            runner, 1e-3, 5, 80);
    row.estimate =
        ddc::summaries::to_mixture(runner.nodes()[0].classification());
    return row;
  });

  ddc::io::Table table({"k", "rounds", "recovery error", "NISE",
                        "holdout avg log-lik", "final collections"});
  for (const KRow& row : rows) {
    double loglik = 0.0;
    for (const auto& x : holdout) {
      loglik += row.estimate.log_pdf(x) / static_cast<double>(holdout.size());
    }
    table.add_row({static_cast<long long>(row.k),
                   static_cast<long long>(row.rounds),
                   ddc::metrics::mixture_recovery_error(truth, row.estimate),
                   ddc::stats::normalized_ise(truth, row.estimate), loglik,
                   static_cast<long long>(row.estimate.size())});
  }
  table.print(std::cout);
  std::cout << "\n(k below the true component count forces cross-cluster "
               "merges; extra k costs little — surplus collections stay "
               "small or singleton)\n";
  return 0;
}
