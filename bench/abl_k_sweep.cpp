// Ablation — the collection bound k (adaptive-compression knob).
//
// k controls how lossy the in-network compression is: k = 1 degenerates to
// average aggregation, k ≥ the true component count leaves room for exact
// structure plus outlier slack. This bench sweeps k on the Fig. 2 workload
// and reports recovery error and the average log-likelihood of a held-out
// sample under node 0's converged mixture.
#include <iostream>

#include <ddc/gossip/network.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/gaussian_metrics.hpp>
#include <ddc/stats/mixture_distance.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/workload/scenarios.hpp>

#include "bench_util.hpp"

int main() {
  const std::size_t n = 300;
  std::cout << "=== Ablation: k sweep on the Fig. 2 workload (n = " << n
            << ") ===\n\n";

  const ddc::stats::GaussianMixture truth = ddc::workload::fig2_mixture();
  ddc::stats::Rng rng(70);
  const auto inputs = ddc::workload::sample_inputs(truth, n, rng);
  const auto holdout = ddc::workload::sample_inputs(truth, 500, rng);

  ddc::io::Table table({"k", "rounds", "recovery error", "NISE",
                        "holdout avg log-lik", "final collections"});
  for (std::size_t k : {1u, 2u, 3u, 5u, 7u, 10u, 14u}) {
    ddc::gossip::NetworkConfig config;
    config.k = k;
    config.seed = 71;
    ddc::sim::RoundRunner<ddc::gossip::GmNode> runner(
        ddc::sim::Topology::complete(n),
        ddc::gossip::make_gm_nodes(inputs, config));
    const std::size_t rounds =
        ddc::bench::run_until_agreement<ddc::summaries::GaussianPolicy>(
            runner, 1e-3, 5, 80);

    const auto estimate =
        ddc::summaries::to_mixture(runner.nodes()[0].classification());
    double loglik = 0.0;
    for (const auto& x : holdout) {
      loglik += estimate.log_pdf(x) / static_cast<double>(holdout.size());
    }
    table.add_row({static_cast<long long>(k), static_cast<long long>(rounds),
                   ddc::metrics::mixture_recovery_error(truth, estimate),
                   ddc::stats::normalized_ise(truth, estimate), loglik,
                   static_cast<long long>(estimate.size())});
  }
  table.print(std::cout);
  std::cout << "\n(k below the true component count forces cross-cluster "
               "merges; extra k costs little — surplus collections stay "
               "small or singleton)\n";
  return 0;
}
