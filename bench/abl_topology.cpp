// Ablation — convergence speed across topologies.
//
// Theorem 1 guarantees convergence on ANY connected topology; this bench
// measures the price of sparse connectivity: rounds until all nodes agree
// (classification distance vs node 0 below 1e-3) for the centroids
// algorithm on a two-cluster workload, across standard topology families.
//
// Expected shape: complete/ER/geometric converge in O(log n)-ish rounds;
// ring/line/star pay a diffusion penalty roughly quadratic in diameter.
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/summaries/centroid.hpp>

#include "bench_util.hpp"

namespace {

std::vector<ddc::linalg::Vector> two_cluster_inputs(std::size_t n,
                                                    ddc::stats::Rng& rng) {
  std::vector<ddc::linalg::Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(ddc::linalg::Vector{
        i % 2 == 0 ? rng.normal(0.0, 1.0) : rng.normal(100.0, 1.0)});
  }
  return inputs;
}

}  // namespace

int main() {
  const std::size_t n = 64;
  const std::size_t max_rounds = 100000;

  std::cout << "=== Ablation: topology vs rounds-to-agreement (n = " << n
            << ", centroid algorithm, k = 2) ===\n\n";

  ddc::stats::Rng topo_rng(50);
  struct Entry {
    const char* name;
    ddc::sim::Topology topology;
  };
  std::vector<Entry> entries;
  entries.push_back({"complete", ddc::sim::Topology::complete(n)});
  entries.push_back({"erdos_renyi(0.1)",
                     ddc::sim::Topology::erdos_renyi(n, 0.1, topo_rng)});
  entries.push_back({"geometric(0.25)",
                     ddc::sim::Topology::random_geometric(n, 0.25, topo_rng)});
  entries.push_back({"torus 8x8", ddc::sim::Topology::grid(8, 8, true)});
  entries.push_back({"grid 8x8", ddc::sim::Topology::grid(8, 8)});
  entries.push_back({"star", ddc::sim::Topology::star(n)});
  entries.push_back({"ring", ddc::sim::Topology::ring(n)});
  entries.push_back({"line", ddc::sim::Topology::line(n)});

  struct Row {
    std::size_t diameter = 0;
    std::size_t edges = 0;
    std::size_t rounds = 0;
  };
  // Topologies were built sequentially above (they share topo_rng); the
  // simulations themselves are independent and fan across the bench pool.
  const auto rows = ddc::bench::sweep(entries.size(), [&](std::size_t ei) {
    Entry& entry = entries[ei];
    ddc::stats::Rng rng(51);
    const auto inputs = two_cluster_inputs(n, rng);

    ddc::sim::EngineConfig config;
    config.k = 2;
    // Fine quantum: poorly-mixing topologies shrink collection weights by
    // large factors between refills (see DESIGN.md).
    config.quanta_per_unit = std::int64_t{1} << 40;
    config.protocol_seed = 52;
    config.selection = ddc::sim::NeighborSelection::round_robin;
    config.seed = 53;

    Row row;
    row.diameter = entry.topology.diameter();
    row.edges = entry.topology.num_edges();
    auto runner = ddc::sim::make_centroid_round_runner(
        std::move(entry.topology), inputs, config);
    row.rounds =
        ddc::bench::run_until_agreement<ddc::summaries::CentroidPolicy>(
            runner, 1e-3, 10, max_rounds);
    return row;
  });

  ddc::io::Table table({"topology", "diameter", "directed edges",
                        "rounds to agreement"});
  for (std::size_t ei = 0; ei < entries.size(); ++ei) {
    table.add_row({std::string(entries[ei].name),
                   static_cast<long long>(rows[ei].diameter),
                   static_cast<long long>(rows[ei].edges),
                   static_cast<long long>(rows[ei].rounds)});
  }
  table.print(std::cout);
  std::cout << "\n(any connected topology converges — Theorem 1; sparse, "
               "high-diameter graphs just take longer)\n";
  return 0;
}
