// Ablation — scalability in the number of nodes, and in worker threads.
//
// Part 1: gossip aggregation on well-connected graphs converges in
// O(log n) rounds; message SIZE is bounded by k summaries regardless of n
// (the property that makes the protocol deployable on sensor motes). This
// bench sweeps n on the complete graph and reports rounds-to-agreement for
// the GM algorithm plus the per-message collection count. The sweep itself
// fans across the shared bench pool — each n is an independent simulation.
//
// Part 2: engine thread scaling. The phase-split round engine parallelizes
// the prepare/absorb phases with bit-identical results at any thread
// count; this part times a fixed n = 512 GM workload at 1 and 8 worker
// threads, checks the classifications match byte-for-byte, and reports the
// speedup. (On a single-core host the 8-thread run cannot be faster —
// the printed ratio records whatever the hardware gives.)
#include <chrono>
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/wire/serialize.hpp>

#include "bench_util.hpp"

namespace {

std::vector<ddc::linalg::Vector> bimodal_inputs(std::size_t n) {
  ddc::stats::Rng rng(100);
  std::vector<ddc::linalg::Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(ddc::linalg::Vector{
        i % 2 == 0 ? rng.normal(0.0, 1.0) : rng.normal(50.0, 2.0),
        rng.normal(0.0, 1.0)});
  }
  return inputs;
}

struct ScaleRow {
  std::size_t n = 0;
  std::size_t rounds = 0;
  std::size_t max_msg = 0;
};

ScaleRow measure_n(std::size_t n) {
  const auto inputs = bimodal_inputs(n);
  ddc::sim::EngineConfig config;
  config.k = 2;
  config.protocol_seed = 101;
  auto runner = ddc::sim::make_gm_round_runner(ddc::sim::Topology::complete(n),
                                               inputs, config);
  ScaleRow row;
  row.n = n;
  row.rounds = ddc::bench::run_until_agreement<ddc::summaries::GaussianPolicy>(
      runner, 1e-2, 2, 200);

  // Message size bound: a split ships at most k collections, whatever n.
  for (auto& node : runner.nodes()) {
    row.max_msg = std::max(row.max_msg, node.prepare_message().size());
  }
  return row;
}

/// Runs `rounds` GM rounds at the given engine parallelism and returns
/// elapsed seconds plus node 0's wire-encoded classification (for the
/// bit-identity check across thread counts).
std::pair<double, std::vector<std::byte>> time_threads(
    const std::vector<ddc::linalg::Vector>& inputs, std::size_t threads,
    std::size_t rounds) {
  ddc::sim::EngineConfig config;
  config.k = 2;
  config.protocol_seed = 101;
  config.seed = 103;
  config.parallelism = threads;
  auto runner = ddc::sim::make_gm_round_runner(
      ddc::sim::Topology::complete(inputs.size()), inputs, config);

  const auto start = std::chrono::steady_clock::now();
  runner.run_rounds(rounds);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return {elapsed.count(),
          ddc::wire::encode_classification(runner.nodes()[0].classification())};
}

}  // namespace

int main() {
  std::cout << "=== Ablation: scalability (complete graph, GM, k = 2) ===\n\n";

  const std::vector<std::size_t> sizes = {32, 64, 128, 256, 512, 1000};
  const auto rows = ddc::bench::sweep(
      sizes.size(), [&](std::size_t i) { return measure_n(sizes[i]); });

  ddc::io::Table table({"n", "rounds to agreement", "max msg collections"});
  for (const ScaleRow& row : rows) {
    table.add_row({static_cast<long long>(row.n),
                   static_cast<long long>(row.rounds),
                   static_cast<long long>(row.max_msg)});
  }
  table.print(std::cout);
  std::cout << "\n(rounds grow ~logarithmically; message size is bounded by "
               "k, independent of n — the paper's bandwidth claim)\n";

  std::cout << "\n=== Engine thread scaling (n = 512, GM, 30 rounds) ===\n\n";
  const auto inputs = bimodal_inputs(512);
  const std::size_t kRounds = 30;
  const auto [t1, c1] = time_threads(inputs, 1, kRounds);
  const auto [t8, c8] = time_threads(inputs, 8, kRounds);
  std::cout << "  threads=1: " << t1 << " s\n"
            << "  threads=8: " << t8 << " s\n"
            << "  speedup:   " << (t8 > 0.0 ? t1 / t8 : 0.0) << "x\n"
            << "  results bit-identical: " << (c1 == c8 ? "yes" : "NO") << '\n'
            << "  hardware threads:      "
            << ddc::exec::ThreadPool::hardware_threads() << '\n';
  return c1 == c8 ? 0 : 1;
}
