// Ablation — scalability in the number of nodes.
//
// Gossip aggregation on well-connected graphs converges in O(log n)
// rounds; message SIZE is bounded by k summaries regardless of n (the
// property that makes the protocol deployable on sensor motes). This bench
// sweeps n on the complete graph and reports rounds-to-agreement for the
// GM algorithm plus the per-message collection count.
#include <iostream>

#include <ddc/gossip/network.hpp>
#include <ddc/io/table.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/summaries/gaussian_summary.hpp>

#include "bench_util.hpp"

int main() {
  std::cout << "=== Ablation: scalability (complete graph, GM, k = 2) ===\n\n";

  ddc::io::Table table({"n", "rounds to agreement", "max msg collections"});
  for (std::size_t n : {32u, 64u, 128u, 256u, 512u, 1000u}) {
    ddc::stats::Rng rng(100);
    std::vector<ddc::linalg::Vector> inputs;
    for (std::size_t i = 0; i < n; ++i) {
      inputs.push_back(ddc::linalg::Vector{
          i % 2 == 0 ? rng.normal(0.0, 1.0) : rng.normal(50.0, 2.0),
          rng.normal(0.0, 1.0)});
    }
    ddc::gossip::NetworkConfig config;
    config.k = 2;
    config.seed = 101;
    ddc::sim::RoundRunner<ddc::gossip::GmNode> runner(
        ddc::sim::Topology::complete(n),
        ddc::gossip::make_gm_nodes(inputs, config));
    const std::size_t rounds =
        ddc::bench::run_until_agreement<ddc::summaries::GaussianPolicy>(
            runner, 1e-2, 2, 200);

    // Message size bound: a split ships at most k collections, whatever n.
    std::size_t max_msg = 0;
    for (auto& node : runner.nodes()) {
      auto msg = node.prepare_message();
      max_msg = std::max(max_msg, msg.size());
    }
    table.add_row({static_cast<long long>(n), static_cast<long long>(rounds),
                   static_cast<long long>(max_msg)});
  }
  table.print(std::cout);
  std::cout << "\n(rounds grow ~logarithmically; message size is bounded by "
               "k, independent of n — the paper's bandwidth claim)\n";
  return 0;
}
