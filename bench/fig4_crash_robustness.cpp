// Figure 4 — crash robustness and convergence speed.
//
// Paper setup: the Fig. 3 workload at Δ = 10; after each round every node
// crashes independently with probability 0.05. Four curves of
// mean-estimation error per round (0–60): {robust GM, regular push-sum} ×
// {no crashes, with crashes}, each averaged over live nodes.
//
// Expected shape (paper Fig. 4): the robust protocol achieves a lower
// error than regular aggregation throughout; crashes change neither the
// convergence speed nor the final error materially; the classifier
// converges about as fast as plain average aggregation.
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/outlier_metrics.hpp>
#include <ddc/workload/scenarios.hpp>

#include "bench_util.hpp"

namespace {

constexpr std::size_t kRounds = 60;
constexpr double kDelta = 10.0;
constexpr double kCrashProbability = 0.05;

struct Series {
  std::vector<double> error_per_round;
  std::size_t final_alive = 0;
};

Series run_robust(const ddc::workload::OutlierScenario& scenario,
                  double crash_probability) {
  const std::size_t n = scenario.inputs.size();
  ddc::gossip::NetworkConfig config;
  config.k = 2;
  config.seed = 44;
  ddc::sim::RoundRunnerOptions options;
  options.crash_probability = crash_probability;
  options.seed = 45;
  auto runner = ddc::sim::make_gm_round_runner(
      ddc::sim::Topology::complete(n), scenario.inputs, config, options);

  Series series;
  for (std::size_t r = 0; r < kRounds; ++r) {
    runner.run_round();
    double error = 0.0;
    std::size_t alive = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!runner.alive(i)) continue;
      ++alive;
      error += ddc::metrics::robust_mean_error(
          runner.nodes()[i].classification(), scenario.true_mean);
    }
    series.error_per_round.push_back(alive > 0 ? error / alive : 0.0);
    series.final_alive = alive;
  }
  return series;
}

Series run_regular(const ddc::workload::OutlierScenario& scenario,
                   double crash_probability) {
  const std::size_t n = scenario.inputs.size();
  ddc::sim::RoundRunnerOptions options;
  options.crash_probability = crash_probability;
  options.seed = 45;  // same crash schedule as the robust run
  auto runner = ddc::sim::make_push_sum_round_runner(
      ddc::sim::Topology::complete(n), scenario.inputs, options);

  Series series;
  for (std::size_t r = 0; r < kRounds; ++r) {
    runner.run_round();
    double error = 0.0;
    std::size_t alive = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!runner.alive(i)) continue;
      ++alive;
      error += ddc::linalg::distance2(runner.nodes()[i].estimate(),
                                      scenario.true_mean);
    }
    series.error_per_round.push_back(alive > 0 ? error / alive : 0.0);
    series.final_alive = alive;
  }
  return series;
}

}  // namespace

int main() {
  std::cout << "=== Figure 4: crash robustness (Delta = " << kDelta
            << ", crash p = " << kCrashProbability << "/round) ===\n\n";

  ddc::stats::Rng rng(4);
  const ddc::workload::OutlierScenario scenario =
      ddc::workload::outlier_scenario(kDelta, rng);

  // The four curves are independent simulations — fan them across the
  // bench pool.
  const auto series = ddc::bench::sweep(4, [&](std::size_t i) {
    const double p = (i % 2 == 0) ? 0.0 : kCrashProbability;
    return i < 2 ? run_robust(scenario, p) : run_regular(scenario, p);
  });
  const Series& robust_clean = series[0];
  const Series& robust_crash = series[1];
  const Series& regular_clean = series[2];
  const Series& regular_crash = series[3];

  ddc::io::Table table({"round", "robust", "robust+crashes", "regular",
                        "regular+crashes"});
  for (std::size_t r = 0; r < kRounds; r += (r < 10 ? 1 : 5)) {
    table.add_row({static_cast<long long>(r + 1),
                   robust_clean.error_per_round[r],
                   robust_crash.error_per_round[r],
                   regular_clean.error_per_round[r],
                   regular_crash.error_per_round[r]});
  }
  table.print(std::cout);

  std::cout << "\nlive nodes after " << kRounds
            << " rounds with crashes: " << robust_crash.final_alive << " / "
            << scenario.inputs.size() << '\n'
            << "final errors:  robust " << robust_clean.error_per_round.back()
            << "  robust+crashes " << robust_crash.error_per_round.back()
            << "  regular " << regular_clean.error_per_round.back()
            << "  regular+crashes " << regular_crash.error_per_round.back()
            << '\n'
            << "(paper Fig. 4: robust < regular throughout; crashes barely "
               "move either curve)\n";
  return 0;
}
