// Ablation — one-shot gossip classification vs iterated distributed
// k-means (Datta et al., the paper's Section 2 comparator).
//
// Both protocols end with every node knowing two cluster centroids of a
// bimodal data set. Ours converges in ONE gossip run; distributed k-means
// simulates Lloyd iterations, each of which embeds a full
// distributed-averaging run — the paper's "multiple aggregation
// iterations, each similar in length to one complete run of our
// algorithm". We measure gossip rounds until every node's centroids are
// within 0.5 of the true cluster means.
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>

#include "bench_util.hpp"

namespace {

using ddc::linalg::Vector;

constexpr double kCenters[] = {0.0, 5.0, 10.0};

/// Worst distance, over all nodes and true cluster centers, from the
/// center to the node's nearest learned centroid (Hausdorff-style; large
/// while any node still lumps two clusters together).
template <typename GetCentroids, typename Nodes>
double worst_centroid_error(const Nodes& nodes, GetCentroids get) {
  double worst = 0.0;
  for (const auto& node : nodes) {
    const auto centroids = get(node);
    for (const double center : kCenters) {
      double nearest = 1e9;
      for (const auto& c : centroids) {
        nearest = std::min(nearest, std::abs(c[0] - center));
      }
      worst = std::max(worst, nearest);
    }
  }
  return worst;
}

}  // namespace

int main() {
  const std::size_t n = 100;
  std::cout << "=== Ablation: gossip classification vs distributed k-means "
               "(n = " << n << ", three clusters) ===\n\n";

  ddc::stats::Rng rng(130);
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(kCenters[i % 3], 0.5)});
  }

  ddc::io::Table table({"protocol", "gossip rounds to centroid error < 0.5",
                        "Lloyd iterations"});

  // Our protocol: one run of the generic algorithm (centroids, k = 2).
  {
    ddc::gossip::NetworkConfig config;
    config.k = 3;
    config.seed = 131;
    auto runner = ddc::sim::make_centroid_round_runner(
        ddc::sim::Topology::complete(n), inputs, config);
    std::size_t rounds = 0;
    while (rounds < 5000) {
      runner.run_round();
      ++rounds;
      const double err = worst_centroid_error(
          runner.nodes(), [](const auto& node) {
            std::vector<Vector> cs;
            for (const auto& c : node.classification()) cs.push_back(c.summary);
            return cs;
          });
      if (err < 0.5) break;
    }
    table.add_row({std::string("generic gossip classifier (this paper)"),
                   static_cast<long long>(rounds), std::string("—")});
  }

  // Distributed k-means with varying averaging budget per iteration —
  // three independent runs, fanned across the bench pool.
  const std::vector<std::size_t> budgets = {10, 20, 40};
  const auto kmeans_rows =
      ddc::bench::sweep(budgets.size(), [&](std::size_t bi) {
        const std::size_t rpi = budgets[bi];
        ddc::sim::RoundRunnerOptions options;
        options.seed = 132;
        // Shared initial centroids that cut through the left cluster, so
        // Lloyd needs several assignment/update iterations to untangle them
        // (a bad-enough init stalls Lloyd permanently — centralized or
        // distributed — so we pick one that is recoverable but slow).
        auto runner = ddc::sim::make_dkmeans_round_runner(
            ddc::sim::Topology::complete(n), inputs,
            {Vector{1.0}, Vector{2.0}, Vector{9.0}}, rpi, options);
        std::size_t rounds = 0;
        while (rounds < 5000) {
          runner.run_round();
          ++rounds;
          const double err = worst_centroid_error(
              runner.nodes(),
              [](const auto& node) { return node.centroids(); });
          if (err < 0.5) break;
        }
        return std::pair<std::size_t, std::size_t>{
            rounds, runner.nodes()[0].iteration()};
      });
  for (std::size_t bi = 0; bi < budgets.size(); ++bi) {
    table.add_row(
        {std::string("distributed k-means, ") + std::to_string(budgets[bi]) +
             " rounds/iteration",
         static_cast<long long>(kmeans_rows[bi].first),
         static_cast<long long>(kmeans_rows[bi].second)});
  }

  table.print(std::cout);
  std::cout << "\n(distributed k-means pays one full averaging run per Lloyd "
               "iteration; the generic algorithm classifies in a single "
               "gossip run — the paper's Section 2 comparison)\n";
  return 0;
}
