// bench_scale — throughput and memory benchmark for the SoA scale
// engine (and, for comparison, the object engine) at 10k–1M nodes.
//
// One configuration per process invocation, so getrusage peak-RSS is a
// clean per-configuration high-water mark. Prints exactly one JSON
// object line:
//
//   {"name":"centroid/ring/10000","nodes":10000,...,"rounds_per_s":...,
//    "peak_rss_mb":...}
//
// scripts/bench_scale.sh runs the tier list and assembles the numbers
// that live in BENCH_scale.json; scripts/bench_gate.sh --scale compares
// fresh runs against that baseline.
//
// The flag surface is the shared engine surface (cli::engine_flags) —
// the same --topology/--nodes/--radius/--er-prob/--threads/--engine
// flags ddcsim takes — plus --protocol and --rounds. Note that the
// TopologySpec density defaults (radius = max(0.15, 2/√n)) are sized
// for paper-scale runs; at 10⁵–10⁶ nodes always pass an explicit sparse
// --radius / --er-prob or the graph itself dwarfs memory.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <iostream>

#include <ddc/linalg/simd.hpp>
#include <ddc/cli/engine_flags.hpp>
#include <ddc/gossip/runners.hpp>
#include <ddc/metrics/streaming.hpp>
#include <ddc/workload/scenarios.hpp>

namespace {

using ddc::linalg::Vector;

/// Peak resident set of this process in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct Measurement {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t rounds = 0;
  std::size_t alive = 0;
  double build_s = 0.0;
  double run_s = 0.0;
  double disagreement = 0.0;
};

template <typename MakeEngine>
Measurement measure(std::size_t rounds, MakeEngine make_engine) {
  using Clock = std::chrono::steady_clock;
  Measurement m;
  const auto t0 = Clock::now();
  auto engine = make_engine();
  const auto t1 = Clock::now();
  engine.run_rounds(rounds);
  const auto t2 = Clock::now();
  m.rounds = rounds;
  m.build_s = std::chrono::duration<double>(t1 - t0).count();
  m.run_s = std::chrono::duration<double>(t2 - t1).count();
  m.alive = engine.alive_count();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  ddc::cli::Flags flags("bench_scale",
                        "scale-engine throughput / peak-RSS benchmark "
                        "(one configuration per invocation, JSON output)");
  flags.declare("protocol", "gm | centroid", "centroid");
  flags.declare("rounds", "gossip rounds to time", "10");
  flags.declare("name", "label for the JSON record (default: derived)", "");
  ddc::cli::EngineFlagSet set;
  set.timing = false;
  ddc::cli::declare_engine_flags(flags, {}, set);

  try {
    if (!flags.parse(argc, argv)) {
      std::cout << flags.help_text();
      return 0;
    }
    ddc::sim::EngineConfig config =
        ddc::cli::parse_engine_config(flags, {}, set);
    ddc::linalg::simd::configure(config.simd);
    const std::string protocol = flags.get("protocol");
    const auto rounds = static_cast<std::size_t>(flags.get_int("rounds"));

    // Topology first: grid packing can round the vertex count up, and
    // the engine needs one input per vertex.
    ddc::stats::Rng rng(config.protocol_seed);
    ddc::sim::Topology topology = config.build_topology(rng);
    const std::size_t n = topology.num_nodes();
    const std::size_t edges = topology.num_edges();
    const std::vector<Vector> inputs =
        ddc::workload::two_clusters_inputs(n, rng);

    Measurement m;
    std::string engine_name;
    if (config.use_soa()) {
      engine_name = "soa";
      if (protocol == "centroid") {
        auto engine = [&] {
          return ddc::gossip::make_centroid_scale_engine(std::move(topology),
                                                         inputs, config);
        };
        m = measure(rounds, engine);
      } else if (protocol == "gm") {
        auto engine = [&] {
          return ddc::gossip::make_gm_scale_engine(std::move(topology), inputs,
                                                   config);
        };
        m = measure(rounds, engine);
      } else {
        throw ddc::ConfigError("unknown protocol '" + protocol + "'");
      }
    } else {
      engine_name = "object";
      if (protocol == "centroid") {
        auto engine = [&] {
          return ddc::gossip::make_centroid_round_runner(std::move(topology),
                                                         inputs, config);
        };
        m = measure(rounds, engine);
      } else if (protocol == "gm") {
        auto engine = [&] {
          return ddc::gossip::make_gm_round_runner(std::move(topology), inputs,
                                                   config);
        };
        m = measure(rounds, engine);
      } else {
        throw ddc::ConfigError("unknown protocol '" + protocol + "'");
      }
    }
    m.nodes = n;
    m.edges = edges;

    std::string name = flags.get("name");
    if (name.empty()) {
      name = protocol + "/" +
             ddc::sim::topology_family_name(config.topology.family) + "/" +
             std::to_string(n);
    }

    // One record per line; keys are stable for the awk in bench_gate.sh.
    std::printf(
        "{\"name\":\"%s\",\"engine\":\"%s\",\"nodes\":%zu,\"edges\":%zu,"
        "\"threads\":%zu,\"rounds\":%zu,\"alive\":%zu,\"build_s\":%.4f,"
        "\"run_s\":%.4f,\"rounds_per_s\":%.4f,\"peak_rss_mb\":%.1f}\n",
        name.c_str(), engine_name.c_str(), m.nodes, m.edges,
        config.parallelism, m.rounds, m.alive, m.build_s, m.run_s,
        static_cast<double>(m.rounds) / m.run_s, peak_rss_mb());
    return 0;
  } catch (const ddc::Error& e) {
    std::cerr << "bench_scale: " << e.what() << '\n';
    return 1;
  }
}
