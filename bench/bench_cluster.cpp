// bench_cluster — throughput benchmark for the sharded cluster engine
// over an in-process loopback fabric.
//
// One configuration per process invocation (clean getrusage peak-RSS),
// printing exactly one JSON object line:
//
//   {"name":"centroid/grid/2048x4","shards":4,...,"rounds_per_s":...,
//    "frames_per_round":...,"records_per_frame":...,"peak_rss_mb":...}
//
// frames_per_round and records_per_frame measure the batching the shard
// exchange exists for: S*(S-1) frames per round regardless of message
// volume, with every cross-shard message riding inside one of them.
// scripts/bench_gate.sh --cluster compares fresh runs against the
// committed baseline in BENCH_cluster.json.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <iostream>

#include <ddc/linalg/simd.hpp>
#include <ddc/cli/engine_flags.hpp>
#include <ddc/shard/factories.hpp>
#include <ddc/workload/scenarios.hpp>

namespace {

using ddc::linalg::Vector;

/// Peak resident set of this process in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct Measurement {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t cut_edges = 0;
  std::size_t rounds = 0;
  double build_s = 0.0;
  double run_s = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t records = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t boundary_nodes = 0;
  std::uint64_t polls_during_compute = 0;
};

template <typename MakeCluster>
Measurement measure(std::size_t rounds, MakeCluster make_cluster) {
  using Clock = std::chrono::steady_clock;
  Measurement m;
  const auto t0 = Clock::now();
  auto cluster = make_cluster();
  const auto t1 = Clock::now();
  cluster.run_rounds(rounds);
  const auto t2 = Clock::now();
  m.rounds = rounds;
  m.build_s = std::chrono::duration<double>(t1 - t0).count();
  m.run_s = std::chrono::duration<double>(t2 - t1).count();
  for (ddc::shard::ShardId s = 0; s < cluster.num_shards(); ++s) {
    const auto& stats = cluster.engine(s).stats();
    m.frames += stats.batch_frames_sent;
    m.records += stats.batch_records_sent;
    m.retransmits += stats.retransmits;
    m.boundary_nodes += stats.boundary_nodes;
    m.polls_during_compute += stats.polls_during_compute;
  }
  m.cut_edges = cluster.map().cut_edges(cluster.engine(0).topology());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  ddc::cli::Flags flags("bench_cluster",
                        "sharded-cluster throughput benchmark over loopback "
                        "(one configuration per invocation, JSON output)");
  flags.declare("protocol", "gm | centroid", "centroid");
  flags.declare("rounds", "gossip rounds to time", "10");
  flags.declare("shards", "number of shards sharing the loopback fabric", "4");
  flags.declare("name", "label for the JSON record (default: derived)", "");
  flags.declare("shard-map", "contiguous | edgecut node->shard assignment",
                "contiguous");
  ddc::cli::EngineFlagSet set;
  set.timing = false;
  ddc::cli::declare_engine_flags(flags, {}, set);

  try {
    if (!flags.parse(argc, argv)) {
      std::cout << flags.help_text();
      return 0;
    }
    ddc::sim::EngineConfig config =
        ddc::cli::parse_engine_config(flags, {}, set);
    ddc::linalg::simd::configure(config.simd);
    const std::string protocol = flags.get("protocol");
    const auto rounds = static_cast<std::size_t>(flags.get_int("rounds"));
    const auto shards =
        static_cast<ddc::shard::ShardId>(flags.get_int("shards"));
    const ddc::shard::Partitioner partitioner =
        ddc::shard::parse_partitioner(flags.get("shard-map"));

    // Topology first: grid packing can round the vertex count up, and
    // the cluster needs one input per vertex.
    ddc::stats::Rng rng(config.protocol_seed);
    ddc::sim::Topology topology = config.build_topology(rng);
    const std::size_t n = topology.num_nodes();
    const std::size_t edges = topology.num_edges();
    const std::vector<Vector> inputs =
        ddc::workload::two_clusters_inputs(n, rng);

    Measurement m;
    if (protocol == "centroid") {
      m = measure(rounds, [&] {
        return ddc::shard::make_centroid_shard_cluster(
            std::move(topology), inputs, config, shards, {}, partitioner);
      });
    } else if (protocol == "gm") {
      m = measure(rounds, [&] {
        return ddc::shard::make_gm_shard_cluster(std::move(topology), inputs,
                                                 config, shards, {}, {},
                                                 partitioner);
      });
    } else {
      throw ddc::ConfigError("unknown protocol '" + protocol + "'");
    }
    m.nodes = n;
    m.edges = edges;

    std::string name = flags.get("name");
    if (name.empty()) {
      name = protocol + "/" +
             ddc::sim::topology_family_name(config.topology.family) + "/" +
             std::to_string(n) + "x" + std::to_string(shards);
      if (partitioner != ddc::shard::Partitioner::contiguous) {
        name += "-";
        name += ddc::shard::partitioner_name(partitioner);
      }
    }

    const double frames_per_round =
        static_cast<double>(m.frames) / static_cast<double>(m.rounds);
    const double records_per_frame =
        m.frames > 0
            ? static_cast<double>(m.records) / static_cast<double>(m.frames)
            : 0.0;
    // One record per line; keys are stable for the awk in bench_gate.sh.
    std::printf(
        "{\"name\":\"%s\",\"shards\":%u,\"nodes\":%zu,\"edges\":%zu,"
        "\"cut_edges\":%zu,\"shard_map\":\"%s\",\"rounds\":%zu,"
        "\"build_s\":%.4f,\"run_s\":%.4f,"
        "\"rounds_per_s\":%.4f,\"frames_per_round\":%.1f,"
        "\"records_per_frame\":%.2f,\"retransmits\":%llu,"
        "\"boundary_nodes\":%llu,\"polls_during_compute\":%llu,"
        "\"peak_rss_mb\":%.1f}\n",
        name.c_str(), static_cast<unsigned>(shards), m.nodes, m.edges,
        m.cut_edges,
        std::string(ddc::shard::partitioner_name(partitioner)).c_str(),
        m.rounds, m.build_s, m.run_s,
        static_cast<double>(m.rounds) / m.run_s, frames_per_round,
        records_per_frame, static_cast<unsigned long long>(m.retransmits),
        static_cast<unsigned long long>(m.boundary_nodes),
        static_cast<unsigned long long>(m.polls_during_compute),
        peak_rss_mb());
    return 0;
  } catch (const ddc::Error& e) {
    std::cerr << "bench_cluster: " << e.what() << '\n';
    return 1;
  }
}
