// Figure 3 — outlier removal and robust average, Δ sweep.
//
// Paper setup (Section 5.3.2): 1,000 sensors; 950 values from the standard
// normal N((0,0), I), 50 "outlier" values from N((0,Δ), 0.1·I), Δ swept
// from 0 to 25; k = 2; run to convergence. Reported per Δ:
//   * missed outliers [%] — outlier weight incorrectly assigned to the
//     good collection (outliers defined by density < f_min = 5e-5 under
//     the standard normal — the paper's value-based rule);
//   * robust error — ‖estimated mean of the good collection − (0,0)‖,
//     averaged over nodes;
//   * regular error — the same for plain average aggregation (push-sum).
//
// Expected shape (paper Fig. 3b): regular error grows ~linearly in Δ;
// missed-outlier % starts high and collapses once the collections
// separate; robust error stays small throughout — it peaks slightly at
// moderate Δ where near-threshold values blur the boundary, exactly the
// effect the paper discusses.
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/outlier_metrics.hpp>
#include <ddc/workload/scenarios.hpp>

#include "bench_util.hpp"

namespace {

struct DeltaRow {
  double delta = 0.0;
  double missed = 0.0;
  double robust = 0.0;
  double regular = 0.0;
};

/// One Δ point — an independent pair of simulations, seeded only from
/// delta_int so rows are sweep-safe.
DeltaRow measure_delta(int delta_int, std::size_t rounds) {
  DeltaRow row;
  row.delta = static_cast<double>(delta_int);
  ddc::stats::Rng rng(300 + static_cast<std::uint64_t>(delta_int));
  const ddc::workload::OutlierScenario scenario =
      ddc::workload::outlier_scenario(row.delta, rng);
  const std::size_t n = scenario.inputs.size();

  ddc::gossip::NetworkConfig config;
  config.k = 2;
  config.track_aux = true;  // exact missed-outlier accounting
  config.seed = 400 + static_cast<std::uint64_t>(delta_int);
  // A few EM restarts per partition smooth out the bistability of the
  // separation near the critical Δ (merging is irreversible, so one bad
  // local optimum early can decide a whole run).
  ddc::em::ReductionOptions reduction;
  reduction.restarts = 3;
  auto runner = ddc::sim::make_gm_round_runner(
      ddc::sim::Topology::complete(n), scenario.inputs, config, {}, reduction);

  auto baseline = ddc::sim::make_push_sum_round_runner(
      ddc::sim::Topology::complete(n), scenario.inputs);

  runner.run_rounds(rounds);
  baseline.run_rounds(rounds);

  for (std::size_t i = 0; i < n; ++i) {
    row.missed += ddc::metrics::missed_outlier_ratio(
                      runner.nodes()[i].classification(),
                      scenario.outlier_flags) /
                  static_cast<double>(n);
    row.robust += ddc::metrics::robust_mean_error(
                      runner.nodes()[i].classification(), scenario.true_mean) /
                  static_cast<double>(n);
    row.regular += ddc::linalg::distance2(baseline.nodes()[i].estimate(),
                                          scenario.true_mean) /
                   static_cast<double>(n);
  }
  return row;
}

}  // namespace

int main() {
  const std::size_t rounds = 40;

  std::cout << "=== Figure 3: outlier removal, 950 + 50 values, k = 2, "
            << rounds << " rounds per Delta ===\n\n";

  const auto rows = ddc::bench::sweep(26, [&](std::size_t i) {
    return measure_delta(static_cast<int>(i), rounds);
  });

  ddc::io::Table table({"delta", "missed outliers %", "robust error",
                        "regular error"});
  for (const DeltaRow& row : rows) {
    table.add_row({row.delta, 100.0 * row.missed, row.robust, row.regular});
  }
  table.print(std::cout);
  std::cout << "\n(paper Fig. 3b: regular error grows ~linearly with Delta; "
               "the robust protocol removes outliers once they separate)\n";
  return 0;
}
