// Ablation — partition strategy for the Gaussian instantiation.
//
// The paper argues for EM-based merge decisions (Section 5.2). This bench
// runs the Fig. 2 workload under three drop-in partition policies —
// EM (the paper's), Runnalls' KL-bound greedy merging, and the
// covariance-blind nearest-means heuristic (Algorithm 2's rule lifted to
// Gaussians) — and compares recovery quality and wall-clock cost.
#include <chrono>
#include <iostream>

#include <ddc/gossip/network.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/gaussian_metrics.hpp>
#include <ddc/stats/mixture_distance.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/workload/scenarios.hpp>

#include "bench_util.hpp"

namespace {

constexpr std::size_t kNodes = 300;
constexpr std::size_t kK = 7;
constexpr std::size_t kMaxRounds = 80;

using Truth = ddc::stats::GaussianMixture;

template <typename Node, typename PolicyFactory>
void bench_policy(ddc::io::Table& table, const char* name, const Truth& truth,
                  const std::vector<ddc::linalg::Vector>& inputs,
                  PolicyFactory make_policy) {
  std::vector<Node> nodes;
  nodes.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ddc::core::ClassifierOptions options;
    options.k = kK;
    options.quanta_per_unit = std::int64_t{1} << 20;
    nodes.emplace_back(inputs[i], make_policy(i), options);
  }
  ddc::sim::RoundRunner<Node> runner(
      ddc::sim::Topology::complete(inputs.size()), std::move(nodes));

  const auto start = std::chrono::steady_clock::now();
  const std::size_t rounds =
      ddc::bench::run_until_agreement<ddc::summaries::GaussianPolicy>(
          runner, 1e-3, 5, kMaxRounds);
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  const auto estimate =
      ddc::summaries::to_mixture(runner.nodes()[0].classification());
  table.add_row({std::string(name), static_cast<long long>(rounds),
                 ddc::metrics::mixture_recovery_error(truth, estimate),
                 ddc::stats::normalized_ise(truth, estimate),
                 elapsed / static_cast<double>(rounds),
                 static_cast<long long>(estimate.size())});
}

}  // namespace

int main() {
  std::cout << "=== Ablation: partition policy on the Fig. 2 workload (n = "
            << kNodes << ", k = " << kK << ") ===\n\n";

  const Truth truth = ddc::workload::fig2_mixture();
  ddc::stats::Rng rng(60);
  const auto inputs = ddc::workload::sample_inputs(truth, kNodes, rng);

  ddc::io::Table table({"partition policy", "rounds", "recovery error",
                        "NISE", "ms/round", "final collections"});

  bench_policy<ddc::gossip::GmNode>(
      table, "EM (paper)", truth, inputs, [](std::size_t i) {
        return ddc::partition::EmPartition(ddc::stats::Rng::derive(61, i));
      });
  bench_policy<ddc::gossip::GmRunnallsNode>(
      table, "Runnalls greedy", truth, inputs,
      [](std::size_t) { return ddc::partition::RunnallsPartition{}; });
  bench_policy<ddc::gossip::GmNearestMeansNode>(
      table, "nearest means", truth, inputs,
      [](std::size_t) { return ddc::partition::NearestMeansPartition{}; });

  table.print(std::cout);
  std::cout << "\n(EM and Runnalls use covariance information; nearest-means "
               "is the centroid heuristic and pays for ignoring it)\n";
  return 0;
}
