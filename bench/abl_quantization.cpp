// Ablation — the weight quantum q.
//
// The paper quantizes weights to multiples of q to exclude Zeno effects
// and assumes q ≪ 1/n. This bench makes the assumption concrete: on a
// ring (where collection weights shrink geometrically between refills) we
// sweep quanta-per-unit (q = 1 / qpu) and report final disagreement and
// the worst relative-weight error against the exact cluster fractions.
// Conservation is asserted exactly at every resolution — quantization
// degrades precision, never conservation.
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/summaries/centroid.hpp>

#include "bench_util.hpp"

int main() {
  const std::size_t n = 32;
  const std::size_t rounds = 2000;

  std::cout << "=== Ablation: weight quantum q = 1/qpu (n = " << n
            << ", ring, centroid algorithm, " << rounds << " rounds) ===\n\n";

  ddc::stats::Rng rng(80);
  std::vector<ddc::linalg::Vector> inputs;
  std::size_t low_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool low = i % 4 != 3;  // 3/4 low cluster, 1/4 high
    low_count += low ? 1 : 0;
    inputs.push_back(ddc::linalg::Vector{
        low ? rng.normal(0.0, 1.0) : rng.normal(100.0, 1.0)});
  }
  const double true_fraction =
      static_cast<double>(low_count) / static_cast<double>(n);

  struct QRow {
    std::int64_t qpu = 0;
    double disagreement = 0.0;
    double worst_share_error = 0.0;
    bool conserved = false;
  };
  const std::vector<int> log_qpus = {4, 8, 12, 16, 20, 28, 36, 44};
  // Every quantum resolution is an independent run — fan across the pool.
  const auto rows = ddc::bench::sweep(log_qpus.size(), [&](std::size_t qi) {
    QRow row;
    row.qpu = std::int64_t{1} << log_qpus[qi];
    ddc::gossip::NetworkConfig config;
    config.k = 2;
    config.quanta_per_unit = row.qpu;
    config.seed = 81;
    ddc::sim::RoundRunnerOptions options;
    options.selection = ddc::sim::NeighborSelection::round_robin;
    options.seed = 82;
    auto runner = ddc::sim::make_centroid_round_runner(
        ddc::sim::Topology::ring(n), inputs, config, options);
    runner.run_rounds(rounds);

    row.disagreement = ddc::metrics::max_disagreement_vs_first<
        ddc::summaries::CentroidPolicy>(runner.nodes());
    for (const auto& node : runner.nodes()) {
      const auto& c = node.classification();
      for (std::size_t j = 0; j < c.size(); ++j) {
        if (c[j].summary[0] < 50.0) {
          row.worst_share_error =
              std::max(row.worst_share_error,
                       std::abs(c.relative_weight(j) - true_fraction));
        }
      }
    }
    row.conserved = ddc::metrics::total_quanta(runner.nodes()) ==
                    static_cast<std::int64_t>(n) * row.qpu;
    return row;
  });

  ddc::io::Table table({"quanta/unit", "q*n", "disagreement",
                        "max weight-share error", "conserved"});
  for (const QRow& row : rows) {
    table.add_row({static_cast<long long>(row.qpu),
                   static_cast<double>(n) / static_cast<double>(row.qpu),
                   row.disagreement, row.worst_share_error,
                   std::string(row.conserved ? "yes" : "NO")});
  }
  table.print(std::cout);
  std::cout << "\n(q·n ≪ 1 is the paper's assumption; coarse quanta distort "
               "relative weights but conservation stays exact)\n";
  return 0;
}
