// Ablation — the weight quantum q.
//
// The paper quantizes weights to multiples of q to exclude Zeno effects
// and assumes q ≪ 1/n. This bench makes the assumption concrete: on a
// ring (where collection weights shrink geometrically between refills) we
// sweep quanta-per-unit (q = 1 / qpu) and report final disagreement and
// the worst relative-weight error against the exact cluster fractions.
// Conservation is asserted exactly at every resolution — quantization
// degrades precision, never conservation.
#include <iostream>

#include <ddc/gossip/network.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/summaries/centroid.hpp>

int main() {
  const std::size_t n = 32;
  const std::size_t rounds = 2000;

  std::cout << "=== Ablation: weight quantum q = 1/qpu (n = " << n
            << ", ring, centroid algorithm, " << rounds << " rounds) ===\n\n";

  ddc::stats::Rng rng(80);
  std::vector<ddc::linalg::Vector> inputs;
  std::size_t low_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool low = i % 4 != 3;  // 3/4 low cluster, 1/4 high
    low_count += low ? 1 : 0;
    inputs.push_back(ddc::linalg::Vector{
        low ? rng.normal(0.0, 1.0) : rng.normal(100.0, 1.0)});
  }
  const double true_fraction =
      static_cast<double>(low_count) / static_cast<double>(n);

  ddc::io::Table table({"quanta/unit", "q*n", "disagreement",
                        "max weight-share error", "conserved"});
  for (int log_qpu : {4, 8, 12, 16, 20, 28, 36, 44}) {
    const std::int64_t qpu = std::int64_t{1} << log_qpu;
    ddc::gossip::NetworkConfig config;
    config.k = 2;
    config.quanta_per_unit = qpu;
    config.seed = 81;
    ddc::sim::RoundRunnerOptions options;
    options.selection = ddc::sim::NeighborSelection::round_robin;
    options.seed = 82;
    ddc::sim::RoundRunner<ddc::gossip::CentroidNode> runner(
        ddc::sim::Topology::ring(n),
        ddc::gossip::make_centroid_nodes(inputs, config), options);
    runner.run_rounds(rounds);

    const double disagreement = ddc::metrics::max_disagreement_vs_first<
        ddc::summaries::CentroidPolicy>(runner.nodes());
    double worst_share_error = 0.0;
    for (const auto& node : runner.nodes()) {
      const auto& c = node.classification();
      for (std::size_t j = 0; j < c.size(); ++j) {
        if (c[j].summary[0] < 50.0) {
          worst_share_error =
              std::max(worst_share_error,
                       std::abs(c.relative_weight(j) - true_fraction));
        }
      }
    }
    const bool conserved = ddc::metrics::total_quanta(runner.nodes()) ==
                           static_cast<std::int64_t>(n) * qpu;
    table.add_row({static_cast<long long>(qpu),
                   static_cast<double>(n) / static_cast<double>(qpu),
                   disagreement, worst_share_error,
                   std::string(conserved ? "yes" : "NO")});
  }
  table.print(std::cout);
  std::cout << "\n(q·n ≪ 1 is the paper's assumption; coarse quanta distort "
               "relative weights but conservation stays exact)\n";
  return 0;
}
