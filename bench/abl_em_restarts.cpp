// Ablation — EM restarts vs separation reliability.
//
// Merging is irreversible in the protocol, so one bad EM local optimum
// early in a run can permanently glue the outlier cloud to the good
// collection. Restarting EM a few times per partition (keeping the best
// surrogate objective) buys robustness near the critical separation. This
// bench measures the missed-outlier ratio at the hard Δ = 5 regime over
// several independent runs, for 1 / 2 / 4 restarts.
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/outlier_metrics.hpp>
#include <ddc/workload/scenarios.hpp>

#include "bench_util.hpp"

int main() {
  const double delta = 5.0;  // the hardest band of the Fig. 3 sweep
  const std::size_t runs = 6;
  const std::size_t n_good = 475;
  const std::size_t n_out = 25;

  std::cout << "=== Ablation: EM restarts at the critical separation "
               "(Delta = " << delta << ", " << runs << " runs each) ===\n\n";

  const std::vector<std::size_t> restart_levels = {1, 2, 4};
  // All restarts × runs simulations are independent — flatten the grid and
  // fan every cell across the bench pool; each cell returns its missed
  // ratio. Seeds depend only on the run index, as before.
  const auto missed_grid = ddc::bench::sweep(
      restart_levels.size() * runs, [&](std::size_t cell) {
        const std::size_t restarts = restart_levels[cell / runs];
        const std::size_t run = cell % runs;
        ddc::stats::Rng rng(900 + run);
        const auto scenario =
            ddc::workload::outlier_scenario(delta, rng, n_good, n_out);
        ddc::gossip::NetworkConfig config;
        config.k = 2;
        config.track_aux = true;
        config.seed = 950 + run;
        ddc::em::ReductionOptions reduction;
        reduction.restarts = restarts;
        auto runner = ddc::sim::make_gm_round_runner(
            ddc::sim::Topology::complete(scenario.inputs.size()),
            scenario.inputs, config, {}, reduction);
        runner.run_rounds(40);

        double missed = 0.0;
        for (std::size_t i = 0; i < scenario.inputs.size(); ++i) {
          missed += ddc::metrics::missed_outlier_ratio(
                        runner.nodes()[i].classification(),
                        scenario.outlier_flags) /
                    static_cast<double>(scenario.inputs.size());
        }
        return missed;
      });

  ddc::io::Table table({"restarts", "mean missed %", "worst run missed %",
                        "runs fully separated (<10%)"});
  for (std::size_t ri = 0; ri < restart_levels.size(); ++ri) {
    double total = 0.0;
    double worst = 0.0;
    std::size_t separated = 0;
    for (std::size_t run = 0; run < runs; ++run) {
      const double missed = missed_grid[ri * runs + run];
      total += missed;
      worst = std::max(worst, missed);
      separated += missed < 0.10 ? 1 : 0;
    }
    table.add_row({static_cast<long long>(restart_levels[ri]),
                   100.0 * total / static_cast<double>(runs), 100.0 * worst,
                   static_cast<long long>(separated)});
  }
  table.print(std::cout);
  std::cout << "\n(restarts trade partition-time compute for escape from the "
               "bad local optima that an irreversible-merge protocol can "
               "never undo; see DESIGN.md, implementation notes)\n";
  return 0;
}
