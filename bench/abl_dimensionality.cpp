// Ablation — value dimensionality.
//
// The paper stresses that the GM instantiation provides "a rich and
// accurate description of multivariate data" (its related-work critique of
// histogram methods is exactly their 1-D limitation). This bench runs the
// same two-cluster classification in growing dimension d and reports
// recovery quality, rounds, and wire bytes — the d(d+1)/2 covariance cost
// is the only thing that grows.
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/wire/serialize.hpp>

#include "bench_util.hpp"

int main() {
  const std::size_t n = 200;
  std::cout << "=== Ablation: value dimensionality (n = " << n
            << ", GM, k = 2, two clusters separated in every axis) ===\n\n";

  struct DimRow {
    std::size_t d = 0;
    std::size_t rounds = 0;
    double worst = 0.0;
    std::size_t max_bytes = 0;
  };
  const std::vector<std::size_t> dims = {1, 2, 4, 8, 16};
  // One independent simulation per dimension — fan across the bench pool.
  const auto rows = ddc::bench::sweep(dims.size(), [&](std::size_t di) {
    const std::size_t d = dims[di];
    ddc::stats::Rng rng(160 + d);
    std::vector<ddc::linalg::Vector> inputs;
    for (std::size_t i = 0; i < n; ++i) {
      ddc::linalg::Vector v(d);
      const double center = i % 2 == 0 ? 0.0 : 8.0;
      for (std::size_t c = 0; c < d; ++c) v[c] = rng.normal(center, 1.0);
      inputs.push_back(std::move(v));
    }
    ddc::gossip::NetworkConfig config;
    config.k = 2;
    config.seed = 161;
    auto runner = ddc::sim::make_gm_round_runner(
        ddc::sim::Topology::complete(n), inputs, config);
    DimRow row;
    row.d = d;
    row.rounds =
        ddc::bench::run_until_agreement<ddc::summaries::GaussianPolicy>(
            runner, 1e-2, 5, 100);

    // Worst-node error of the low-cluster mean against the true center 0.
    for (auto& node : runner.nodes()) {
      for (const auto& col : node.classification()) {
        if (col.summary.mean()[0] < 4.0) {
          row.worst = std::max(
              row.worst, ddc::linalg::norm2(col.summary.mean()) /
                             std::sqrt(static_cast<double>(d)));
        }
      }
    }
    for (auto& node : runner.nodes()) {
      row.max_bytes =
          std::max(row.max_bytes, ddc::wire::encode_classification(
                                      node.prepare_message())
                                      .size());
    }
    return row;
  });

  ddc::io::Table table({"d", "rounds", "mean error (worst node)",
                        "max msg bytes"});
  for (const DimRow& row : rows) {
    table.add_row({static_cast<long long>(row.d),
                   static_cast<long long>(row.rounds), row.worst,
                   static_cast<long long>(row.max_bytes)});
  }
  table.print(std::cout);
  std::cout << "\n(quality and convergence speed hold across dimensions; "
               "message size grows as d(d+1)/2 per Gaussian collection)\n";
  return 0;
}
