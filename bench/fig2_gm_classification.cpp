// Figure 2 — Gaussian Mixture classification of multidimensional data.
//
// Paper setup (Section 5.3.1): values generated from three Gaussians in
// R² (the "fence by the woods" temperature field); 1,000 nodes; fully
// connected network; k = 7; run until convergence. The paper shows the
// estimated equidensity ellipses over the data (Fig. 2c) and notes that
// leftover singleton collections appear as x's.
//
// This bench prints the same content numerically: the ground-truth
// components, node 0's converged estimate (weight/mean/covariance per
// collection, with singletons flagged), the component-recovery error, and
// the rounds it took for all nodes to agree.
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/ascii_canvas.hpp>
#include <ddc/io/table.hpp>
#include <ddc/metrics/gaussian_metrics.hpp>
#include <ddc/stats/mixture_distance.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/workload/scenarios.hpp>

#include "bench_util.hpp"

int main() {
  using ddc::stats::GaussianMixture;

  const std::size_t n = 1000;
  const std::size_t k = 7;

  std::cout << "=== Figure 2: GM classification, " << n
            << " nodes, fully connected, k = " << k << " ===\n\n";

  const GaussianMixture truth = ddc::workload::fig2_mixture();
  ddc::stats::Rng rng(2);
  const auto inputs = ddc::workload::sample_inputs(truth, n, rng);

  ddc::gossip::NetworkConfig config;
  config.k = k;
  config.seed = 2;
  ddc::sim::RoundRunnerOptions options;
  options.parallelism = ddc::bench::bench_threads();
  auto runner = ddc::sim::make_gm_round_runner(ddc::sim::Topology::complete(n),
                                               inputs, config, options);

  const std::size_t rounds =
      ddc::bench::run_until_agreement<ddc::summaries::GaussianPolicy>(
          runner, /*threshold=*/1e-3, /*check_every=*/5, /*max_rounds=*/80);

  std::cout << "converged after " << rounds << " rounds (agreement < 1e-3)\n\n";

  ddc::io::Table truth_table({"true component", "weight", "mean x", "mean y",
                              "var x", "var y", "cov"});
  for (std::size_t j = 0; j < truth.size(); ++j) {
    const auto& g = truth[j].gaussian;
    truth_table.add_row({static_cast<long long>(j), truth[j].weight,
                         g.mean()[0], g.mean()[1], g.cov()(0, 0),
                         g.cov()(1, 1), g.cov()(0, 1)});
  }
  std::cout << "ground truth (Fig. 2a):\n";
  truth_table.print(std::cout);

  const auto& classification = runner.nodes()[0].classification();
  ddc::io::Table est_table({"collection", "weight", "mean x", "mean y",
                            "var x", "var y", "cov", "kind"});
  std::size_t singletons = 0;
  for (std::size_t j = 0; j < classification.size(); ++j) {
    const auto& g = classification[j].summary;
    const bool singleton = ddc::linalg::max_abs(g.cov()) == 0.0;
    singletons += singleton ? 1 : 0;
    est_table.add_row({static_cast<long long>(j),
                       classification.relative_weight(j), g.mean()[0],
                       g.mean()[1], g.cov()(0, 0), g.cov()(1, 1),
                       g.cov()(0, 1),
                       std::string(singleton ? "x (singleton)" : "ellipse")});
  }
  std::cout << "\nnode 0's estimate (Fig. 2c):\n";
  est_table.print(std::cout);
  std::cout << "\nsingleton collections (the paper's x's): " << singletons
            << "\n";

  const GaussianMixture estimate =
      ddc::summaries::to_mixture(classification);
  std::cout << "component recovery error (truth vs estimate): "
            << ddc::metrics::mixture_recovery_error(truth, estimate) << "\n"
            << "normalized ISE density distance (0 = exact):   "
            << ddc::stats::normalized_ise(truth, estimate) << "\n";

  // Sanity the paper's claim "usable estimation": the heaviest three
  // estimated components should sit near the three true means.
  std::cout << "\nall-node agreement (max classification distance vs node 0): "
            << ddc::metrics::max_disagreement_vs_first<
                   ddc::summaries::GaussianPolicy>(runner.nodes())
            << "\n";

  // The figure itself, terminal edition: panel (b) the generated values,
  // panel (c) node 0's 2σ equidensity ellipses (x's = singletons).
  std::cout << "\nFig. 2b — generated input values:\n";
  ddc::io::AsciiCanvas values = ddc::io::AsciiCanvas::fit(inputs);
  values.plot_points(inputs, '.');
  values.render(std::cout);

  std::cout << "\nFig. 2c — node 0's estimate (2-sigma contours):\n";
  ddc::io::AsciiCanvas contours = ddc::io::AsciiCanvas::fit(inputs);
  for (std::size_t j = 0; j < classification.size(); ++j) {
    contours.draw_gaussian(classification[j].summary, 2.0,
                           static_cast<char>('1' + (j % 9)));
  }
  contours.render(std::cout);
  return 0;
}
