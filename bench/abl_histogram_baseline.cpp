// Ablation — histogram gossip (related-work style) vs GM classification.
//
// The paper contrasts itself with gossip histogram estimators (Haridasan &
// van Renesse; Sacha et al.): those are 1-D only and, with fixed bins,
// "small sets of distant values" lose their identity inside a bin. Both
// claims are made concrete here. The histogram estimator is itself an
// instantiation of the generic algorithm (HistogramPolicy, k = 1 — one
// histogram describing everything), which is a nice illustration of the
// framework's breadth.
//
// Workload: 990 values ~ N(0,1) plus a tight far cluster of 10 values near
// x₀. We compare (a) each method's estimate of the far cluster's mean and
// (b) wire bytes per message.
#include <iostream>

#include <ddc/gossip/runners.hpp>
#include <ddc/io/table.hpp>
#include <ddc/partition/greedy.hpp>
#include <ddc/summaries/histogram_summary.hpp>
#include <ddc/wire/serialize.hpp>

#include "bench_util.hpp"

namespace {

using Binning = ddc::summaries::DefaultBinning;
using HistogramPolicy = ddc::summaries::HistogramPolicy<Binning>;
using HistogramNode =
    ddc::gossip::ClassifierNode<HistogramPolicy,
                                ddc::partition::GreedyDistancePartition<HistogramPolicy>>;

}  // namespace

int main() {
  const std::size_t n = 1000;
  const std::size_t n_far = 10;

  std::cout << "=== Ablation: histogram gossip vs GM classification ===\n\n";

  // Sweep the far cluster across positions inside a bin and at a bin edge
  // (bin width here is 1.0, bins [-32, 32)); each position is an
  // independent pair of runs, fanned across the bench pool.
  const std::vector<double> positions = {25.10, 25.48, 24.99, 20.50};
  const auto rows = ddc::bench::sweep(positions.size(), [&](std::size_t pi) {
    const double x0 = positions[pi];
    ddc::stats::Rng rng(140);
    std::vector<double> scalars;
    std::vector<ddc::linalg::Vector> vectors;
    for (std::size_t i = 0; i < n - n_far; ++i) {
      const double v = rng.normal();
      scalars.push_back(v);
      vectors.push_back(ddc::linalg::Vector{v});
    }
    for (std::size_t i = 0; i < n_far; ++i) {
      const double v = rng.normal(x0, 0.02);
      scalars.push_back(v);
      vectors.push_back(ddc::linalg::Vector{v});
    }

    // GM classifier, k = 2.
    ddc::gossip::NetworkConfig config;
    config.k = 2;
    config.seed = 141;
    auto gm = ddc::sim::make_gm_round_runner(ddc::sim::Topology::complete(n),
                                             vectors, config);
    gm.run_rounds(40);
    // The far collection is the lighter of the two.
    const auto& classification = gm.nodes()[0].classification();
    double gm_estimate = 0.0;
    double best_weight = 2.0;
    for (std::size_t j = 0; j < classification.size(); ++j) {
      if (classification.relative_weight(j) < best_weight) {
        best_weight = classification.relative_weight(j);
        gm_estimate = classification[j].summary.mean()[0];
      }
    }

    // Histogram gossip, k = 1 (one histogram summarizing all values).
    std::vector<HistogramNode> hist_nodes;
    for (std::size_t i = 0; i < n; ++i) {
      ddc::core::ClassifierOptions options;
      options.k = 1;
      hist_nodes.emplace_back(
          scalars[i], ddc::partition::GreedyDistancePartition<HistogramPolicy>{},
          options);
    }
    ddc::sim::RoundRunner<HistogramNode> hist(
        ddc::sim::Topology::complete(n), std::move(hist_nodes));
    hist.run_rounds(40);
    // Far-cluster estimate from the histogram: mass-weighted mean of bins
    // beyond x = 10 (everything out there belongs to the far cluster).
    const auto& h = hist.nodes()[0].classification()[0].summary;
    double far_mass = 0.0;
    double far_mean = 0.0;
    for (std::size_t b = 0; b < h.bins(); ++b) {
      if (h.bin_center(b) > 10.0 && h.mass()[b] > 0.0) {
        far_mass += h.mass()[b];
        far_mean += h.mass()[b] * h.bin_center(b);
      }
    }
    const double hist_estimate = far_mass > 0.0 ? far_mean / far_mass : 0.0;

    const std::size_t gm_bytes =
        ddc::wire::encode_classification(gm.nodes()[0].prepare_message()).size();
    const std::size_t hist_bytes =
        ddc::wire::encode_classification(hist.nodes()[0].prepare_message()).size();

    return std::vector<double>{x0, std::abs(gm_estimate - x0),
                               std::abs(hist_estimate - x0),
                               static_cast<double>(gm_bytes),
                               static_cast<double>(hist_bytes)};
  });

  ddc::io::Table table({"far-cluster center", "GM estimate error",
                        "histogram estimate error", "GM msg bytes",
                        "hist msg bytes"});
  for (const auto& row : rows) {
    table.add_row({row[0], row[1], row[2], static_cast<long long>(row[3]),
                   static_cast<long long>(row[4])});
  }
  table.print(std::cout);
  std::cout << "\n(the histogram's error is bounded below by its bin "
               "quantization and its message carries every bin; the GM "
               "summary names the far cluster's mean exactly in ~100 bytes "
               "— and generalizes beyond 1-D, which histograms do not)\n";
  return 0;
}
