// Which invariants survive which faults:
//   * message loss destroys global conservation — but Lemma 1 keeps
//     holding for every collection that still exists (it is a per-
//     collection property, independent of the pool);
//   * the GM instantiation at k = 1 degenerates to average aggregation,
//     exactly like the centroid one.
#include <gtest/gtest.h>

#include <ddc/audit/auditors.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/summaries/gaussian_summary.hpp>

namespace ddc {
namespace {

using linalg::Vector;

TEST(FaultInvariants, Lemma1HoldsPerCollectionDespiteMessageLoss) {
  stats::Rng rng(901);
  const std::size_t n = 16;
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(i % 2 == 0 ? 0.0 : 30.0, 1.0)});
  }
  gossip::NetworkConfig config;
  config.k = 2;
  config.track_aux = true;
  config.seed = 901;
  sim::RoundRunnerOptions options;
  options.message_loss_probability = 0.2;
  options.seed = 902;
  sim::RoundRunner<gossip::GmNode> runner(
      sim::Topology::complete(n), gossip::make_gm_nodes(inputs, config),
      options);

  const std::int64_t full =
      static_cast<std::int64_t>(n) * config.quanta_per_unit;
  for (int r = 0; r < 40; ++r) {
    runner.run_round();
    const auto pool = audit::collect_pool<stats::Gaussian>(
        runner.nodes(),
        std::vector<core::Classification<stats::Gaussian>>{});
    // Lemma 1 still checks out collection by collection…
    ASSERT_NO_THROW((audit::check_lemma1<summaries::GaussianPolicy>(
        pool, inputs, config.quanta_per_unit, 1e-6)))
        << "round " << r;
  }
  // …while conservation is genuinely broken by the losses.
  EXPECT_LT(metrics::total_quanta(runner.nodes()), full);
}

TEST(FaultInvariants, GmWithKOneDegeneratesToAverageAggregation) {
  stats::Rng rng(903);
  const std::size_t n = 20;
  std::vector<Vector> inputs;
  Vector truth(2);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.uniform(-5.0, 5.0), rng.uniform(0.0, 9.0)});
    truth += inputs.back() / static_cast<double>(n);
  }
  gossip::NetworkConfig config;
  config.k = 1;
  config.seed = 903;
  sim::RoundRunner<gossip::GmNode> runner(
      sim::Topology::complete(n), gossip::make_gm_nodes(inputs, config));
  runner.run_rounds(60);
  for (const auto& node : runner.nodes()) {
    ASSERT_EQ(node.classification().size(), 1u);
    // The single Gaussian's mean is the global average; its covariance is
    // the global scatter (the "collapse" of the whole data set).
    EXPECT_LT(linalg::distance2(node.classification()[0].summary.mean(),
                                truth),
              1e-3);
  }
}

}  // namespace
}  // namespace ddc
