// End-to-end tests of the distributed classification protocol — the
// executable counterparts of the paper's Section 6 claims:
//   * Theorem 1: on any connected topology, under round-based or fully
//     asynchronous scheduling, all nodes converge to one classification of
//     the complete input set.
//   * Lemma 1: the ⟨summary, weight⟩ pairs track exactly the collections
//     described by the auxiliary mixture vectors.
//   * Lemma 2: the maximal reference angles never increase.
//   * Exact conservation of weight quanta in crash-free executions.
#include <algorithm>
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include <ddc/gossip/classifier_node.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/metrics/gaussian_metrics.hpp>
#include <ddc/sim/async_runner.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/stats/rng.hpp>
#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/gaussian_summary.hpp>

namespace ddc {
namespace {

using gossip::CentroidNode;
using gossip::GmNode;
using gossip::NetworkConfig;
using linalg::Vector;
using sim::RoundRunner;
using sim::Topology;
using summaries::CentroidPolicy;
using summaries::GaussianPolicy;

/// Two well-separated 1-D clusters: 2/3 of nodes near 0, 1/3 near 100.
std::vector<Vector> two_cluster_inputs(std::size_t n, stats::Rng& rng) {
  std::vector<Vector> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 3 != 2) {
      inputs.push_back(Vector{rng.normal(0.0, 1.0)});
    } else {
      inputs.push_back(Vector{rng.normal(100.0, 1.0)});
    }
  }
  return inputs;
}

NetworkConfig config_with(std::size_t k, bool track_aux = false,
                          std::uint64_t seed = 17) {
  NetworkConfig c;
  c.k = k;
  c.quanta_per_unit = std::int64_t{1} << 20;
  c.track_aux = track_aux;
  c.seed = seed;
  return c;
}

TEST(Convergence, CentroidNodesAgreeOnCompleteGraph) {
  stats::Rng rng(401);
  const std::size_t n = 32;
  const auto inputs = two_cluster_inputs(n, rng);
  RoundRunner<CentroidNode> runner(Topology::complete(n),
                                   gossip::make_centroid_nodes(inputs,
                                                               config_with(2)));
  runner.run_rounds(120);

  // All nodes hold (nearly) the same classification …
  EXPECT_LT((metrics::max_disagreement_vs_first<CentroidPolicy>(runner.nodes())),
            1e-3);

  // … and that classification is the two cluster centroids with the right
  // relative weights.
  const auto& c = runner.nodes()[0].classification();
  ASSERT_EQ(c.size(), 2u);
  std::size_t low = c[0].summary[0] < c[1].summary[0] ? 0 : 1;
  EXPECT_NEAR(c[low].summary[0], 0.0, 1.5);
  EXPECT_NEAR(c[1 - low].summary[0], 100.0, 1.5);
  // Exact expected fraction: values with i % 3 != 2 form the low cluster.
  std::size_t low_count = 0;
  for (const auto& v : inputs) low_count += v[0] < 50.0 ? 1 : 0;
  EXPECT_NEAR(c.relative_weight(low),
              static_cast<double>(low_count) / static_cast<double>(n), 0.01);
}

TEST(Convergence, GmNodesAgreeAndRecoverClusters) {
  stats::Rng rng(402);
  const std::size_t n = 30;
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n / 2) {
      inputs.push_back(Vector{rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)});
    } else {
      inputs.push_back(Vector{rng.normal(20.0, 2.0), rng.normal(-5.0, 0.5)});
    }
  }
  RoundRunner<GmNode> runner(Topology::complete(n),
                             gossip::make_gm_nodes(inputs, config_with(2)));
  runner.run_rounds(120);

  EXPECT_LT((metrics::max_disagreement_vs_first<GaussianPolicy>(runner.nodes())),
            1e-2);
  const auto& c = runner.nodes()[0].classification();
  ASSERT_EQ(c.size(), 2u);
  const std::size_t left =
      c[0].summary.mean()[0] < c[1].summary.mean()[0] ? 0 : 1;
  EXPECT_NEAR(c[left].summary.mean()[0], 0.0, 1.5);
  EXPECT_NEAR(c[1 - left].summary.mean()[0], 20.0, 1.5);
  EXPECT_NEAR(c.relative_weight(left), 0.5, 0.02);
}

/// Parameterized over topology families (Theorem 1 claims *any* connected
/// topology works).
class TopologyConvergenceTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  static Topology make(const std::string& name, std::size_t n,
                       stats::Rng& rng) {
    if (name == "complete") return Topology::complete(n);
    if (name == "ring") return Topology::ring(n);
    if (name == "directed_ring") return Topology::directed_ring(n);
    if (name == "line") return Topology::line(n);
    if (name == "star") return Topology::star(n);
    if (name == "grid") return Topology::grid(4, n / 4);
    if (name == "geometric") return Topology::random_geometric(n, 0.45, rng);
    if (name == "erdos_renyi") return Topology::erdos_renyi(n, 0.3, rng);
    throw ConfigError("unknown topology " + name);
  }
};

TEST_P(TopologyConvergenceTest, CentroidNodesConvergeEverywhere) {
  stats::Rng rng(403);
  const std::size_t n = 16;
  const auto inputs = two_cluster_inputs(n, rng);
  Topology topology = make(GetParam(), n, rng);
  ASSERT_TRUE(topology.is_connected());
  sim::RoundRunnerOptions options;
  options.selection = sim::NeighborSelection::round_robin;  // fairness
  // On a star, a leaf halves its weight every round and is only refilled
  // every deg(center) rounds, shrinking it ~2¹⁵× between refills; the
  // quantum must be fine enough that such a collection still holds many
  // quanta (the paper's q ≪ 1/n assumption, taken seriously).
  NetworkConfig config = config_with(2);
  config.quanta_per_unit = std::int64_t{1} << 40;
  RoundRunner<CentroidNode> runner(
      std::move(topology), gossip::make_centroid_nodes(inputs, config),
      options);
  // Poorly-mixing topologies (line, star) equalize relative weights at a
  // diffusion timescale ~ n²·log n; give everyone ample rounds.
  runner.run_rounds(3000);
  EXPECT_LT((metrics::max_disagreement_vs_first<CentroidPolicy>(runner.nodes())),
            5e-2)
      << "topology: " << GetParam();
  // Summaries must reflect both clusters at every node.
  for (const auto& node : runner.nodes()) {
    const auto& c = node.classification();
    ASSERT_EQ(c.size(), 2u);
    const double lo = std::min(c[0].summary[0], c[1].summary[0]);
    const double hi = std::max(c[0].summary[0], c[1].summary[0]);
    EXPECT_NEAR(lo, 0.0, 3.0);
    EXPECT_NEAR(hi, 100.0, 3.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyConvergenceTest,
                         ::testing::Values("complete", "ring", "directed_ring",
                                           "line", "star", "grid", "geometric",
                                           "erdos_renyi"),
                         [](const auto& info) { return info.param; });

TEST(Conservation, QuantaExactlyConservedForManyRounds) {
  stats::Rng rng(404);
  const std::size_t n = 24;
  const auto inputs = two_cluster_inputs(n, rng);
  const NetworkConfig config = config_with(3);
  RoundRunner<CentroidNode> runner(
      Topology::erdos_renyi(n, 0.3, rng),
      gossip::make_centroid_nodes(inputs, config));
  const std::int64_t expected =
      static_cast<std::int64_t>(n) * config.quanta_per_unit;
  for (int r = 0; r < 100; ++r) {
    runner.run_round();
    ASSERT_EQ(metrics::total_quanta(runner.nodes()), expected)
        << "round " << r;
  }
}

TEST(Conservation, HoldsAtMinimalQuantization) {
  // quanta_per_unit = 4 is brutally coarse (q = 1/4, n = 8 → q ≫ 1/n is
  // violated); the protocol must still conserve weight and keep running —
  // only the paper's quality guarantees are off the table.
  stats::Rng rng(405);
  NetworkConfig config = config_with(2);
  config.quanta_per_unit = 4;
  const auto inputs = two_cluster_inputs(8, rng);
  RoundRunner<CentroidNode> runner(Topology::complete(8),
                                   gossip::make_centroid_nodes(inputs, config));
  for (int r = 0; r < 50; ++r) {
    runner.run_round();
    ASSERT_EQ(metrics::total_quanta(runner.nodes()), 32);
    for (const auto& node : runner.nodes()) {
      for (const auto& col : node.classification()) {
        ASSERT_TRUE(col.weight.positive());
      }
    }
  }
}

/// Lemma 1 audit: f(aux) = summary and ‖aux‖₁ = weight, for every
/// collection of every node, across an entire execution.
template <typename Policy, typename Node>
void audit_lemma1(const std::vector<Node>& nodes,
                  const std::vector<typename Policy::Value>& inputs,
                  std::int64_t quanta_per_unit, double tol) {
  for (const auto& node : nodes) {
    for (const auto& col : node.classification()) {
      ASSERT_TRUE(col.aux.has_value());
      // Equation 2: ‖aux‖₁ = weight.
      ASSERT_NEAR(linalg::norm1(*col.aux), col.weight.value(quanta_per_unit),
                  tol);
      // Equation 1: f(aux) = summary.
      const auto expected = Policy::summarize_mixture(inputs, *col.aux);
      ASSERT_TRUE(Policy::approx_equal(expected, col.summary, tol));
    }
  }
}

TEST(AuxiliaryCorrectness, Lemma1HoldsThroughoutCentroidExecution) {
  stats::Rng rng(406);
  const std::size_t n = 16;
  const auto inputs = two_cluster_inputs(n, rng);
  RoundRunner<CentroidNode> runner(
      Topology::complete(n),
      gossip::make_centroid_nodes(inputs, config_with(3, /*track_aux=*/true)));
  for (int r = 0; r < 40; ++r) {
    runner.run_round();
    audit_lemma1<CentroidPolicy>(runner.nodes(), inputs,
                                 std::int64_t{1} << 20, 1e-7);
  }
}

TEST(AuxiliaryCorrectness, Lemma1HoldsThroughoutGmExecution) {
  stats::Rng rng(407);
  const std::size_t n = 12;
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(i < n / 2 ? 0.0 : 10.0, 1.0),
                            rng.normal(0.0, 1.0)});
  }
  RoundRunner<GmNode> runner(
      Topology::complete(n),
      gossip::make_gm_nodes(inputs, config_with(2, /*track_aux=*/true)));
  for (int r = 0; r < 30; ++r) {
    runner.run_round();
    audit_lemma1<GaussianPolicy>(runner.nodes(), inputs, std::int64_t{1} << 20,
                                 1e-6);
  }
}

TEST(ReferenceAngles, Lemma2MaxAngleMonotonicallyDecreases) {
  stats::Rng rng(408);
  const std::size_t n = 10;
  const auto inputs = two_cluster_inputs(n, rng);
  RoundRunner<CentroidNode> runner(
      Topology::complete(n),
      gossip::make_centroid_nodes(inputs, config_with(2, /*track_aux=*/true)));

  // ϕ_{i,max}: maximal angle between any collection's aux vector and eᵢ.
  const auto max_reference_angles = [&] {
    std::vector<double> phi(n, 0.0);
    for (const auto& node : runner.nodes()) {
      for (const auto& col : node.classification()) {
        for (std::size_t i = 0; i < n; ++i) {
          phi[i] = std::max(
              phi[i], linalg::angle_between(*col.aux, linalg::unit_vector(n, i)));
        }
      }
    }
    return phi;
  };

  std::vector<double> prev = max_reference_angles();
  for (int r = 0; r < 60; ++r) {
    runner.run_round();
    const std::vector<double> cur = max_reference_angles();
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_LE(cur[i], prev[i] + 1e-9)
          << "round " << r << " reference axis " << i;
    }
    prev = cur;
  }
  // Class formation (Lemma 3/4): matching collections across nodes have
  // aligned mixture vectors — node 0's low/high collections point in the
  // same mixture-space directions as every other node's.
  const auto& ref = runner.nodes()[0].classification();
  ASSERT_EQ(ref.size(), 2u);
  const std::size_t ref_low = ref[0].summary[0] < ref[1].summary[0] ? 0 : 1;
  for (const auto& node : runner.nodes()) {
    const auto& c = node.classification();
    ASSERT_EQ(c.size(), 2u);
    const std::size_t low = c[0].summary[0] < c[1].summary[0] ? 0 : 1;
    EXPECT_LT(linalg::angle_between(*c[low].aux, *ref[ref_low].aux), 0.05);
    EXPECT_LT(
        linalg::angle_between(*c[1 - low].aux, *ref[1 - ref_low].aux), 0.05);
  }
}

TEST(CrashRobustness, ProtocolSurvivesHeavyCrashes) {
  stats::Rng rng(409);
  const std::size_t n = 40;
  const auto inputs = two_cluster_inputs(n, rng);
  sim::RoundRunnerOptions options;
  options.crash_probability = 0.05;  // the Fig. 4 rate
  options.seed = 11;
  RoundRunner<CentroidNode> runner(Topology::complete(n),
                                   gossip::make_centroid_nodes(inputs,
                                                               config_with(2)),
                                   options);
  // 30 rounds at p = 0.05: each node survives w.p. 0.95³⁰ ≈ 0.21, so
  // having ≥ 1 survivor among 40 nodes is essentially certain while still
  // losing most of the network.
  runner.run_rounds(30);
  EXPECT_LT(runner.alive_count(), n);
  EXPECT_GT(runner.alive_count(), 0u);
  // Survivors still hold sane two-cluster classifications.
  for (sim::NodeId i = 0; i < n; ++i) {
    if (!runner.alive(i)) continue;
    const auto& c = runner.nodes()[i].classification();
    ASSERT_GE(c.size(), 1u);
    ASSERT_LE(c.size(), 2u);
    for (const auto& col : c) {
      const double x = col.summary[0];
      EXPECT_TRUE(std::abs(x) < 10.0 || std::abs(x - 100.0) < 10.0);
    }
  }
}

TEST(Asynchrony, GmNodesConvergeUnderRandomDelays) {
  stats::Rng rng(410);
  const std::size_t n = 16;
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(i % 2 == 0 ? 0.0 : 30.0, 1.0)});
  }
  sim::AsyncRunnerOptions options;
  options.seed = 12;
  options.max_delay = 3.0;  // delays longer than tick intervals → reordering
  sim::AsyncRunner<GmNode> runner(Topology::erdos_renyi(n, 0.4, rng),
                                  gossip::make_gm_nodes(inputs, config_with(2)),
                                  options);
  runner.run_until(400.0);
  EXPECT_LT((metrics::max_disagreement_vs_first<GaussianPolicy>(runner.nodes())),
            0.1);
  const auto& c = runner.nodes()[0].classification();
  ASSERT_EQ(c.size(), 2u);
  const double lo = std::min(c[0].summary.mean()[0], c[1].summary.mean()[0]);
  const double hi = std::max(c[0].summary.mean()[0], c[1].summary.mean()[0]);
  EXPECT_NEAR(lo, 0.0, 3.0);
  EXPECT_NEAR(hi, 30.0, 3.0);
}

TEST(KOneSpecialCase, ClassifierDegeneratesToAverageAggregation) {
  stats::Rng rng(411);
  const std::size_t n = 20;
  std::vector<Vector> inputs;
  Vector truth(1);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.uniform(-5.0, 5.0)});
    truth += inputs.back() / static_cast<double>(n);
  }
  RoundRunner<CentroidNode> runner(Topology::complete(n),
                                   gossip::make_centroid_nodes(inputs,
                                                               config_with(1)));
  runner.run_rounds(60);
  for (const auto& node : runner.nodes()) {
    ASSERT_EQ(node.classification().size(), 1u);
    EXPECT_NEAR(node.classification()[0].summary[0], truth[0], 1e-3);
  }
}

}  // namespace
}  // namespace ddc
