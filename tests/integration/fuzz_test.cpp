// Schedule fuzzing: drive the protocol through arbitrary interleavings of
// split and deliver events — the fully asynchronous executions of the
// paper's model, including messages parked in channels for arbitrarily
// long — and audit the proof's invariants (conservation, Lemma 1,
// Lemma 2) after EVERY event via the ddc::audit machinery.
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include <ddc/audit/auditors.hpp>
#include <ddc/gossip/classifier_node.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/stats/rng.hpp>
#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/gaussian_summary.hpp>

namespace ddc {
namespace {

using linalg::Vector;

/// A message parked "in the channel" with its destination.
template <typename Message>
struct InFlight {
  std::size_t target;
  Message message;
};

template <typename Policy, typename Node>
class FuzzHarness {
 public:
  FuzzHarness(std::vector<Node> nodes, std::vector<typename Policy::Value> inputs,
              std::int64_t quanta_per_unit, std::uint64_t seed)
      : nodes_(std::move(nodes)),
        inputs_(std::move(inputs)),
        quanta_per_unit_(quanta_per_unit),
        rng_(seed),
        angle_monitor_(inputs_.size(), 1e-9) {}

  /// Executes `ops` random events, auditing after each.
  void run(std::size_t ops) {
    for (std::size_t op = 0; op < ops; ++op) {
      // 50/50 split vs deliver (forced when there is nothing to deliver).
      if (channel_.empty() || rng_.bernoulli(0.5)) {
        do_split();
      } else {
        do_deliver();
      }
      audit();
    }
    drain();
    audit();
  }

  /// Delivers everything still in flight.
  void drain() {
    while (!channel_.empty()) do_deliver();
  }

 private:
  void do_split() {
    const std::size_t sender = rng_.uniform_index(nodes_.size());
    auto msg = nodes_[sender].prepare_message();
    if (msg.empty()) return;
    std::size_t target = rng_.uniform_index(nodes_.size() - 1);
    if (target >= sender) ++target;  // anyone but self
    channel_.push_back({target, std::move(msg)});
  }

  void do_deliver() {
    // Arbitrary (non-FIFO) channel: pick any parked message; sometimes
    // deliver a batch of several addressed to the same node.
    const std::size_t pick = rng_.uniform_index(channel_.size());
    const std::size_t target = channel_[pick].target;
    std::vector<typename Node::Message> batch;
    batch.push_back(std::move(channel_[pick].message));
    channel_.erase(channel_.begin() + static_cast<std::ptrdiff_t>(pick));
    for (std::size_t i = 0; i < channel_.size() && batch.size() < 4;) {
      if (channel_[i].target == target && rng_.bernoulli(0.5)) {
        batch.push_back(std::move(channel_[i].message));
        channel_.erase(channel_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    nodes_[target].absorb(std::move(batch));
  }

  void audit() {
    std::vector<core::Classification<typename Policy::Summary>> in_flight;
    for (const auto& f : channel_) in_flight.push_back(f.message);
    const auto pool =
        audit::collect_pool<typename Policy::Summary>(nodes_, in_flight);
    audit::check_conservation(pool,
                              static_cast<std::int64_t>(nodes_.size()) *
                                  quanta_per_unit_);
    audit::check_lemma1<Policy>(pool, inputs_, quanta_per_unit_, 1e-6);
    angle_monitor_.observe(pool);
  }

  std::vector<Node> nodes_;
  std::vector<typename Policy::Value> inputs_;
  std::int64_t quanta_per_unit_;
  stats::Rng rng_;
  std::deque<InFlight<typename Node::Message>> channel_;
  audit::ReferenceAngleMonitor angle_monitor_;
};

class ScheduleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleFuzz, CentroidInvariantsHoldUnderArbitrarySchedules) {
  stats::Rng rng(GetParam());
  const std::size_t n = 8;
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(i % 2 == 0 ? 0.0 : 50.0, 1.0)});
  }
  gossip::NetworkConfig config;
  config.k = 2;
  config.quanta_per_unit = 1 << 10;  // coarse on purpose: stress rounding
  config.track_aux = true;
  config.seed = GetParam();
  FuzzHarness<summaries::CentroidPolicy, gossip::CentroidNode> harness(
      gossip::make_centroid_nodes(inputs, config), inputs,
      config.quanta_per_unit, GetParam() + 1);
  harness.run(400);
}

TEST_P(ScheduleFuzz, GaussianInvariantsHoldUnderArbitrarySchedules) {
  stats::Rng rng(GetParam() * 31);
  const std::size_t n = 6;
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(i % 2 == 0 ? 0.0 : 20.0, 1.0),
                            rng.normal()});
  }
  gossip::NetworkConfig config;
  config.k = 3;
  config.quanta_per_unit = 1 << 12;
  config.track_aux = true;
  config.seed = GetParam();
  FuzzHarness<summaries::GaussianPolicy, gossip::GmNode> harness(
      gossip::make_gm_nodes(inputs, config), inputs, config.quanta_per_unit,
      GetParam() + 7);
  harness.run(250);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ddc
