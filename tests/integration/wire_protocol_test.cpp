// End-to-end over the wire: the classifier protocol with every message
// serialized to bytes and decoded on arrival — the full stack a real
// deployment would run. Checks that serialization composes with the
// protocol (exact weight conservation survives the byte round-trip; the
// network still converges) and accounts actual bandwidth.
#include <gtest/gtest.h>

#include <ddc/gossip/network.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/wire/serialize.hpp>

namespace ddc {
namespace {

using linalg::Vector;
using stats::Gaussian;

/// A GM node whose wire format is actual bytes: every outgoing message is
/// encoded and every incoming one decoded. Wraps gossip::GmNode.
class WireGmNode {
 public:
  struct Message {
    std::vector<std::byte> bytes;
    [[nodiscard]] bool empty() const noexcept { return bytes.empty(); }
  };

  WireGmNode(const Vector& input, partition::EmPartition policy,
             core::ClassifierOptions options)
      : inner_(input, std::move(policy), options) {}

  Message prepare_message() {
    auto classification = inner_.prepare_message();
    if (classification.empty()) return {};
    Message out{wire::encode_classification(classification)};
    bytes_sent_ += out.bytes.size();
    return out;
  }

  void absorb(std::vector<Message> batch) {
    std::vector<gossip::GmNode::Message> decoded;
    decoded.reserve(batch.size());
    for (const auto& m : batch) {
      decoded.push_back(wire::decode_classification<Gaussian>(m.bytes));
    }
    inner_.absorb(std::move(decoded));
  }

  [[nodiscard]] const core::Classification<Gaussian>& classification() const {
    return inner_.classification();
  }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

 private:
  gossip::GmNode inner_;
  std::uint64_t bytes_sent_ = 0;
};

static_assert(sim::GossipNode<WireGmNode>);

TEST(WireProtocol, ConvergesOverSerializedChannel) {
  stats::Rng rng(601);
  const std::size_t n = 24;
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(i % 2 == 0 ? 0.0 : 15.0, 1.0),
                            rng.normal()});
  }
  std::vector<WireGmNode> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    core::ClassifierOptions options;
    options.k = 2;
    nodes.emplace_back(inputs[i],
                       partition::EmPartition(stats::Rng::derive(602, i)),
                       options);
  }
  sim::RoundRunner<WireGmNode> runner(sim::Topology::complete(n),
                                      std::move(nodes));
  runner.run_rounds(60);

  // Convergence: all nodes agree, clusters recovered.
  EXPECT_LT(
      (metrics::max_disagreement_vs_first<summaries::GaussianPolicy>(
          runner.nodes())),
      1e-2);
  const auto& c = runner.nodes()[0].classification();
  ASSERT_EQ(c.size(), 2u);
  const double lo = std::min(c[0].summary.mean()[0], c[1].summary.mean()[0]);
  const double hi = std::max(c[0].summary.mean()[0], c[1].summary.mean()[0]);
  EXPECT_NEAR(lo, 0.0, 2.0);
  EXPECT_NEAR(hi, 15.0, 2.0);

  // Exact conservation survives the byte round-trip (weights are integer
  // quanta end to end).
  EXPECT_EQ(metrics::total_quanta(runner.nodes()),
            static_cast<std::int64_t>(n) * (std::int64_t{1} << 20));

  // Bandwidth accounting: every message fits a small fixed budget
  // (k=2 Gaussian collections in R² ≈ 106 bytes + header).
  for (const auto& node : runner.nodes()) {
    EXPECT_LE(node.bytes_sent(), 60u * 120u);
  }
}

}  // namespace
}  // namespace ddc
