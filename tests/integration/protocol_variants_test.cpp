// End-to-end coverage of the protocol variants that the headline
// convergence tests do not exercise: the histogram instantiation, the
// push-pull pattern, and the harsher drop-at-crashed failure model.
#include <gtest/gtest.h>

#include <ddc/gossip/classifier_node.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/partition/greedy.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/histogram_summary.hpp>

namespace ddc {
namespace {

using linalg::Vector;
using HistogramPolicy = summaries::HistogramPolicy<summaries::DefaultBinning>;
using HistogramNode =
    gossip::ClassifierNode<HistogramPolicy,
                           partition::GreedyDistancePartition<HistogramPolicy>>;

TEST(HistogramProtocol, AllNodesConvergeToTheGlobalHistogram) {
  stats::Rng rng(701);
  const std::size_t n = 24;
  std::vector<double> inputs;
  stats::Histogram expected(summaries::DefaultBinning::lo,
                            summaries::DefaultBinning::hi,
                            summaries::DefaultBinning::bins);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(rng.normal(i % 2 == 0 ? -10.0 : 10.0, 2.0));
    expected.add(inputs.back(), 1.0 / static_cast<double>(n));
  }

  std::vector<HistogramNode> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    core::ClassifierOptions options;
    options.k = 1;  // the related-work estimators keep ONE distribution
    nodes.emplace_back(inputs[i],
                       partition::GreedyDistancePartition<HistogramPolicy>{},
                       options);
  }
  sim::RoundRunner<HistogramNode> runner(sim::Topology::complete(n),
                                         std::move(nodes));
  runner.run_rounds(80);

  for (const auto& node : runner.nodes()) {
    ASSERT_EQ(node.classification().size(), 1u);
    // Each node's (normalized) histogram matches the global one.
    EXPECT_LT(node.classification()[0].summary.l1_distance(expected), 0.01);
  }
  // And they agree with each other under the policy's own metric.
  EXPECT_LT((metrics::max_disagreement_vs_first<HistogramPolicy>(
                runner.nodes())),
            0.01);
}

TEST(PushPullPattern, ClassifierConservesWeightExactly) {
  stats::Rng rng(702);
  const std::size_t n = 20;
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(i % 2 == 0 ? 0.0 : 60.0, 1.0)});
  }
  gossip::NetworkConfig config;
  config.k = 2;
  config.seed = 702;
  sim::RoundRunnerOptions options;
  options.pattern = sim::GossipPattern::push_pull;
  options.seed = 703;
  sim::RoundRunner<gossip::CentroidNode> runner(
      sim::Topology::erdos_renyi(n, 0.3, rng),
      gossip::make_centroid_nodes(inputs, config), options);
  const std::int64_t expected =
      static_cast<std::int64_t>(n) * config.quanta_per_unit;
  for (int r = 0; r < 80; ++r) {
    runner.run_round();
    ASSERT_EQ(metrics::total_quanta(runner.nodes()), expected) << "round " << r;
  }
  EXPECT_LT((metrics::max_disagreement_vs_first<summaries::CentroidPolicy>(
                runner.nodes())),
            0.05);
}

TEST(DropAtCrashedPolicy, SurvivorsLoseWeightButKeepValidState) {
  stats::Rng rng(703);
  const std::size_t n = 30;
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(i % 2 == 0 ? 0.0 : 60.0, 1.0)});
  }
  gossip::NetworkConfig config;
  config.k = 2;
  config.seed = 704;
  sim::RoundRunnerOptions options;
  options.crash_probability = 0.05;
  options.crash_send_policy = sim::CrashSendPolicy::drop_at_crashed;
  options.seed = 705;
  sim::RoundRunner<gossip::CentroidNode> runner(
      sim::Topology::complete(n), gossip::make_centroid_nodes(inputs, config),
      options);
  runner.run_rounds(25);

  // Weight has drained (that is the point of this policy)…
  EXPECT_LT(metrics::total_quanta(runner.nodes()),
            static_cast<std::int64_t>(n) * config.quanta_per_unit);
  // …but every live node still holds a structurally valid classification.
  for (sim::NodeId i = 0; i < n; ++i) {
    if (!runner.alive(i)) continue;
    const auto& c = runner.nodes()[i].classification();
    ASSERT_GE(c.size(), 1u);
    ASSERT_LE(c.size(), 2u);
    for (const auto& col : c) ASSERT_TRUE(col.weight.positive());
  }
}

TEST(NetworkBuilder, NodeOptionsPropagateAllFields) {
  gossip::NetworkConfig config;
  config.k = 5;
  config.quanta_per_unit = 4096;
  config.track_aux = true;
  const core::ClassifierOptions options = gossip::node_options(config, 3, 10);
  EXPECT_EQ(options.k, 5u);
  EXPECT_EQ(options.quanta_per_unit, 4096);
  EXPECT_TRUE(options.track_aux);
  EXPECT_EQ(options.num_nodes, 10u);
  EXPECT_EQ(options.node_index, 3u);
}

}  // namespace
}  // namespace ddc
