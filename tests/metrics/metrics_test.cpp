#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/metrics/gaussian_metrics.hpp>
#include <ddc/metrics/outlier_metrics.hpp>

#include <gtest/gtest.h>

#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/gaussian_summary.hpp>

namespace ddc::metrics {
namespace {

using core::Classification;
using core::Collection;
using core::Weight;
using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;
using summaries::CentroidPolicy;

Classification<Vector> centroid_classification(
    std::initializer_list<std::pair<Vector, std::int64_t>> parts) {
  Classification<Vector> c;
  for (const auto& [summary, quanta] : parts) {
    c.add(Collection<Vector>{summary, Weight::from_quanta(quanta), {}});
  }
  return c;
}

TEST(ClassificationDistance, ZeroOnIdenticalClassifications) {
  const auto a = centroid_classification({{Vector{0.0}, 100}, {Vector{5.0}, 300}});
  const auto b = centroid_classification({{Vector{0.0}, 100}, {Vector{5.0}, 300}});
  EXPECT_NEAR((classification_distance<CentroidPolicy>(a, b)), 0.0, 1e-12);
}

TEST(ClassificationDistance, ScaleInvariantInTotalWeight) {
  const auto a = centroid_classification({{Vector{0.0}, 100}, {Vector{5.0}, 300}});
  const auto b = centroid_classification({{Vector{0.0}, 200}, {Vector{5.0}, 600}});
  EXPECT_NEAR((classification_distance<CentroidPolicy>(a, b)), 0.0, 1e-12);
}

TEST(ClassificationDistance, GrowsWithSummaryDistance) {
  const auto a = centroid_classification({{Vector{0.0}, 100}});
  const auto near = centroid_classification({{Vector{0.5}, 100}});
  const auto far = centroid_classification({{Vector{3.0}, 100}});
  EXPECT_LT((classification_distance<CentroidPolicy>(a, near)),
            (classification_distance<CentroidPolicy>(a, far)));
}

TEST(ClassificationDistance, WeightMismatchCosts) {
  const auto a = centroid_classification({{Vector{0.0}, 100}, {Vector{5.0}, 100}});
  const auto b = centroid_classification({{Vector{0.0}, 190}, {Vector{5.0}, 10}});
  // Matching weight mass: min(0.5,0.95)+min(0.5,0.05) = 0.55 matched at
  // distance 0; 0.45 cross-matched at distance 5.
  EXPECT_NEAR((classification_distance<CentroidPolicy>(a, b)), 0.45 * 5.0,
              1e-9);
}

TEST(ClassificationDistance, SymmetricInArguments) {
  const auto a = centroid_classification({{Vector{0.0}, 100}, {Vector{4.0}, 50}});
  const auto b = centroid_classification({{Vector{1.0}, 80}, {Vector{6.0}, 90}});
  EXPECT_NEAR((classification_distance<CentroidPolicy>(a, b)),
              (classification_distance<CentroidPolicy>(b, a)), 1e-12);
}

Classification<Gaussian> gaussian_classification(double heavy_mean_y) {
  Classification<Gaussian> c;
  c.add(Collection<Gaussian>{
      Gaussian(Vector{0.0, heavy_mean_y}, Matrix::identity(2)),
      Weight::from_quanta(900), {}});
  c.add(Collection<Gaussian>{
      Gaussian(Vector{0.0, 10.0}, Matrix::identity(2) * 0.1),
      Weight::from_quanta(100), {}});
  return c;
}

TEST(GaussianMetrics, OverallMeanWeighsComponents) {
  const auto c = gaussian_classification(0.0);
  const Vector mean = overall_mean(c);
  EXPECT_NEAR(mean[1], 0.9 * 0.0 + 0.1 * 10.0, 1e-12);
}

TEST(GaussianMetrics, HeaviestCollectionSelection) {
  const auto c = gaussian_classification(0.0);
  EXPECT_EQ(heaviest_collection_index(c), 0u);
  EXPECT_EQ(heaviest_collection_mean(c), (Vector{0.0, 0.0}));
}

TEST(GaussianMetrics, RobustVsRegularErrorSplit) {
  const auto c = gaussian_classification(0.0);
  const Vector truth{0.0, 0.0};
  EXPECT_NEAR(robust_mean_error(c, truth), 0.0, 1e-12);
  EXPECT_NEAR(regular_mean_error(c, truth), 1.0, 1e-12);  // pulled by outliers
}

TEST(GaussianMetrics, MixtureRecoveryErrorZeroOnExactMatch) {
  stats::GaussianMixture m;
  m.add({0.5, Gaussian(Vector{0.0, 0.0}, Matrix::identity(2))});
  m.add({0.5, Gaussian(Vector{5.0, 5.0}, Matrix::identity(2))});
  EXPECT_NEAR(mixture_recovery_error(m, m), 0.0, 1e-12);
}

TEST(GaussianMetrics, MixtureRecoveryErrorDetectsMissingComponent) {
  stats::GaussianMixture truth;
  truth.add({0.5, Gaussian(Vector{0.0, 0.0}, Matrix::identity(2))});
  truth.add({0.5, Gaussian(Vector{5.0, 5.0}, Matrix::identity(2))});
  stats::GaussianMixture est;
  est.add({1.0, Gaussian(Vector{0.0, 0.0}, Matrix::identity(2))});
  EXPECT_GT(mixture_recovery_error(truth, est), 1.0);
}

TEST(OutlierMetrics, FlagsByDensityThreshold) {
  const Gaussian good(Vector{0.0, 0.0}, Matrix::identity(2));
  const std::vector<Vector> inputs = {Vector{0.0, 0.0}, Vector{0.0, 6.0}};
  const auto flags = flag_outliers(inputs, good);
  EXPECT_FALSE(flags[0]);
  EXPECT_TRUE(flags[1]);  // density at r=6 is ≈ 2.4e-9 < 5e-5
}

TEST(OutlierMetrics, GoodDistributionTailCountsAsOutlier) {
  // The paper notes some "missed outliers" are really tail values of the
  // good distribution: the rule is value-based, not origin-based.
  const Gaussian good(Vector{0.0, 0.0}, Matrix::identity(2));
  const auto flags = flag_outliers({Vector{4.5, 0.0}}, good);
  EXPECT_TRUE(flags[0]);  // standard-normal density at r=4.5 < 5e-5
}

TEST(OutlierMetrics, MissedRatioFromAuxVectors) {
  // Good collection (heaviest) holds 0.25 of value 2's weight; the rest of
  // value 2 sits in the outlier collection. Value 2 is the only outlier.
  Classification<Gaussian> c;
  Vector aux_good(3);
  aux_good[0] = 1.0;
  aux_good[1] = 1.0;
  aux_good[2] = 0.25;
  Vector aux_out(3);
  aux_out[2] = 0.75;
  c.add(Collection<Gaussian>{Gaussian(Vector{0.0, 0.0}, Matrix::identity(2)),
                             Weight::from_quanta(900), aux_good});
  c.add(Collection<Gaussian>{Gaussian(Vector{0.0, 9.0}, Matrix::identity(2)),
                             Weight::from_quanta(300), aux_out});
  const std::vector<bool> flags = {false, false, true};
  EXPECT_NEAR(missed_outlier_ratio(c, flags), 0.25, 1e-12);
}

TEST(OutlierMetrics, NoOutliersGivesZeroRatio) {
  Classification<Gaussian> c;
  Vector aux(2);
  aux[0] = 1.0;
  aux[1] = 1.0;
  c.add(Collection<Gaussian>{Gaussian(Vector{0.0, 0.0}, Matrix::identity(2)),
                             Weight::from_quanta(100), aux});
  EXPECT_EQ(missed_outlier_ratio(c, {false, false}), 0.0);
}

TEST(OutlierMetrics, MissingAuxThrows) {
  Classification<Gaussian> c;
  c.add(Collection<Gaussian>{Gaussian(Vector{0.0, 0.0}, Matrix::identity(2)),
                             Weight::from_quanta(100), {}});
  EXPECT_THROW((void)missed_outlier_ratio(c, {true}), ContractViolation);
}

}  // namespace
}  // namespace ddc::metrics
