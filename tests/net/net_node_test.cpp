// NetNode driver mechanics over a loopback fabric: gossip exchange,
// hostile-input tolerance, and failure-detector-aware target selection.
#include <ddc/net/net_node.hpp>

#include <gtest/gtest.h>

#include <ddc/gossip/classifier_node.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/net/codec.hpp>
#include <ddc/net/loopback.hpp>
#include <ddc/wire/framing.hpp>

namespace ddc::net {
namespace {

using gossip::CentroidNode;
using gossip::NetworkConfig;
using linalg::Vector;

using Driver = NetNode<CentroidNode, ClassificationCodec<Vector>>;

std::vector<CentroidNode> make_nodes(const std::vector<Vector>& inputs) {
  NetworkConfig config;
  config.k = 2;
  config.quanta_per_unit = 1 << 10;
  config.seed = 21;
  return gossip::make_centroid_nodes(inputs, config);
}

TEST(NetNode, RequiresMatchingTopologyAndPeerTable) {
  LoopbackNetwork net(3);
  auto nodes = make_nodes({Vector{0.0}, Vector{1.0}});
  EXPECT_THROW(Driver(std::move(nodes[0]), net.endpoint(0),
                      sim::Topology::complete(2)),
               ContractViolation);
}

TEST(NetNode, OneExchangeMovesWeight) {
  LoopbackNetwork net(2);
  auto nodes = make_nodes({Vector{0.0}, Vector{10.0}});
  const auto topology = sim::Topology::complete(2);
  Driver a(std::move(nodes[0]), net.endpoint(0), topology);
  Driver b(std::move(nodes[1]), net.endpoint(1), topology);

  EXPECT_TRUE(a.begin_round());
  net.advance();
  EXPECT_EQ(b.service(), 1u);
  EXPECT_EQ(b.messages_absorbed(), 1u);
  EXPECT_EQ(a.rounds_initiated(), 1u);
  // b now holds its own unit plus the half a shipped.
  EXPECT_EQ(b.node().classification().total_weight().quanta(),
            (1 << 10) + (1 << 9));
  EXPECT_EQ(a.node().classification().total_weight().quanta(), 1 << 9);
}

TEST(NetNode, GarbageAndNonGossipFramesAreTolerated) {
  LoopbackNetwork net(2);
  auto nodes = make_nodes({Vector{0.0}, Vector{1.0}});
  const auto topology = sim::Topology::complete(2);
  Driver b(std::move(nodes[1]), net.endpoint(1), topology);

  // Raw garbage: fails the envelope, counted as a decode error.
  net.endpoint(0).send(1, {std::byte{0x00}, std::byte{0x11}});
  // Valid envelope, garbage payload: fails the message codec.
  net.endpoint(0).send(
      1, wire::encode_frame(wire::FrameKind::gossip, 0, 1,
                            std::vector<std::byte>{std::byte{0xff}}));
  // Probe frames pass the envelope but are not gossip: silently skipped.
  net.endpoint(0).send(1, wire::encode_frame(wire::FrameKind::probe, 0, 2));
  net.advance();
  EXPECT_EQ(b.service(), 0u);
  EXPECT_EQ(b.decode_errors(), 2u);
  EXPECT_EQ(b.messages_absorbed(), 0u);
}

TEST(NetNode, SkipsUnreachablePeers) {
  // Three nodes; node 0's only reachable neighbor is 2 once 1 is down,
  // so every send lands on 2.
  LoopbackNetwork net(3);
  auto nodes = make_nodes({Vector{0.0}, Vector{1.0}, Vector{2.0}});
  const auto topology = sim::Topology::complete(3);
  Driver a(std::move(nodes[0]), net.endpoint(0), topology);
  net.set_peer_up(1, false);
  for (int r = 0; r < 6; ++r) EXPECT_TRUE(a.begin_round());
  EXPECT_EQ(net.endpoint(0).stats(1).frames_sent, 0u);
  EXPECT_EQ(net.endpoint(0).stats(2).frames_sent, 6u);
}

TEST(NetNode, NoReachableNeighborMeansNoSend) {
  LoopbackNetwork net(2);
  auto nodes = make_nodes({Vector{0.0}, Vector{1.0}});
  const auto topology = sim::Topology::complete(2);
  Driver a(std::move(nodes[0]), net.endpoint(0), topology);
  net.set_peer_up(1, false);
  EXPECT_FALSE(a.begin_round());
  EXPECT_EQ(a.rounds_initiated(), 0u);
  // The split never happened: a still holds its full unit of weight.
  EXPECT_EQ(a.node().classification().total_weight().quanta(), 1 << 10);
}

}  // namespace
}  // namespace ddc::net
