// Cluster — the full networked stack (NetNode + wire framing + loopback
// fabric) hosting the protocol workloads the simulation runners are
// tested with. Pins the two properties the subsystem exists for:
// networked executions behave like simulated ones, and loopback runs
// are deterministic end to end.
#include <ddc/net/cluster.hpp>

#include <string>

#include <gtest/gtest.h>

#include <ddc/gossip/classifier_node.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/stats/rng.hpp>
#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/workload/scenarios.hpp>

namespace ddc::net {
namespace {

using gossip::CentroidNode;
using gossip::GmNode;
using gossip::NetworkConfig;
using linalg::Vector;
using metrics::classification_distance;
using summaries::CentroidPolicy;
using summaries::GaussianPolicy;

using CentroidCluster = Cluster<CentroidNode, ClassificationCodec<Vector>>;
using GmCluster = Cluster<GmNode, ClassificationCodec<stats::Gaussian>>;

NetworkConfig config_with(std::size_t k, std::uint64_t seed) {
  NetworkConfig c;
  c.k = k;
  c.quanta_per_unit = std::int64_t{1} << 16;
  c.seed = seed;
  return c;
}

std::vector<Vector> clusters_inputs(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  return workload::two_clusters_inputs(n, rng);
}

TEST(Cluster, LosslessRunConservesWeightAndConverges) {
  const std::size_t n = 16;
  const auto config = config_with(2, 5);
  CentroidCluster cluster(sim::Topology::complete(n),
                          gossip::make_centroid_nodes(clusters_inputs(n, 5),
                                                      config),
                          {});
  cluster.run_rounds(30);
  // Nothing in flight at a round boundary with zero delay, no losses, no
  // crashes: every quantum of weight is accounted for.
  EXPECT_EQ(metrics::total_quanta(cluster.nodes()),
            static_cast<std::int64_t>(n) * config.quanta_per_unit);
  // Summaries agree exactly; relative weights converge geometrically, so
  // a small residual imbalance remains after 30 rounds.
  EXPECT_LT(metrics::max_disagreement_vs_first<CentroidPolicy>(
                cluster.nodes()),
            1e-2);
}

TEST(Cluster, ConvergenceSoakUnderLossAndCrashes) {
  // The tier-1 soak from ISSUE 2: 64 nodes, 10% channel loss, 5%
  // per-round crash probability — the survivors must still agree on a
  // single common classification of the two-cluster workload.
  const std::size_t n = 64;
  ClusterOptions options;
  options.seed = 42;
  options.loss_probability = 0.1;
  options.crash_probability = 0.05;
  CentroidCluster cluster(
      sim::Topology::complete(n),
      gossip::make_centroid_nodes(clusters_inputs(n, 42), config_with(2, 42)),
      options);
  // 64 · 0.95⁴⁰ ≈ 8 expected survivors — enough rounds to converge on
  // the complete graph, enough survivors left to check agreement.
  cluster.run_rounds(40);
  cluster.drain(4);

  ASSERT_GE(cluster.alive_count(), 2u);
  const CentroidNode* reference = nullptr;
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    if (!cluster.alive(i)) continue;
    if (reference == nullptr) {
      reference = &cluster.node(i);
      continue;
    }
    EXPECT_LT(classification_distance<CentroidPolicy>(
                  reference->classification(),
                  cluster.node(i).classification()),
              0.5)
        << "node " << i << " disagrees with the first survivor";
  }
  // The agreed classification is the workload's two clusters (0 and 25).
  ASSERT_NE(reference, nullptr);
  ASSERT_EQ(reference->classification().size(), 2u);
  double lo = reference->classification()[0].summary[0];
  double hi = reference->classification()[1].summary[0];
  if (lo > hi) std::swap(lo, hi);
  EXPECT_NEAR(lo, 0.0, 3.0);
  EXPECT_NEAR(hi, 25.0, 3.0);
}

/// Serialized final state of every live node — summaries, weights,
/// liveness — byte for byte.
std::string fingerprint(CentroidCluster& cluster) {
  std::string out;
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    out += cluster.alive(i) ? "live " : "dead ";
    const auto& c = cluster.node(i).classification();
    for (std::size_t j = 0; j < c.size(); ++j) {
      out += std::to_string(c[j].weight.quanta()) + "@";
      for (const double x : c[j].summary) out += std::to_string(x) + ",";
    }
    out += ";";
  }
  return out;
}

TEST(Cluster, BitIdenticalAcrossRunsForFixedSeed) {
  const std::size_t n = 12;
  ClusterOptions options;
  options.seed = 99;
  options.loss_probability = 0.15;
  options.min_delay_ticks = 0;
  options.max_delay_ticks = 2;
  options.crash_probability = 0.02;
  auto run = [&] {
    CentroidCluster cluster(sim::Topology::complete(n),
                            gossip::make_centroid_nodes(
                                clusters_inputs(n, 99), config_with(2, 99)),
                            options);
    cluster.run_rounds(25);
    cluster.drain(4);
    return fingerprint(cluster);
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Cluster, DelayedFramesSpanRoundsAndStillConverge) {
  const std::size_t n = 8;
  ClusterOptions options;
  options.seed = 3;
  options.min_delay_ticks = 1;
  options.max_delay_ticks = 4;
  CentroidCluster cluster(sim::Topology::complete(n),
                          gossip::make_centroid_nodes(clusters_inputs(n, 3),
                                                      config_with(2, 3)),
                          options);
  cluster.run_rounds(40);
  cluster.drain(8);
  EXPECT_EQ(metrics::total_quanta(cluster.nodes()),
            static_cast<std::int64_t>(n) * (std::int64_t{1} << 16));
  // In-flight frames keep weight sloshing between nodes, so the residual
  // relative-weight imbalance is larger than in the lockstep run.
  EXPECT_LT(metrics::max_disagreement_vs_first<CentroidPolicy>(
                cluster.nodes()),
            0.1);
}

TEST(Cluster, GmMatchesSimulatorAccuracy) {
  // The networked stack and the in-process round engine drive the same
  // node code over the same workload; both must land on the true
  // two-cluster structure (means ≈ 0 and 25, weights ≈ ½ each).
  const std::size_t n = 16;
  const std::uint64_t seed = 11;
  const auto inputs = clusters_inputs(n, seed);
  const auto config = config_with(2, seed);

  GmCluster cluster(sim::Topology::complete(n),
                    gossip::make_gm_nodes(inputs, config), {});
  cluster.run_rounds(30);

  sim::RoundRunner<GmNode> runner(sim::Topology::complete(n),
                                  gossip::make_gm_nodes(inputs, config));
  runner.run_rounds(30);

  auto check = [&](const core::Classification<stats::Gaussian>& c) {
    ASSERT_EQ(c.size(), 2u);
    double lo = c[0].summary.mean()[0];
    double hi = c[1].summary.mean()[0];
    std::size_t lo_index = lo <= hi ? 0 : 1;
    if (lo > hi) std::swap(lo, hi);
    EXPECT_NEAR(lo, 0.0, 2.0);
    EXPECT_NEAR(hi, 25.0, 2.0);
    EXPECT_NEAR(c.relative_weight(lo_index), 0.5, 0.05);
  };
  check(cluster.node(0).classification());
  check(runner.nodes()[0].classification());
  // And the two stacks agree with each other within the same tolerance.
  EXPECT_LT(classification_distance<GaussianPolicy>(
                cluster.node(0).classification(),
                runner.nodes()[0].classification()),
            1.0);
}

}  // namespace
}  // namespace ddc::net
