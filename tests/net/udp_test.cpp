// UdpTransport over real localhost sockets: frame exchange, counters,
// resilience to garbage, and the probe-based failure detector. Tests
// bind ephemeral ports (port 0) and wire the table up afterwards, so
// parallel test runs never collide.
#include <ddc/net/udp.hpp>

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/wire/framing.hpp>

namespace ddc::net {
namespace {

using namespace std::chrono_literals;

/// Two endpoints on ephemeral ports, each knowing the other's address.
struct Pair {
  UdpTransport a;
  UdpTransport b;

  explicit Pair(UdpOptions options = {})
      : a(0, {{"127.0.0.1", 0}, {"127.0.0.1", 0}}, options),
        b(1, {{"127.0.0.1", 0}, {"127.0.0.1", 0}}, options) {
    a.set_peer_address(1, "127.0.0.1", b.local_port());
    b.set_peer_address(0, "127.0.0.1", a.local_port());
  }
};

/// Polls `transport` until a packet arrives or ~2s elapse.
std::vector<Packet> receive_within(UdpTransport& transport,
                                   std::chrono::milliseconds limit = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    auto packets = transport.receive();
    if (!packets.empty()) return packets;
    std::this_thread::sleep_for(1ms);
  }
  return {};
}

std::vector<std::byte> gossip_frame(std::uint32_t sender, std::uint64_t seq) {
  const std::vector<std::byte> payload{std::byte{1}, std::byte{2},
                                       std::byte{3}};
  return wire::encode_frame(wire::FrameKind::gossip, sender, seq, payload);
}

TEST(Udp, BindsEphemeralPort) {
  UdpTransport t(0, {{"127.0.0.1", 0}, {"127.0.0.1", 1}});
  EXPECT_NE(t.local_port(), 0);
  EXPECT_EQ(t.self(), 0u);
  EXPECT_EQ(t.num_peers(), 2u);
}

TEST(Udp, GossipFrameTravelsBetweenProcessesWorthOfSockets) {
  Pair pair;
  pair.a.send(1, gossip_frame(0, 1));
  const auto packets = receive_within(pair.b);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].from, 0u);
  const wire::Frame frame = wire::decode_frame(packets[0].bytes);
  EXPECT_EQ(frame.kind, wire::FrameKind::gossip);
  EXPECT_EQ(frame.sender, 0u);
  EXPECT_EQ(frame.seq, 1u);
  EXPECT_EQ(pair.a.stats(1).frames_sent, 1u);
  EXPECT_EQ(pair.b.stats(0).frames_received, 1u);
}

TEST(Udp, ReceiveDrainsBacklogInOneCall) {
  Pair pair;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    pair.a.send(1, gossip_frame(0, seq));
  }
  // Give the kernel a moment to queue all five datagrams.
  std::vector<Packet> packets;
  const auto deadline = std::chrono::steady_clock::now() + 2000ms;
  while (packets.size() < 5 && std::chrono::steady_clock::now() < deadline) {
    auto more = pair.b.receive();
    packets.insert(packets.end(), more.begin(), more.end());
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(packets.size(), 5u);
}

TEST(Udp, MalformedDatagramsCountedAndDropped) {
  Pair pair;
  pair.a.send(1, {std::byte{0xba}, std::byte{0xad}});
  pair.a.send(1, gossip_frame(0, 1));
  const auto packets = receive_within(pair.b);
  ASSERT_EQ(packets.size(), 1u);  // only the valid frame surfaces
  EXPECT_EQ(pair.b.malformed_frames(), 1u);
}

TEST(Udp, ProbesAnsweredInvisibly) {
  Pair pair;
  pair.a.send(1, wire::encode_frame(wire::FrameKind::probe, 0, 1));
  // The probe is consumed inside b's transport; nothing surfaces.
  EXPECT_TRUE(receive_within(pair.b, 200ms).empty());
  // ...but a answered it got an ack (also invisible) and counted traffic.
  const auto deadline = std::chrono::steady_clock::now() + 2000ms;
  while (pair.a.stats(1).frames_received == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    (void)pair.a.receive();
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(pair.a.stats(1).frames_received, 1u);
}

TEST(Udp, SilentPeerExpiresAfterRetriesAndRevives) {
  UdpOptions options;
  options.probe_timeout = 30ms;
  options.probe_retries = 2;
  // Peer 1's address points at a socket we bind and never answer from.
  UdpTransport quiet(1, {{"127.0.0.1", 0}, {"127.0.0.1", 0}});
  UdpTransport t(0, {{"127.0.0.1", 0}, {"127.0.0.1", 0}}, options);
  t.set_peer_address(1, "127.0.0.1", quiet.local_port());
  EXPECT_TRUE(t.peer_reachable(1));

  const auto deadline = std::chrono::steady_clock::now() + 5000ms;
  while (t.peer_reachable(1) && std::chrono::steady_clock::now() < deadline) {
    (void)t.receive();
    t.maintain();
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_FALSE(t.peer_reachable(1));

  // Any frame from the peer revives it — the detector is a hint, not an
  // eviction.
  quiet.set_peer_address(0, "127.0.0.1", t.local_port());
  quiet.send(0, gossip_frame(1, 1));
  const auto revive_deadline = std::chrono::steady_clock::now() + 2000ms;
  while (!t.peer_reachable(1) &&
         std::chrono::steady_clock::now() < revive_deadline) {
    (void)t.receive();
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(t.peer_reachable(1));
}

TEST(Udp, InjectedReceiveLossDropsFrames) {
  UdpOptions lossy;
  lossy.inject_receive_loss = 1.0;
  UdpTransport a(0, {{"127.0.0.1", 0}, {"127.0.0.1", 0}});
  UdpTransport b(1, {{"127.0.0.1", 0}, {"127.0.0.1", 0}}, lossy);
  a.set_peer_address(1, "127.0.0.1", b.local_port());
  b.set_peer_address(0, "127.0.0.1", a.local_port());
  a.send(1, gossip_frame(0, 1));
  EXPECT_TRUE(receive_within(b, 300ms).empty());
  EXPECT_EQ(b.injected_losses(), 1u);
}

TEST(Udp, RejectsOversizedFrame) {
  UdpTransport t(0, {{"127.0.0.1", 0}, {"127.0.0.1", 1}});
  const std::vector<std::byte> huge(128 * 1024);
  EXPECT_THROW(t.send(1, huge), ContractViolation);
}

TEST(Udp, UnknownSourceCountedAndDropped) {
  Pair pair;
  // A third socket outside both peer tables sends b a valid frame.
  UdpTransport outsider(0, {{"127.0.0.1", 0}, {"127.0.0.1", 0}});
  outsider.set_peer_address(1, "127.0.0.1", pair.b.local_port());
  outsider.send(1, gossip_frame(9, 1));
  EXPECT_TRUE(receive_within(pair.b, 300ms).empty());
  EXPECT_EQ(pair.b.unknown_source_frames(), 1u);
}

TEST(Udp, InvalidHostRejected) {
  EXPECT_THROW(UdpTransport(0, {{"not-an-address", 0}, {"127.0.0.1", 1}}),
               ConfigError);
}

}  // namespace
}  // namespace ddc::net
