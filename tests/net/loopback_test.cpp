// LoopbackNetwork mechanics and its determinism contract: for a fixed
// seed, two runs produce bit-identical delivery logs.
#include <ddc/net/loopback.hpp>

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ddc::net {
namespace {

std::vector<std::byte> frame_of(const std::string& text) {
  std::vector<std::byte> bytes(text.size());
  std::memcpy(bytes.data(), text.data(), text.size());
  return bytes;
}

std::string text_of(const std::vector<std::byte>& bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

TEST(Loopback, DeliversOnNextAdvance) {
  LoopbackNetwork net(2);
  net.endpoint(0).send(1, frame_of("hello"));
  EXPECT_TRUE(net.endpoint(1).receive().empty());
  net.advance();
  const auto packets = net.endpoint(1).receive();
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].from, 0u);
  EXPECT_EQ(text_of(packets[0].bytes), "hello");
  // Drained: a second receive is empty.
  EXPECT_TRUE(net.endpoint(1).receive().empty());
}

TEST(Loopback, SameTickFramesDeliverInSubmissionOrder) {
  LoopbackNetwork net(3);
  net.endpoint(0).send(2, frame_of("first"));
  net.endpoint(1).send(2, frame_of("second"));
  net.endpoint(0).send(2, frame_of("third"));
  net.advance();
  const auto packets = net.endpoint(2).receive();
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(text_of(packets[0].bytes), "first");
  EXPECT_EQ(text_of(packets[1].bytes), "second");
  EXPECT_EQ(text_of(packets[2].bytes), "third");
}

TEST(Loopback, CountsPerPeerTraffic) {
  LoopbackNetwork net(2);
  net.endpoint(0).send(1, frame_of("abcd"));
  net.advance();
  (void)net.endpoint(1).receive();
  EXPECT_EQ(net.endpoint(0).stats(1).frames_sent, 1u);
  EXPECT_EQ(net.endpoint(0).stats(1).bytes_sent, 4u);
  EXPECT_EQ(net.endpoint(1).stats(0).frames_received, 1u);
  EXPECT_EQ(net.endpoint(1).stats(0).bytes_received, 4u);
}

TEST(Loopback, TotalLossDropsEverything) {
  LoopbackOptions options;
  options.loss_probability = 1.0;
  LoopbackNetwork net(2, options);
  for (int i = 0; i < 20; ++i) net.endpoint(0).send(1, frame_of("x"));
  net.advance();
  EXPECT_TRUE(net.endpoint(1).receive().empty());
  EXPECT_EQ(net.frames_dropped(), 20u);
}

TEST(Loopback, PartialLossDropsSomeFramesOnly) {
  LoopbackOptions options;
  options.loss_probability = 0.3;
  options.seed = 7;
  LoopbackNetwork net(2, options);
  const int sent = 500;
  for (int i = 0; i < sent; ++i) net.endpoint(0).send(1, frame_of("x"));
  net.advance();
  const auto received = net.endpoint(1).receive().size();
  EXPECT_EQ(received + net.frames_dropped(), static_cast<std::size_t>(sent));
  EXPECT_GT(received, 0u);
  EXPECT_GT(net.frames_dropped(), 0u);
  // ~30% loss; allow a generous band around the expectation.
  EXPECT_NEAR(static_cast<double>(net.frames_dropped()) / sent, 0.3, 0.15);
}

TEST(Loopback, DelayedFramesStayInFlightUntilDue) {
  LoopbackOptions options;
  options.min_delay_ticks = 2;
  options.max_delay_ticks = 2;
  LoopbackNetwork net(2, options);
  net.endpoint(0).send(1, frame_of("late"));
  net.advance();
  EXPECT_TRUE(net.endpoint(1).receive().empty());
  EXPECT_EQ(net.frames_in_flight(), 1u);
  net.advance();
  EXPECT_TRUE(net.endpoint(1).receive().empty());
  net.advance();
  EXPECT_EQ(net.endpoint(1).receive().size(), 1u);
  EXPECT_EQ(net.frames_in_flight(), 0u);
}

TEST(Loopback, PerfectFailureDetector) {
  LoopbackNetwork net(3);
  EXPECT_TRUE(net.endpoint(0).peer_reachable(2));
  net.set_peer_up(2, false);
  EXPECT_FALSE(net.endpoint(0).peer_reachable(2));
  EXPECT_FALSE(net.endpoint(1).peer_reachable(2));
  net.set_peer_up(2, true);
  EXPECT_TRUE(net.endpoint(0).peer_reachable(2));
}

TEST(Loopback, FramesToDownPeerStillDeliverIntoItsQueue) {
  // A down peer's queue still fills — nobody services it, so the weight
  // those frames carry is lost exactly as when a node dies holding it.
  LoopbackNetwork net(2);
  net.set_peer_up(1, false);
  net.endpoint(0).send(1, frame_of("doomed"));
  net.advance();
  EXPECT_EQ(net.endpoint(1).receive().size(), 1u);
}

/// One full run's delivery log under loss and delay: every packet every
/// endpoint receives, in order, as (receiver, sender, bytes) tuples.
std::string delivery_log(std::uint64_t seed) {
  LoopbackOptions options;
  options.seed = seed;
  options.loss_probability = 0.2;
  options.min_delay_ticks = 0;
  options.max_delay_ticks = 3;
  LoopbackNetwork net(4, options);
  std::string log;
  for (int step = 0; step < 50; ++step) {
    for (PeerId from = 0; from < 4; ++from) {
      const auto to = static_cast<PeerId>((from + 1 + step % 3) % 4);
      net.endpoint(from).send(
          to, frame_of("m" + std::to_string(step) + "." +
                       std::to_string(from)));
    }
    net.advance();
    for (PeerId at = 0; at < 4; ++at) {
      for (const auto& packet : net.endpoint(at).receive()) {
        log += std::to_string(at) + "<" + std::to_string(packet.from) + ":" +
               text_of(packet.bytes) + ";";
      }
    }
  }
  return log;
}

TEST(Loopback, BitIdenticalAcrossRunsForFixedSeed) {
  const std::string first = delivery_log(1234);
  const std::string second = delivery_log(1234);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Loopback, DifferentSeedsProduceDifferentSchedules) {
  EXPECT_NE(delivery_log(1234), delivery_log(4321));
}

}  // namespace
}  // namespace ddc::net
