#include <ddc/cli/flags.hpp>

#include <gtest/gtest.h>

namespace ddc::cli {
namespace {

Flags make_flags() {
  Flags flags("tool", "a test tool");
  flags.declare("nodes", "number of nodes", "100");
  flags.declare("rate", "a real-valued rate", "0.5");
  flags.declare("name", "a string", "default");
  flags.declare_bool("verbose", "chatty output");
  return flags;
}

TEST(Flags, DefaultsApplyWhenUnset) {
  Flags flags = make_flags();
  EXPECT_TRUE(flags.parse({}));
  EXPECT_EQ(flags.get_int("nodes"), 100);
  EXPECT_EQ(flags.get_double("rate"), 0.5);
  EXPECT_EQ(flags.get("name"), "default");
  EXPECT_FALSE(flags.get_bool("verbose"));
  EXPECT_FALSE(flags.is_set("nodes"));
}

TEST(Flags, SpaceSeparatedValues) {
  Flags flags = make_flags();
  EXPECT_TRUE(flags.parse({"--nodes", "42", "--name", "xyz"}));
  EXPECT_EQ(flags.get_int("nodes"), 42);
  EXPECT_EQ(flags.get("name"), "xyz");
  EXPECT_TRUE(flags.is_set("nodes"));
}

TEST(Flags, EqualsSeparatedValues) {
  Flags flags = make_flags();
  EXPECT_TRUE(flags.parse({"--rate=0.25", "--verbose=true"}));
  EXPECT_EQ(flags.get_double("rate"), 0.25);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, BareBooleanFlag) {
  Flags flags = make_flags();
  EXPECT_TRUE(flags.parse({"--verbose"}));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, HelpShortCircuits) {
  Flags flags = make_flags();
  EXPECT_FALSE(flags.parse({"--help"}));
  EXPECT_FALSE(flags.parse({"-h"}));
  EXPECT_NE(flags.help_text().find("--nodes"), std::string::npos);
  EXPECT_NE(flags.help_text().find("number of nodes"), std::string::npos);
}

TEST(Flags, UnknownFlagRejected) {
  Flags flags = make_flags();
  EXPECT_THROW((void)flags.parse({"--bogus", "1"}), FlagError);
}

TEST(Flags, UnknownFlagErrorCarriesDidYouMeanHint) {
  Flags flags = make_flags();
  try {
    (void)flags.parse({"--ndoes", "5"});
    FAIL() << "parse accepted an unknown flag";
  } catch (const FlagError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean --nodes"),
              std::string::npos)
        << e.what();
  }
}

TEST(Flags, UnknownFlagWithNoCloseMatchPointsAtHelp) {
  Flags flags = make_flags();
  try {
    (void)flags.parse({"--zzzzzzzz"});
    FAIL() << "parse accepted an unknown flag";
  } catch (const FlagError& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("did you mean"), std::string::npos) << what;
    EXPECT_NE(what.find("--help"), std::string::npos) << what;
  }
}

TEST(Flags, SuggestFindsNearMisses) {
  const Flags flags = make_flags();
  // One edit away.
  EXPECT_EQ(flags.suggest("node"), "nodes");
  // Transposition = two edits.
  EXPECT_EQ(flags.suggest("ndoes"), "nodes");
  // A prefix of a declared name counts even when the distance is larger.
  EXPECT_EQ(flags.suggest("verb"), "verbose");
  // Nothing close.
  EXPECT_EQ(flags.suggest("quux"), std::nullopt);
  EXPECT_EQ(flags.suggest(""), std::nullopt);
}

TEST(Flags, MissingValueRejected) {
  Flags flags = make_flags();
  EXPECT_THROW((void)flags.parse({"--nodes"}), FlagError);
}

TEST(Flags, PositionalArgumentsRejected) {
  Flags flags = make_flags();
  EXPECT_THROW((void)flags.parse({"stray"}), FlagError);
}

TEST(Flags, MalformedNumbersRejected) {
  Flags flags = make_flags();
  EXPECT_TRUE(flags.parse({"--nodes", "12abc"}));
  EXPECT_THROW((void)flags.get_int("nodes"), FlagError);
  Flags flags2 = make_flags();
  EXPECT_TRUE(flags2.parse({"--rate", "x"}));
  EXPECT_THROW((void)flags2.get_double("rate"), FlagError);
}

TEST(Flags, BooleanValueValidated) {
  Flags flags = make_flags();
  EXPECT_THROW((void)flags.parse({"--verbose=yes"}), FlagError);
}

TEST(Flags, DuplicateDeclarationRejected) {
  Flags flags = make_flags();
  EXPECT_THROW(flags.declare("nodes", "again", "1"), ContractViolation);
}

TEST(Flags, LastSettingWins) {
  Flags flags = make_flags();
  EXPECT_TRUE(flags.parse({"--nodes", "1", "--nodes", "2"}));
  EXPECT_EQ(flags.get_int("nodes"), 2);
}

}  // namespace
}  // namespace ddc::cli
