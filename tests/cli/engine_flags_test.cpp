// Shared engine flag parsing (cli::declare_engine_flags /
// cli::parse_engine_config) — the one seam every binary's command line
// goes through.
#include <ddc/cli/engine_flags.hpp>

#include <ddc/common/error.hpp>

#include <gtest/gtest.h>

namespace ddc::cli {
namespace {

Flags make_flags(const sim::EngineConfig& defaults = {},
                 const EngineFlagSet& set = {}) {
  Flags flags("testtool", "test");
  declare_engine_flags(flags, defaults, set);
  return flags;
}

TEST(EngineFlags, DefaultsReproduceDdcsimDefaults) {
  Flags flags = make_flags();
  ASSERT_TRUE(flags.parse({}));
  const sim::EngineConfig config = parse_engine_config(flags);
  EXPECT_EQ(config.topology.family, sim::TopologyFamily::complete);
  EXPECT_EQ(config.topology.nodes, 200U);
  EXPECT_EQ(config.pattern, sim::GossipPattern::push);
  EXPECT_EQ(config.selection, sim::NeighborSelection::uniform_random);
  EXPECT_EQ(config.k, 2U);
  EXPECT_EQ(config.quanta_per_unit, std::int64_t{1} << 20);
  EXPECT_EQ(config.parallelism, 1U);
  EXPECT_EQ(config.backend, sim::EngineBackend::auto_select);
  // The ddcsim seed split: protocol = --seed, environment = --seed + 1.
  EXPECT_EQ(config.protocol_seed, 1U);
  EXPECT_EQ(config.seed, 2U);
}

TEST(EngineFlags, ParsesTheFullFlagSurface) {
  Flags flags = make_flags();
  ASSERT_TRUE(flags.parse(
      {"--topology=geometric", "--nodes=5000", "--radius=0.05",
       "--pattern=pull", "--round-robin", "--crash-prob=0.05",
       "--loss-prob=0.1", "--threads=8", "--k=7", "--quanta-exp=16",
       "--engine=soa", "--seed=42", "--timing"}));
  const sim::EngineConfig config = parse_engine_config(flags);
  EXPECT_EQ(config.topology.family, sim::TopologyFamily::geometric);
  EXPECT_EQ(config.topology.nodes, 5000U);
  EXPECT_DOUBLE_EQ(config.topology.radius, 0.05);
  EXPECT_EQ(config.pattern, sim::GossipPattern::pull);
  EXPECT_EQ(config.selection, sim::NeighborSelection::round_robin);
  EXPECT_DOUBLE_EQ(config.faults.crash_probability, 0.05);
  EXPECT_DOUBLE_EQ(config.faults.message_loss_probability, 0.1);
  EXPECT_EQ(config.parallelism, 8U);
  EXPECT_EQ(config.k, 7U);
  EXPECT_EQ(config.quanta_per_unit, std::int64_t{1} << 16);
  EXPECT_EQ(config.backend, sim::EngineBackend::soa);
  EXPECT_EQ(config.protocol_seed, 42U);
  EXPECT_EQ(config.seed, 43U);
  EXPECT_TRUE(timing_requested(flags));
}

TEST(EngineFlags, PushPullShorthandWins) {
  Flags flags = make_flags();
  ASSERT_TRUE(flags.parse({"--pattern=pull", "--push-pull"}));
  EXPECT_EQ(parse_engine_config(flags).pattern,
            sim::GossipPattern::push_pull);
}

TEST(EngineFlags, ValidationMirrorsDdcsim) {
  {
    Flags flags = make_flags();
    ASSERT_TRUE(flags.parse({"--nodes=1"}));
    EXPECT_THROW((void)parse_engine_config(flags), ConfigError);
  }
  {
    Flags flags = make_flags();
    ASSERT_TRUE(flags.parse({"--threads=-1"}));
    EXPECT_THROW((void)parse_engine_config(flags), ConfigError);
  }
  {
    Flags flags = make_flags();
    ASSERT_TRUE(flags.parse({"--quanta-exp=63"}));
    EXPECT_THROW((void)parse_engine_config(flags), ConfigError);
  }
  {
    Flags flags = make_flags();
    ASSERT_TRUE(flags.parse({"--engine=vroom"}));
    EXPECT_THROW((void)parse_engine_config(flags), ConfigError);
  }
  {
    Flags flags = make_flags();
    ASSERT_TRUE(flags.parse({"--pattern=sideways"}));
    EXPECT_THROW((void)parse_engine_config(flags), ConfigError);
  }
}

TEST(EngineFlags, DidYouMeanHintsSurviveTheSharedDeclarations) {
  Flags flags = make_flags();
  EXPECT_EQ(flags.suggest("topolgy").value_or(""), "topology");
  EXPECT_EQ(flags.suggest("thread").value_or(""), "threads");
  EXPECT_EQ(flags.suggest("engin").value_or(""), "engine");
}

TEST(EngineFlags, DisabledGroupsKeepDefaultsAndStayUndeclared) {
  EngineFlagSet set;
  set.faults = false;
  set.backend = false;
  set.timing = false;
  sim::EngineConfig defaults;
  defaults.faults.crash_probability = 0.25;  // kept verbatim
  defaults.backend = sim::EngineBackend::object;

  Flags flags = make_flags(defaults, set);
  EXPECT_THROW((void)flags.parse({"--crash-prob=0.5"}), FlagError);

  Flags clean = make_flags(defaults, set);
  ASSERT_TRUE(clean.parse({"--nodes=64"}));
  const sim::EngineConfig config = parse_engine_config(clean, defaults, set);
  EXPECT_DOUBLE_EQ(config.faults.crash_probability, 0.25);
  EXPECT_EQ(config.backend, sim::EngineBackend::object);
  EXPECT_EQ(config.topology.nodes, 64U);
  EXPECT_FALSE(timing_requested(clean));
}

TEST(EngineFlags, CustomDefaultsShowUpInDeclaration) {
  sim::EngineConfig defaults;
  defaults.topology.nodes = 1024;
  defaults.topology.family = sim::TopologyFamily::ring;
  defaults.k = 5;
  Flags flags = make_flags(defaults);
  ASSERT_TRUE(flags.parse({}));
  const sim::EngineConfig config = parse_engine_config(flags, defaults);
  EXPECT_EQ(config.topology.nodes, 1024U);
  EXPECT_EQ(config.topology.family, sim::TopologyFamily::ring);
  EXPECT_EQ(config.k, 5U);
}

}  // namespace
}  // namespace ddc::cli
