#include <ddc/linalg/matrix.hpp>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::linalg {
namespace {

TEST(Matrix, ZeroConstructor) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.square());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, NestedInitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_TRUE(m.square());
}

TEST(Matrix, RaggedInitializerListThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), ContractViolation);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Diagonal) {
  const Matrix d = Matrix::diagonal(Vector{2.0, 3.0});
  EXPECT_EQ(d, (Matrix{{2.0, 0.0}, {0.0, 3.0}}));
}

TEST(Matrix, RowAndColumnExtraction) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(m.row(1), (Vector{4.0, 5.0, 6.0}));
  EXPECT_EQ(m.col(2), (Vector{3.0, 6.0}));
  EXPECT_THROW((void)m.row(2), ContractViolation);
}

TEST(Matrix, AdditionSubtractionScaling) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  const Matrix b{{0.0, 2.0}, {3.0, 0.0}};
  EXPECT_EQ(a + b, (Matrix{{1.0, 2.0}, {3.0, 1.0}}));
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ(a * 3.0, (Matrix{{3.0, 0.0}, {0.0, 3.0}}));
  EXPECT_EQ(a / 2.0, (Matrix{{0.5, 0.0}, {0.0, 0.5}}));
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, ContractViolation);
}

TEST(Matrix, MatrixProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_EQ(a * b, (Matrix{{19.0, 22.0}, {43.0, 50.0}}));
}

TEST(Matrix, ProductShapePropagation) {
  const Matrix a(2, 3, 1.0);
  const Matrix b(3, 4, 1.0);
  const Matrix c = a * b;
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_EQ(c(0, 0), 3.0);
  EXPECT_THROW((void)(b * a), ContractViolation);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ((m * Vector{1.0, 1.0}), (Vector{3.0, 7.0}));
}

TEST(Matrix, Transpose) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = transpose(m);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(0, 1), 4.0);
  EXPECT_EQ(transpose(t), m);
}

TEST(Matrix, OuterProduct) {
  const Matrix o = outer(Vector{1.0, 2.0}, Vector{3.0, 4.0});
  EXPECT_EQ(o, (Matrix{{3.0, 4.0}, {6.0, 8.0}}));
}

TEST(Matrix, Trace) {
  EXPECT_DOUBLE_EQ(trace(Matrix{{1.0, 9.0}, {9.0, 2.0}}), 3.0);
  EXPECT_THROW((void)trace(Matrix(2, 3)), ContractViolation);
}

TEST(Matrix, MaxAbs) {
  EXPECT_DOUBLE_EQ(max_abs(Matrix{{1.0, -7.0}, {3.0, 2.0}}), 7.0);
}

TEST(Matrix, SymmetryCheck) {
  EXPECT_TRUE(is_symmetric(Matrix{{1.0, 2.0}, {2.0, 3.0}}));
  EXPECT_FALSE(is_symmetric(Matrix{{1.0, 2.0}, {2.1, 3.0}}));
  EXPECT_FALSE(is_symmetric(Matrix(2, 3)));
  // Relative tolerance: large symmetric entries with tiny absolute error.
  EXPECT_TRUE(is_symmetric(Matrix{{1.0, 1e9}, {1e9 + 1e-4, 1.0}}, 1e-12));
}

TEST(Matrix, Symmetrize) {
  const Matrix s = symmetrize(Matrix{{1.0, 2.0}, {4.0, 3.0}});
  EXPECT_EQ(s, (Matrix{{1.0, 3.0}, {3.0, 3.0}}));
}

}  // namespace
}  // namespace ddc::linalg
