#include <ddc/linalg/cholesky.hpp>

#include <cmath>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/linalg/ldlt.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::linalg {
namespace {

/// Random SPD matrix A = B Bᵀ + εI.
Matrix random_spd(std::size_t n, stats::Rng& rng) {
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.normal();
  }
  Matrix a = b * transpose(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.1;
  return a;
}

TEST(Cholesky, ReconstructsTheInput) {
  stats::Rng rng(7);
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
    const Matrix a = random_spd(n, rng);
    const Cholesky f(a);
    const Matrix reconstructed = f.lower() * transpose(f.lower());
    EXPECT_LT(max_abs(reconstructed - a), 1e-10) << "n=" << n;
  }
}

TEST(Cholesky, FactorIsLowerTriangular) {
  stats::Rng rng(8);
  const Matrix a = random_spd(4, rng);
  const Cholesky f(a);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = r + 1; c < 4; ++c) EXPECT_EQ(f.lower()(r, c), 0.0);
  }
}

TEST(Cholesky, SolveSatisfiesSystem) {
  stats::Rng rng(9);
  const Matrix a = random_spd(5, rng);
  const Cholesky f(a);
  const Vector b{1.0, -2.0, 3.0, 0.5, 4.0};
  const Vector x = f.solve(b);
  EXPECT_LT(distance2(a * x, b), 1e-9);
}

TEST(Cholesky, InverseTimesMatrixIsIdentity) {
  stats::Rng rng(10);
  const Matrix a = random_spd(4, rng);
  const Matrix inv = Cholesky(a).inverse();
  EXPECT_LT(max_abs(a * inv - Matrix::identity(4)), 1e-9);
}

TEST(Cholesky, DeterminantOfDiagonalMatrix) {
  const Matrix d = Matrix::diagonal(Vector{2.0, 3.0, 4.0});
  const Cholesky f(d);
  EXPECT_NEAR(f.det(), 24.0, 1e-12);
  EXPECT_NEAR(f.log_det(), std::log(24.0), 1e-12);
}

TEST(Cholesky, LogDetRobustToUnderflowScale) {
  // det = 1e-300² would underflow; log_det must not.
  const Matrix tiny = Matrix::diagonal(Vector{1e-300, 1e-300});
  EXPECT_NEAR(Cholesky(tiny).log_det(), 2.0 * std::log(1e-300), 1e-6);
}

TEST(Cholesky, MahalanobisMatchesExplicitForm) {
  stats::Rng rng(11);
  const Matrix a = random_spd(3, rng);
  const Cholesky f(a);
  const Vector x{1.0, 2.0, -1.0};
  const double direct = dot(x, f.inverse() * x);
  EXPECT_NEAR(f.mahalanobis_squared(x), direct, 1e-9);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  EXPECT_THROW(Cholesky(Matrix{{1.0, 2.0}, {2.0, 1.0}}), NumericalError);
}

TEST(Cholesky, RejectsZeroMatrix) {
  EXPECT_THROW(Cholesky(Matrix(2, 2)), NumericalError);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(Cholesky(Matrix(2, 3)), ContractViolation);
}

TEST(RegularizedCholesky, HandlesZeroCovariance) {
  // The covariance of a fresh point-mass collection is exactly 0; the
  // regularized factorization must still produce something usable.
  const Cholesky f = regularized_cholesky(Matrix(2, 2));
  EXPECT_GT(f.lower()(0, 0), 0.0);
  EXPECT_TRUE(std::isfinite(f.log_det()));
}

TEST(RegularizedCholesky, NoJitterWhenAlreadyPd) {
  const Matrix a{{2.0, 0.0}, {0.0, 2.0}};
  const Cholesky f = regularized_cholesky(a);
  EXPECT_NEAR(f.det(), 4.0, 1e-12);
}

TEST(SpdHelpers, InverseAndDet) {
  const Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  EXPECT_LT(max_abs(spd_inverse(a) - Matrix{{0.25, 0.0}, {0.0, 1.0 / 9.0}}),
            1e-12);
  EXPECT_NEAR(spd_det(a), 36.0, 1e-9);
}

TEST(Ldlt, ReconstructsSemiDefiniteMatrix) {
  // Rank-1 PSD matrix: outer product of (1, 2).
  const Matrix a = outer(Vector{1.0, 2.0}, Vector{1.0, 2.0});
  const Ldlt f(a);
  EXPECT_EQ(f.rank(), 1u);
  EXPECT_FALSE(f.positive_definite());
  const Matrix rebuilt =
      f.lower() * Matrix::diagonal(f.diag()) * transpose(f.lower());
  EXPECT_LT(max_abs(rebuilt - a), 1e-12);
}

TEST(Ldlt, FullRankSolveMatchesCholesky) {
  stats::Rng rng(12);
  const Matrix a = random_spd(4, rng);
  const Vector b{1.0, 0.0, -1.0, 2.0};
  EXPECT_LT(distance2(Ldlt(a).solve(b), Cholesky(a).solve(b)), 1e-8);
}

TEST(Ldlt, RejectsIndefinite) {
  EXPECT_THROW(Ldlt(Matrix{{0.0, 1.0}, {1.0, 0.0}}), NumericalError);
}

TEST(Ldlt, LogPseudoDetSkipsZeroPivots) {
  const Matrix a = Matrix::diagonal(Vector{3.0, 0.0});
  EXPECT_NEAR(Ldlt(a).log_pseudo_det(), std::log(3.0), 1e-12);
}

}  // namespace
}  // namespace ddc::linalg
