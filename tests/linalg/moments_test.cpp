// The in-place moment accumulators promise BIT-IDENTICAL results to the
// operator-based formulations they replace (moments.hpp); these tests
// check that promise with exact equality against the original
// temporary-allocating expressions.
#include <ddc/linalg/moments.hpp>

#include <vector>

#include <gtest/gtest.h>

#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::linalg {
namespace {

Vector random_vector(std::size_t d, stats::Rng& rng) {
  Vector v(d);
  for (std::size_t i = 0; i < d; ++i) v[i] = rng.normal(0.0, 3.0);
  return v;
}

Matrix random_psd(std::size_t d, stats::Rng& rng) {
  Matrix a(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) a(r, c) = rng.normal();
  }
  return a * transpose(a);
}

TEST(AddScaled, BitIdenticalToOperatorForm) {
  stats::Rng rng(11);
  for (std::size_t d = 1; d <= 8; ++d) {
    const Vector v = random_vector(d, rng);
    const double s = rng.normal(0.0, 2.0);
    Vector by_operator = random_vector(d, rng);
    Vector in_place = by_operator;
    by_operator += s * v;
    add_scaled(in_place, s, v);
    EXPECT_EQ(in_place, by_operator) << "d=" << d;
  }
}

TEST(AddScaledSpread, BitIdenticalToOperatorForm) {
  stats::Rng rng(12);
  for (std::size_t d = 1; d <= 6; ++d) {
    const Matrix m = random_psd(d, rng);
    const Vector delta = random_vector(d, rng);
    const double s = rng.uniform(0.0, 1.0);
    Matrix by_operator(d, d);
    Matrix in_place(d, d);
    by_operator += s * (m + outer(delta, delta));
    add_scaled_spread(in_place, s, m, delta);
    EXPECT_EQ(in_place, by_operator) << "d=" << d;
  }
}

TEST(WeightedMomentAccumulator, BitIdenticalToTwoPassOperatorForm) {
  stats::Rng rng(13);
  for (std::size_t d = 1; d <= 5; ++d) {
    const std::size_t parts = 1 + rng.uniform_index(6);
    std::vector<double> scales;
    std::vector<Vector> means;
    std::vector<Matrix> covs;
    for (std::size_t p = 0; p < parts; ++p) {
      scales.push_back(rng.uniform(0.01, 1.0));
      means.push_back(random_vector(d, rng));
      covs.push_back(random_psd(d, rng));
    }

    Vector mean(d);
    for (std::size_t p = 0; p < parts; ++p) mean += scales[p] * means[p];
    Matrix cov(d, d);
    for (std::size_t p = 0; p < parts; ++p) {
      const Vector delta = means[p] - mean;
      cov += scales[p] * (covs[p] + outer(delta, delta));
    }

    WeightedMomentAccumulator acc(d);
    for (std::size_t p = 0; p < parts; ++p) {
      acc.accumulate_mean(scales[p], means[p]);
    }
    for (std::size_t p = 0; p < parts; ++p) {
      acc.accumulate_spread(scales[p], covs[p], means[p]);
    }
    EXPECT_EQ(acc.mean(), mean) << "d=" << d;
    EXPECT_EQ(acc.cov(), cov) << "d=" << d;
  }
}

TEST(WeightedMomentAccumulator, PointMassOverloadMatchesOuterForm) {
  stats::Rng rng(14);
  for (std::size_t d = 1; d <= 5; ++d) {
    const Vector mu = random_vector(d, rng);
    const Vector x = random_vector(d, rng);
    const double s = rng.uniform(0.0, 1.0);

    WeightedMomentAccumulator acc(d);
    acc.accumulate_mean(1.0, mu);
    acc.accumulate_spread(s, x);

    const Vector delta = x - acc.mean();
    Matrix expected(d, d);
    expected += s * outer(delta, delta);
    EXPECT_EQ(acc.cov(), expected) << "d=" << d;
  }
}

TEST(TraceProduct, BitIdenticalToMaterializedTrace) {
  stats::Rng rng(15);
  for (std::size_t d = 1; d <= 8; ++d) {
    Matrix a = random_psd(d, rng);
    const Matrix b = random_psd(d, rng);
    // Exercise the zero-skip path operator* takes.
    a(0, d - 1) = 0.0;
    EXPECT_EQ(trace_product(a, b), trace(a * b)) << "d=" << d;
  }
}

}  // namespace
}  // namespace ddc::linalg
